//! Retrieval-quality integration: the functional CBIR pipeline end to end,
//! at a scale large enough to be meaningful.
//!
//! The paper's motivation for hierarchical acceleration (rather than
//! compression) is that it "preserves the recall accuracy"; these tests pin
//! that property on the functional implementation.

use reach_cbir::dataset::{recall, Dataset};
use reach_cbir::ivf::IvfIndex;
use reach_cbir::linalg::Matrix;
use reach_cbir::FeatureNet;
use reach_sim::rng::{derived, DEFAULT_SEED};

struct Fixture {
    db: Matrix,
    index: IvfIndex,
    queries: Matrix,
    truth: Vec<Vec<usize>>,
}

fn fixture() -> Fixture {
    let mut rng = derived(DEFAULT_SEED, "retrieval-quality");
    let raw = Dataset::gaussian_mixture(30_000, 128, 100, 0.5, &mut rng);
    let net = FeatureNet::new(128, 96, 1, DEFAULT_SEED);
    let db = net.extract_batch(&raw.points);
    let index = IvfIndex::build(&db, 100, &mut rng);
    let (raw_q, _) = raw.queries(32, 0.1, &mut rng);
    let queries = net.extract_batch(&raw_q);
    let ds = Dataset {
        points: db.clone(),
        labels: raw.labels,
        means: raw.means,
    };
    let truth = ds.ground_truth(&queries, 10);
    Fixture {
        db,
        index,
        queries,
        truth,
    }
}

/// The full pipeline (feature net -> IVF short list -> rerank) reaches high
/// recall with a small probe count on clustered data.
#[test]
fn pipeline_recall_at_small_nprobe() {
    let f = fixture();
    let got = f.index.search(&f.db, &f.queries, 8, 10, None);
    let r = recall(&got, &f.truth, 10);
    assert!(
        r.recall_at_k > 0.85,
        "recall@10 = {:.3} with nprobe=8 over 100 clusters",
        r.recall_at_k
    );
}

/// Probing every cluster is exhaustive search: recall must be exactly 1.
#[test]
fn exhaustive_probe_is_exact() {
    let f = fixture();
    let got = f
        .index
        .search(&f.db, &f.queries, f.index.clusters(), 10, None);
    let r = recall(&got, &f.truth, 10);
    assert!(
        (r.recall_at_k - 1.0).abs() < 1e-12,
        "recall {}",
        r.recall_at_k
    );
}

/// Recall is monotone in the probe count (more clusters scanned can only
/// help).
#[test]
fn recall_monotone_in_nprobe() {
    let f = fixture();
    let mut last = 0.0;
    for nprobe in [1, 2, 4, 8, 16, 100] {
        let got = f.index.search(&f.db, &f.queries, nprobe, 10, None);
        let r = recall(&got, &f.truth, 10).recall_at_k;
        assert!(
            r >= last - 1e-9,
            "recall dropped from {last:.3} to {r:.3} at nprobe={nprobe}"
        );
        last = r;
    }
}

/// The candidate cap (the paper's 4096) trades recall for bounded rerank
/// work: capped recall <= uncapped recall, and a generous cap loses little.
#[test]
fn candidate_cap_tradeoff() {
    let f = fixture();
    let uncapped = recall(
        &f.index.search(&f.db, &f.queries, 8, 10, None),
        &f.truth,
        10,
    );
    let capped = recall(
        &f.index.search(&f.db, &f.queries, 8, 10, Some(4096)),
        &f.truth,
        10,
    );
    assert!(capped.recall_at_k <= uncapped.recall_at_k + 1e-9);
    assert!(
        capped.recall_at_k > uncapped.recall_at_k - 0.15,
        "4096 candidates lose too much: {:.3} vs {:.3}",
        capped.recall_at_k,
        uncapped.recall_at_k
    );
}

/// Feature extraction is a stable embedding: queries derived from database
/// images retrieve their source image at rank 1 almost always.
#[test]
fn near_duplicate_queries_find_their_source() {
    let mut rng = derived(DEFAULT_SEED, "near-dup");
    let raw = Dataset::gaussian_mixture(5_000, 128, 50, 0.5, &mut rng);
    let net = FeatureNet::new(128, 96, 1, DEFAULT_SEED);
    let db = net.extract_batch(&raw.points);
    let index = IvfIndex::build(&db, 50, &mut rng);
    let (raw_q, origin) = raw.queries(50, 0.01, &mut rng);
    let q = net.extract_batch(&raw_q);
    let results = index.search(&db, &q, 4, 1, None);
    let hits = results
        .iter()
        .zip(&origin)
        .filter(|(r, &o)| r.first() == Some(&o))
        .count();
    assert!(hits >= 45, "{hits}/50 near-duplicates found their source");
}

/// Determinism across the whole functional stack.
#[test]
fn functional_pipeline_is_deterministic() {
    let a = fixture();
    let b = fixture();
    let ra = a.index.search(&a.db, &a.queries, 4, 10, Some(4096));
    let rb = b.index.search(&b.db, &b.queries, 4, 10, Some(4096));
    assert_eq!(ra, rb);
}

/// The decomposed-distance short list equals the naive per-centroid
/// distance computation (Equation 1 == Equation 2 at system level).
#[test]
fn shortlist_matches_naive_centroid_scan() {
    let f = fixture();
    let lists = f.index.short_lists(&f.queries, 5);
    for (qi, list) in lists.iter().enumerate().take(8) {
        // Naive: compute all centroid distances directly.
        let mut naive: Vec<(f32, usize)> = (0..f.index.clusters())
            .map(|c| {
                (
                    reach_cbir::linalg::dist_sq(f.queries.row(qi), f.index.centroids().row(c)),
                    c,
                )
            })
            .collect();
        naive.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let naive_ids: Vec<usize> = naive[..5].iter().map(|&(_, c)| c).collect();
        assert_eq!(list, &naive_ids, "query {qi} short list diverges");
    }
}
