//! Open-loop traffic serving, end to end: the `extension-traffic` suite
//! must be byte-identical at any worker count and cache mode, replay
//! through the scenario-result cache, and rest on a latency histogram
//! whose quantiles are merge-order-independent and monotone in rank.

use proptest::prelude::*;
use reach::{ArrivalProcess, SequentialExecutor, SimDuration};
use reach_bench::{EvictionPolicy, ScenarioRunner};
use reach_cbir::traffic::{TRAFFIC_OFFERED, TRAFFIC_QUEUE_DEPTH, TRAFFIC_RATES_PER_SEC};
use reach_sim::LatencyHistogram;

/// The acceptance contract: the whole traffic sweep (four placements x
/// five rates plus the bursty/trace demo pair) rendered through the
/// `experiments` code path is byte-identical sequentially, at 1/4/8
/// worker threads, with the result cache disabled, and under LRU
/// eviction — arrivals, admission and quantiles leak no scheduling.
#[test]
fn traffic_suite_is_byte_identical_across_job_counts_and_cache_modes() {
    let reference = reach_bench::render_extension_traffic(&SequentialExecutor);
    assert!(!reference.is_empty());
    for jobs in [1, 4, 8] {
        assert_eq!(
            reference,
            reach_bench::render_extension_traffic(&ScenarioRunner::new(jobs)),
            "traffic suite diverged at {jobs} jobs"
        );
        assert_eq!(
            reference,
            reach_bench::render_extension_traffic(&ScenarioRunner::without_cache(jobs)),
            "traffic suite diverged without the result cache at {jobs} jobs"
        );
        assert_eq!(
            reference,
            reach_bench::render_extension_traffic(&ScenarioRunner::with_cache_policy(
                jobs,
                EvictionPolicy::Lru
            )),
            "traffic suite diverged under LRU eviction at {jobs} jobs"
        );
    }
}

/// Every traffic scenario is fingerprinted (arrival process, rate, seed,
/// queue depth), so a warm second pass replays the entire sweep from the
/// result cache without changing a byte.
#[test]
fn traffic_suite_replays_through_the_result_cache() {
    let runner = ScenarioRunner::new(2);
    let cold = reach_bench::render_extension_traffic(&runner);
    let cold_stats = runner.cache_stats();
    let warm = reach_bench::render_extension_traffic(&runner);
    let warm_stats = runner.cache_stats();
    assert_eq!(cold, warm, "cache replay changed the traffic suite");

    // 4 placements x rates, plus the bursty and trace demo rows — all
    // distinct configurations, so the cold pass misses once each.
    let points = 4 * TRAFFIC_RATES_PER_SEC.len() + 2;
    assert_eq!(cold_stats.misses, points as u64);
    assert_eq!(cold_stats.hits, 0);
    // The warm pass adds zero misses: every scenario is a replay.
    assert_eq!(warm_stats.misses, cold_stats.misses);
    assert_eq!(warm_stats.hits, points as u64);
}

/// The printed sweep carries its own contract in-band: per placement the
/// rejection count never decreases with offered load, nothing is rejected
/// at the lowest rate, and the admission ledger always balances.
#[test]
fn rendered_traffic_rows_balance_and_saturate_monotonically() {
    let rows = reach_cbir::traffic::traffic_knee_with(&SequentialExecutor);
    assert_eq!(rows.len(), 4 * TRAFFIC_RATES_PER_SEC.len() + 2);
    for chunk in rows[..4 * TRAFFIC_RATES_PER_SEC.len()].chunks(TRAFFIC_RATES_PER_SEC.len()) {
        assert_eq!(
            chunk[0].rejected, 0,
            "{}: rejects at the lowest rate",
            chunk[0].source
        );
        for pair in chunk.windows(2) {
            assert!(
                pair[1].rejected >= pair[0].rejected,
                "{}: rejections fell as offered load rose",
                pair[1].source
            );
        }
        // Admitted is capped by what fits through the queue, never more
        // than offered; the ledger always balances.
        for row in chunk {
            assert_eq!(row.admitted + row.rejected, TRAFFIC_OFFERED as u64);
            assert_eq!(row.offered, TRAFFIC_OFFERED);
            assert!(row.admitted >= TRAFFIC_QUEUE_DEPTH as u64);
        }
    }
}

/// A recorded trace replays any stochastic process bit-for-bit — the
/// mechanism behind the suite's trace demo row.
#[test]
fn recorded_bursty_trace_replays_bitwise() {
    let bursty = ArrivalProcess::Bursty {
        on_gap: SimDuration::from_ms(83),
        burst: SimDuration::from_ms(1500),
        idle: SimDuration::from_ms(3000),
        seed: 17,
    };
    let trace = ArrivalProcess::Trace {
        gaps: bursty.record_trace(TRAFFIC_OFFERED),
    };
    assert_eq!(
        bursty.arrivals(TRAFFIC_OFFERED),
        trace.arrivals(TRAFFIC_OFFERED)
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Merging per-worker histograms must not care how the samples were
    /// sharded or in what order the shards merge — the property that makes
    /// the exported quantiles independent of `--jobs`.
    #[test]
    fn latency_quantiles_are_merge_order_independent(
        samples in proptest::collection::vec(0u64..u64::MAX, 1..300),
        split in 1usize..8,
    ) {
        let mut whole = LatencyHistogram::new();
        for &s in &samples {
            whole.record(s);
        }

        // Shard round-robin into `split` histograms, then merge them in
        // reverse order — different sharding *and* different merge order.
        let mut shards = vec![LatencyHistogram::new(); split];
        for (i, &s) in samples.iter().enumerate() {
            shards[i % split].record(s);
        }
        let mut merged = LatencyHistogram::new();
        for shard in shards.iter().rev() {
            merged.merge(shard);
        }

        prop_assert_eq!(&merged, &whole);
        for p in [0, 1, 500, 950, 990, 999, 1000] {
            prop_assert_eq!(merged.quantile_per_mille(p), whole.quantile_per_mille(p));
        }
    }

    /// Quantiles must be monotone in rank: asking for a higher percentile
    /// can never return a lower latency.
    #[test]
    fn latency_quantiles_are_monotone_in_rank(
        samples in proptest::collection::vec(0u64..u64::MAX, 1..300),
        p_lo in 0u16..1001,
        p_hi in 0u16..1001,
    ) {
        let mut hist = LatencyHistogram::new();
        for &s in &samples {
            hist.record(s);
        }
        let (lo, hi) = if p_lo <= p_hi { (p_lo, p_hi) } else { (p_hi, p_lo) };
        prop_assert!(hist.quantile_per_mille(lo) <= hist.quantile_per_mille(hi));
        // And the named accessors are just fixed ranks of the same curve.
        prop_assert!(hist.p50() <= hist.p95());
        prop_assert!(hist.p95() <= hist.p99());
        prop_assert!(hist.p99() <= hist.p999());
    }
}
