//! The GAM protocol under the full machine: status polling, estimated wait
//! times, DMA initiation and host interrupts — Figure 5's micro-architecture
//! exercised end to end.

use reach::{ComputeLevel, Machine, MachineBlueprint, SystemConfig, TaskWork};
use reach_gam::JobBuilder;
use reach_sim::SimDuration;
use std::collections::HashMap;

fn machine() -> Machine {
    MachineBlueprint::paper().instantiate()
}

fn ms(n: u64) -> SimDuration {
    SimDuration::from_ms(n)
}

/// Off-chip tasks are observed by poll; on-chip tasks are not.
#[test]
fn polling_only_for_offchip_levels() {
    let mut m = machine();
    let mut job = JobBuilder::new(0);
    let onchip = job.task(
        "a",
        "VGG16-VU9P",
        ComputeLevel::OnChip,
        ms(10),
        vec![],
        vec![],
        vec![],
    );
    let offchip = job.task(
        "b",
        "KNN-ZCU9",
        ComputeLevel::NearStorage,
        ms(10),
        vec![],
        vec![],
        vec![],
    );
    m.submit(
        job.build(),
        HashMap::from([
            (onchip, TaskWork::compute(1_000_000_000)),
            (offchip, TaskWork::compute(100_000_000)),
        ]),
    );
    let r = m.run();
    assert_eq!(r.jobs, 1);
    assert!(r.gam.polls_sent >= 1, "near-storage task must be polled");
}

/// An under-estimated task triggers the "new wait time" path: the first
/// poll finds it running and a later poll collects it.
#[test]
fn underestimated_task_is_repolled() {
    let mut m = machine();
    let mut job = JobBuilder::new(0);
    // Estimate 1 ms, actual ~47 ms (7.75 GMACs on the embedded CNN).
    let t = job.task(
        "fe",
        "VGG16-ZCU9",
        ComputeLevel::NearMemory,
        ms(1),
        vec![],
        vec![],
        vec![],
    );
    m.submit(
        job.build(),
        HashMap::from([(t, TaskWork::compute(7_750_000_000))]),
    );
    let r = m.run();
    assert!(r.gam.polls_missed >= 1, "expected at least one missed poll");
    assert!(r.gam.polls_sent > r.gam.polls_missed);
    assert_eq!(r.jobs, 1, "the job still completes");
}

/// An over-estimated task is observed late: its effective completion is
/// quantized to the (correct-side) poll instant, so makespan >= estimate.
#[test]
fn overestimated_task_completion_is_poll_quantized() {
    let mut m = machine();
    let mut job = JobBuilder::new(0);
    // Actual ~0.6 ms of compute, estimate 50 ms.
    let t = job.task(
        "x",
        "KNN-ZCU9",
        ComputeLevel::NearStorage,
        ms(50),
        vec![],
        vec![],
        vec![],
    );
    m.submit(
        job.build(),
        HashMap::from([(t, TaskWork::compute(100_000_000))]),
    );
    let r = m.run();
    assert!(
        r.makespan >= ms(50),
        "completion observed before the first status poll: {}",
        r.makespan
    );
    assert!(
        r.makespan < ms(60),
        "poll overhead exploded: {}",
        r.makespan
    );
}

/// Dependent tasks at different levels trigger exactly the DMA transfers
/// the buffer table implies, and inputs never arrive after dispatch.
#[test]
fn inter_level_dependencies_move_data_once() {
    let mut m = machine();
    let mut job = JobBuilder::new(0);
    let feats = job.buffer("features", 6_144, None);
    let fe = job.task(
        "fe",
        "VGG16-VU9P",
        ComputeLevel::OnChip,
        ms(100),
        vec![],
        vec![feats],
        vec![],
    );
    let rr = job.task(
        "rr",
        "KNN-ZCU9",
        ComputeLevel::NearStorage,
        ms(5),
        vec![feats],
        vec![],
        vec![fe],
    );
    m.submit(
        job.build(),
        HashMap::from([
            (fe, TaskWork::compute(124_000_000_000)),
            (rr, TaskWork::compute(100_000_000)),
        ]),
    );
    let r = m.run();
    assert_eq!(r.gam.dmas, 1, "one feature transfer expected");
    assert_eq!(r.gam.dma_bytes, 6_144);
    // The rerank window starts after feature extraction's ~100 ms.
    let rr_stage = r.stage("rr").expect("rr ran");
    assert!(rr_stage.window.0.as_ms_f64() >= 99.0);
}

/// Tasks queue FIFO-by-job on a busy level: with one near-storage unit,
/// three independent tasks serialize; with four units they overlap.
#[test]
fn level_parallelism_matches_instance_count() {
    let run = |units: usize| -> f64 {
        let mut m = MachineBlueprint::new(SystemConfig::paper_table2().with_near_storage(units))
            .instantiate();
        let mut job = JobBuilder::new(0);
        let mut works = HashMap::new();
        for i in 0..4 {
            let t = job.task(
                &format!("t{i}"),
                "KNN-ZCU9",
                ComputeLevel::NearStorage,
                ms(10),
                vec![],
                vec![],
                vec![],
            );
            works.insert(t, TaskWork::stream(1_000_000, 64 << 20));
        }
        m.submit(job.build(), works);
        m.run().makespan.as_secs_f64()
    };
    let serial = run(1);
    let parallel = run(4);
    let speedup = serial / parallel;
    assert!(speedup > 3.0, "expected ~4x from 4 units, got {speedup:.2}");
}

/// Host interrupts arrive once per job, in submission order for an
/// in-order pipeline.
#[test]
fn one_interrupt_per_job() {
    let mut m = machine();
    for b in 0..5 {
        let mut job = JobBuilder::new(b);
        let t = job.task(
            "w",
            "GEMM-VU9P",
            ComputeLevel::OnChip,
            ms(2),
            vec![],
            vec![],
            vec![],
        );
        m.submit(
            job.build(),
            HashMap::from([(t, TaskWork::stream(1_000_000, 16 << 20))]),
        );
    }
    let r = m.run();
    assert_eq!(r.jobs, 5);
    assert_eq!(r.gam.jobs_completed, 5);
    assert_eq!(r.gam.dispatches, 5);
}

/// Command latency is charged: a zero-work task still takes at least the
/// command packet time plus pipeline fill.
#[test]
fn command_latency_floor() {
    let mut m = machine();
    let mut job = JobBuilder::new(0);
    let t = job.task(
        "nop",
        "GEMM-VU9P",
        ComputeLevel::OnChip,
        ms(1),
        vec![],
        vec![],
        vec![],
    );
    m.submit(job.build(), HashMap::from([(t, TaskWork::compute(0))]));
    let r = m.run();
    let floor = m.config().gam.command_latency;
    assert!(
        r.makespan >= floor,
        "makespan {} below command latency",
        r.makespan
    );
}
