//! Property-based tests over the whole stack: invariants that must hold
//! for *every* workload shape, not just the paper's.

use proptest::prelude::*;
use reach::{ComputeLevel, MachineBlueprint, TaskWork};
use reach_gam::JobBuilder;
use reach_sim::{Bandwidth, BandwidthResource, SerialResource, SimDuration, SimTime};
use std::collections::HashMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Serial-resource reservations never overlap and never go backwards.
    #[test]
    fn serial_resource_reservations_are_disjoint(
        requests in proptest::collection::vec((0u64..10_000, 1u64..5_000), 1..50)
    ) {
        let mut r = SerialResource::new();
        let mut last_ready = SimTime::ZERO;
        let mut clock = SimTime::ZERO;
        for (advance, service) in requests {
            clock += SimDuration::from_ps(advance);
            let res = r.reserve(clock, SimDuration::from_ps(service));
            prop_assert!(res.start >= last_ready.min(res.start));
            prop_assert!(res.start >= clock);
            prop_assert!(res.ready == res.start + SimDuration::from_ps(service));
            prop_assert!(res.ready >= last_ready);
            last_ready = res.ready;
        }
    }

    /// Busy time equals the sum of service times, independent of arrival
    /// pattern.
    #[test]
    fn serial_resource_busy_time_is_conserved(
        services in proptest::collection::vec(1u64..10_000, 1..64)
    ) {
        let mut r = SerialResource::new();
        let total: u64 = services.iter().sum();
        for s in &services {
            r.reserve(SimTime::ZERO, SimDuration::from_ps(*s));
        }
        prop_assert_eq!(r.busy_time(), SimDuration::from_ps(total));
    }

    /// A bandwidth link never beats its configured rate over any request
    /// mix.
    #[test]
    fn bandwidth_link_never_exceeds_rate(
        sizes in proptest::collection::vec(1u64..(1 << 20), 1..32),
        gbps in 1u64..64,
    ) {
        let mut link = BandwidthResource::new(Bandwidth::from_gbps(gbps), SimDuration::ZERO);
        let total: u64 = sizes.iter().sum();
        let mut end = SimTime::ZERO;
        for s in sizes {
            end = end.max(link.transfer(SimTime::ZERO, s).complete);
        }
        let secs = (end - SimTime::ZERO).as_secs_f64();
        let achieved = total as f64 / secs;
        prop_assert!(achieved <= gbps as f64 * 1e9 * 1.001,
            "achieved {achieved:.3e} over {gbps} GB/s link");
    }

    /// GAM liveness: any dependency *chain* of tasks across random levels
    /// and sizes completes, with exactly one interrupt and all work billed.
    #[test]
    fn machine_completes_random_task_chains(
        specs in proptest::collection::vec((0usize..3, 1u64..200), 1..12)
    ) {
        let mut m = MachineBlueprint::paper().instantiate();
        let mut job = JobBuilder::new(0);
        let mut works = HashMap::new();
        let mut prev: Option<reach_gam::TaskId> = None;
        for (i, (level_pick, mmacs)) in specs.iter().enumerate() {
            let (level, template) = match level_pick {
                0 => (ComputeLevel::OnChip, "KNN-VU9P"),
                1 => (ComputeLevel::NearMemory, "KNN-ZCU9"),
                _ => (ComputeLevel::NearStorage, "KNN-ZCU9"),
            };
            let deps = prev.map(|p| vec![p]).unwrap_or_default();
            let t = job.task(
                &format!("s{i}"),
                template,
                level,
                SimDuration::from_us(500),
                vec![],
                vec![],
                deps,
            );
            works.insert(t, TaskWork::compute(mmacs * 1_000_000));
            prev = Some(t);
        }
        let n = specs.len() as u64;
        m.submit(job.build(), works);
        let r = m.run();
        prop_assert_eq!(r.jobs, 1);
        prop_assert_eq!(r.gam.jobs_completed, 1);
        prop_assert_eq!(r.gam.dispatches, n);
        prop_assert!(r.makespan > SimDuration::ZERO);
    }

    /// Monotonicity: strictly more MACs on the same chain never finishes
    /// earlier.
    #[test]
    fn more_work_is_never_faster(base_mmacs in 1u64..1_000) {
        let run = |mmacs: u64| {
            let mut m = MachineBlueprint::paper().instantiate();
            let mut job = JobBuilder::new(0);
            let t = job.task("w", "VGG16-VU9P", ComputeLevel::OnChip,
                SimDuration::from_ms(1), vec![], vec![], vec![]);
            m.submit(job.build(), HashMap::from([(t, TaskWork::compute(mmacs * 1_000_000))]));
            m.run().makespan
        };
        let small = run(base_mmacs);
        let big = run(base_mmacs * 2);
        prop_assert!(big >= small, "2x MACs finished earlier: {big} < {small}");
    }

    /// Energy positivity and decomposition for random single-task runs.
    #[test]
    fn energy_is_positive_and_decomposes(
        bytes_mb in 1u64..256,
        level_pick in 0usize..3,
    ) {
        let (level, template) = match level_pick {
            0 => (ComputeLevel::OnChip, "GEMM-VU9P"),
            1 => (ComputeLevel::NearMemory, "GEMM-ZCU9"),
            _ => (ComputeLevel::NearStorage, "GEMM-ZCU9"),
        };
        let mut m = MachineBlueprint::paper().instantiate();
        let mut job = JobBuilder::new(0);
        let t = job.task("s", template, level, SimDuration::from_ms(1), vec![], vec![], vec![]);
        m.submit(job.build(), HashMap::from([
            (t, TaskWork::stream(1_000_000, bytes_mb << 20)),
        ]));
        let r = m.run();
        let total = r.total_energy_j();
        prop_assert!(total > 0.0);
        let sum: f64 = reach::SystemComponent::ALL
            .iter()
            .map(|&c| r.ledger.component_total(c))
            .sum();
        prop_assert!((sum - total).abs() < 1e-9 * total);
    }
}

/// Deterministic replay of a moderately complex random-looking workload.
#[test]
fn full_stack_determinism() {
    let build = || {
        let mut m = MachineBlueprint::paper().instantiate();
        let mut job = JobBuilder::new(0);
        let mut works = HashMap::new();
        let buf = job.buffer("db", 32 << 20, Some(ComputeLevel::NearStorage));
        let a = job.task(
            "a",
            "VGG16-VU9P",
            ComputeLevel::OnChip,
            SimDuration::from_ms(40),
            vec![],
            vec![],
            vec![],
        );
        works.insert(a, TaskWork::compute(5_000_000_000));
        let b = job.task(
            "b",
            "KNN-ZCU9",
            ComputeLevel::NearMemory,
            SimDuration::from_ms(20),
            vec![buf],
            vec![],
            vec![a],
        );
        works.insert(b, TaskWork::gather(1_000_000, 32 << 20, 4096));
        m.submit(job.build(), works);
        m.run()
    };
    let r1 = build();
    let r2 = build();
    assert_eq!(r1.makespan, r2.makespan);
    assert_eq!(r1.ledger.to_string(), r2.ledger.to_string());
    assert_eq!(r1.gam.polls_sent, r2.gam.polls_sent);
}
