//! The telemetry layer, end to end: machine-recorded metrics surface in
//! the run report under stable names, the exporters are byte-stable
//! (golden files), and the Chrome trace keeps its one-process-row-per-level
//! / one-thread-row-per-instance shape.
//!
//! Regenerate the golden files with `UPDATE_GOLDEN=1 cargo test -p
//! reach-integration --test telemetry` after an intentional schema change.

use reach::{Machine, MetricValue, MetricsSnapshot, TraceKind};
use reach_cbir::pipeline::CbirStage;
use reach_cbir::{blueprint_with, CbirMapping, CbirPipeline, CbirWorkload};
use reach_sim::{MetricsRegistry, SimTime};

fn proper_run() -> reach::RunReport {
    let w = CbirWorkload::paper_setup();
    let mut m = blueprint_with(4, 4).instantiate();
    CbirPipeline::new(w, CbirMapping::Proper).run(&mut m, 2)
}

// ------------------------------------------------------------------ //
// Machine-recorded metrics
// ------------------------------------------------------------------ //

#[test]
fn run_report_carries_machine_telemetry() {
    let r = proper_run();
    let m = &r.metrics;
    assert_eq!(m.horizon_ps(), r.makespan.as_ps());

    // Queue-depth gauges exist for every level; the proper mapping queues
    // work at near-storage (rerank shards outnumber units).
    for slug in ["on_chip", "near_mem", "near_stor"] {
        assert!(
            m.get(&format!("gam.queue.{slug}.depth")).is_some(),
            "missing queue gauge for {slug}"
        );
    }

    // Per-resource occupancy: every level computed something, so each
    // occupancy gauge peaks at >= 1 concurrent busy instance.
    for slug in ["on_chip", "near_mem", "near_stor"] {
        match m.get(&format!("accel.{slug}.occupancy")) {
            Some(MetricValue::Occupancy { peak, .. }) => {
                assert!(*peak >= 1.0, "{slug} occupancy peak {peak}");
            }
            other => panic!("accel.{slug}.occupancy: {other:?}"),
        }
    }

    // Per-link traffic: rerank gathers hit the SSDs, features ride the
    // host interconnect, near-memory GEMM streams its own DIMMs.
    let counter = |name: &str| -> u64 {
        match m.get(name) {
            Some(MetricValue::Counter { value }) => *value,
            other => panic!("{name}: {other:?}"),
        }
    };
    assert!(counter("storage.ssd0.read_bytes") > 0);
    assert!(counter("mem.ddr.host.ch0.bytes") > 0);
    assert!(counter("mem.ddr.near_mem.ch0.bytes") > 0);
    assert!(counter("gam.dma_bytes") > 0);
    assert_eq!(counter("gam.dispatches"), r.gam.dispatches);

    // Busy accounting agrees with the per-stage report.
    let total_busy: u64 = ["on_chip", "near_mem", "near_stor"]
        .iter()
        .map(|s| counter(&format!("accel.{s}.busy_ps")))
        .sum();
    let stage_busy: u64 = r.stages.iter().map(|s| s.busy.as_ps()).sum();
    assert_eq!(total_busy, stage_busy);
}

#[test]
fn telemetry_is_deterministic_across_runs() {
    let a = proper_run();
    let b = proper_run();
    assert_eq!(a.metrics.to_json(), b.metrics.to_json());
    assert_eq!(a.metrics.to_csv(), b.metrics.to_csv());
}

// ------------------------------------------------------------------ //
// Exporter golden files
// ------------------------------------------------------------------ //

/// A small registry exercising every metric kind with hand-checkable
/// numbers (the golden files pin the exact serialization).
fn golden_snapshot() -> MetricsSnapshot {
    let mut reg = MetricsRegistry::new();
    let bytes = reg.counter("mem.ddr.ch0.bytes");
    reg.add(bytes, 4096);
    let depth = reg.gauge("gam.queue.near_mem.depth");
    reg.gauge_set(depth, SimTime::ZERO, 1.0);
    reg.gauge_set(depth, SimTime::from_ps(500), 3.0);
    let lat = reg.histogram("accel.on_chip.task_ps");
    reg.record(lat, 1000);
    reg.record(lat, 3000);
    let occ = reg.occupancy("accel.near_stor.occupancy");
    reg.occupy(occ, SimTime::ZERO, SimTime::from_ps(500), 1.0);
    reg.occupy(occ, SimTime::from_ps(250), SimTime::from_ps(1000), 1.0);
    let mut snap = reg.snapshot(SimTime::from_ps(1000));
    snap.set_counter("storage.ssd0.read_bytes", 1 << 20);
    snap
}

fn check_golden(rendered: &str, path: &str, golden: &str) {
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(format!("{}/{path}", env!("CARGO_MANIFEST_DIR")), rendered)
            .expect("golden file is writable");
        return;
    }
    assert!(
        rendered == golden,
        "{path} drifted from the exporter output; \
         run with UPDATE_GOLDEN=1 if the change is intentional.\n\
         --- rendered ---\n{rendered}\n--- golden ---\n{golden}"
    );
}

#[test]
fn json_exporter_matches_golden_file() {
    check_golden(
        &golden_snapshot().to_json(),
        "../../tests/golden/metrics.json",
        include_str!("golden/metrics.json"),
    );
}

#[test]
fn csv_exporter_matches_golden_file() {
    check_golden(
        &golden_snapshot().to_csv(),
        "../../tests/golden/metrics.csv",
        include_str!("golden/metrics.csv"),
    );
}

#[test]
fn scenario_metrics_export_matches_golden_file() {
    let captured = reach_bench::CapturedScenario {
        label: "golden/one".to_string(),
        makespan_ps: 1000,
        jobs: 2,
        energy_j: 1.5,
        metrics: golden_snapshot(),
    };
    check_golden(
        &reach_bench::scenario_metrics_json(&[captured]),
        "../../tests/golden/scenario_metrics.json",
        include_str!("golden/scenario_metrics.json"),
    );
}

// ------------------------------------------------------------------ //
// Chrome trace rows
// ------------------------------------------------------------------ //

/// Runs short-list + rerank with tracing on a machine with several
/// instances per level and returns (trace JSON, machine).
fn traced_run() -> (String, Machine) {
    let w = CbirWorkload::paper_setup();
    let mut m = blueprint_with(4, 4).instantiate();
    m.enable_trace();
    let p = CbirPipeline::new(w, CbirMapping::Proper);
    let _ = p
        .build_stages(&m, &[CbirStage::ShortList, CbirStage::Rerank])
        .run(&mut m, 1);
    let json = m.trace().expect("trace enabled").to_chrome_json();
    (json, m)
}

#[test]
fn chrome_trace_has_one_process_row_per_level() {
    let (json, m) = traced_run();
    // Task events carry their level as the pid; each level used by the
    // mapping appears exactly as its display name.
    assert!(json.contains("\"pid\":\"near-memory\""));
    assert!(json.contains("\"pid\":\"near-storage\""));
    // Thread rows: one tid per instance at near-storage (4 units all busy
    // reranking), no tid beyond the instance count.
    for tid in 0..m.config().near_storage_accelerators {
        assert!(
            json.contains(&format!("\"pid\":\"near-storage\",\"tid\":{tid}}}")),
            "missing near-storage lane {tid}"
        );
    }
    let beyond = m.config().near_storage_accelerators;
    assert!(!json.contains(&format!("\"pid\":\"near-storage\",\"tid\":{beyond}}}")));
}

#[test]
fn chrome_trace_rows_match_recorded_events() {
    let (json, m) = traced_run();
    let trace = m.trace().expect("trace enabled");
    assert_eq!(json.matches("{\"name\"").count(), trace.len());
    // Every task event's (track, lane) is a registered instance.
    for e in trace.events() {
        if e.kind == TraceKind::Task {
            let limit = match e.track.as_str() {
                "on-chip" => m.config().onchip_accelerators,
                "near-memory" => m.config().near_memory_accelerators,
                "near-storage" => m.config().near_storage_accelerators,
                other => panic!("unexpected task track {other}"),
            };
            assert!(e.lane < limit, "{} lane {} out of range", e.track, e.lane);
        }
    }
}
