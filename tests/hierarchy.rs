//! Cross-crate behaviour of the assembled hierarchy: contention,
//! saturation and scaling properties that must *emerge* from the substrate
//! models rather than being scripted.

use reach::{
    Level, Machine, MachineBlueprint, Pipeline, ReachConfig, StreamType, SystemConfig, TaskWork,
};
use reach_cbir::blueprint_with;
use reach_cbir::pipeline::CbirStage;
use reach_cbir::{CbirMapping, CbirPipeline, CbirWorkload};

fn machine_with(nm: usize, ns: usize) -> Machine {
    blueprint_with(nm, ns).instantiate()
}

fn rerank_only(nm: usize, ns: usize, mapping: CbirMapping) -> f64 {
    let w = CbirWorkload::paper_setup();
    CbirPipeline::new(w, mapping)
        .run_stage(&mut machine_with(nm, ns), CbirStage::Rerank, 1)
        .makespan
        .as_secs_f64()
}

/// Doubling near-storage units ~halves rerank time: every unit owns its
/// own SSD, so there is no shared bottleneck.
#[test]
fn near_storage_rerank_scales_linearly() {
    let t2 = rerank_only(4, 2, CbirMapping::AllNearStorage);
    let t4 = rerank_only(4, 4, CbirMapping::AllNearStorage);
    let t8 = rerank_only(4, 8, CbirMapping::AllNearStorage);
    let s24 = t2 / t4;
    let s48 = t4 / t8;
    assert!(s24 > 1.7 && s24 < 2.3, "2->4 scaling {s24:.2}");
    assert!(s48 > 1.6 && s48 < 2.3, "4->8 scaling {s48:.2}");
}

/// Near-memory rerank is capped by the shared host IO interface: beyond
/// ~8 instances, adding more barely helps.
#[test]
fn near_memory_rerank_saturates_host_io() {
    let t8 = rerank_only(8, 4, CbirMapping::AllNearMemory);
    let t16 = rerank_only(16, 4, CbirMapping::AllNearMemory);
    let t32 = rerank_only(32, 4, CbirMapping::AllNearMemory);
    assert!(
        t16 / t8 > 0.6,
        "8->16 should be mostly flat: {:.2}",
        t16 / t8
    );
    assert!(t32 / t16 > 0.8, "16->32 must be flat: {:.2}", t32 / t16);
}

/// The same task costs differently at different levels — the asymmetry the
/// whole paper rests on. A streaming scan is cheapest near its data.
#[test]
fn streams_are_cheapest_near_their_data() {
    // One task streaming 1 GB that is resident at near-storage.
    let run = |level: Level| -> f64 {
        let mut cfg = ReachConfig::new();
        let data = cfg.create_fixed_buffer("data", Level::NearStor, 1 << 30);
        let template = match level {
            Level::OnChip => "KNN-VU9P",
            _ => "KNN-ZCU9",
        };
        let acc = cfg.register_acc(template, level);
        cfg.set_arg(acc, 0, data);
        let mut p = Pipeline::new(cfg.build().expect("valid config"));
        p.call(acc, TaskWork::stream(1 << 20, 1 << 30), "scan");
        let mut m = MachineBlueprint::paper().instantiate();
        p.run(&mut m, 1).makespan.as_secs_f64()
    };
    let onchip = run(Level::OnChip);
    let nearstor = run(Level::NearStor);
    assert!(
        nearstor < onchip,
        "near-storage scan ({nearstor:.3}s) should beat on-chip ({onchip:.3}s) for SSD-resident data"
    );
}

/// Feature extraction (compute-bound, SRAM-resident parameters) prefers
/// the big on-chip fabric at low instance counts.
#[test]
fn compute_bound_work_prefers_onchip() {
    let w = CbirWorkload::paper_setup();
    let onchip = CbirPipeline::new(w, CbirMapping::AllOnChip)
        .run_stage(&mut machine_with(4, 4), CbirStage::FeatureExtraction, 1)
        .makespan;
    let nm4 = CbirPipeline::new(w, CbirMapping::AllNearMemory)
        .run_stage(&mut machine_with(4, 4), CbirStage::FeatureExtraction, 1)
        .makespan;
    assert!(onchip < nm4, "on-chip {onchip} vs 4x near-memory {nm4}");
}

/// Two pipelines sharing the machine contend: running the short-list and
/// rerank stages concurrently on one level is slower than the slower of
/// the two alone — but not slower than their sum (overlap exists).
#[test]
fn concurrent_stages_share_resources() {
    let w = CbirWorkload::paper_setup();
    let sl_alone = CbirPipeline::new(w, CbirMapping::AllOnChip)
        .run_stage(&mut machine_with(4, 4), CbirStage::ShortList, 1)
        .makespan
        .as_secs_f64();
    let rr_alone = CbirPipeline::new(w, CbirMapping::AllOnChip)
        .run_stage(&mut machine_with(4, 4), CbirStage::Rerank, 1)
        .makespan
        .as_secs_f64();
    let both = CbirPipeline::new(w, CbirMapping::AllOnChip)
        .build_stages(
            &machine_with(4, 4),
            &[CbirStage::ShortList, CbirStage::Rerank],
        )
        .run(&mut machine_with(4, 4), 1)
        .makespan
        .as_secs_f64();
    assert!(both >= sl_alone.max(rr_alone) * 0.95);
    assert!(both <= (sl_alone + rr_alone) * 1.05);
}

/// More batches never reduce total simulated time, and throughput is
/// monotone non-decreasing in batch count for the pipelined mapping.
#[test]
fn batching_monotonicity() {
    let w = CbirWorkload::paper_setup();
    let p = CbirPipeline::new(w, CbirMapping::Proper);
    let mut last_makespan = 0.0;
    let mut last_tput = 0.0;
    for batches in [1usize, 2, 4, 8] {
        let r = p.run(&mut machine_with(4, 4), batches);
        let makespan = r.makespan.as_secs_f64();
        assert!(makespan > last_makespan, "makespan must grow with batches");
        let tput = r.throughput_jobs_per_sec();
        assert!(
            tput > last_tput * 0.999,
            "throughput should not degrade with batches: {tput} after {last_tput}"
        );
        last_makespan = makespan;
        last_tput = tput;
    }
}

/// Energy conservation: the sum of per-stage, per-component cells equals
/// the reported total, and every cell is non-negative.
#[test]
fn energy_ledger_is_consistent() {
    let w = CbirWorkload::paper_setup();
    for mapping in CbirMapping::ALL {
        let r = CbirPipeline::new(w, mapping).run(&mut machine_with(4, 4), 2);
        let by_stage: f64 = r
            .ledger
            .stages()
            .iter()
            .map(|s| r.ledger.stage_total(s))
            .sum();
        let by_component: f64 = reach::SystemComponent::ALL
            .iter()
            .map(|&c| r.ledger.component_total(c))
            .sum();
        let total = r.total_energy_j();
        assert!((by_stage - total).abs() < 1e-9 * total.max(1.0));
        assert!((by_component - total).abs() < 1e-9 * total.max(1.0));
        assert!(total > 0.0);
    }
}

/// A bigger batch moves more data and takes longer, at every mapping.
#[test]
fn workload_scaling_is_sane() {
    let mut small = CbirWorkload::paper_setup();
    small.batch = 8;
    let mut big = CbirWorkload::paper_setup();
    big.batch = 32;
    for mapping in CbirMapping::ALL {
        let ts = CbirPipeline::new(small, mapping)
            .run(&mut machine_with(4, 4), 1)
            .makespan;
        let tb = CbirPipeline::new(big, mapping)
            .run(&mut machine_with(4, 4), 1)
            .makespan;
        assert!(
            tb > ts,
            "{}: batch 32 ({tb}) not slower than batch 8 ({ts})",
            mapping.name()
        );
    }
}

/// The GAM's reconfiguration support: swapping kernels on one slot costs
/// the configured delay but works end-to-end.
#[test]
fn reconfiguration_delay_is_billed() {
    let mut cfg_fast = SystemConfig::paper_table2();
    cfg_fast.reconfig_delay = reach::SimDuration::ZERO;
    let mut cfg_slow = SystemConfig::paper_table2();
    cfg_slow.reconfig_delay = reach::SimDuration::from_ms(10);

    let w = CbirWorkload::paper_setup();
    // All-on-chip swaps CNN -> GEMM -> KNN on the single slot every batch.
    let fast = CbirPipeline::new(w, CbirMapping::AllOnChip)
        .run(&mut MachineBlueprint::new(cfg_fast).instantiate(), 2)
        .makespan;
    let slow = CbirPipeline::new(w, CbirMapping::AllOnChip)
        .run(&mut MachineBlueprint::new(cfg_slow).instantiate(), 2)
        .makespan;
    let delta_ms = slow.as_ms_f64() - fast.as_ms_f64();
    assert!(
        delta_ms > 20.0,
        "expected >= 2 batches x >=1 swap x 10 ms of reconfiguration, got {delta_ms:.1} ms"
    );
}

/// Stream pattern plumbing: a broadcast buffer is transferred once per
/// destination level, not once per consumer.
#[test]
fn broadcast_transfers_once_per_level() {
    let mut cfg = ReachConfig::new();
    let feats = cfg.create_stream(
        Level::OnChip,
        Level::NearStor,
        StreamType::Broadcast,
        1 << 20,
        2,
    );
    let cnn = cfg.register_acc("VGG16-VU9P", Level::OnChip);
    cfg.set_arg(cnn, 0, feats);
    let mut consumers = Vec::new();
    for _ in 0..4 {
        let k = cfg.register_acc("KNN-ZCU9", Level::NearStor);
        cfg.set_arg(k, 0, feats);
        consumers.push(k);
    }
    let mut p = Pipeline::new(cfg.build().expect("valid config"));
    p.call(cnn, TaskWork::compute(1_000_000_000), "produce");
    for &k in &consumers {
        p.call(k, TaskWork::stream(1_000, 1 << 20), "consume");
    }
    let mut m = MachineBlueprint::paper().instantiate();
    let r = p.run(&mut m, 1);
    assert_eq!(r.gam.dmas, 1, "broadcast must share one DMA per level");
}
