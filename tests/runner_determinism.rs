//! The runner-layer contract, end to end: fanning scenarios across threads
//! must be unobservable in the results. A mixed batch of figure-8,
//! figure-13 and ablation scenarios is executed sequentially, with one
//! worker, and with four workers — every report must come back in
//! submission order and render byte-identically.

use reach::{MachineBlueprint, Scenario, ScenarioExecutor, SequentialExecutor, SimDuration};
use reach_bench::ScenarioRunner;
use reach_cbir::{blueprint_with, CbirMapping, CbirPipeline, CbirScenario, CbirWorkload};

/// The mixed batch: fig8's on-chip energy point, fig13's four end-to-end
/// mappings, and a poll-interval ablation point on a modified machine.
fn mixed_batch() -> Vec<Box<dyn Scenario>> {
    let w = CbirWorkload::paper_setup();
    let mut batch: Vec<Box<dyn Scenario>> = vec![Box::new(CbirScenario::full(
        "fig8/on-chip",
        blueprint_with(4, 4),
        CbirPipeline::new(w, CbirMapping::AllOnChip),
        1,
    ))];
    for mapping in CbirMapping::ALL {
        batch.push(Box::new(CbirScenario::full(
            format!("fig13/{}", mapping.name()),
            blueprint_with(4, 4),
            CbirPipeline::new(w, mapping),
            8,
        )));
    }
    let coarse_poll = MachineBlueprint::paper()
        .map_config(|cfg| cfg.gam.min_poll_interval = SimDuration::from_ms(5));
    batch.push(Box::new(CbirScenario::full(
        "ablation/poll-5ms",
        coarse_poll,
        CbirPipeline::new(w, CbirMapping::Proper),
        4,
    )));
    batch
}

fn rendered(results: &[reach::ScenarioResult]) -> Vec<(String, String)> {
    results
        .iter()
        .map(|r| (r.label.clone(), r.report.to_string()))
        .collect()
}

#[test]
fn parallel_runner_is_byte_identical_to_sequential() {
    let reference = rendered(&SequentialExecutor.run_all(mixed_batch()));
    let one_worker = rendered(&ScenarioRunner::new(1).run_all(mixed_batch()));
    let four_workers = rendered(&ScenarioRunner::new(4).run_all(mixed_batch()));

    assert_eq!(reference.len(), mixed_batch().len());
    assert_eq!(reference, one_worker, "one worker diverged from sequential");
    assert_eq!(
        reference, four_workers,
        "four workers diverged from sequential"
    );
}

#[test]
fn repeated_parallel_runs_replay_bit_for_bit() {
    let first = rendered(&ScenarioRunner::new(4).run_all(mixed_batch()));
    let second = rendered(&ScenarioRunner::new(4).run_all(mixed_batch()));
    assert_eq!(first, second);
}

#[test]
fn rendered_figures_match_across_job_counts() {
    let seq = SequentialExecutor;
    let par = ScenarioRunner::new(4);
    for (name, render) in [
        (
            "fig8",
            reach_bench::render_fig8 as fn(&dyn ScenarioExecutor) -> String,
        ),
        ("fig13", reach_bench::render_fig13),
        ("ablation-poll", reach_bench::render_ablation_poll),
        ("extension-corun", reach_bench::render_extension_corun),
    ] {
        assert_eq!(
            render(&seq),
            render(&par),
            "{name} differs across job counts"
        );
    }
}

/// Every renderer's output, concatenated in registration order — the exact
/// stdout the `experiments` binary produces for a full run.
fn full_suite_stdout(executor: &dyn ScenarioExecutor) -> String {
    let mut out = String::new();
    for (i, (_, render)) in reach_bench::renderers().iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        out.push_str(&render(executor));
    }
    out
}

#[test]
fn full_suite_stdout_is_byte_identical_at_jobs_1_4_8() {
    // The whole experiments suite — all 21 experiments, 126 scenarios —
    // diffed across --jobs levels. Any scheduling leak anywhere in the
    // engine, the runner or the kernels shows up here.
    let reference = full_suite_stdout(&SequentialExecutor);
    assert!(!reference.is_empty());
    for jobs in [4, 8] {
        let parallel = full_suite_stdout(&ScenarioRunner::new(jobs));
        assert_eq!(reference, parallel, "full suite diverged at {jobs} jobs");
    }
}

#[test]
fn full_suite_stdout_is_byte_identical_with_and_without_result_cache() {
    // The result-cache contract, end to end: replaying stored reports —
    // across figures sharing configurations, and across whole repeated
    // passes — must be unobservable in stdout at any job count, and the
    // hit/miss accounting must not depend on worker scheduling either.
    let reference = full_suite_stdout(&ScenarioRunner::without_cache(4));
    assert!(!reference.is_empty());
    let mut stats = Vec::new();
    for jobs in [1, 4, 8] {
        let cached = ScenarioRunner::new(jobs);
        let cold = full_suite_stdout(&cached);
        assert_eq!(
            reference, cold,
            "cache-on cold pass diverged at {jobs} jobs"
        );
        let warm = full_suite_stdout(&cached);
        assert_eq!(reference, warm, "cache replay diverged at {jobs} jobs");
        stats.push(cached.cache_stats());
    }
    assert_eq!(stats[0], stats[1], "hit/miss counts depend on job count");
    assert_eq!(stats[1], stats[2], "hit/miss counts depend on job count");
    assert!(stats[0].misses > 0, "first pass must simulate");
    assert!(
        stats[0].hits > stats[0].misses,
        "the warm pass plus in-suite repeats should replay more than they simulate \
         (got {} hits / {} misses)",
        stats[0].hits,
        stats[0].misses
    );
}

mod kernel_chunking {
    //! Parallel kernels must be *bit-for-bit* equal to their sequential
    //! form at any worker count — the engine-level determinism contract
    //! rests on it.

    use proptest::prelude::*;
    use reach_cbir::kmeans::kmeans_jobs;
    use reach_cbir::linalg::{gemm_nt_jobs, Matrix};
    use reach_sim::rng::seeded;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// GEMM row-chunking: sequential vs many workers, exact equality
        /// on shapes that straddle chunk boundaries.
        #[test]
        fn gemm_parallel_matches_sequential_bitwise(
            m in 1usize..200,
            n in 1usize..40,
            k in 1usize..24,
            jobs in 2usize..9,
            seedling in 0u64..1000,
        ) {
            let fill = |len: usize, salt: u64| -> Vec<f32> {
                (0..len)
                    .map(|i| {
                        let x = (i as u64).wrapping_mul(2_654_435_761).wrapping_add(salt * 7919);
                        ((x % 2003) as f32 - 1001.0) / 97.0
                    })
                    .collect()
            };
            let a = Matrix::from_vec(m, k, fill(m * k, seedling));
            let b = Matrix::from_vec(n, k, fill(n * k, seedling + 1));
            let seq = gemm_nt_jobs(&a, &b, 1);
            let par = gemm_nt_jobs(&a, &b, jobs);
            prop_assert_eq!(
                seq.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                par.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }

        /// K-means assignment chunking: the full clustering (assignments,
        /// centroids, inertia) is identical at any worker count.
        #[test]
        fn kmeans_parallel_matches_sequential_bitwise(
            n in 8usize..300,
            d in 1usize..8,
            k_frac in 1usize..8,
            jobs in 2usize..9,
            seedling in 0u64..1000,
        ) {
            let k = (n / k_frac).max(1);
            let pts = Matrix::from_vec(
                n,
                d,
                (0..n * d)
                    .map(|i| {
                        let x = (i as u64).wrapping_mul(0x9E37_79B9).wrapping_add(seedling);
                        ((x % 4001) as f32 - 2000.0) / 131.0
                    })
                    .collect(),
            );
            let seq = kmeans_jobs(&pts, k, 10, &mut seeded(seedling), 1);
            let par = kmeans_jobs(&pts, k, 10, &mut seeded(seedling), jobs);
            prop_assert_eq!(&seq.assignments, &par.assignments);
            prop_assert_eq!(
                seq.centroids.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                par.centroids.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
            prop_assert_eq!(seq.inertia.to_bits(), par.inertia.to_bits());
            prop_assert_eq!(seq.iterations, par.iterations);
        }

        /// The register-blocked micro-kernel agrees bit-for-bit with a
        /// scalar model of its accumulation contract: lane `l` of an
        /// 8-lane accumulator sums products at `t ≡ l (mod 8)` in order,
        /// then the lanes fold pairwise. Wide (4-column) blocks, the
        /// remainder-column path and every chunking must all match it.
        #[test]
        fn micro_kernel_matches_lane_model_bitwise(
            m in 1usize..40,
            n in 1usize..24,
            k in 1usize..40,
            jobs in 1usize..9,
            seedling in 0u64..1000,
        ) {
            let fill = |len: usize, salt: u64| -> Vec<f32> {
                (0..len)
                    .map(|i| {
                        let x = (i as u64).wrapping_mul(0xDEAD_BEEF).wrapping_add(salt);
                        ((x % 509) as f32 - 254.0) / 31.0
                    })
                    .collect()
            };
            let a = Matrix::from_vec(m, k, fill(m * k, seedling));
            let b = Matrix::from_vec(n, k, fill(n * k, seedling + 1));
            let got = gemm_nt_jobs(&a, &b, jobs);
            for i in 0..m {
                for j in 0..n {
                    let mut lanes = [0.0f32; 8];
                    for (t, (x, y)) in a.row(i).iter().zip(b.row(j)).enumerate() {
                        lanes[t % 8] += x * y;
                    }
                    let q = [
                        lanes[0] + lanes[4],
                        lanes[1] + lanes[5],
                        lanes[2] + lanes[6],
                        lanes[3] + lanes[7],
                    ];
                    let want = (q[0] + q[2]) + (q[1] + q[3]);
                    prop_assert_eq!(got.row(i)[j].to_bits(), want.to_bits(),
                        "({}, {}): {} vs {}", i, j, got.row(i)[j], want);
                }
            }
        }

        /// Decomposed batch distances (GEMM + broadcast norms) are
        /// bit-identical at any worker count — the short-list stage's
        /// output cannot depend on REACH_KERNEL_JOBS.
        #[test]
        fn batch_dist_parallel_matches_sequential_bitwise(
            nq in 1usize..150,
            np in 1usize..40,
            d in 1usize..24,
            seedling in 0u64..1000,
        ) {
            let fill = |len: usize, salt: u64| -> Vec<f32> {
                (0..len)
                    .map(|i| {
                        let x = (i as u64).wrapping_mul(2_654_435_761).wrapping_add(salt);
                        ((x % 2003) as f32 - 1001.0) / 97.0
                    })
                    .collect()
            };
            let q = Matrix::from_vec(nq, d, fill(nq * d, seedling));
            let p = Matrix::from_vec(np, d, fill(np * d, seedling + 1));
            // batch_dist_sq reads REACH_KERNEL_JOBS via gemm_nt; emulate
            // both paths through the explicit-jobs entry point instead of
            // mutating the environment.
            let dots_seq = gemm_nt_jobs(&q, &p, 1);
            let dots_par = gemm_nt_jobs(&q, &p, 7);
            prop_assert_eq!(
                dots_seq.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                dots_par.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
            let direct = reach_cbir::linalg::batch_dist_sq(&q, &p);
            prop_assert_eq!((direct.rows(), direct.cols()), (nq, np));
        }
    }
}
