//! The runner-layer contract, end to end: fanning scenarios across threads
//! must be unobservable in the results. A mixed batch of figure-8,
//! figure-13 and ablation scenarios is executed sequentially, with one
//! worker, and with four workers — every report must come back in
//! submission order and render byte-identically.

use reach::{MachineBlueprint, Scenario, ScenarioExecutor, SequentialExecutor, SimDuration};
use reach_bench::ScenarioRunner;
use reach_cbir::{blueprint_with, CbirMapping, CbirPipeline, CbirScenario, CbirWorkload};

/// The mixed batch: fig8's on-chip energy point, fig13's four end-to-end
/// mappings, and a poll-interval ablation point on a modified machine.
fn mixed_batch() -> Vec<Box<dyn Scenario>> {
    let w = CbirWorkload::paper_setup();
    let mut batch: Vec<Box<dyn Scenario>> = vec![Box::new(CbirScenario::full(
        "fig8/on-chip",
        blueprint_with(4, 4),
        CbirPipeline::new(w, CbirMapping::AllOnChip),
        1,
    ))];
    for mapping in CbirMapping::ALL {
        batch.push(Box::new(CbirScenario::full(
            format!("fig13/{}", mapping.name()),
            blueprint_with(4, 4),
            CbirPipeline::new(w, mapping),
            8,
        )));
    }
    let coarse_poll = MachineBlueprint::paper()
        .map_config(|cfg| cfg.gam.min_poll_interval = SimDuration::from_ms(5));
    batch.push(Box::new(CbirScenario::full(
        "ablation/poll-5ms",
        coarse_poll,
        CbirPipeline::new(w, CbirMapping::Proper),
        4,
    )));
    batch
}

fn rendered(results: &[reach::ScenarioResult]) -> Vec<(String, String)> {
    results
        .iter()
        .map(|r| (r.label.clone(), r.report.to_string()))
        .collect()
}

#[test]
fn parallel_runner_is_byte_identical_to_sequential() {
    let reference = rendered(&SequentialExecutor.run_all(mixed_batch()));
    let one_worker = rendered(&ScenarioRunner::new(1).run_all(mixed_batch()));
    let four_workers = rendered(&ScenarioRunner::new(4).run_all(mixed_batch()));

    assert_eq!(reference.len(), mixed_batch().len());
    assert_eq!(reference, one_worker, "one worker diverged from sequential");
    assert_eq!(
        reference, four_workers,
        "four workers diverged from sequential"
    );
}

#[test]
fn repeated_parallel_runs_replay_bit_for_bit() {
    let first = rendered(&ScenarioRunner::new(4).run_all(mixed_batch()));
    let second = rendered(&ScenarioRunner::new(4).run_all(mixed_batch()));
    assert_eq!(first, second);
}

#[test]
fn rendered_figures_match_across_job_counts() {
    let seq = SequentialExecutor;
    let par = ScenarioRunner::new(4);
    for (name, render) in [
        (
            "fig8",
            reach_bench::render_fig8 as fn(&dyn ScenarioExecutor) -> String,
        ),
        ("fig13", reach_bench::render_fig13),
        ("ablation-poll", reach_bench::render_ablation_poll),
        ("extension-corun", reach_bench::render_extension_corun),
    ] {
        assert_eq!(
            render(&seq),
            render(&par),
            "{name} differs across job counts"
        );
    }
}

#[test]
fn graph_suites_render_byte_identically_across_jobs_and_cache_modes() {
    // The in-process form of CI's graph determinism step: the placement
    // sweep and the co-run contention suite must render the same bytes
    // sequentially, at 1/4/8 workers, with the result cache disabled, and
    // on a warm cache replay.
    for (name, render) in [
        (
            "extension-graph",
            reach_bench::render_extension_graph as fn(&dyn ScenarioExecutor) -> String,
        ),
        (
            "extension-graph-corun",
            reach_bench::render_extension_graph_corun,
        ),
    ] {
        let reference = render(&SequentialExecutor);
        assert!(!reference.is_empty());
        for jobs in [1, 4, 8] {
            assert_eq!(
                reference,
                render(&ScenarioRunner::new(jobs)),
                "{name} diverged at {jobs} jobs"
            );
            assert_eq!(
                reference,
                render(&ScenarioRunner::without_cache(jobs)),
                "{name} diverged with the cache off at {jobs} jobs"
            );
        }
        let runner = ScenarioRunner::new(4);
        let cold = render(&runner);
        let warm = render(&runner);
        assert_eq!(cold, warm, "{name} warm cache replay diverged");
        assert_eq!(reference, warm, "{name} cached pass diverged");
    }
}

/// Every renderer's output, concatenated in registration order — the exact
/// stdout the `experiments` binary produces for a full run.
fn full_suite_stdout(executor: &dyn ScenarioExecutor) -> String {
    let mut out = String::new();
    for (i, (_, render)) in reach_bench::renderers().iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        out.push_str(&render(executor));
    }
    out
}

#[test]
fn full_suite_stdout_is_byte_identical_at_jobs_1_4_8() {
    // The whole experiments suite — every registered renderer, including
    // the graph and co-run extensions — diffed across --jobs levels. Any
    // scheduling leak anywhere in the engine, the runner or the kernels
    // shows up here.
    let reference = full_suite_stdout(&SequentialExecutor);
    assert!(!reference.is_empty());
    for jobs in [4, 8] {
        let parallel = full_suite_stdout(&ScenarioRunner::new(jobs));
        assert_eq!(reference, parallel, "full suite diverged at {jobs} jobs");
    }
}

#[test]
fn full_suite_stdout_is_byte_identical_with_and_without_result_cache() {
    // The result-cache contract, end to end: replaying stored reports —
    // across figures sharing configurations, and across whole repeated
    // passes — must be unobservable in stdout at any job count, and the
    // hit/miss accounting must not depend on worker scheduling either.
    let reference = full_suite_stdout(&ScenarioRunner::without_cache(4));
    assert!(!reference.is_empty());
    let mut stats = Vec::new();
    for jobs in [1, 4, 8] {
        let cached = ScenarioRunner::new(jobs);
        let cold = full_suite_stdout(&cached);
        assert_eq!(
            reference, cold,
            "cache-on cold pass diverged at {jobs} jobs"
        );
        let warm = full_suite_stdout(&cached);
        assert_eq!(reference, warm, "cache replay diverged at {jobs} jobs");
        stats.push(cached.cache_stats());
    }
    assert_eq!(stats[0], stats[1], "hit/miss counts depend on job count");
    assert_eq!(stats[1], stats[2], "hit/miss counts depend on job count");
    assert!(stats[0].misses > 0, "first pass must simulate");
    assert!(
        stats[0].hits > stats[0].misses,
        "the warm pass plus in-suite repeats should replay more than they simulate \
         (got {} hits / {} misses)",
        stats[0].hits,
        stats[0].misses
    );
}

mod simd_bitwise {
    //! The explicit-SIMD kernel tier must be *bit-for-bit* equal to the
    //! scalar lane model — not approximately, not "up to reassociation".
    //! Equality must hold on every payload `f32` can carry: odd lengths
    //! and every tail residue, empty inputs, subnormals, signed zeros,
    //! infinities and NaN payloads. `to_bits()` comparisons throughout.

    use proptest::prelude::*;
    use reach_cbir::linalg::{gemm_nt_rows_on, Matrix};
    use reach_cbir::simd::{self, SimdPath};

    /// Every non-scalar path this host can execute (empty on exotic
    /// architectures — the properties then hold vacuously and the CI
    /// matrix provides the cross-arch coverage).
    fn explicit_paths() -> Vec<SimdPath> {
        [SimdPath::Avx2, SimdPath::Neon]
            .into_iter()
            .filter(|p| p.supported())
            .collect()
    }

    /// The quiet NaN this architecture's invalid operations (0·∞, ∞−∞)
    /// produce. Using it as the pool's *only* NaN keeps every NaN in
    /// flight bit-identical, which is what makes NaN coverage sound: when
    /// two NaNs with *different* payloads meet in a mul/add, hardware
    /// propagates the first source operand's payload — and LLVM commutes
    /// commutative float ops freely, so scalar codegen's operand order is
    /// not ours to pin. Same-bits NaNs make every meet order-independent;
    /// distinct-payload propagation is covered separately by the
    /// single-NaN test below.
    fn canonical_nan() -> f32 {
        #[cfg(target_arch = "x86_64")]
        return f32::from_bits(0xffc0_0000); // x86 "real indefinite"
        #[cfg(not(target_arch = "x86_64"))]
        return f32::from_bits(0x7fc0_0000); // ARM/RISC-V default NaN
    }

    /// Adversarial payload pool: ordinary values, signed zeros, the
    /// largest/smallest normals, subnormals (Rust never enables FTZ/DAZ,
    /// so lane arithmetic must honor gradual underflow), infinities and
    /// the arch-canonical quiet NaN.
    fn payload_pool() -> Vec<f32> {
        vec![
            0.0,
            -0.0,
            1.0,
            -3.5,
            1.0e-3,
            f32::MAX,
            f32::MIN_POSITIVE,       // smallest normal
            f32::MIN_POSITIVE / 4.0, // subnormal
            f32::from_bits(1),       // smallest subnormal
            f32::INFINITY,
            f32::NEG_INFINITY,
            canonical_nan(),
        ]
    }

    /// Deterministic adversarial fill: cycles the payload pool with a
    /// salted stride so NaNs/infinities land against every value class.
    fn adversarial(len: usize, salt: usize) -> Vec<f32> {
        let pool = payload_pool();
        (0..len)
            .map(|i| pool[(i.wrapping_mul(7).wrapping_add(salt)) % pool.len()])
            .collect()
    }

    #[test]
    fn empty_inputs_agree_on_every_path() {
        for p in explicit_paths() {
            assert_eq!(simd::dot8_on(p, &[], &[]).to_bits(), 0.0f32.to_bits());
            assert_eq!(simd::norm_sq_on(p, &[]).to_bits(), 0.0f32.to_bits());
        }
    }

    #[test]
    fn every_tail_residue_agrees_bitwise() {
        // Lengths 1..=24 cover every `len % 8` residue with zero, one and
        // two full 8-lane blocks in front of the tail.
        for len in 1..=24 {
            let a = adversarial(len, 0);
            let b = adversarial(len, 3);
            let want = simd::dot8_on(SimdPath::Scalar, &a, &b);
            for p in explicit_paths() {
                let got = simd::dot8_on(p, &a, &b);
                assert_eq!(
                    got.to_bits(),
                    want.to_bits(),
                    "dot8 len {len} diverged on {}",
                    p.name()
                );
            }
        }
    }

    #[test]
    fn nan_on_nan_meets_agree_bitwise() {
        // All-NaN operands: every multiply and every accumulating add is
        // a NaN-on-NaN meet. With same-bits NaNs the propagated result is
        // order-independent, so scalar and SIMD must agree exactly.
        let nan = vec![canonical_nan(); 11];
        let want = simd::dot8_on(SimdPath::Scalar, &nan, &nan);
        assert!(want.is_nan());
        for p in explicit_paths() {
            assert_eq!(simd::dot8_on(p, &nan, &nan).to_bits(), want.to_bits());
            assert_eq!(
                simd::norm_sq_on(p, &nan).to_bits(),
                simd::norm_sq_on(SimdPath::Scalar, &nan).to_bits()
            );
        }
    }

    #[test]
    fn lone_nan_payload_survives_bitwise() {
        // A single distinct-payload quiet NaN among finite values: only
        // one NaN is ever in flight, so its payload must ride through the
        // multiply and the whole accumulation untouched — identically on
        // every path. (Two *different* payloads meeting is deliberately
        // out of scope: hardware keeps the first source operand's payload
        // and LLVM commutes float ops freely, so that ordering is not
        // observable-stable even between two scalar builds.)
        let payload = f32::from_bits(0x7fc0_1234);
        for len in [1usize, 7, 8, 9, 23] {
            for pos in [0, len / 2, len - 1] {
                let mut a: Vec<f32> = (0..len).map(|i| 0.25 * (i as f32 + 1.0)).collect();
                a[pos] = payload;
                let b: Vec<f32> = (0..len).map(|i| 1.5 - (i as f32) * 0.125).collect();
                let want = simd::dot8_on(SimdPath::Scalar, &a, &b);
                assert!(want.is_nan());
                for p in explicit_paths() {
                    assert_eq!(
                        simd::dot8_on(p, &a, &b).to_bits(),
                        want.to_bits(),
                        "lone NaN at {pos}/{len} diverged on {}",
                        p.name()
                    );
                }
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        /// dot8: scalar vs every explicit path over random lengths
        /// (covering all tails and the empty input) drawn from the
        /// adversarial payload pool. Generated as index pairs so both
        /// operands share a length but draw payloads independently.
        #[test]
        fn dot8_matches_scalar_bitwise(
            pairs in proptest::collection::vec(
                (0usize..1000, 0usize..1000), 0..64)
        ) {
            let pool = payload_pool();
            let a: Vec<f32> =
                pairs.iter().map(|&(i, _)| pool[i % pool.len()]).collect();
            let b: Vec<f32> =
                pairs.iter().map(|&(_, j)| pool[j % pool.len()]).collect();
            let want = simd::dot8_on(SimdPath::Scalar, &a, &b);
            for p in explicit_paths() {
                let got = simd::dot8_on(p, &a, &b);
                prop_assert_eq!(got.to_bits(), want.to_bits(),
                    "dot8 diverged on {}", p.name());
            }
        }

        /// norm_sq: same property on the self-product.
        #[test]
        fn norm_sq_matches_scalar_bitwise(
            picks in proptest::collection::vec(0usize..1000, 0..64)
        ) {
            let pool = payload_pool();
            let v: Vec<f32> =
                picks.iter().map(|&i| pool[i % pool.len()]).collect();
            let want = simd::norm_sq_on(SimdPath::Scalar, &v);
            for p in explicit_paths() {
                prop_assert_eq!(simd::norm_sq_on(p, &v).to_bits(),
                    want.to_bits(), "norm_sq diverged on {}", p.name());
            }
        }

        /// The full micro-kernel (packed 4-wide panels, remainder
        /// columns, every k-tail) over odd shapes and adversarial
        /// payloads: whole-matrix to_bits equality per path.
        #[test]
        fn gemm_micro_kernel_matches_scalar_bitwise(
            m in 1usize..24,
            n in 1usize..14,
            k in 0usize..40,
            salt in 0usize..1000,
        ) {
            let a = Matrix::from_vec(m, k, adversarial(m * k, salt));
            let b = Matrix::from_vec(n, k, adversarial(n * k, salt + 1));
            let mut want = vec![0.0f32; m * n];
            gemm_nt_rows_on(SimdPath::Scalar, &a, &b, 0, &mut want);
            for p in explicit_paths() {
                let mut got = vec![0.0f32; m * n];
                gemm_nt_rows_on(p, &a, &b, 0, &mut got);
                prop_assert_eq!(
                    got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "gemm {}x{}x{} diverged on {}", m, n, k, p.name());
            }
        }
    }

    /// The in-process form of the CI `REACH_SIMD=off` vs `auto` A/B: the
    /// whole experiments suite rendered with the kernel tier pinned to
    /// scalar, then pinned to the widest supported path, must produce the
    /// same bytes. (Flipping the pin is benign for concurrently running
    /// tests — every path computes identical bits, which is exactly what
    /// this test enforces.)
    #[test]
    fn full_suite_stdout_identical_scalar_vs_simd() {
        let best = simd::best_supported();
        simd::force(Some(SimdPath::Scalar));
        let scalar = super::full_suite_stdout(&reach::SequentialExecutor);
        simd::force(Some(best));
        let vectored = super::full_suite_stdout(&reach::SequentialExecutor);
        simd::force(None);
        assert!(!scalar.is_empty());
        assert_eq!(
            scalar,
            vectored,
            "suite stdout diverged between scalar and {} kernels",
            best.name()
        );
    }
}

mod kernel_chunking {
    //! Parallel kernels must be *bit-for-bit* equal to their sequential
    //! form at any worker count — the engine-level determinism contract
    //! rests on it.

    use proptest::prelude::*;
    use reach_cbir::kmeans::kmeans_jobs;
    use reach_cbir::linalg::{gemm_nt_jobs, Matrix};
    use reach_sim::rng::seeded;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// GEMM row-chunking: sequential vs many workers, exact equality
        /// on shapes that straddle chunk boundaries.
        #[test]
        fn gemm_parallel_matches_sequential_bitwise(
            m in 1usize..200,
            n in 1usize..40,
            k in 1usize..24,
            jobs in 2usize..9,
            seedling in 0u64..1000,
        ) {
            let fill = |len: usize, salt: u64| -> Vec<f32> {
                (0..len)
                    .map(|i| {
                        let x = (i as u64).wrapping_mul(2_654_435_761).wrapping_add(salt * 7919);
                        ((x % 2003) as f32 - 1001.0) / 97.0
                    })
                    .collect()
            };
            let a = Matrix::from_vec(m, k, fill(m * k, seedling));
            let b = Matrix::from_vec(n, k, fill(n * k, seedling + 1));
            let seq = gemm_nt_jobs(&a, &b, 1);
            let par = gemm_nt_jobs(&a, &b, jobs);
            prop_assert_eq!(
                seq.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                par.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }

        /// K-means assignment chunking: the full clustering (assignments,
        /// centroids, inertia) is identical at any worker count.
        #[test]
        fn kmeans_parallel_matches_sequential_bitwise(
            n in 8usize..300,
            d in 1usize..8,
            k_frac in 1usize..8,
            jobs in 2usize..9,
            seedling in 0u64..1000,
        ) {
            let k = (n / k_frac).max(1);
            let pts = Matrix::from_vec(
                n,
                d,
                (0..n * d)
                    .map(|i| {
                        let x = (i as u64).wrapping_mul(0x9E37_79B9).wrapping_add(seedling);
                        ((x % 4001) as f32 - 2000.0) / 131.0
                    })
                    .collect(),
            );
            let seq = kmeans_jobs(&pts, k, 10, &mut seeded(seedling), 1);
            let par = kmeans_jobs(&pts, k, 10, &mut seeded(seedling), jobs);
            prop_assert_eq!(&seq.assignments, &par.assignments);
            prop_assert_eq!(
                seq.centroids.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                par.centroids.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
            prop_assert_eq!(seq.inertia.to_bits(), par.inertia.to_bits());
            prop_assert_eq!(seq.iterations, par.iterations);
        }

        /// The register-blocked micro-kernel agrees bit-for-bit with a
        /// scalar model of its accumulation contract: lane `l` of an
        /// 8-lane accumulator sums products at `t ≡ l (mod 8)` in order,
        /// then the lanes fold pairwise. Wide (4-column) blocks, the
        /// remainder-column path and every chunking must all match it.
        #[test]
        fn micro_kernel_matches_lane_model_bitwise(
            m in 1usize..40,
            n in 1usize..24,
            k in 1usize..40,
            jobs in 1usize..9,
            seedling in 0u64..1000,
        ) {
            let fill = |len: usize, salt: u64| -> Vec<f32> {
                (0..len)
                    .map(|i| {
                        let x = (i as u64).wrapping_mul(0xDEAD_BEEF).wrapping_add(salt);
                        ((x % 509) as f32 - 254.0) / 31.0
                    })
                    .collect()
            };
            let a = Matrix::from_vec(m, k, fill(m * k, seedling));
            let b = Matrix::from_vec(n, k, fill(n * k, seedling + 1));
            let got = gemm_nt_jobs(&a, &b, jobs);
            for i in 0..m {
                for j in 0..n {
                    let mut lanes = [0.0f32; 8];
                    for (t, (x, y)) in a.row(i).iter().zip(b.row(j)).enumerate() {
                        lanes[t % 8] += x * y;
                    }
                    let q = [
                        lanes[0] + lanes[4],
                        lanes[1] + lanes[5],
                        lanes[2] + lanes[6],
                        lanes[3] + lanes[7],
                    ];
                    let want = (q[0] + q[2]) + (q[1] + q[3]);
                    prop_assert_eq!(got.row(i)[j].to_bits(), want.to_bits(),
                        "({}, {}): {} vs {}", i, j, got.row(i)[j], want);
                }
            }
        }

        /// Decomposed batch distances (GEMM + broadcast norms) are
        /// bit-identical at any worker count — the short-list stage's
        /// output cannot depend on REACH_KERNEL_JOBS.
        #[test]
        fn batch_dist_parallel_matches_sequential_bitwise(
            nq in 1usize..150,
            np in 1usize..40,
            d in 1usize..24,
            seedling in 0u64..1000,
        ) {
            let fill = |len: usize, salt: u64| -> Vec<f32> {
                (0..len)
                    .map(|i| {
                        let x = (i as u64).wrapping_mul(2_654_435_761).wrapping_add(salt);
                        ((x % 2003) as f32 - 1001.0) / 97.0
                    })
                    .collect()
            };
            let q = Matrix::from_vec(nq, d, fill(nq * d, seedling));
            let p = Matrix::from_vec(np, d, fill(np * d, seedling + 1));
            // batch_dist_sq reads REACH_KERNEL_JOBS via gemm_nt; emulate
            // both paths through the explicit-jobs entry point instead of
            // mutating the environment.
            let dots_seq = gemm_nt_jobs(&q, &p, 1);
            let dots_par = gemm_nt_jobs(&q, &p, 7);
            prop_assert_eq!(
                dots_seq.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                dots_par.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
            let direct = reach_cbir::linalg::batch_dist_sq(&q, &p);
            prop_assert_eq!((direct.rows(), direct.cols()), (nq, np));
        }
    }
}
