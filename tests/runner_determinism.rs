//! The runner-layer contract, end to end: fanning scenarios across threads
//! must be unobservable in the results. A mixed batch of figure-8,
//! figure-13 and ablation scenarios is executed sequentially, with one
//! worker, and with four workers — every report must come back in
//! submission order and render byte-identically.

use reach::{MachineBlueprint, Scenario, ScenarioExecutor, SequentialExecutor, SimDuration};
use reach_bench::ScenarioRunner;
use reach_cbir::{blueprint_with, CbirMapping, CbirPipeline, CbirScenario, CbirWorkload};

/// The mixed batch: fig8's on-chip energy point, fig13's four end-to-end
/// mappings, and a poll-interval ablation point on a modified machine.
fn mixed_batch() -> Vec<Box<dyn Scenario>> {
    let w = CbirWorkload::paper_setup();
    let mut batch: Vec<Box<dyn Scenario>> = vec![Box::new(CbirScenario::full(
        "fig8/on-chip",
        blueprint_with(4, 4),
        CbirPipeline::new(w, CbirMapping::AllOnChip),
        1,
    ))];
    for mapping in CbirMapping::ALL {
        batch.push(Box::new(CbirScenario::full(
            format!("fig13/{}", mapping.name()),
            blueprint_with(4, 4),
            CbirPipeline::new(w, mapping),
            8,
        )));
    }
    let coarse_poll = MachineBlueprint::paper()
        .map_config(|cfg| cfg.gam.min_poll_interval = SimDuration::from_ms(5));
    batch.push(Box::new(CbirScenario::full(
        "ablation/poll-5ms",
        coarse_poll,
        CbirPipeline::new(w, CbirMapping::Proper),
        4,
    )));
    batch
}

fn rendered(results: &[reach::ScenarioResult]) -> Vec<(String, String)> {
    results
        .iter()
        .map(|r| (r.label.clone(), r.report.to_string()))
        .collect()
}

#[test]
fn parallel_runner_is_byte_identical_to_sequential() {
    let reference = rendered(&SequentialExecutor.run_all(mixed_batch()));
    let one_worker = rendered(&ScenarioRunner::new(1).run_all(mixed_batch()));
    let four_workers = rendered(&ScenarioRunner::new(4).run_all(mixed_batch()));

    assert_eq!(reference.len(), mixed_batch().len());
    assert_eq!(reference, one_worker, "one worker diverged from sequential");
    assert_eq!(
        reference, four_workers,
        "four workers diverged from sequential"
    );
}

#[test]
fn repeated_parallel_runs_replay_bit_for_bit() {
    let first = rendered(&ScenarioRunner::new(4).run_all(mixed_batch()));
    let second = rendered(&ScenarioRunner::new(4).run_all(mixed_batch()));
    assert_eq!(first, second);
}

#[test]
fn rendered_figures_match_across_job_counts() {
    let seq = SequentialExecutor;
    let par = ScenarioRunner::new(4);
    for (name, render) in [
        (
            "fig8",
            reach_bench::render_fig8 as fn(&dyn ScenarioExecutor) -> String,
        ),
        ("fig13", reach_bench::render_fig13),
        ("ablation-poll", reach_bench::render_ablation_poll),
        ("extension-corun", reach_bench::render_extension_corun),
    ] {
        assert_eq!(
            render(&seq),
            render(&par),
            "{name} differs across job counts"
        );
    }
}
