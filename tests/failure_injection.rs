//! Failure injection: the hierarchy under degraded components.
//!
//! The GAM's status-poll protocol exists precisely because task durations
//! are estimates; these tests degrade the substrates (SSD latency jitter,
//! slow reconfiguration, pathological poll pacing) and check that the
//! system still completes correctly and the headline behaviour degrades
//! gracefully rather than collapsing.

use reach::{Machine, MachineBlueprint, SimDuration, SystemConfig};
use reach_cbir::blueprint_with;
use reach_cbir::{CbirMapping, CbirPipeline, CbirWorkload};

fn proper() -> CbirPipeline {
    CbirPipeline::new(CbirWorkload::paper_setup(), CbirMapping::Proper)
}

fn machine_with(nm: usize, ns: usize) -> Machine {
    blueprint_with(nm, ns).instantiate()
}

/// 30% SSD latency jitter: every job still completes, results stay
/// deterministic, and the throughput penalty is bounded.
#[test]
fn ssd_jitter_degrades_gracefully() {
    let clean = proper().run(&mut machine_with(4, 4), 8);
    let jittered = {
        let cfg = SystemConfig::paper_table2().with_ssd_jitter(30);
        proper().run(&mut MachineBlueprint::new(cfg).instantiate(), 8)
    };
    assert_eq!(jittered.jobs, 8, "jobs lost under jitter");
    let slowdown = jittered.makespan.as_secs_f64() / clean.makespan.as_secs_f64();
    assert!(
        (0.99..1.5).contains(&slowdown),
        "30% command jitter should cost <50% end-to-end (rerank is \
         bandwidth-bound, not latency-bound): {slowdown:.3}"
    );
    // Deterministic replay under jitter too.
    let again = {
        let cfg = SystemConfig::paper_table2().with_ssd_jitter(30);
        proper().run(&mut MachineBlueprint::new(cfg).instantiate(), 8)
    };
    assert_eq!(jittered.makespan, again.makespan);
}

/// A pathologically slow poll floor delays completion observation but
/// never deadlocks or reorders results.
#[test]
fn coarse_polling_is_safe() {
    let mut cfg = SystemConfig::paper_table2();
    cfg.gam.min_poll_interval = SimDuration::from_ms(50);
    let r = proper().run(&mut MachineBlueprint::new(cfg).instantiate(), 4);
    assert_eq!(r.jobs, 4);
    // Completions remain ordered (in-order pipeline).
    let c = r.job_completions();
    assert!(c.windows(2).all(|w| w[0] <= w[1]), "completions reordered");
}

/// Very slow partial reconfiguration makes the single-slot baseline
/// proportionally slower but the multi-level mapping barely notices
/// (each level keeps one kernel resident).
#[test]
fn slow_reconfiguration_hurts_only_the_shared_slot() {
    let mut slow = SystemConfig::paper_table2();
    slow.reconfig_delay = SimDuration::from_ms(20);

    let base_fast = CbirPipeline::new(CbirWorkload::paper_setup(), CbirMapping::AllOnChip)
        .run(&mut machine_with(4, 4), 4);
    let base_slow = CbirPipeline::new(CbirWorkload::paper_setup(), CbirMapping::AllOnChip)
        .run(&mut MachineBlueprint::new(slow.clone()).instantiate(), 4);
    let reach_fast = proper().run(&mut machine_with(4, 4), 4);
    let reach_slow = proper().run(&mut MachineBlueprint::new(slow).instantiate(), 4);

    let base_penalty = base_slow.makespan.as_secs_f64() / base_fast.makespan.as_secs_f64();
    let reach_penalty = reach_slow.makespan.as_secs_f64() / reach_fast.makespan.as_secs_f64();
    assert!(
        base_penalty > 1.05,
        "baseline should feel 20 ms swaps: {base_penalty:.3}"
    );
    assert!(
        reach_penalty < base_penalty,
        "ReACH should be less sensitive: {reach_penalty:.3} vs {base_penalty:.3}"
    );
}

/// Starved hardware: a machine with a single accelerator at each level
/// still completes the proper mapping (no capacity deadlock).
#[test]
fn minimal_machine_completes() {
    let r = proper().run(&mut machine_with(1, 1), 2);
    assert_eq!(r.jobs, 2);
    assert!(r.makespan > SimDuration::ZERO);
}

/// Oversubscription: 64 batches through the minimal machine — queues grow
/// and drain, every job completes exactly once.
#[test]
fn deep_oversubscription_drains() {
    let r = proper().run(&mut machine_with(1, 1), 64);
    assert_eq!(r.jobs, 64);
    assert_eq!(r.gam.jobs_completed, 64);
    let c = r.job_completions();
    assert_eq!(c.len(), 64);
    assert!(c.windows(2).all(|w| w[0] <= w[1]));
}
