//! The fleet topology layer, end to end: scatter-gather CBIR fleets must
//! be deterministic at any job count, degenerate to the single-machine
//! scenarios at N = 1, and replay through the scenario-result cache at
//! shard granularity.

use reach::fleet::{FleetScenario, InterMachineLink, ShardPlacement};
use reach::{ScenarioExecutor, SequentialExecutor, SimDuration};
use reach_bench::ScenarioRunner;
use reach_cbir::fleet::{CbirFleetScenario, FLEET_BATCHES, FLEET_SWEEP};
use reach_cbir::{blueprint_with, CbirMapping, CbirPipeline, CbirScenario, CbirWorkload};
use reach_sim::Bandwidth;

/// The acceptance contract: a 1-node fleet *is* the single-machine
/// scenario. The wrapped report must render byte-identically to running
/// the equivalent `CbirScenario` directly — per placement, since each
/// implies a different pipeline mapping.
#[test]
fn one_shard_fleet_is_byte_identical_to_single_machine_scenario() {
    for (placement, mapping) in [
        (ShardPlacement::NearStorage, CbirMapping::Proper),
        (ShardPlacement::NearMemory, CbirMapping::AllNearMemory),
    ] {
        let fleet: Vec<Box<dyn FleetScenario>> = vec![Box::new(CbirFleetScenario::sharded(
            1,
            placement,
            FLEET_BATCHES,
        ))];
        let fleet_report = SequentialExecutor.run_fleets(fleet).remove(0).report;

        let single = CbirScenario::full(
            "reference",
            blueprint_with(4, 4),
            CbirPipeline::new(CbirWorkload::paper_setup(), mapping),
            FLEET_BATCHES,
        );
        let single_report = SequentialExecutor
            .run_all(vec![Box::new(single)])
            .remove(0)
            .report;

        assert_eq!(
            fleet_report.to_string(),
            single_report.to_string(),
            "1-shard {} fleet diverged from the single-machine scenario",
            placement.name()
        );
        // And no fleet telemetry is bolted on — the report is untouched.
        assert!(fleet_report.metrics.get("fleet.shards").is_none());
    }
}

/// The full scatter-gather sweep (both placements x N in {1,2,4,8,16})
/// rendered through the `experiments` code path must be byte-identical
/// sequentially, at 1/4/8 worker threads, and with the result cache
/// disabled — the fleet expansion must not leak scheduling anywhere.
#[test]
fn fleet_suite_is_byte_identical_across_job_counts_and_cache_modes() {
    let reference = reach_bench::render_extension_fleet(&SequentialExecutor);
    assert!(!reference.is_empty());
    for jobs in [1, 4, 8] {
        assert_eq!(
            reference,
            reach_bench::render_extension_fleet(&ScenarioRunner::new(jobs)),
            "fleet suite diverged at {jobs} jobs"
        );
        assert_eq!(
            reference,
            reach_bench::render_extension_fleet(&ScenarioRunner::without_cache(jobs)),
            "fleet suite diverged without the result cache at {jobs} jobs"
        );
    }
}

/// Two-level result caching over fleets. Cold pass: every fleet misses at
/// fleet granularity and expands, but a homogeneous fleet's shards share
/// one fingerprint, so the runner simulates one shard per distinct
/// (placement, N) point and replays the rest. Warm pass: every fleet's
/// *aggregated* report replays at fleet granularity — no shard expands, so
/// the shard ledger does not move at all. Both ledgers are identical at
/// any job count.
#[test]
fn fleet_shards_replay_through_the_result_cache() {
    let mut ledgers = Vec::new();
    for jobs in [1, 4] {
        let runner = ScenarioRunner::new(jobs);
        let cold = reach_bench::render_extension_fleet(&runner);
        let cold_stats = runner.cache_stats();
        let cold_fleet = runner.fleet_cache_stats();
        let warm = reach_bench::render_extension_fleet(&runner);
        let warm_stats = runner.cache_stats();
        let warm_fleet = runner.fleet_cache_stats();
        assert_eq!(cold, warm, "cache replay changed the fleet suite");

        // 2 placements x FLEET_SWEEP shard counts, each homogeneous: one
        // shard miss per distinct point, every other shard is a replay.
        let points = 2 * FLEET_SWEEP.len();
        let shard_total: usize = 2 * FLEET_SWEEP.iter().sum::<usize>();
        assert_eq!(cold_fleet.misses, points as u64);
        assert_eq!(cold_fleet.hits, 0);
        assert_eq!(cold_stats.misses, points as u64);
        assert_eq!(cold_stats.hits, (shard_total - points) as u64);
        // The warm pass replays whole fleets: one fleet-level hit per
        // point and an untouched shard ledger.
        assert_eq!(warm_fleet.misses, cold_fleet.misses);
        assert_eq!(warm_fleet.hits, points as u64);
        assert_eq!(warm_stats, cold_stats, "warm pass touched the shard ledger");
        ledgers.push((cold_stats, warm_stats, cold_fleet, warm_fleet));
    }
    assert_eq!(ledgers[0], ledgers[1], "accounting depends on job count");
}

/// Fleet reports carry the fleet-level telemetry and it behaves: shard
/// counters for every shard, link occupancy that grows with N, and a
/// strictly positive aggregator merge time.
#[test]
fn fleet_telemetry_scales_with_shard_count() {
    let counter = |report: &reach::RunReport, name: &str| -> u64 {
        match report.metrics.get(name) {
            Some(reach::MetricValue::Counter { value }) => *value,
            _ => panic!("missing fleet counter {name}"),
        }
    };
    let run = |shards: usize| {
        let fleet: Vec<Box<dyn FleetScenario>> = vec![Box::new(CbirFleetScenario::sharded(
            shards,
            ShardPlacement::NearStorage,
            2,
        ))];
        SequentialExecutor.run_fleets(fleet).remove(0).report
    };
    let (r2, r8) = (run(2), run(8));
    assert_eq!(counter(&r2, "fleet.shards"), 2);
    assert_eq!(counter(&r8, "fleet.shards"), 8);
    for i in 0..8 {
        assert!(counter(&r8, &format!("fleet.shard{i}.busy_ps")) > 0);
        assert!(counter(&r8, &format!("fleet.shard{i}.makespan_ps")) > 0);
    }
    assert!(
        counter(&r8, "fleet.link.scatter_bytes") > counter(&r2, "fleet.link.scatter_bytes"),
        "broadcast volume must grow with the fan-out"
    );
    assert!(counter(&r8, "fleet.link.busy_ps") > counter(&r2, "fleet.link.busy_ps"));
    assert!(counter(&r8, "fleet.aggregator.merge_ps") > 0);
}

/// A slower inter-machine link can only push completions later — the
/// analytic model must be monotone in both link knobs.
#[test]
fn slower_links_never_speed_up_the_fleet() {
    let base = CbirFleetScenario::sharded(4, ShardPlacement::NearStorage, 2);
    let slow_lat = base.clone().map_fleet(|f| {
        let bw = f.link().bandwidth();
        f.with_link(InterMachineLink::new(SimDuration::from_ms(1), bw))
    });
    let slow_bw = base.clone().map_fleet(|f| {
        let lat = f.link().latency();
        f.with_link(InterMachineLink::new(
            lat,
            Bandwidth::from_bytes_per_sec(100_000_000),
        ))
    });
    let fleets: Vec<Box<dyn FleetScenario>> =
        vec![Box::new(base), Box::new(slow_lat), Box::new(slow_bw)];
    let results = SequentialExecutor.run_fleets(fleets);
    let makespans: Vec<u64> = results.iter().map(|r| r.report.makespan.as_ps()).collect();
    assert!(makespans[1] > makespans[0], "added latency must cost time");
    assert!(makespans[2] > makespans[0], "lost bandwidth must cost time");
}

/// Replication is a standby knob: it changes the fingerprint (a different
/// deployment) but never the timing of a healthy run.
#[test]
fn replication_changes_fingerprint_but_not_timing() {
    let base = CbirFleetScenario::sharded(2, ShardPlacement::NearStorage, 2);
    let replicated = base.clone().map_fleet(|f| f.with_replication(3));
    assert_ne!(base.config_fingerprint(), replicated.config_fingerprint());
    let fleets: Vec<Box<dyn FleetScenario>> = vec![Box::new(base), Box::new(replicated)];
    let results = SequentialExecutor.run_fleets(fleets);
    assert_eq!(
        results[0].report.makespan, results[1].report.makespan,
        "standby replicas must not change healthy-run timing"
    );
}
