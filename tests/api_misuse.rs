//! Negative-path coverage: the library must fail loudly and informatively
//! on misuse, not corrupt a simulation (C-VALIDATE across the stack).

use reach::{
    Level, Machine, MachineBlueprint, Pipeline, ReachConfig, StreamType, SystemConfig, TaskWork,
};

fn machine() -> Machine {
    MachineBlueprint::paper().instantiate()
}

#[test]
#[should_panic(expected = "empty pipeline")]
fn empty_pipeline_rejected() {
    let p = Pipeline::new(ReachConfig::new());
    p.run(&mut machine(), 1);
}

#[test]
#[should_panic(expected = "zero batches")]
fn zero_batches_rejected() {
    let mut cfg = ReachConfig::new();
    let acc = cfg.register_acc("VGG16-VU9P", Level::OnChip);
    let mut p = Pipeline::new(cfg);
    p.call(acc, TaskWork::compute(1), "x");
    p.run(&mut machine(), 0);
}

#[test]
#[should_panic(expected = "unknown template")]
fn unknown_template_rejected_at_run() {
    let mut cfg = ReachConfig::new();
    let acc = cfg.register_acc("NOT-A-REAL-KERNEL", Level::OnChip);
    let mut p = Pipeline::new(cfg);
    p.call(acc, TaskWork::compute(1), "x");
    p.run(&mut machine(), 1);
}

#[test]
#[should_panic(expected = "unknown template VGG16-ZCU9 at on-chip")]
fn template_level_mismatch_rejected() {
    // A Zynq near-memory bitstream cannot configure the on-chip Virtex slot.
    let mut cfg = ReachConfig::new();
    let acc = cfg.register_acc("VGG16-ZCU9", Level::OnChip);
    let mut p = Pipeline::new(cfg);
    p.call(acc, TaskWork::compute(1), "x");
    p.run(&mut machine(), 1);
}

#[test]
#[should_panic(expected = "zero depth")]
fn zero_depth_stream_rejected() {
    let mut cfg = ReachConfig::new();
    cfg.create_stream(Level::Cpu, Level::OnChip, StreamType::Pair, 64, 0);
}

#[test]
#[should_panic(expected = "stale handle")]
fn stale_acc_handle_rejected() {
    let mut cfg = ReachConfig::new();
    let acc = cfg.register_acc("VGG16-VU9P", Level::OnChip);
    let empty = ReachConfig::new();
    let mut p = Pipeline::new(empty);
    p.call(acc, TaskWork::compute(1), "x");
}

#[test]
#[should_panic(expected = "no accelerators")]
fn level_without_instances_rejected() {
    // A machine with zero near-storage units cannot host a near-storage
    // mapping: the pipeline builder refuses at compile-to-job time.
    let mut cfg = SystemConfig::paper_table2();
    cfg.near_storage_accelerators = 0;
    let degenerate = MachineBlueprint::new(cfg).instantiate();
    let w = reach_cbir::CbirWorkload::paper_setup();
    let p = reach_cbir::CbirPipeline::new(w, reach_cbir::CbirMapping::AllNearStorage);
    let _ = p.build(&degenerate);
}

#[test]
#[should_panic(expected = "granule")]
fn zero_granule_gather_rejected() {
    let _ = TaskWork::gather(1, 64, 0);
}
