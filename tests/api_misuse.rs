//! Negative-path coverage: the library must fail loudly and informatively
//! on misuse, not corrupt a simulation (C-VALIDATE across the stack).
//!
//! Configuration mistakes are caught by `ReachConfig::build()` as typed
//! [`ConfigError`]s; only genuinely programmatic misuse (stale handles,
//! empty pipelines) still panics.

use reach::{
    ConfigError, Level, Machine, MachineBlueprint, Pipeline, ReachConfig, StreamType, SystemConfig,
    TaskWork,
};

fn machine() -> Machine {
    MachineBlueprint::paper().instantiate()
}

#[test]
#[should_panic(expected = "empty pipeline")]
fn empty_pipeline_rejected() {
    let p = Pipeline::new(ReachConfig::new().build().expect("empty config builds"));
    p.run(&mut machine(), 1);
}

#[test]
fn zero_batches_is_an_empty_run() {
    let mut cfg = ReachConfig::new();
    let acc = cfg.register_acc("VGG16-VU9P", Level::OnChip);
    let mut p = Pipeline::new(cfg.build().expect("valid config"));
    p.call(acc, TaskWork::compute(1), "x");
    let r = p.run(&mut machine(), 0);
    assert_eq!(r.jobs, 0);
    assert!(r.makespan.is_zero());
}

#[test]
fn unknown_template_rejected_at_build() {
    let mut cfg = ReachConfig::new();
    cfg.register_acc("NOT-A-REAL-KERNEL", Level::OnChip);
    assert!(matches!(
        cfg.build(),
        Err(ConfigError::UnknownTemplate { template, level })
            if template == "NOT-A-REAL-KERNEL" && level == Level::OnChip
    ));
}

#[test]
fn build_is_the_only_path_to_a_pipeline() {
    // With the unchecked shim gone, an invalid template can never reach a
    // running machine: the only constructor takes a ValidatedConfig, and
    // build() refuses to produce one.
    let mut cfg = ReachConfig::new();
    cfg.register_acc("NOT-A-REAL-KERNEL", Level::OnChip);
    let err = cfg.build().expect_err("invalid template must not build");
    assert!(err.to_string().contains("unknown template"));
}

#[test]
fn template_level_mismatch_rejected_at_build() {
    // A Zynq near-memory bitstream cannot configure the on-chip Virtex slot.
    let mut cfg = ReachConfig::new();
    cfg.register_acc("VGG16-ZCU9", Level::OnChip);
    let err = cfg.build().unwrap_err();
    assert_eq!(
        err.to_string(),
        "unknown template VGG16-ZCU9 at OnChip",
        "error should name the template and the level"
    );
}

#[test]
fn out_of_arity_binding_rejected_at_build() {
    let mut cfg = ReachConfig::new();
    let buf = cfg.create_fixed_buffer("params", Level::OnChip, 1 << 20);
    let acc = cfg.register_acc("VGG16-VU9P", Level::OnChip);
    cfg.set_arg(acc, 9, buf);
    assert!(matches!(
        cfg.build(),
        Err(ConfigError::ArgOutOfRange {
            slot: 9,
            arity: 3,
            ..
        })
    ));
}

#[test]
#[should_panic(expected = "zero depth")]
fn zero_depth_stream_rejected() {
    let mut cfg = ReachConfig::new();
    cfg.create_stream(Level::Cpu, Level::OnChip, StreamType::Pair, 64, 0);
}

#[test]
#[should_panic(expected = "stale handle")]
fn stale_acc_handle_rejected() {
    let mut cfg = ReachConfig::new();
    let acc = cfg.register_acc("VGG16-VU9P", Level::OnChip);
    let empty = ReachConfig::new();
    let mut p = Pipeline::new(empty.build().expect("empty config builds"));
    p.call(acc, TaskWork::compute(1), "x");
}

#[test]
#[should_panic(expected = "no accelerators")]
fn level_without_instances_rejected() {
    // A machine with zero near-storage units cannot host a near-storage
    // mapping: the pipeline builder refuses at compile-to-job time.
    let mut cfg = SystemConfig::paper_table2();
    cfg.near_storage_accelerators = 0;
    let degenerate = MachineBlueprint::new(cfg).instantiate();
    let w = reach_cbir::CbirWorkload::paper_setup();
    let p = reach_cbir::CbirPipeline::new(w, reach_cbir::CbirMapping::AllNearStorage);
    let _ = p.build(&degenerate);
}

#[test]
#[should_panic(expected = "granule")]
fn zero_granule_gather_rejected() {
    let _ = TaskWork::gather(1, 64, 0);
}
