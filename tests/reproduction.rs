//! The paper-reproduction acceptance suite.
//!
//! Every numbered claim the paper's abstract and evaluation make is pinned
//! here against the acceptance bands recorded in DESIGN.md. If a model or
//! calibration change drifts outside a band, this suite fails.

use reach::ComputeLevel;
use reach_cbir::experiments as exp;
use reach_cbir::{CbirMapping, CbirPipeline, CbirWorkload};

/// "ReACH achieves 4.5x throughput gain" — band [3.5, 5.5].
#[test]
fn headline_throughput_gain() {
    let rows = exp::fig13();
    let reach = rows
        .iter()
        .find(|r| r.mapping == CbirMapping::Proper)
        .unwrap();
    assert!(
        reach.throughput_gain > 3.5 && reach.throughput_gain < 5.5,
        "throughput gain {:.2}x outside [3.5, 5.5] (paper: 4.5x)",
        reach.throughput_gain
    );
}

/// "2.2x improvement in query response latency" — band [1.8, 2.8].
#[test]
fn headline_latency_gain() {
    let rows = exp::fig13();
    let reach = rows
        .iter()
        .find(|r| r.mapping == CbirMapping::Proper)
        .unwrap();
    assert!(
        reach.latency_gain > 1.8 && reach.latency_gain < 2.8,
        "latency gain {:.2}x outside [1.8, 2.8] (paper: 2.2x)",
        reach.latency_gain
    );
}

/// "reducing energy consumption by 52%" — band [45%, 60%].
#[test]
fn headline_energy_reduction() {
    let rows = exp::fig13();
    let base = rows
        .iter()
        .find(|r| r.mapping == CbirMapping::AllOnChip)
        .unwrap();
    let reach = rows
        .iter()
        .find(|r| r.mapping == CbirMapping::Proper)
        .unwrap();
    let reduction = 1.0 - reach.energy_total / base.energy_total;
    assert!(
        reduction > 0.45 && reduction < 0.60,
        "energy reduction {:.1}% outside [45, 60] (paper: 52%)",
        reduction * 100.0
    );
}

/// Figure 8: "79% of the total remaining energy cost is due to data
/// movement" — band [70%, 85%] — and "around 52% of the total cost is for
/// data movements of the Rerank step" (rerank must dominate).
#[test]
fn fig8_movement_and_rerank_dominance() {
    let f = exp::fig8();
    assert!(
        f.movement_fraction > 0.70 && f.movement_fraction < 0.85,
        "data movement {:.1}% outside [70, 85] (paper: 79%)",
        f.movement_fraction * 100.0
    );
    assert!(
        f.stage_shares[2] > 0.45,
        "rerank share {:.1}% should dominate (paper: 61%)",
        f.stage_shares[2] * 100.0
    );
}

/// Figure 9: a single embedded CNN is 7-10x slower than on-chip, but 8-16
/// instances collectively surpass it; on-chip keeps the best energy.
#[test]
fn fig9_feature_extraction_bands() {
    let rows = exp::fig9();
    let get = |level, n| {
        rows.iter()
            .find(|r| r.level == level && r.instances == n)
            .unwrap()
    };
    for level in [ComputeLevel::NearMemory, ComputeLevel::NearStorage] {
        let one = get(level, 1);
        assert!(
            one.runtime_norm > 7.0 && one.runtime_norm < 11.0,
            "{level} x1 runtime {:.1} outside the paper's 7-10x",
            one.runtime_norm
        );
        assert!(
            get(level, 8).runtime_norm < 1.05,
            "{level} x8 should reach on-chip"
        );
        assert!(
            get(level, 16).runtime_norm < 1.0,
            "{level} x16 should surpass on-chip"
        );
    }
    assert!(
        rows.iter().all(|r| r.energy_norm > 0.95),
        "on-chip should keep the best feature-extraction energy"
    );
}

/// Figure 10: near-memory wins with >= 2 instances (AIMbus + aggregated
/// DRAM bandwidth); 40-60% energy reduction appears in the sweep;
/// near-storage runs slightly slower than near-memory.
#[test]
fn fig10_shortlist_bands() {
    let rows = exp::fig10();
    let nm = |n| {
        rows.iter()
            .find(|r| r.level == ComputeLevel::NearMemory && r.instances == n)
            .unwrap()
    };
    let ns = |n| {
        rows.iter()
            .find(|r| r.level == ComputeLevel::NearStorage && r.instances == n)
            .unwrap()
    };
    assert!(
        nm(1).runtime_norm > 1.0,
        "NM x1 must be slower than on-chip"
    );
    assert!(nm(2).runtime_norm < 1.0, "NM x2 must beat on-chip");
    let best_nm_energy = (1..=16)
        .filter_map(|n| {
            rows.iter()
                .find(|r| r.level == ComputeLevel::NearMemory && r.instances == n)
        })
        .map(|r| r.energy_norm)
        .fold(f64::INFINITY, f64::min);
    assert!(
        best_nm_energy < 0.6,
        "best NM energy {best_nm_energy:.2} should show the paper's 40-60% cut"
    );
    for n in [1usize, 2, 4] {
        assert!(
            ns(n).runtime_norm > nm(n).runtime_norm,
            "NS x{n} should be slightly slower than NM x{n}"
        );
    }
}

/// Figure 11: near-memory rerank plateaus between 8 and 16 instances
/// (host IO saturation) while near-storage keeps scaling; moving rerank
/// off-chip saves up to ~60% of its energy.
#[test]
fn fig11_rerank_bands() {
    let rows = exp::fig11();
    let nm = |n| {
        rows.iter()
            .find(|r| r.level == ComputeLevel::NearMemory && r.instances == n)
            .unwrap()
            .runtime_norm
    };
    let ns = |n| {
        rows.iter()
            .find(|r| r.level == ComputeLevel::NearStorage && r.instances == n)
            .unwrap()
            .runtime_norm
    };
    // Scaling up to 8, then a plateau.
    assert!(nm(8) < nm(4) && nm(4) < nm(2));
    assert!(
        nm(16) / nm(8) > 0.7,
        "NM 8->16 should plateau ({} -> {})",
        nm(8),
        nm(16)
    );
    // Near-storage keeps scaling 8->16.
    assert!(
        ns(16) / ns(8) < 0.7,
        "NS 8->16 should keep scaling ({} -> {})",
        ns(8),
        ns(16)
    );
    // Energy saving moving rerank off-chip.
    let best_ns_energy = rows
        .iter()
        .filter(|r| r.level == ComputeLevel::NearStorage)
        .map(|r| r.energy_norm)
        .fold(f64::INFINITY, f64::min);
    assert!(
        best_ns_energy < 0.55,
        "best NS rerank energy {best_ns_energy:.2} should approach the paper's 60% cut"
    );
}

/// Figure 12: single near-data levels lose to on-chip at 1 instance and
/// win at 4 (aggregated bandwidth), for both runtime and energy.
#[test]
fn fig12_single_level_bands() {
    let rows = exp::fig12();
    let find = |mapping, n| {
        rows.iter()
            .find(|r| r.mapping == mapping && r.instances == n)
            .unwrap()
    };
    for mapping in [CbirMapping::AllNearMemory, CbirMapping::AllNearStorage] {
        assert!(
            find(mapping, 1).runtime_norm > 1.0,
            "{} x1 should be slower than on-chip",
            mapping.name()
        );
        assert!(
            find(mapping, 4).runtime_norm < 1.0,
            "{} x4 should beat on-chip",
            mapping.name()
        );
        assert!(
            find(mapping, 4).energy_norm < 1.0,
            "{} x4 should beat on-chip energy",
            mapping.name()
        );
    }
}

/// Determinism: the whole evaluation is reproducible bit-for-bit.
#[test]
fn experiments_are_deterministic() {
    let a = exp::fig13();
    let b = exp::fig13();
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.throughput_gain.to_bits(), y.throughput_gain.to_bits());
        assert_eq!(x.latency_gain.to_bits(), y.latency_gain.to_bits());
        assert_eq!(x.energy_total.to_bits(), y.energy_total.to_bits());
    }
    let f1 = exp::fig8();
    let f2 = exp::fig8();
    assert_eq!(f1.ledger.to_string(), f2.ledger.to_string());
}

/// The pipeline-of-batches invariant behind Figure 13: steady-state
/// throughput approaches 1 / (longest stage), not 1 / (sum of stages).
#[test]
fn throughput_tracks_longest_stage() {
    let w = CbirWorkload::paper_setup();
    let p = CbirPipeline::new(w, CbirMapping::Proper);
    let r = p.run(&mut reach_cbir::blueprint_with(4, 4).instantiate(), 12);
    let longest_stage_ms = r
        .stages
        .iter()
        .map(|s| s.busy.as_ms_f64() / 12.0)
        .fold(0.0, f64::max);
    let interval_ms = r.makespan.as_ms_f64() / 12.0;
    assert!(
        interval_ms < 1.35 * longest_stage_ms,
        "interval {interval_ms:.1} ms vs longest stage {longest_stage_ms:.1} ms"
    );
}
