//! Configuration-fingerprint stability across the full experiment suite.
//!
//! The scenario-result cache keys on `Scenario::config_fingerprint`, so a
//! silent change to the fingerprint encoding (or to what a scenario feeds
//! into it) would quietly turn every warm cache cold — or worse, alias two
//! different configurations. This test pins the fingerprint of **every**
//! scenario the `experiments` suite submits, in submission order, against
//! a golden file.
//!
//! Regenerate after an intentional encoding change with
//! `UPDATE_GOLDEN=1 cargo test -p reach-integration --test fingerprints`.

use reach::{Scenario, ScenarioExecutor, ScenarioResult, SequentialExecutor};
use std::sync::Mutex;

/// Delegates to the sequential reference executor, recording every
/// scenario's fingerprint and label on the way through.
#[derive(Default)]
struct HarvestExecutor {
    rows: Mutex<Vec<String>>,
}

impl HarvestExecutor {
    fn rendered(&self) -> String {
        let rows = self.rows.lock().expect("harvest rows poisoned");
        let mut out = String::new();
        for row in rows.iter() {
            out.push_str(row);
            out.push('\n');
        }
        out
    }
}

impl ScenarioExecutor for HarvestExecutor {
    fn run_all(&self, scenarios: Vec<Box<dyn Scenario>>) -> Vec<ScenarioResult> {
        {
            let mut rows = self.rows.lock().expect("harvest rows poisoned");
            for s in &scenarios {
                let fp = s
                    .config_fingerprint()
                    .map_or_else(|| "-".repeat(32), |f| f.to_string());
                rows.push(format!("{fp}  {}", s.label()));
            }
        }
        SequentialExecutor.run_all(scenarios)
    }
}

fn check_golden(rendered: &str, path: &str, golden: &str) {
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(format!("{}/{path}", env!("CARGO_MANIFEST_DIR")), rendered)
            .expect("golden file is writable");
        return;
    }
    assert!(
        rendered == golden,
        "{path} drifted — the fingerprint encoding or a scenario's inputs \
         changed. If intentional, regenerate with UPDATE_GOLDEN=1.\n\
         --- rendered ---\n{rendered}\n--- golden ---\n{golden}"
    );
}

#[test]
fn full_suite_fingerprints_match_golden_file() {
    let harvest = HarvestExecutor::default();
    for (_, render) in reach_bench::renderers() {
        let _ = render(&harvest);
    }
    let rendered = harvest.rendered();
    let lines: Vec<&str> = rendered.lines().collect();
    assert!(
        lines.len() >= 100,
        "expected the full suite, saw {} scenarios",
        lines.len()
    );
    // Every CBIR scenario must be cacheable; only closure-backed co-run
    // points may opt out.
    let opted_out = lines.iter().filter(|l| l.starts_with("----")).count();
    assert!(
        opted_out * 10 < lines.len(),
        "{opted_out}/{} scenarios uncacheable — a fingerprint regression",
        lines.len()
    );
    check_golden(
        &rendered,
        "../../tests/golden/fingerprints.txt",
        include_str!("golden/fingerprints.txt"),
    );
}
