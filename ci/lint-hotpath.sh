#!/usr/bin/env bash
# Two hot-path guards:
#  1. Fails if any String allocation or formatting creeps back onto the
#     machine's per-event dispatch path. The hot functions below run once
#     (or more) per simulated event; the only allowed string work is
#     inside the opt-in #[cold] trace helpers.
#  2. Fails if `unsafe` appears anywhere in the workspace outside
#     crates/cbir/src/simd.rs — the one sanctioned home for the
#     #[target_feature] SIMD kernels. Every other crate forbids
#     unsafe_code at the crate root; this catches the reach-cbir modules,
#     where the root lint is only `deny` (simd.rs needs a local allow).
set -euo pipefail
cd "$(dirname "$0")/.."

python3 - <<'EOF'
import re
import sys

SRC = "crates/core/src/machine.rs"
HOT = {
    "run",
    "dispatch",
    "price_data",
    "nm_stream",
    "price_dma",
    "start_dma",
    "process_actions",
    "sample_queues",
}
# String allocation/formatting constructs banned on the per-event path.
# (A per-run scratch Vec is fine; per-event string work is not.)
BANNED = re.compile(r"format!|\.to_string\(|String::|\.to_owned\(|\.clone\(")

lines = open(SRC, encoding="utf-8").readlines()
sig = re.compile(r"^(    )(?:pub )?fn (\w+)")
current = None
cold = False
pending_cold = False
violations = []
for lineno, line in enumerate(lines, 1):
    if line.strip() == "#[cold]":
        pending_cold = True
        continue
    m = sig.match(line)
    if m:
        current = m.group(2)
        cold = pending_cold
        pending_cold = False
    elif line.strip() and not line.startswith(" ") :
        current = None
    if pending_cold and line.strip() and not line.strip().startswith("#["):
        pending_cold = False
    if current in HOT and not cold and BANNED.search(line):
        violations.append((lineno, current, line.rstrip()))

found = {m.group(2) for m in map(sig.match, lines) if m}
missing = HOT - found
if missing:
    print(f"lint-hotpath: functions not found in {SRC}: {sorted(missing)}")
    sys.exit(1)
if violations:
    print(f"lint-hotpath: allocation/formatting on the per-event path in {SRC}:")
    for lineno, fn, text in violations:
        print(f"  {SRC}:{lineno} (fn {fn}): {text}")
    sys.exit(1)
print(f"lint-hotpath: {len(HOT)} hot function(s) clean in {SRC}")
EOF

python3 - <<'EOF'
import pathlib
import re
import sys

ALLOWED = pathlib.Path("crates/cbir/src/simd.rs")
# The word `unsafe` outside comments. Mentions of the lint level itself
# (`forbid(unsafe_code)` / `deny(unsafe_code)`) are attributes, not code.
UNSAFE = re.compile(r"\bunsafe\b(?!_code)")

violations = []
scanned = 0
for path in sorted(pathlib.Path("crates").rglob("*.rs")):
    if path == ALLOWED:
        continue
    scanned += 1
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), 1
    ):
        code = line.split("//", 1)[0]
        if "unsafe_code" in code:
            continue
        if UNSAFE.search(code):
            violations.append((path, lineno, line.strip()))

if not ALLOWED.exists():
    print(f"lint-unsafe: expected SIMD module at {ALLOWED}")
    sys.exit(1)
if violations:
    print("lint-unsafe: `unsafe` outside crates/cbir/src/simd.rs:")
    for path, lineno, text in violations:
        print(f"  {path}:{lineno}: {text}")
    sys.exit(1)
print(f"lint-unsafe: {scanned} file(s) clean (unsafe confined to {ALLOWED})")
EOF
