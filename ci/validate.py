#!/usr/bin/env python3
"""Validators for the repository's JSON exports and golden files.

One place for every check CI used to run as inline heredoc-python, so the
same validations run locally:

    ci/validate.py metrics metrics.json          # reach-run-metrics-v1
    ci/validate.py bench BENCH_PR2.json BENCH_PR5.json ...
    ci/validate.py golden tests/golden/fingerprints.txt
    ci/validate.py fleet fleet_j1.out fleet_j4.out ...  # determinism captures
    ci/validate.py traffic traffic_j1.out traffic_j4.out ...
    ci/validate.py graph graph_j1.out graph_j4.out ...
    ci/validate.py diskcache cold.out:cold.err warm.out:warm.err ...
    ci/validate.py simd simd_off_j1.out simd_auto_j1.out ...
    ci/validate.py suite suite_j1.out suite_j4.out ...  # alias of simd
    ci/validate.py identical a.out b.out ...     # plain byte-compare
    ci/validate.py selftest                      # the validators' own tests

Most capture kinds are fed by ci/determinism.sh, which records the same
experiment ids under a matrix of --jobs levels and cache modes.

The diskcache kind takes stdout:stderr capture pairs from runs sharing one
--result-cache-dir; the first pair is the cold run, the rest are warm.

Exit status is non-zero on the first failed check, with the offending file
and reason on stderr.
"""

import json
import re
import sys

# Minimum claimed speedup per before/after record schema. A record whose
# schema is missing here only gets the arithmetic checks.
SPEEDUP_BARS = {
    "reach-bench-pr3-v1": 1.5,
    "reach-bench-pr4-v1": 1.4,
    "reach-bench-pr5-v1": 1.3,
    "reach-bench-pr8-v1": 3.0,
    "reach-bench-pr9-v1": 1.3,
}

DISK_CACHE_LINE = re.compile(r"(\d+) disk hit\(s\), (\d+) disk miss\(es\)")

FINGERPRINT_LINE = re.compile(r"^([0-9a-f]{32}|-{32})  \S.*$")

FLEET_HEADER = "EXTENSION. FLEET SCATTER-GATHER"
FLEET_SWEEP = (1, 2, 4, 8, 16)
FLEET_PLACEMENTS = ("near-memory", "near-storage")

TRAFFIC_HEADER = "EXTENSION. TRAFFIC SERVING"
TRAFFIC_RATES = (1, 2, 4, 8, 16)
TRAFFIC_PLACEMENTS = ("on-chip", "near-memory", "near-storage", "ReACH")
TRAFFIC_ROW = re.compile(
    r"^\s*(?P<source>\S+) @\s*(?P<rate>\d+)/s"
    r"\s+admitted\s*(?P<admitted>\d+)/(?P<offered>\d+)"
    r"\s*rejected\s*(?P<rejected>\d+)"
    r"\s+mean\s+(?P<mean>[\d.]+)ms"
    r"\s+p50\s+(?P<p50>[\d.]+)ms"
    r"\s+p95\s+(?P<p95>[\d.]+)ms"
    r"\s+p99\s+(?P<p99>[\d.]+)ms"
    r"\s+p999\s+(?P<p999>[\d.]+)ms\s*$"
)

GRAPH_HEADER = "EXTENSION. GRAPH ANALYTICS"
GRAPH_CORUN_HEADER = "EXTENSION. GRAPH + CBIR CO-RUN"
GRAPH_SCALES = (1024, 4096, 16384)
GRAPH_PLACEMENTS = ("on-chip", "near-memory", "near-storage")
GRAPH_CORUN_RATES = (4, 8)
GRAPH_ROW = re.compile(
    r"^\s*(?P<workload>bfs|pagerank)\s+(?P<placement>\S+)\s+(?P<graph>\S+)"
    r"\s+(?P<edges>\d+) edges\s+(?P<makespan>[\d.]+)ms\s+(?P<evps>\d+) ev/s"
    r"\s+(?:frontiers \[(?P<frontiers>[\d ]*)\] visited (?P<visited>\d+)"
    r"|residuals \[(?P<residuals>[^\]]*)\])\s*$"
)
GRAPH_CORUN_ROW = re.compile(
    r"^\s*corun @\s*(?P<rate>\d+)/s\s+(?P<mode>solo|shared)"
    r"\s+admitted\s*(?P<admitted>\d+)/(?P<offered>\d+)"
    r"\s*rejected\s+(?P<rejected>\d+)"
    r"\s+cbir-p99\s+(?P<p99>[\d.]+)ms"
    r"\s+ddr-contended\s+(?P<ddr>\d+)cy"
    r"(?:\s+aimbus-queued (?P<aimbus>\d+)ps"
    r"\s+graph-jobs (?P<jobs>\d+)"
    r"\s+dispatches cbir/graph (?P<cbir_d>\d+)/(?P<graph_d>\d+)"
    r"\s+p99-delta (?P<delta>[+-][\d.]+)ms)?\s*$"
)


class ValidationError(Exception):
    pass


def require(cond, message):
    if not cond:
        raise ValidationError(message)


def validate_metrics(doc):
    """A reach-run-metrics-v1 telemetry export from the experiments binary."""
    require(doc.get("schema") == "reach-run-metrics-v1",
            f"bad schema {doc.get('schema')!r}")
    scenarios = doc.get("scenarios")
    require(scenarios, "no scenarios captured")
    for s in scenarios:
        require(s.get("metrics", {}).get("metrics"),
                f"empty metrics for {s.get('label')!r}")
    proc = doc.get("process", {}).get("metrics", {})
    for key in (
        "cbir.simd_dispatch",
        "cbir.cache_hits",
        "cbir.cache_misses",
        "runner.result_cache_hits",
        "runner.result_cache_misses",
        "runner.result_cache_disk_hits",
        "runner.result_cache_disk_misses",
        "runner.fleet_cache_hits",
        "runner.fleet_cache_misses",
    ):
        require(key in proc, f"missing process counter {key}")
    return f"{len(scenarios)} scenario snapshot(s)"


def validate_bench(doc):
    """Either a reach-bench-v1 wall-clock report or a before/after record."""
    schema = doc.get("schema")
    if schema == "reach-bench-v1":
        require(doc.get("experiments"), "no experiments captured")
        return f"{len(doc['experiments'])} experiment(s)"
    if schema == "reach-bench-pr10-v1":
        return validate_bench_pr10(doc)
    require(isinstance(schema, str) and schema.startswith("reach-bench-pr"),
            f"bad schema {schema!r}")
    before = doc.get("before", {}).get("wall_s")
    after = doc.get("after", {}).get("wall_s")
    speedup = doc.get("speedup")
    require(isinstance(before, (int, float)) and before > 0,
            f"bad before.wall_s {before!r}")
    require(isinstance(after, (int, float)) and after > 0,
            f"bad after.wall_s {after!r}")
    require(after < before, f"no improvement: {before}s -> {after}s")
    require(isinstance(speedup, (int, float)), f"bad speedup {speedup!r}")
    require(abs(speedup - before / after) < 0.05,
            f"claimed speedup {speedup} != measured {before / after:.2f}")
    bar = SPEEDUP_BARS.get(schema)
    if bar is not None:
        require(speedup >= bar, f"speedup {speedup} below the {bar}x bar")
    return f"{before}s -> {after}s ({speedup}x)"


def validate_bench_pr10(doc):
    """The PR 10 contention record: wall-clock of the graph + co-run suite,
    graph traversal throughput, and the measured p99 price of co-residency.
    Unlike the pr3..pr9 records this is not a speedup claim — the claim is
    that co-running *costs* latency and that the record's numbers are
    internally consistent."""
    suite = doc.get("suite", {})
    require(isinstance(suite.get("wall_s"), (int, float))
            and suite["wall_s"] > 0, f"bad suite.wall_s {suite.get('wall_s')!r}")
    require(suite.get("ids"), "suite.ids missing")
    evps = doc.get("graph_events_per_sec", {})
    require(evps, "no graph_events_per_sec entries")
    for label, v in evps.items():
        require(isinstance(v, (int, float)) and v > 0,
                f"graph_events_per_sec[{label!r}] not positive: {v!r}")
    corun = doc.get("corun")
    require(corun, "no corun entries")
    for row in corun:
        rate = row.get("rate_per_sec")
        solo, shared = row.get("solo_p99_ms"), row.get("corun_p99_ms")
        delta = row.get("p99_delta_ms")
        require(isinstance(rate, int) and rate > 0, f"bad rate {rate!r}")
        require(isinstance(solo, (int, float)) and solo > 0,
                f"@{rate}/s: bad solo_p99_ms {solo!r}")
        require(isinstance(shared, (int, float)) and shared > solo,
                f"@{rate}/s: co-run p99 {shared!r} not strictly above "
                f"solo {solo!r}")
        require(isinstance(delta, (int, float))
                and abs(delta - (shared - solo)) < 2e-3,
                f"@{rate}/s: p99_delta_ms {delta!r} inconsistent")
        ddr_solo = row.get("solo_ddr_contended_cy")
        ddr_shared = row.get("corun_ddr_contended_cy")
        require(isinstance(ddr_solo, int) and isinstance(ddr_shared, int)
                and ddr_shared > ddr_solo,
                f"@{rate}/s: ddr contention gauge did not rise "
                f"({ddr_solo!r} -> {ddr_shared!r})")
        require(isinstance(row.get("graph_jobs"), int)
                and row["graph_jobs"] > 0,
                f"@{rate}/s: no graph batch jobs recorded")
    deltas = ", ".join(f"+{r['p99_delta_ms']}ms@{r['rate_per_sec']}/s"
                       for r in corun)
    return (f"{suite['wall_s']}s suite, {len(evps)} throughput row(s), "
            f"p99 deltas {deltas}")


def validate_golden_fingerprints(text):
    """The fingerprint stability file: one '<digest>  <label>' row per
    suite scenario, 32 lowercase hex digits (or 32 dashes for scenarios
    that opt out of caching)."""
    lines = text.splitlines()
    require(len(lines) >= 100, f"expected the full suite, saw {len(lines)} rows")
    for i, line in enumerate(lines, 1):
        require(FINGERPRINT_LINE.match(line), f"malformed row {i}: {line!r}")
    opted_out = sum(1 for line in lines if line.startswith("-" * 32))
    require(opted_out * 10 < len(lines),
            f"{opted_out}/{len(lines)} scenarios uncacheable")
    return f"{len(lines)} fingerprint row(s), {opted_out} uncacheable"


def validate_fleet(captures):
    """Fleet-determinism captures: `experiments extension-fleet` stdout
    recorded at different --jobs levels and cache modes. All captures must
    be byte-identical and the reference must contain the full sweep (every
    placement x every shard count)."""
    require(len(captures) >= 2,
            f"need at least two captures to compare, got {len(captures)}")
    (ref_name, reference) = captures[0]
    for name, text in captures[1:]:
        require(text == reference,
                f"{name} differs from {ref_name} — fleet determinism broke")
    require(FLEET_HEADER in reference, "missing the fleet suite header")
    for placement in FLEET_PLACEMENTS:
        for n in FLEET_SWEEP:
            require(re.search(rf"{placement} x{n}\s+makespan", reference),
                    f"missing sweep row {placement} x{n}")
    rows = len(FLEET_PLACEMENTS) * len(FLEET_SWEEP)
    return f"{len(captures)} identical capture(s), {rows} sweep rows"


def validate_traffic(captures):
    """Traffic-determinism captures: `experiments extension-traffic` stdout
    recorded at different --jobs levels and cache modes. All captures must
    be byte-identical; the reference must sweep every placement across every
    arrival rate with a sane admission ledger (admitted + rejected ==
    offered), a knee shape that makes physical sense (mean latency and
    rejections both non-decreasing in offered load, nothing rejected at the
    lowest rate), and a trace demo row that replays the bursty row exactly."""
    require(len(captures) >= 2,
            f"need at least two captures to compare, got {len(captures)}")
    (ref_name, reference) = captures[0]
    for name, text in captures[1:]:
        require(text == reference,
                f"{name} differs from {ref_name} — traffic determinism broke")
    require(TRAFFIC_HEADER in reference, "missing the traffic suite header")

    rows = {}
    for line in reference.splitlines():
        m = TRAFFIC_ROW.match(line)
        if m:
            rows.setdefault(m.group("source"), []).append(m.groupdict())
    for source, series in rows.items():
        for row in series:
            require(int(row["admitted"]) + int(row["rejected"])
                    == int(row["offered"]),
                    f"{source} @ {row['rate']}/s: admission ledger does not "
                    f"balance ({row['admitted']} + {row['rejected']} != "
                    f"{row['offered']})")
    for placement in TRAFFIC_PLACEMENTS:
        series = rows.get(placement, [])
        require([int(r["rate"]) for r in series] == list(TRAFFIC_RATES),
                f"{placement}: expected rate sweep {TRAFFIC_RATES}, "
                f"saw {[int(r['rate']) for r in series]}")
        require(int(series[0]["rejected"]) == 0,
                f"{placement}: rejections below the knee (at the lowest rate)")
        for prev, cur in zip(series, series[1:]):
            require(float(cur["mean"]) >= float(prev["mean"]),
                    f"{placement}: mean latency fell from "
                    f"{prev['mean']}ms to {cur['mean']}ms as load rose")
            require(int(cur["rejected"]) >= int(prev["rejected"]),
                    f"{placement}: rejections fell from "
                    f"{prev['rejected']} to {cur['rejected']} as load rose")
    bursty, trace = rows.get("bursty", []), rows.get("trace", [])
    require(len(bursty) == 1 and len(trace) == 1,
            "missing the bursty/trace demo row pair")
    require(bursty[0] == dict(trace[0], source="bursty"),
            "the trace row does not replay the bursty row")
    n = len(TRAFFIC_PLACEMENTS) * len(TRAFFIC_RATES) + 2
    return f"{len(captures)} identical capture(s), {n} traffic rows"


def validate_graph(captures):
    """Graph-determinism captures: `experiments extension-graph
    extension-graph-corun` stdout recorded at different --jobs levels and
    cache modes. All captures must be byte-identical; the reference must
    contain the full placement x scale sweep with a shape that re-checks
    the traversal semantics (every BFS frontier positive and summing to the
    visited count, PageRank residuals strictly decreasing) and a co-run
    sweep with balanced admission ledgers, a strictly positive p99 price of
    co-residency at every rate, and contention gauges that actually move
    when the graph tenant shares the machine."""
    require(len(captures) >= 2,
            f"need at least two captures to compare, got {len(captures)}")
    (ref_name, reference) = captures[0]
    for name, text in captures[1:]:
        require(text == reference,
                f"{name} differs from {ref_name} — graph determinism broke")
    require(GRAPH_HEADER in reference, "missing the graph suite header")
    require(GRAPH_CORUN_HEADER in reference, "missing the co-run suite header")

    sweep = {}
    corun = {}
    for line in reference.splitlines():
        m = GRAPH_ROW.match(line)
        if m:
            sweep[(m.group("workload"), m.group("placement"),
                   m.group("graph"))] = m.groupdict()
            continue
        m = GRAPH_CORUN_ROW.match(line)
        if m:
            corun[(int(m.group("rate")), m.group("mode"))] = m.groupdict()

    for placement in GRAPH_PLACEMENTS:
        for scale in GRAPH_SCALES:
            for workload, kind in (("bfs", "rmat"), ("pagerank", "uniform")):
                row = sweep.get((workload, placement, f"{kind}/{scale}"))
                require(row is not None,
                        f"missing sweep row {workload}/{placement}/"
                        f"{kind}/{scale}")
                require(float(row["makespan"]) > 0 and int(row["evps"]) > 0,
                        f"{workload}/{placement}/{kind}/{scale}: empty run")
                if workload == "bfs":
                    frontiers = [int(x) for x in row["frontiers"].split()]
                    require(frontiers and all(f > 0 for f in frontiers),
                            f"bfs {placement} {kind}/{scale}: empty frontier")
                    require(sum(frontiers) == int(row["visited"]),
                            f"bfs {placement} {kind}/{scale}: frontiers sum "
                            f"{sum(frontiers)} != visited {row['visited']}")
                else:
                    residuals = [float(x) for x in row["residuals"].split()]
                    require(len(residuals) >= 2,
                            f"pagerank {placement} {kind}/{scale}: too few "
                            "residuals")
                    for prev, cur in zip(residuals, residuals[1:]):
                        require(cur < prev,
                                f"pagerank {placement} {kind}/{scale}: "
                                f"residual rose ({prev} -> {cur})")

    for rate in GRAPH_CORUN_RATES:
        solo = corun.get((rate, "solo"))
        shared = corun.get((rate, "shared"))
        require(solo is not None and shared is not None,
                f"missing solo/shared co-run pair at {rate}/s")
        for mode, row in (("solo", solo), ("shared", shared)):
            require(int(row["admitted"]) + int(row["rejected"])
                    == int(row["offered"]),
                    f"corun @{rate}/s {mode}: admission ledger does not "
                    f"balance ({row['admitted']} + {row['rejected']} != "
                    f"{row['offered']})")
        require(shared["delta"] is not None,
                f"corun @{rate}/s: shared row lost its contention fields")
        solo_p99, shared_p99 = float(solo["p99"]), float(shared["p99"])
        require(shared_p99 > solo_p99,
                f"corun @{rate}/s: co-run p99 {shared_p99}ms not strictly "
                f"above solo {solo_p99}ms — no measurable contention")
        delta = float(shared["delta"])
        require(abs(delta - (shared_p99 - solo_p99)) < 2e-3,
                f"corun @{rate}/s: p99-delta {delta}ms inconsistent with "
                f"{shared_p99}ms - {solo_p99}ms")
        require(int(shared["ddr"]) > int(solo["ddr"]),
                f"corun @{rate}/s: ddr-contended did not rise under co-run "
                f"({solo['ddr']}cy -> {shared['ddr']}cy)")
        require(int(shared["jobs"]) > 0,
                f"corun @{rate}/s: the graph tenant completed no jobs")
        require(int(shared["cbir_d"]) > 0 and int(shared["graph_d"]) > 0,
                f"corun @{rate}/s: one tenant never dispatched")
    n_corun = len(GRAPH_CORUN_RATES) * 2
    return (f"{len(captures)} identical capture(s), {len(sweep)} sweep "
            f"row(s), {n_corun} co-run row(s)")


def validate_identical(captures):
    """The weakest capture contract: at least two captures, all
    byte-identical. For outputs with no dedicated row validator (e.g. the
    sweep binary under cache on/off)."""
    require(len(captures) >= 2,
            f"need at least two captures to compare, got {len(captures)}")
    (ref_name, reference) = captures[0]
    require(reference.strip(), f"{ref_name} is empty")
    for name, text in captures[1:]:
        require(text == reference, f"{name} differs from {ref_name}")
    return f"{len(captures)} identical capture(s)"


SIMD_SUITE_HEADER = "TABLE I. MEMORY AND COMPUTE REQUIREMENTS"


def validate_simd(captures):
    """SIMD-determinism captures: full `experiments` suite stdout recorded
    under REACH_SIMD=off and REACH_SIMD=auto at different --jobs levels.
    The explicit-SIMD kernel tier is bit-identical to the scalar one by
    construction, so every capture must be byte-identical — a single
    differing byte means the no-FMA lane model broke somewhere."""
    require(len(captures) >= 2,
            f"need at least two captures to compare, got {len(captures)}")
    (ref_name, reference) = captures[0]
    require(SIMD_SUITE_HEADER in reference,
            f"{ref_name} is not a full-suite capture (missing the Table I "
            "header)")
    for name, text in captures[1:]:
        require(text == reference,
                f"{name} differs from {ref_name} — the SIMD tier is no "
                "longer bit-identical to the scalar kernels")
    return f"{len(captures)} identical capture(s)"


def validate_diskcache(pairs):
    """Persistent-cache captures: (name, stdout, stderr) triples from
    `experiments` or `sweep` runs sharing one --result-cache-dir. The first
    triple is the cold run, the rest are warm. Stdout must be byte-identical
    everywhere (the cache may only move the wall clock); the cold run must
    have probed the disk and found nothing (misses > 0, hits == 0 on a fresh
    directory); every warm run must have replayed *everything* from disk
    (hits > 0, misses == 0 — zero simulations)."""
    require(len(pairs) >= 2,
            f"need a cold and at least one warm capture, got {len(pairs)}")

    def cache_line(name, stderr_text):
        m = DISK_CACHE_LINE.search(stderr_text)
        require(m, f"{name}: no disk-cache ledger on stderr")
        return int(m.group(1)), int(m.group(2))

    (cold_name, cold_stdout, cold_stderr) = pairs[0]
    cold_hits, cold_misses = cache_line(cold_name, cold_stderr)
    require(cold_misses > 0, f"{cold_name}: cold run never probed the disk "
            "tier (is --result-cache-dir set and the directory fresh?)")
    require(cold_hits == 0,
            f"{cold_name}: cold run hit a supposedly fresh store")
    for name, stdout_text, stderr_text in pairs[1:]:
        require(stdout_text == cold_stdout,
                f"{name} stdout differs from {cold_name} — the persistent "
                "cache changed the results")
        hits, misses = cache_line(name, stderr_text)
        require(misses == 0, f"{name}: warm run simulated {misses} "
                "scenario(s) instead of replaying from disk")
        require(hits > 0, f"{name}: warm run never hit the disk tier")
    return (f"cold run stored {cold_misses} result(s), "
            f"{len(pairs) - 1} warm run(s) replayed everything")


def check_diskcache(paths):
    pairs = []
    for spec in paths:
        out_path, sep, err_path = spec.partition(":")
        require(sep == ":" and out_path and err_path,
                f"expected STDOUT:STDERR capture pair, got {spec!r}")
        with open(out_path, encoding="utf-8") as f:
            stdout_text = f.read()
        with open(err_path, encoding="utf-8") as f:
            stderr_text = f.read()
        pairs.append((out_path, stdout_text, stderr_text))
    print(f"diskcache ok: {validate_diskcache(pairs)}")


def check_captures(kind, validate, paths):
    captures = []
    for path in paths:
        with open(path, encoding="utf-8") as f:
            captures.append((path, f.read()))
    print(f"{kind} ok: {validate(captures)}")


def check_file(kind, path):
    if kind == "golden":
        with open(path, encoding="utf-8") as f:
            summary = validate_golden_fingerprints(f.read())
    else:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
        summary = {"metrics": validate_metrics, "bench": validate_bench}[kind](doc)
    print(f"{path} ok: {summary}")


def selftest():
    """Unit-style checks that the validators accept known-good documents
    and reject each seeded defect."""
    good_metrics = {
        "schema": "reach-run-metrics-v1",
        "scenarios": [{"label": "a", "metrics": {"metrics": [{"name": "x"}]}}],
        "process": {"metrics": {
            "cbir.simd_dispatch": {"kind": "gauge", "mean": 1.0, "last": 1.0},
            "cbir.cache_hits": 1, "cbir.cache_misses": 2,
            "runner.result_cache_hits": 3, "runner.result_cache_misses": 4,
            "runner.result_cache_disk_hits": 0,
            "runner.result_cache_disk_misses": 0,
            "runner.fleet_cache_hits": 0, "runner.fleet_cache_misses": 10,
        }},
    }
    validate_metrics(good_metrics)

    good_record = {
        "schema": "reach-bench-pr5-v1",
        "before": {"wall_s": 0.30}, "after": {"wall_s": 0.15}, "speedup": 2.0,
    }
    validate_bench(good_record)
    validate_bench({"schema": "reach-bench-v1", "experiments": [{"id": "fig13"}]})

    good_golden = "\n".join(
        [f"{i:032x}  sweep/point{i}" for i in range(120)] + ["-" * 32 + "  closure/corun"]
    )
    validate_golden_fingerprints(good_golden)

    good_fleet = FLEET_HEADER + "\n" + "\n".join(
        f"  {placement} x{n}  makespan 1.000ms"
        for placement in FLEET_PLACEMENTS for n in FLEET_SWEEP
    )
    validate_fleet([("j1", good_fleet), ("j4", good_fleet), ("j8", good_fleet)])

    def traffic_row(source, rate, admitted, rejected, mean):
        return (f"  {source} @ {rate}/s  admitted {admitted}/24 "
                f"rejected {rejected}  mean {mean:.3f}ms  p50 {mean:.3f}ms  "
                f"p95 {mean:.3f}ms  p99 {mean:.3f}ms  p999 {mean:.3f}ms")

    def traffic_capture(lowest_rejected=0, mean_step=100.0, trace_mean=300.0):
        lines = [TRAFFIC_HEADER]
        for placement in TRAFFIC_PLACEMENTS:
            for i, rate in enumerate(TRAFFIC_RATES):
                rejected = lowest_rejected if i == 0 else 2 * i
                lines.append(traffic_row(placement, rate, 24 - rejected,
                                         rejected, 200.0 + mean_step * i))
        lines.append(traffic_row("bursty", 4, 17, 7, 300.0))
        lines.append(traffic_row("trace", 4, 17, 7, trace_mean))
        return "\n".join(lines)

    good_traffic = traffic_capture()
    validate_traffic([("j1", good_traffic), ("j4", good_traffic),
                      ("j8", good_traffic)])

    def rejects(fn, arg, why):
        try:
            fn(arg)
        except ValidationError:
            return
        raise SystemExit(f"selftest: validator accepted a bad document: {why}")

    bad = json.loads(json.dumps(good_metrics))
    del bad["process"]["metrics"]["runner.result_cache_hits"]
    rejects(validate_metrics, bad, "missing result-cache counter")

    bad = json.loads(json.dumps(good_metrics))
    del bad["process"]["metrics"]["cbir.simd_dispatch"]
    rejects(validate_metrics, bad, "missing simd-dispatch gauge")

    bad = json.loads(json.dumps(good_metrics))
    del bad["process"]["metrics"]["runner.result_cache_disk_hits"]
    rejects(validate_metrics, bad, "missing disk-cache counter")

    bad = json.loads(json.dumps(good_metrics))
    bad["scenarios"] = []
    rejects(validate_metrics, bad, "no scenarios")

    bad = dict(good_record, speedup=1.2)
    rejects(validate_bench, bad, "speedup below bar and inconsistent")

    bad = dict(good_record, after={"wall_s": 0.24}, speedup=1.25)
    rejects(validate_bench, bad, "pr5 speedup below the 1.3x bar")

    bad = dict(good_record, before={"wall_s": 0.10})
    rejects(validate_bench, bad, "after slower than before")

    rejects(validate_bench, {"schema": "reach-bench-v1", "experiments": []},
            "empty experiment list")

    rejects(validate_golden_fingerprints, "deadbeef  too-short-digest",
            "short digest / short file")
    rejects(validate_golden_fingerprints,
            "\n".join(["-" * 32 + f"  closure/{i}" for i in range(120)]),
            "everything uncacheable")

    rejects(validate_fleet,
            [("j1", good_fleet), ("j4", good_fleet + " drifted")],
            "non-identical fleet captures")
    rejects(validate_fleet, [("j1", good_fleet)], "a single capture")
    truncated = "\n".join(good_fleet.splitlines()[:-1])
    rejects(validate_fleet,
            [("j1", truncated), ("j4", truncated)],
            "a capture missing the x16 sweep row")
    rejects(validate_fleet,
            [("j1", "no header"), ("j4", "no header")],
            "a capture without the fleet header")

    rejects(validate_traffic,
            [("j1", good_traffic), ("j4", good_traffic + " drifted")],
            "non-identical traffic captures")
    rejects(validate_traffic, [("j1", good_traffic)],
            "a single traffic capture")
    below_knee = traffic_capture(lowest_rejected=3)
    rejects(validate_traffic, [("j1", below_knee), ("j4", below_knee)],
            "rejections at the lowest offered rate")
    non_monotone = traffic_capture(mean_step=-10.0)
    rejects(validate_traffic, [("j1", non_monotone), ("j4", non_monotone)],
            "mean latency falling as load rises")
    trace_drift = traffic_capture(trace_mean=301.0)
    rejects(validate_traffic, [("j1", trace_drift), ("j4", trace_drift)],
            "a trace row that does not replay the bursty row")
    short = "\n".join(good_traffic.splitlines()[:-3])
    rejects(validate_traffic, [("j1", short), ("j4", short)],
            "a capture missing sweep and demo rows")
    rejects(validate_traffic, [("j1", "no header"), ("j4", "no header")],
            "a capture without the traffic header")

    bad = dict(good_record, schema="reach-bench-pr8-v1",
               after={"wall_s": 0.12}, speedup=2.5)
    rejects(validate_bench, bad, "pr8 speedup below the 3.0x bar")

    validate_bench({"schema": "reach-bench-pr9-v1",
                    "before": {"wall_s": 0.30}, "after": {"wall_s": 0.20},
                    "speedup": 1.5})
    bad = dict(good_record, schema="reach-bench-pr9-v1",
               after={"wall_s": 0.24}, speedup=1.25)
    rejects(validate_bench, bad, "pr9 speedup below the 1.3x bar")

    good_simd = SIMD_SUITE_HEADER + "\n  Feature extraction  552 MB\nFIG 8.\n"
    validate_simd([("off_j1", good_simd), ("auto_j1", good_simd),
                   ("auto_j8", good_simd)])
    rejects(validate_simd, [("off_j1", good_simd)], "a single simd capture")
    rejects(validate_simd,
            [("off_j1", good_simd), ("auto_j1", good_simd + "drift")],
            "non-identical simd captures")
    rejects(validate_simd, [("off_j1", "no header"), ("auto_j1", "no header")],
            "a simd capture without the suite header")

    rows = "sweep/ReACH/nm4-ns4\nmakespan 1.000ms\n"
    cold = ("cold", rows, "(result cache: 0 mem hit(s), 1 mem miss(es), "
            "0 disk hit(s), 1 disk miss(es))")
    warm = ("warm", rows, "(result cache: 0 mem hit(s), 1 mem miss(es), "
            "1 disk hit(s), 0 disk miss(es))")
    validate_diskcache([cold, warm, warm])

    rejects(validate_diskcache, [cold], "a cold capture with no warm runs")
    rejects(validate_diskcache, [cold, ("warm", rows + "drift", warm[2])],
            "a warm run whose stdout drifted")
    rejects(validate_diskcache, [cold, ("warm", rows, cold[2])],
            "a warm run that simulated (nonzero disk misses)")
    rejects(validate_diskcache,
            [cold, ("warm", rows, "ran 1 scenario(s) in 0.1s")],
            "a warm run with no cache ledger on stderr")
    rejects(validate_diskcache, [("cold", rows, warm[2]), warm],
            "a cold run that hit a supposedly fresh store")
    rejects(validate_diskcache,
            [("cold", rows, "(result cache: 1 mem hit(s), 0 mem miss(es), "
              "0 disk hit(s), 0 disk miss(es))"), warm],
            "a cold run that never probed the disk tier")

    def graph_capture(visited=6, residuals="2.6e-1 8.1e-2 2.7e-2",
                      shared_p99=343.597, shared_ddr=4191788,
                      shared_admitted=None, shared_rejected=0,
                      graph_jobs=32, drop_tail=0):
        lines = [GRAPH_HEADER + " (BFS + PageRank, avg degree 8)"]
        for placement in GRAPH_PLACEMENTS:
            for scale in GRAPH_SCALES:
                lines.append(f"  bfs {placement} rmat/{scale}  8192 edges  "
                             f"0.100ms  1000000 ev/s  frontiers [1 3 2] "
                             f"visited {visited}")
                lines.append(f"  pagerank {placement} uniform/{scale}  "
                             f"8192 edges  0.100ms  1000000 ev/s  "
                             f"residuals [{residuals}]")
        lines.append(GRAPH_CORUN_HEADER + " (16 offered query batches)")
        solo_p99 = 274.878
        if shared_admitted is None:
            shared_admitted = 16 - shared_rejected
        for rate in GRAPH_CORUN_RATES:
            lines.append(f"  corun @{rate:>2}/s    solo  admitted 16/16 "
                         f"rejected  0  cbir-p99   {solo_p99:.3f}ms  "
                         f"ddr-contended        0cy")
            lines.append(f"  corun @{rate:>2}/s  shared  admitted "
                         f"{shared_admitted}/16 rejected {shared_rejected}  "
                         f"cbir-p99   {shared_p99:.3f}ms  ddr-contended  "
                         f"{shared_ddr}cy  aimbus-queued 0ps  graph-jobs "
                         f"{graph_jobs}  dispatches cbir/graph 144/192  "
                         f"p99-delta {shared_p99 - solo_p99:+.3f}ms")
        if drop_tail:
            lines = lines[:-drop_tail]
        return "\n".join(lines)

    good_graph = graph_capture()
    validate_graph([("j1", good_graph), ("j4", good_graph),
                    ("j8", good_graph)])

    rejects(validate_graph,
            [("j1", good_graph), ("j4", good_graph + " drifted")],
            "non-identical graph captures")
    rejects(validate_graph, [("j1", good_graph)], "a single graph capture")
    bad = graph_capture(visited=7)
    rejects(validate_graph, [("j1", bad), ("j4", bad)],
            "frontiers that do not sum to the visited count")
    bad = graph_capture(residuals="2.6e-1 8.1e-2 9.9e-2")
    rejects(validate_graph, [("j1", bad), ("j4", bad)],
            "a rising PageRank residual")
    bad = graph_capture(shared_p99=274.878)
    rejects(validate_graph, [("j1", bad), ("j4", bad)],
            "a co-run p99 not strictly above solo")
    bad = graph_capture(shared_ddr=0)
    rejects(validate_graph, [("j1", bad), ("j4", bad)],
            "a ddr contention gauge that never moved")
    bad = graph_capture(shared_admitted=16, shared_rejected=2)
    rejects(validate_graph, [("j1", bad), ("j4", bad)],
            "a co-run admission ledger that does not balance")
    bad = graph_capture(graph_jobs=0)
    rejects(validate_graph, [("j1", bad), ("j4", bad)],
            "a co-run with no graph batch jobs")
    bad = graph_capture(drop_tail=1)
    rejects(validate_graph, [("j1", bad), ("j4", bad)],
            "a capture missing the shared co-run row")
    rejects(validate_graph, [("j1", "no header"), ("j4", "no header")],
            "a capture without the graph headers")

    validate_identical([("a", "same bytes"), ("b", "same bytes")])
    rejects(validate_identical, [("a", "x"), ("b", "y")],
            "non-identical plain captures")
    rejects(validate_identical, [("a", "x")], "a single plain capture")
    rejects(validate_identical, [("a", ""), ("b", "")],
            "empty plain captures")

    good_pr10 = {
        "schema": "reach-bench-pr10-v1",
        "suite": {"ids": ["extension-graph", "extension-graph-corun"],
                  "wall_s": 0.5},
        "graph_events_per_sec": {"bfs/near-memory/rmat/16384": 1.5e8},
        "corun": [{
            "rate_per_sec": 4, "offered": 16,
            "solo_p99_ms": 274.878, "corun_p99_ms": 343.597,
            "p99_delta_ms": 68.719,
            "solo_ddr_contended_cy": 0, "corun_ddr_contended_cy": 4191788,
            "graph_jobs": 32,
        }],
    }
    validate_bench(good_pr10)

    bad = json.loads(json.dumps(good_pr10))
    bad["corun"][0]["corun_p99_ms"] = bad["corun"][0]["solo_p99_ms"]
    rejects(validate_bench, bad, "a pr10 record with no p99 price")
    bad = json.loads(json.dumps(good_pr10))
    bad["corun"][0]["p99_delta_ms"] = 1.0
    rejects(validate_bench, bad, "a pr10 record with inconsistent delta")
    bad = json.loads(json.dumps(good_pr10))
    bad["corun"][0]["corun_ddr_contended_cy"] = 0
    rejects(validate_bench, bad, "a pr10 record whose ddr gauge never moved")
    bad = json.loads(json.dumps(good_pr10))
    bad["corun"] = []
    rejects(validate_bench, bad, "a pr10 record with no corun entries")
    bad = json.loads(json.dumps(good_pr10))
    bad["graph_events_per_sec"] = {}
    rejects(validate_bench, bad, "a pr10 record with no throughput rows")
    bad = json.loads(json.dumps(good_pr10))
    bad["corun"][0]["graph_jobs"] = 0
    rejects(validate_bench, bad, "a pr10 record with no graph jobs")

    print("selftest ok: all validators accept good and reject bad inputs")


def main(argv):
    kinds = ("metrics", "bench", "golden", "fleet", "traffic", "graph",
             "diskcache", "simd", "suite", "identical", "selftest")
    if len(argv) < 2 or argv[1] not in kinds:
        print(__doc__, file=sys.stderr)
        return 2
    kind = argv[1]
    if kind == "selftest":
        selftest()
        return 0
    paths = argv[2:]
    if not paths:
        print(f"{kind}: no files given", file=sys.stderr)
        return 2
    if kind == "diskcache":
        try:
            check_diskcache(paths)
        except (ValidationError, OSError) as e:
            print(f"{kind}: {e}", file=sys.stderr)
            return 1
        return 0
    if kind in ("fleet", "traffic", "graph", "simd", "suite", "identical"):
        validate = {"fleet": validate_fleet, "traffic": validate_traffic,
                    "graph": validate_graph, "simd": validate_simd,
                    "suite": validate_simd,
                    "identical": validate_identical}[kind]
        try:
            check_captures(kind, validate, paths)
        except (ValidationError, OSError) as e:
            print(f"{kind}: {e}", file=sys.stderr)
            return 1
        return 0
    for path in paths:
        try:
            check_file(kind, path)
        except (ValidationError, OSError, json.JSONDecodeError, KeyError) as e:
            print(f"{path}: {e}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
