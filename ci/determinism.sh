#!/usr/bin/env bash
# One driver for CI's stdout-determinism steps.
#
#   ci/determinism.sh <name> <kind> [experiment ids...] [-- <leg>...]
#
# Captures the experiments binary's stdout/stderr under a matrix of legs,
# then hands every capture to `ci/validate.py <kind>`. Each leg is
#
#   <tag>[,VAR=VALUE...]:<extra flags>
#
# and its captures land in <name>_<tag>.out / <name>_<tag>.err. Without
# explicit legs the standard matrix runs: --jobs 1/4/8, --jobs 4
# --no-result-cache, --jobs 4 --result-cache-policy lru. The 'diskcache'
# validator kind receives stdout:stderr pairs; every other kind receives
# the stdout captures in leg order.
#
# Environment knobs:
#   DETERMINISM_BIN          binary to drive (default ./target/release/experiments)
#   DETERMINISM_EXTRA_LEGS   extra leg specs appended to the matrix,
#                            separated by ';'
#   DETERMINISM_SEED_REPLAY=1  additionally require that --seed 7 replays
#                            byte-identically across two fresh processes
#                            AND changes stdout versus the first leg
set -euo pipefail

if [[ $# -lt 2 ]]; then
  echo "usage: ci/determinism.sh <name> <kind> [experiment ids...] [-- <leg>...]" >&2
  exit 2
fi

name=$1
kind=$2
shift 2

ids=()
while [[ $# -gt 0 && $1 != "--" ]]; do
  ids+=("$1")
  shift
done
[[ $# -gt 0 ]] && shift # drop the "--"

legs=("$@")
if [[ ${#legs[@]} -eq 0 ]]; then
  legs=(
    "j1:--jobs 1"
    "j4:--jobs 4"
    "j8:--jobs 8"
    "nocache:--jobs 4 --no-result-cache"
    "lru:--jobs 4 --result-cache-policy lru"
  )
fi
if [[ -n ${DETERMINISM_EXTRA_LEGS:-} ]]; then
  IFS=';' read -r -a extra <<<"$DETERMINISM_EXTRA_LEGS"
  legs+=("${extra[@]}")
fi

bin=${DETERMINISM_BIN:-./target/release/experiments}

run_leg() { # run_leg <out> <err> <env-csv> <flags...>
  local out=$1 err=$2 envs=$3
  shift 3
  local assignments=()
  if [[ -n $envs ]]; then
    IFS=',' read -r -a assignments <<<"$envs"
  fi
  env "${assignments[@]}" "$bin" "${ids[@]}" "$@" >"$out" 2>"$err"
}

captures=()
for leg in "${legs[@]}"; do
  spec=${leg%%:*}
  flags=${leg#*:}
  tag=${spec%%,*}
  envs=""
  [[ $spec == *,* ]] && envs=${spec#*,}
  out="${name}_${tag}.out"
  err="${name}_${tag}.err"
  # shellcheck disable=SC2086 — leg flags are intentionally word-split.
  run_leg "$out" "$err" "$envs" $flags
  if [[ $kind == diskcache ]]; then
    captures+=("$out:$err")
  else
    captures+=("$out")
  fi
done

python3 ci/validate.py "$kind" "${captures[@]}"

if [[ ${DETERMINISM_SEED_REPLAY:-0} == 1 ]]; then
  "$bin" "${ids[@]}" --seed 7 >"${name}_s7a.out" 2>/dev/null
  "$bin" "${ids[@]}" --seed 7 >"${name}_s7b.out" 2>/dev/null
  cmp "${name}_s7a.out" "${name}_s7b.out"
  first=${captures[0]%%:*}
  if cmp -s "$first" "${name}_s7a.out"; then
    echo "determinism.sh: --seed 7 did not change the ${name} capture" >&2
    exit 1
  fi
fi
