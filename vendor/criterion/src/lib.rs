//! Offline stand-in for the `criterion` crate (see `vendor/README.md`).
//!
//! A smoke-run harness, not a statistical one: each `bench_function`
//! body executes its routine once and prints the elapsed wall time.
//! Supports `criterion_group!`/`criterion_main!`, [`Criterion`],
//! benchmark groups, [`Throughput`] and [`black_box`].

use std::time::Instant;

/// Re-export of [`std::hint::black_box`].
pub use std::hint::black_box;

/// Entry point handed to each bench function.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            sample_size: 1,
            throughput: None,
        }
    }

    /// Runs a single benchmark outside a group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, None, f);
        self
    }
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the smoke harness always runs
    /// each routine once.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Records the per-iteration workload for reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.throughput, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F>(name: &str, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        elapsed_ns: 0,
        iterations: 0,
    };
    f(&mut bencher);
    let per_iter = bencher.elapsed_ns as f64 / bencher.iterations.max(1) as f64;
    let rate = throughput.map(|t| t.describe(per_iter)).unwrap_or_default();
    println!("  bench {name}: {:.3} ms/iter{rate}", per_iter / 1.0e6);
}

/// Timer handle passed to each benchmark routine.
pub struct Bencher {
    elapsed_ns: u128,
    iterations: u64,
}

impl Bencher {
    /// Times `routine`. The smoke harness runs it exactly once.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        black_box(routine());
        self.elapsed_ns += start.elapsed().as_nanos();
        self.iterations += 1;
    }
}

/// Per-iteration workload, used to annotate reported timings.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

impl Throughput {
    fn describe(self, per_iter_ns: f64) -> String {
        let seconds = (per_iter_ns / 1.0e9).max(1.0e-12);
        match self {
            Throughput::Elements(n) => {
                format!(", {:.0} elem/s", n as f64 / seconds)
            }
            Throughput::Bytes(n) => {
                format!(", {:.1} MiB/s", n as f64 / seconds / (1024.0 * 1024.0))
            }
        }
    }
}

/// Collects bench functions into a named runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
