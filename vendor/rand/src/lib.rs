//! Offline stand-in for the `rand` crate (see `vendor/README.md`).
//!
//! Implements the subset of the rand 0.8 API this workspace uses:
//! [`Rng`], [`RngCore`], [`SeedableRng`], [`rngs::StdRng`] and the
//! [`distributions`] module with [`distributions::Standard`]. The generator
//! is xoshiro256\*\* seeded through SplitMix64 — deterministic and
//! high-quality, but *not* bit-compatible with upstream's ChaCha12.

pub mod distributions;
pub mod rngs;

use distributions::{DistIter, Distribution, Standard};
use std::ops::Range;

/// The raw generator interface.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// The fixed-size seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let out = splitmix64(&mut state);
            let bytes = out.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Values that [`Rng::gen_range`] can sample uniformly.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform sample from `[start, end)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self {
                let width = (end as i128 - start as i128) as u128;
                let v = ((u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())) % width;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self {
        let u = (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32);
        let v = start + (end - start) * u;
        if v < end {
            v
        } else {
            start
        }
    }
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self {
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = start + (end - start) * u;
        if v < end {
            v
        } else {
            start
        }
    }
}

/// Argument forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_range(rng, self.start, self.end)
    }
}

/// The user-facing generator interface (blanket-implemented for every
/// [`RngCore`]).
pub trait Rng: RngCore {
    /// Samples a value through the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Uniform sample from a half-open range.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
    {
        range.sample_one(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_range(self, 0.0, 1.0) < p
    }

    /// Samples a value through `distr`.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }

    /// An iterator of samples from `distr`, consuming the generator.
    fn sample_iter<T, D: Distribution<T>>(self, distr: D) -> DistIter<D, Self, T>
    where
        Self: Sized,
    {
        DistIter::new(distr, self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn seeded_streams_replay() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: usize = r.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f: f32 = r.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
            let s: i64 = r.gen_range(-1_000i64..1_000);
            assert!((-1_000..1_000).contains(&s));
        }
    }

    #[test]
    fn standard_floats_are_unit_interval() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
            let g: f32 = r.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }
}
