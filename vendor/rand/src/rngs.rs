//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard generator: xoshiro256\*\*.
///
/// Deterministic, cheap to clone, and `Send` — but not bit-compatible
/// with the upstream `rand::rngs::StdRng` stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    fn step(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.step() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.step()
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
            *word = u64::from_le_bytes(bytes);
        }
        // xoshiro must not start from the all-zero state.
        if s == [0; 4] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0xBF58_476D_1CE4_E5B9,
                0x94D0_49BB_1331_11EB,
                0x2545_F491_4F6C_DD1D,
            ];
        }
        StdRng { s }
    }
}
