//! Sampling distributions.

use crate::RngCore;
use std::marker::PhantomData;

/// Maps raw generator output to values of type `T`.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution for a type: full-width uniform for
/// integers, uniform `[0, 1)` for floats, fair coin for `bool`.
#[derive(Clone, Copy, Debug, Default)]
pub struct Standard;

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<u128> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Iterator returned by [`crate::Rng::sample_iter`].
pub struct DistIter<D, R, T> {
    distr: D,
    rng: R,
    _marker: PhantomData<T>,
}

impl<D, R, T> DistIter<D, R, T> {
    pub(crate) fn new(distr: D, rng: R) -> Self {
        DistIter {
            distr,
            rng,
            _marker: PhantomData,
        }
    }
}

impl<D, R, T> Iterator for DistIter<D, R, T>
where
    D: Distribution<T>,
    R: RngCore,
{
    type Item = T;

    fn next(&mut self) -> Option<T> {
        Some(self.distr.sample(&mut self.rng))
    }
}
