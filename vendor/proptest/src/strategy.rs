//! Value-generation strategies.

use rand::distributions::{Distribution, Standard};
use rand::rngs::StdRng;
use rand::{Rng, SampleUniform};
use std::marker::PhantomData;
use std::ops::Range;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

impl<T> Strategy for Range<T>
where
    T: SampleUniform + std::fmt::Debug,
{
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}
impl_strategy_tuple!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
);

/// Strategy returned by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(PhantomData<T>);

/// Generates an arbitrary value of `T` via the [`Standard`] distribution.
pub fn any<T>() -> Any<T>
where
    Standard: Distribution<T>,
{
    Any(PhantomData)
}

impl<T> Strategy for Any<T>
where
    T: std::fmt::Debug,
    Standard: Distribution<T>,
{
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen()
    }
}
