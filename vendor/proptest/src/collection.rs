//! Collection strategies.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::ops::Range;

/// A half-open length range; built from `usize` (exact) or `Range<usize>`.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    start: usize,
    end: usize,
}

impl From<usize> for SizeRange {
    fn from(len: usize) -> Self {
        SizeRange {
            start: len,
            end: len + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange {
            start: r.start,
            end: r.end,
        }
    }
}

/// Strategy returned by [`vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generates a `Vec` whose elements come from `element` and whose length
/// falls in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        let len = if self.size.start + 1 >= self.size.end {
            self.size.start
        } else {
            rng.gen_range(self.size.start..self.size.end)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
