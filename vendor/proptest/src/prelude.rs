//! Glob-import surface matching `proptest::prelude`.

pub use crate::strategy::{any, Strategy};
pub use crate::test_runner::ProptestConfig;
pub use crate::{prop_assert, prop_assert_eq, proptest};
