//! Test-runner configuration.

/// Per-`proptest!` block configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real proptest defaults to 256; 64 keeps full-stack
        // simulation properties fast while still exercising variety.
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` generated cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic per-test seed: FNV-1a over the test name.
pub fn case_seed(name: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}
