//! Offline stand-in for the `proptest` crate (see `vendor/README.md`).
//!
//! Supports the subset of the proptest 1.x API this workspace uses: the
//! [`proptest!`] macro (with an optional `#![proptest_config(..)]` block
//! attribute), [`prop_assert!`]/[`prop_assert_eq!`], range / tuple /
//! `any::<T>()` strategies and [`collection::vec`]. Cases are generated
//! deterministically from a per-test seed derived from the test name;
//! there is no shrinking — a failing case prints its inputs instead.

pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

#[doc(hidden)]
pub mod __rt {
    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(
            @cfg($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let __config = $cfg;
            let mut __rng = <$crate::__rt::StdRng as $crate::__rt::SeedableRng>::seed_from_u64(
                $crate::test_runner::case_seed(::std::stringify!($name)),
            );
            for __case in 0..__config.cases {
                let __vals = (
                    $($crate::strategy::Strategy::generate(&($strat), &mut __rng),)+
                );
                let __shown = ::std::format!("{:?}", __vals);
                let __result = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| {
                        let ($($arg,)+) = __vals;
                        $body
                    }),
                );
                if let ::std::result::Result::Err(__panic) = __result {
                    ::std::eprintln!(
                        "proptest {}: failing case {}/{}, inputs = {}",
                        ::std::stringify!($name),
                        __case + 1,
                        __config.cases,
                        __shown,
                    );
                    ::std::panic::resume_unwind(__panic);
                }
            }
        }
        $crate::__proptest_impl!(@cfg($cfg) $($rest)*);
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { ::std::assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { ::std::assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => { ::std::assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        ::std::assert_eq!($left, $right, $($fmt)+)
    };
}
