//! Mapping explorer: sweep every stage->level mapping and instance count.
//!
//! The paper evaluates four mappings; the hierarchy supports 3^3 = 27
//! (every stage at any level). This example scores all of them and prints
//! the Pareto view, demonstrating how the decoupled configuration lets an
//! operator re-map a deployed application without touching its code.
//!
//! ```text
//! cargo run --example mapping_explorer --release
//! ```

use reach::{Level, MachineBlueprint, SystemConfig};
use reach_cbir::pipeline::CbirStage;
use reach_cbir::{CbirMapping, CbirPipeline, CbirWorkload};

/// A fully general mapping: each stage independently placed.
fn mapping_name(levels: [Level; 3]) -> String {
    let short = |l: Level| match l {
        Level::OnChip => "chip",
        Level::NearMem => "mem",
        Level::NearStor => "stor",
        Level::Cpu => "cpu",
    };
    format!(
        "{}/{}/{}",
        short(levels[0]),
        short(levels[1]),
        short(levels[2])
    )
}

fn main() {
    let w = CbirWorkload::paper_setup();
    let batches = 4;

    // Baseline for normalization.
    let base = CbirPipeline::new(w, CbirMapping::AllOnChip)
        .run(&mut MachineBlueprint::paper().instantiate(), batches);

    println!(
        "{:<16} {:>12} {:>12} {:>10}   (vs on-chip baseline)",
        "mapping (fe/sl/rr)", "batches/s", "latency", "J/batch"
    );

    // The four named mappings first...
    let mut results: Vec<(String, f64, f64, f64)> = Vec::new();
    for mapping in CbirMapping::ALL {
        let r = CbirPipeline::new(w, mapping)
            .run(&mut MachineBlueprint::paper().instantiate(), batches);
        let levels = [
            mapping.level_of(CbirStage::FeatureExtraction),
            mapping.level_of(CbirStage::ShortList),
            mapping.level_of(CbirStage::Rerank),
        ];
        results.push((
            format!("{} [{}]", mapping_name(levels), mapping.name()),
            r.throughput_jobs_per_sec(),
            r.job_latency_mean.as_ms_f64(),
            r.energy_per_job_j(),
        ));
    }

    // ...then an instance-count sweep of the proper mapping.
    for (nm, ns) in [(1, 1), (2, 2), (4, 4), (8, 8)] {
        let cfg = SystemConfig::paper_table2()
            .with_near_memory(nm)
            .with_near_storage(ns);
        let r = CbirPipeline::new(w, CbirMapping::Proper)
            .run(&mut MachineBlueprint::new(cfg).instantiate(), batches);
        results.push((
            format!("chip/mem/stor x{nm}/{ns}"),
            r.throughput_jobs_per_sec(),
            r.job_latency_mean.as_ms_f64(),
            r.energy_per_job_j(),
        ));
    }

    for (name, tput, lat, energy) in &results {
        println!(
            "{:<22} {:>8.2}/s {:>9.1}ms {:>9.2}J   ({:.2}x tput, {:.2}x energy)",
            name,
            tput,
            lat,
            energy,
            tput / base.throughput_jobs_per_sec(),
            energy / base.energy_per_job_j()
        );
    }

    let best = results
        .iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite throughput"))
        .expect("non-empty sweep");
    println!();
    println!("best throughput: {}", best.0);
}
