//! GAM asynchronous task-flow control, made visible.
//!
//! The paper's GAM "assigns tasks from the next job to accelerators without
//! waiting for all the tasks in the previous job to complete". This example
//! runs the same 8-batch workload twice — once synchronously (conventional
//! host-driven flow) and once under the GAM — and prints the pipelining
//! gain plus the GAM's own statistics (dispatches, status polls, DMAs).
//!
//! ```text
//! cargo run --example gam_pipelining --release
//! ```

use reach_cbir::{CbirMapping, CbirPipeline, CbirWorkload};

fn main() {
    let w = CbirWorkload::paper_setup();
    let p = CbirPipeline::new(w, CbirMapping::Proper);
    let batches = 8;

    let seq = p.run_sequential(&mut reach_cbir::blueprint_with(4, 4).instantiate(), batches);
    let pipe = p.run(&mut reach_cbir::blueprint_with(4, 4).instantiate(), batches);

    println!("== {batches} batches, proper mapping (FE on-chip, SL near-mem, RR near-storage) ==");
    println!(
        "synchronous host flow : {} ({:.2} batches/s)",
        seq.makespan,
        seq.throughput_jobs_per_sec()
    );
    println!(
        "GAM pipelined flow    : {} ({:.2} batches/s)",
        pipe.makespan,
        pipe.throughput_jobs_per_sec()
    );
    println!(
        "pipelining gain       : {:.2}x",
        seq.makespan.as_secs_f64() / pipe.makespan.as_secs_f64()
    );

    println!();
    println!("GAM statistics (pipelined run):");
    let g = pipe.gam;
    println!(
        "  jobs        submitted {} / completed {}",
        g.jobs_submitted, g.jobs_completed
    );
    println!("  dispatches  {}", g.dispatches);
    println!(
        "  status polls {} sent, {} found the task still running",
        g.polls_sent, g.polls_missed
    );
    println!(
        "  DMA         {} transfers, {:.1} MB",
        g.dmas,
        g.dma_bytes as f64 / 1e6
    );

    println!();
    println!("stage occupancy (pipelined run):");
    for s in &pipe.stages {
        println!(
            "  {:<24} busy {:>12} window {:>12}  ({} tasks)",
            s.name,
            s.busy.to_string(),
            s.span().to_string(),
            s.tasks
        );
    }
    println!();
    println!(
        "note how every stage's window covers most of the {} makespan:\n\
         all three levels work concurrently on different batches.",
        pipe.makespan
    );
}
