//! Fleet scatter-gather: the billion-vector dataset sharded across N
//! machines.
//!
//! Three views of the fleet topology layer:
//!
//! 1. The *functional* contract — a dataset split across shards answers a
//!    query with per-shard partial top-K lists whose merge equals the
//!    unsharded answer exactly (`merge_top_k`).
//! 2. The *timing* sweep — `fleet_scatter_gather_with` runs N in
//!    {1, 2, 4, 8, 16} shards at both placements; each shard simulates the
//!    paper's pipeline over 1/N-th of the dataset and the aggregator's
//!    broadcast/collect/merge is billed on the inter-machine link.
//! 3. The *link sensitivity* — the same 8-shard fleet over a rack link
//!    (2 us, 100 GbE) versus a WAN-class link (500 us, 1 GB/s), showing
//!    where scatter-gather stops scaling.
//!
//! ```text
//! cargo run --example fleet_scatter_gather --release
//! ```

use reach::fleet::{FleetScenario, InterMachineLink, ShardPlacement};
use reach::{ScenarioExecutor, SequentialExecutor, SimDuration};
use reach_cbir::fleet::{fleet_scatter_gather_with, CbirFleetScenario, FLEET_BATCHES};
use reach_cbir::{merge_top_k, top_k};
use reach_sim::Bandwidth;

fn main() {
    // --- 1. Sharded retrieval is exact, not approximate -----------------
    // 24 candidates round-robined across 3 shards; each shard returns its
    // own top-4 (with *global* indices), the aggregator merges.
    let candidates: Vec<(f32, usize)> = (0..24)
        .map(|i| ((((i * 7919) % 97) as f32) / 97.0, i))
        .collect();
    let shards: Vec<Vec<(f32, usize)>> = (0..3)
        .map(|s| top_k(candidates.iter().copied().filter(|(_, i)| i % 3 == s), 4))
        .collect();
    let merged = merge_top_k(&shards, 4);
    let global = top_k(candidates.iter().copied(), 4);
    assert_eq!(merged, global, "scatter-gather must be lossless");
    println!("merged top-4 across 3 shards == unsharded top-4: {merged:?}");
    println!();

    // --- 2. The scatter-gather sweep ------------------------------------
    // The same table the `experiments` binary prints as `extension-fleet`.
    println!("fleet scatter-gather sweep ({FLEET_BATCHES} query batches per point):");
    for row in fleet_scatter_gather_with(&SequentialExecutor) {
        println!("  {row}");
    }
    println!();

    // --- 3. The link sets the scaling floor -----------------------------
    let rack = CbirFleetScenario::sharded(8, ShardPlacement::NearStorage, FLEET_BATCHES);
    let wan = rack.clone().map_fleet(|f| {
        f.with_link(InterMachineLink::new(
            SimDuration::from_us(500),
            Bandwidth::from_bytes_per_sec(1_000_000_000),
        ))
    });
    let fleets: Vec<Box<dyn FleetScenario>> = vec![Box::new(rack), Box::new(wan)];
    let results = SequentialExecutor.run_fleets(fleets);
    println!("8-shard fleet, rack link vs WAN link:");
    for (name, r) in ["rack (2us, 12.5GB/s)", "wan (500us, 1.0GB/s)"]
        .iter()
        .zip(&results)
    {
        println!(
            "  {name:<22} makespan {:>9.3}ms  throughput {:>8.1} jobs/s",
            r.report.makespan.as_ms_f64(),
            r.report.throughput_jobs_per_sec()
        );
    }
}
