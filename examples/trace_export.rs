//! Export the GAM schedule as a Chrome/Perfetto trace.
//!
//! Runs four CBIR batches under the proper mapping with tracing enabled and
//! writes `reach-trace.json`; load it in <https://ui.perfetto.dev> (or
//! chrome://tracing) to *see* the three levels working on different batches
//! concurrently — the paper's Figure 6/7 coordination, as a timeline.
//!
//! ```text
//! cargo run --example trace_export --release
//! ```

use reach_cbir::{CbirMapping, CbirPipeline, CbirWorkload};

fn main() -> std::io::Result<()> {
    let mut machine = reach_cbir::blueprint_with(4, 4).instantiate();
    machine.enable_trace();

    let pipeline = CbirPipeline::new(CbirWorkload::paper_setup(), CbirMapping::Proper);
    let report = pipeline.build(&machine).run(&mut machine, 4);

    let trace = machine.trace().expect("tracing was enabled");
    let path = "reach-trace.json";
    std::fs::write(path, trace.to_chrome_json())?;

    println!("{report}");
    println!();
    println!(
        "wrote {path}: {} events ({} tasks, {} transfers, {} polls)",
        trace.len(),
        trace
            .events()
            .iter()
            .filter(|e| e.kind == reach::TraceKind::Task)
            .count(),
        trace
            .events()
            .iter()
            .filter(|e| e.kind == reach::TraceKind::Dma)
            .count(),
        trace
            .events()
            .iter()
            .filter(|e| e.kind == reach::TraceKind::Poll)
            .count(),
    );
    println!("open it in https://ui.perfetto.dev to inspect the GAM schedule.");
    Ok(())
}
