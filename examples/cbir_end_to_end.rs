//! End-to-end CBIR: functional retrieval quality *and* simulated
//! performance of the same pipeline.
//!
//! The functional half builds a synthetic feature database, indexes it with
//! k-means (the paper's offline stage), answers a query batch through the
//! short-list + rerank pipeline, and scores recall against exact brute
//! force. The timed half deploys the billion-scale geometry of the same
//! pipeline on the ReACH machine model with the paper's proper mapping.
//!
//! ```text
//! cargo run --example cbir_end_to_end --release
//! ```

use reach_cbir::dataset::{recall, Dataset};
use reach_cbir::ivf::IvfIndex;
use reach_cbir::{CbirMapping, CbirPipeline, CbirWorkload, FeatureNet};
use reach_sim::rng::{derived, DEFAULT_SEED};

fn main() {
    // ---------------- functional half ----------------
    println!("== functional CBIR (laptop-scale, algorithmically complete) ==");
    let mut rng = derived(DEFAULT_SEED, "example-e2e");

    // Raw "images" are 256-dim signals; features are 96-dim embeddings.
    let raw = Dataset::gaussian_mixture(20_000, 256, 64, 0.4, &mut rng);
    let net = FeatureNet::new(256, 96, 1, DEFAULT_SEED);
    println!("extracting features for {} images ...", raw.len());
    let db = net.extract_batch(&raw.points);

    // Offline stage: k-means index over the feature space.
    let index = IvfIndex::build(&db, 64, &mut rng);
    println!("built IVF index with {} clusters", index.clusters());

    // Online stage: a 16-query batch through feature extraction,
    // short-list retrieval and rerank.
    let (raw_queries, _) = raw.queries(16, 0.02, &mut rng);
    let queries = net.extract_batch(&raw_queries);
    let feature_db = Dataset {
        points: db.clone(),
        labels: raw.labels.clone(),
        means: raw.means.clone(),
    };
    let truth = feature_db.ground_truth(&queries, 10);

    for nprobe in [1, 2, 4, 8] {
        let got = index.search(&db, &queries, nprobe, 10, Some(4096));
        let r = recall(&got, &truth, 10);
        println!("  nprobe={nprobe:<2} recall@10 = {:.3}", r.recall_at_k);
    }

    // ---------------- timed half ----------------
    println!();
    println!("== timed CBIR (billion-scale geometry on the ReACH model) ==");
    let workload = CbirWorkload::paper_setup();
    for mapping in [CbirMapping::AllOnChip, CbirMapping::Proper] {
        let pipeline = CbirPipeline::new(workload, mapping);
        let mut machine = reach_cbir::blueprint_with(4, 4).instantiate();
        let report = pipeline.run(&mut machine, 4);
        println!(
            "  {:<12} {:.2} batches/s, {} latency, {:.1} J/batch",
            mapping.name(),
            report.throughput_jobs_per_sec(),
            report.job_latency_mean,
            report.energy_per_job_j()
        );
    }
    println!();
    println!("(run `cargo run -p reach-bench --bin experiments --release` for every paper figure)");
}
