//! Registering a custom accelerator template.
//!
//! The ReACH runtime ships the paper's Table III kernels, but the template
//! registry is open: any synthesized kernel (part, frequency, utilization,
//! power, datapath width) can be added and deployed at its level. Here we
//! add a hypothetical compression kernel for the near-storage level and a
//! beefier scan kernel for the on-chip level, then run a two-stage
//! filter-then-reduce analytics pipeline — a different application on the
//! same hierarchy.
//!
//! ```text
//! cargo run --example custom_kernel --release
//! ```

use reach::{
    ComputeLevel, KernelSpec, Level, MachineBlueprint, Pipeline, ReachConfig, StreamType,
    SystemConfig, TaskWork, TemplateRegistry,
};
use reach_accel::{FpgaPart, KernelClass, Utilization};
use reach_sim::Frequency;

fn main() {
    // Start from the paper's registry and add two user kernels.
    let mut registry = TemplateRegistry::paper_table3();

    // A streaming scan/filter kernel near storage: modest logic, wide
    // datapath — it should drink at the device-link rate.
    registry.register(KernelSpec {
        name: "SCAN-ZCU9",
        class: KernelClass::Knn, // streaming-comparison family
        part: FpgaPart::zu9eg(),
        level: ComputeLevel::NearStorage,
        frequency: Frequency::from_mhz(200),
        utilization: Utilization::new(15, 18, 8, 30),
        power_w: 3.1,
        mac_efficiency: 0.5,
        pipeline_depth: 32,
        io_bytes_per_cycle: 64.0, // 12.8 GB/s at 200 MHz
        arg_slots: 2,
    });

    // An on-chip aggregation kernel that reduces the filtered stream.
    registry.register(KernelSpec {
        name: "AGG-VU9P",
        class: KernelClass::Gemm, // dense-arithmetic family
        part: FpgaPart::vu9p(),
        level: ComputeLevel::OnChip,
        frequency: Frequency::from_mhz(273),
        utilization: Utilization::new(20, 22, 35, 40),
        power_w: 14.0,
        mac_efficiency: 0.8,
        pipeline_depth: 64,
        io_bytes_per_cycle: 128.0,
        arg_slots: 2,
    });

    let mut machine =
        MachineBlueprint::with_registry(SystemConfig::paper_table2(), registry).instantiate();

    // Filter 64 GB of table data on the SSDs (selectivity ~1%), aggregate
    // the survivors on-chip.
    let table_bytes: u64 = 64 << 30;
    let shards = machine.config().near_storage_accelerators as u64;
    let filtered_bytes = table_bytes / 100;

    let mut cfg = ReachConfig::new();
    let table = cfg.create_fixed_buffer("table", Level::NearStor, table_bytes);
    let filtered = cfg.create_stream(
        Level::NearStor,
        Level::OnChip,
        StreamType::Collect,
        filtered_bytes,
        2,
    );
    let result = cfg.create_stream(Level::OnChip, Level::Cpu, StreamType::Pair, 4 << 10, 2);

    let mut scan_accs = Vec::new();
    for _ in 0..shards {
        let acc = cfg.register_acc("SCAN-ZCU9", Level::NearStor);
        cfg.set_arg(acc, 0, table);
        cfg.set_arg(acc, 1, filtered);
        scan_accs.push(acc);
    }
    let agg = cfg.register_acc("AGG-VU9P", Level::OnChip);
    cfg.set_arg(agg, 0, filtered);
    cfg.set_arg(agg, 1, result);

    // Validate against the machine's (extended) registry.
    let mut pipeline = Pipeline::new(
        cfg.build_with(machine.registry())
            .expect("custom kernels resolve"),
    );
    for &acc in &scan_accs {
        pipeline.call(
            acc,
            TaskWork::stream(table_bytes / shards / 16, table_bytes / shards),
            "1-scan-filter",
        );
    }
    pipeline.call(
        agg,
        TaskWork::stream(filtered_bytes * 4, filtered_bytes),
        "2-aggregate",
    );

    let report = pipeline.run(&mut machine, 1);
    println!(
        "scanned {} GB across {} near-storage units:",
        table_bytes >> 30,
        shards
    );
    println!("{report}");

    let scan = report.stage("1-scan-filter").expect("scan stage ran");
    let effective = table_bytes as f64 / scan.span().as_secs_f64() / 1e9;
    println!(
        "aggregate scan rate: {effective:.1} GB/s \
         (vs ~12 GB/s that the host IO interface alone could deliver)"
    );
}
