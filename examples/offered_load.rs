//! Offered-load operating curves: per-query latency vs arrival rate.
//!
//! The paper states CBIR throughput "is crucial to user experience" and
//! assumes queries arrive "sufficiently frequent for batched processing".
//! This example makes that operational: Poisson query arrivals are batched
//! (16 per batch, 50 ms deadline) and driven through the on-chip baseline
//! and the ReACH proper mapping. As the arrival rate approaches a
//! configuration's bottleneck service rate, queueing delay explodes — and
//! ReACH sustains several times the load before it does.
//!
//! ```text
//! cargo run --example offered_load --release
//! ```

use reach::host::{drive, ArrivalProcess, Batcher};
use reach::SimDuration;
use reach_cbir::{CbirMapping, CbirPipeline, CbirWorkload};

fn main() {
    let w = CbirWorkload::paper_setup();
    // Full batches only: the timing workload models a fixed 16-query batch,
    // so the batcher waits for 16 arrivals (at low rates the batch-formation
    // wait itself becomes the latency floor — visible below).
    let batcher = Batcher {
        batch_size: w.batch,
        max_wait: None,
    };
    let queries = 320; // 20 full batches

    println!(
        "{:<26} {:>14} {:>14} {:>12}",
        "queries/s offered", "mean latency", "max latency", "batches"
    );
    for (name, mapping) in [
        ("on-chip", CbirMapping::AllOnChip),
        ("ReACH", CbirMapping::Proper),
    ] {
        println!("--- {name} ---");
        for qps in [20u64, 30, 60, 120, 150, 320] {
            let mean_gap = SimDuration::from_secs_f64(1.0 / qps as f64);
            let arrivals = ArrivalProcess::Poisson {
                mean_gap,
                seed: 0xA11CE,
            }
            .arrivals(queries);
            let batches = batcher.form(&arrivals);
            let pipeline = CbirPipeline::new(w, mapping)
                .build(&reach_cbir::blueprint_with(4, 4).instantiate());
            let mut machine = reach_cbir::blueprint_with(4, 4).instantiate();
            let report = drive(&pipeline, &mut machine, &batches);
            println!(
                "{:<26} {:>14} {:>14} {:>12}",
                format!("{qps} q/s"),
                report.mean.to_string(),
                report.max.to_string(),
                report.batches
            );
        }
    }
    println!();
    println!(
        "the on-chip baseline saturates near ~38 q/s (16 queries / ~420 ms);\n\
         ReACH stays stable to ~150 q/s (16 queries / ~100 ms bottleneck stage).\n\
         At 20 q/s both floors are dominated by the 16-query batch-formation wait."
    );
}
