//! Near-data analytics on ReACH: the paper's motivating workload class.
//!
//! Runs selective scan + aggregate queries over SSD-resident tables, both
//! functionally (a real columnar filter/aggregate, checked against the
//! data) and on the timing model (host-side vs near-storage placement).
//!
//! ```text
//! cargo run --example analytics_offload --release
//! ```

use rand::Rng;
use reach_analytics::{Aggregate, AnalyticsPlacement, Predicate, ScanQuery, Table};
use reach_sim::rng::{derived, DEFAULT_SEED};

fn main() {
    // ---- functional: a checkable filter/aggregate/join ----
    println!("== functional columnar engine ==");
    let mut rng = derived(DEFAULT_SEED, "analytics-example");
    let mut orders = Table::new(&["id", "customer", "amount"]);
    for i in 0..50_000i64 {
        orders.push(&[i, rng.gen_range(0..1_000), rng.gen_range(1..10_000)]);
    }
    let survivors = orders.filter("amount", Predicate::AtLeast(9_900));
    let revenue = orders.aggregate("amount", &survivors, Aggregate::Sum);
    println!(
        "  {} rows scanned, {} survive `amount >= 9900` ({:.2}%), sum = {}",
        orders.rows(),
        survivors.len(),
        100.0 * survivors.len() as f64 / orders.rows() as f64,
        revenue
    );

    let mut customers = Table::new(&["cid", "region"]);
    for c in 0..1_000i64 {
        customers.push(&[c, c % 7]);
    }
    let joined = orders.hash_join("customer", &customers, "cid");
    println!("  hash join orders x customers: {} matches", joined.len());

    // ---- timed: placement comparison on the hierarchy ----
    println!();
    println!("== timed placement comparison (64 GB table, 4 SSDs) ==");
    println!(
        "{:<16} {:>14} {:>12} {:>10}",
        "selectivity", "host", "near-storage", "speedup"
    );
    for sel in [1u32, 10, 50, 100] {
        let q = ScanQuery {
            table_bytes: 16 << 30,
            selectivity_pct: sel,
            row_bytes: 64,
        };
        let host = q.run(AnalyticsPlacement::Host);
        let near = q.run(AnalyticsPlacement::NearStorage);
        println!(
            "{:<16} {:>14} {:>12} {:>9.2}x",
            format!("{sel}%"),
            host.makespan.to_string(),
            near.makespan.to_string(),
            host.makespan.as_secs_f64() / near.makespan.as_secs_f64()
        );
    }
    println!();
    println!(
        "selection pushed to the SSDs exposes the aggregate flash bandwidth\n\
         and ships only survivors — the same mechanism behind the CBIR rerank win."
    );
}
