//! Quickstart: configure a two-level meta accelerator and run one batch.
//!
//! This is the paper's Listing 2 + Listing 3 in ~40 lines: an on-chip CNN
//! feeding near-storage KNN accelerators through a broadcast stream, driven
//! by the GAM.
//!
//! ```text
//! cargo run --example quickstart --release
//! ```

use reach::{Level, MachineBlueprint, Pipeline, ReachConfig, StreamType, TaskWork};

fn main() {
    // --- config.h: buffers, streams, accelerators (Listing 2) ---
    let mut cfg = ReachConfig::new();

    // CNN parameters live in on-chip SRAM; the feature database on an SSD.
    let vgg_param = cfg.create_fixed_buffer("vgg16_param", Level::OnChip, 11_300_000);
    let db0 = cfg.create_fixed_buffer("feature_db0", Level::NearStor, 128 << 20);
    let db1 = cfg.create_fixed_buffer("feature_db1", Level::NearStor, 128 << 20);

    // Streams: query images in from the CPU, features broadcast down the
    // hierarchy, results collected back.
    let input = cfg.create_stream(Level::Cpu, Level::OnChip, StreamType::Pair, 2 << 20, 2);
    let features = cfg.create_stream(
        Level::OnChip,
        Level::NearStor,
        StreamType::Broadcast,
        6_144,
        2,
    );
    let result = cfg.create_stream(Level::NearStor, Level::Cpu, StreamType::Collect, 1_280, 2);

    // Accelerators: one on-chip CNN, two near-storage KNN shards.
    let cnn = cfg.register_acc("VGG16-VU9P", Level::OnChip);
    cfg.set_arg(cnn, 0, input);
    cfg.set_arg(cnn, 1, vgg_param);
    cfg.set_arg(cnn, 2, features);
    let knn0 = cfg.register_acc("KNN-ZCU9", Level::NearStor);
    cfg.set_arg(knn0, 0, features);
    cfg.set_arg(knn0, 1, db0);
    cfg.set_arg(knn0, 2, result);
    let knn1 = cfg.register_acc("KNN-ZCU9", Level::NearStor);
    cfg.set_arg(knn1, 0, features);
    cfg.set_arg(knn1, 1, db1);
    cfg.set_arg(knn1, 2, result);

    // --- host.cpp: the flow (Listing 3) ---
    // build() validates templates, arities and stream placement up front.
    let mut pipeline = Pipeline::new(cfg.build().expect("valid configuration"));
    pipeline.call(
        cnn,
        TaskWork::compute(16 * 7_750_000_000),
        "feature-extraction",
    );
    pipeline.call(
        knn0,
        TaskWork::gather(16 * 2048 * 96, 128 << 20, 4096),
        "rerank",
    );
    pipeline.call(
        knn1,
        TaskWork::gather(16 * 2048 * 96, 128 << 20, 4096),
        "rerank",
    );

    // --- run on the paper's Table II machine ---
    let mut machine = MachineBlueprint::paper().instantiate();
    let report = pipeline.run(&mut machine, 4);

    println!("ran {} batches in {}", report.jobs, report.makespan);
    println!(
        "throughput: {:.2} batches/s, energy: {:.2} J/batch",
        report.throughput_jobs_per_sec(),
        report.energy_per_job_j()
    );
    println!();
    println!("{report}");
}
