//! The persistent result-cache tier, end to end: a second runner — or a
//! second *process* — backed by the same cache directory replays
//! previously simulated scenarios from disk, byte-identically, at any job
//! count; a stale or unwritable store degrades to plain simulation without
//! changing a single output byte.

use reach::{ScenarioExecutor, ScenarioResult};
use reach_bench::diskcache::DISKCACHE_FILE;
use reach_bench::sweep::SweepArgs;
use reach_bench::{DiskCache, ScenarioRunner};
use std::path::PathBuf;
use std::process::Command;

/// A unique, freshly created scratch directory per test.
fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "reach-diskcache-it-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// A cheap two-point sweep grid (two machine shapes, tiny batches).
fn grid() -> SweepArgs {
    let tokens: Vec<String> = [
        "--nm",
        "1,2",
        "--ns",
        "1",
        "--batches",
        "1",
        "--batch-size",
        "4",
        "--candidates",
        "64",
    ]
    .iter()
    .map(ToString::to_string)
    .collect();
    SweepArgs::parse(&tokens).expect("grid args parse")
}

fn render(results: &[ScenarioResult]) -> String {
    results
        .iter()
        .map(|r| format!("{}\n{}", r.label, r.report))
        .collect()
}

#[test]
fn warm_runner_replays_from_disk_without_simulating() {
    let dir = temp_dir("warm");
    let grid = grid();

    let cold = ScenarioRunner::new(2).with_disk_cache(&dir);
    let cold_out = render(&cold.run_all(grid.scenarios()));
    let cold_mem = cold.cache_stats();
    let cold_disk = cold.disk_cache_stats();
    assert_eq!(cold_mem.misses, 2);
    assert_eq!(cold_disk.hits, 0);
    assert_eq!(cold_disk.misses, 2, "every memory miss probes the disk");
    assert!(dir.join(DISKCACHE_FILE).exists(), "cold run persisted");

    // A brand-new runner (fresh, empty memory tier) on the same directory:
    // every lookup falls through to disk and hits — nothing simulates.
    let warm = ScenarioRunner::new(2).with_disk_cache(&dir);
    let warm_out = render(&warm.run_all(grid.scenarios()));
    assert_eq!(cold_out, warm_out, "disk replay changed the output");
    let warm_mem = warm.cache_stats();
    let warm_disk = warm.disk_cache_stats();
    assert_eq!(warm_mem.misses, 2);
    assert_eq!(warm_disk.hits, 2, "warm run must replay from disk");
    assert_eq!(warm_disk.misses, 0, "warm run must not simulate");
}

#[test]
fn ledgers_and_output_are_job_count_independent() {
    let grid = grid();
    let mut seen = Vec::new();
    for jobs in [1, 4, 8] {
        let dir = temp_dir(&format!("jobs{jobs}"));
        let cold = ScenarioRunner::new(jobs).with_disk_cache(&dir);
        let cold_out = render(&cold.run_all(grid.scenarios()));
        let warm = ScenarioRunner::new(jobs).with_disk_cache(&dir);
        let warm_out = render(&warm.run_all(grid.scenarios()));
        seen.push((
            cold_out,
            warm_out,
            cold.cache_stats(),
            cold.disk_cache_stats(),
            warm.cache_stats(),
            warm.disk_cache_stats(),
        ));
    }
    assert_eq!(seen[0], seen[1], "1 vs 4 jobs diverged");
    assert_eq!(seen[0], seen[2], "1 vs 8 jobs diverged");
}

#[test]
fn stale_version_stamp_misses_and_resimulates_identically() {
    let dir = temp_dir("stale");
    let grid = grid();

    let cold = ScenarioRunner::new(1).with_disk_cache(&dir);
    let cold_out = render(&cold.run_all(grid.scenarios()));

    // Same directory, foreign build stamp: the store must be ignored
    // wholesale — all disk misses, identical output from re-simulation.
    let stamp = reach::simulator_version_stamp().0 ^ 1;
    let stale =
        ScenarioRunner::new(1).with_disk_cache_store(DiskCache::open_with_stamp(&dir, stamp));
    let stale_out = render(&stale.run_all(grid.scenarios()));
    assert_eq!(cold_out, stale_out, "stale store changed the output");
    let disk = stale.disk_cache_stats();
    assert_eq!(disk.hits, 0, "a foreign-stamp store must never hit");
    assert_eq!(disk.misses, 2);
}

#[test]
fn unwritable_store_degrades_to_plain_simulation() {
    let dir = temp_dir("unwritable");
    // Occupy the store path with a *directory*: loading it fails (read
    // error) and the flush rename onto it fails, even when the test runs
    // as root (where chmod-based read-only checks are toothless).
    std::fs::create_dir_all(dir.join(DISKCACHE_FILE)).unwrap();
    let grid = grid();

    let plain = ScenarioRunner::new(1);
    let plain_out = render(&plain.run_all(grid.scenarios()));

    let broken = ScenarioRunner::new(1).with_disk_cache(&dir);
    let broken_out = render(&broken.run_all(grid.scenarios()));
    assert_eq!(plain_out, broken_out, "broken store changed the output");
    let disk = broken.disk_cache_stats();
    assert_eq!(disk.hits, 0);
    assert_eq!(disk.misses, 2);

    // And nothing was persisted: the path is still the blocking directory.
    assert!(dir.join(DISKCACHE_FILE).is_dir());
}

/// The tentpole acceptance check, cross-process: a warm second process
/// (fresh memory tier, same build, same cache dir) replays every scenario
/// from disk — zero disk misses — with stdout byte-identical to the cold
/// process at 1, 4 and 8 jobs.
#[test]
fn warm_second_process_is_byte_identical_and_simulation_free() {
    let dir = temp_dir("xproc");
    let exe = env!("CARGO_BIN_EXE_sweep");
    let run = |jobs: &str| {
        let out = Command::new(exe)
            .args([
                "--nm",
                "1,2",
                "--ns",
                "1",
                "--batches",
                "1",
                "--batch-size",
                "4",
                "--candidates",
                "64",
                "--jobs",
                jobs,
                "--result-cache-dir",
            ])
            .arg(&dir)
            .output()
            .expect("spawn sweep");
        assert!(out.status.success(), "sweep failed: {out:?}");
        (
            out.stdout,
            String::from_utf8_lossy(&out.stderr).into_owned(),
        )
    };

    let (cold_stdout, cold_stderr) = run("1");
    assert!(
        cold_stderr.contains("2 disk miss(es)"),
        "cold run should miss on disk: {cold_stderr}"
    );
    for jobs in ["1", "4", "8"] {
        let (warm_stdout, warm_stderr) = run(jobs);
        assert_eq!(
            cold_stdout, warm_stdout,
            "warm stdout diverged at {jobs} jobs"
        );
        assert!(
            warm_stderr.contains("2 disk hit(s), 0 disk miss(es)"),
            "warm run at {jobs} jobs should replay everything from disk: {warm_stderr}"
        );
    }
}
