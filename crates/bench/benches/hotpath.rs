//! Microbenchmarks of the simulator hot paths: event-queue throughput
//! (calendar queue), machine steady-state event processing, the parallel
//! CBIR kernels (GEMM micro-kernel, k-means, top-K), the cross-batch
//! distance cache, and the batched DDR stream timing model.
//!
//! Set `REACH_BENCH_QUICK=1` to shrink every problem size (the CI
//! perf-smoke mode); the full sizes are meant for local before/after
//! comparisons when touching the dispatch path or the kernels.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use reach_cbir::kmeans::kmeans;
use reach_cbir::linalg::{gemm_nt, Matrix};
use reach_cbir::scenarios::blueprint_with;
use reach_cbir::top_k;
use reach_cbir::{CbirMapping, CbirPipeline, CbirWorkload};
use reach_sim::rng::seeded;
use reach_sim::{EventQueue, SimDuration, SimTime};

/// `full` normally, `quick` under `REACH_BENCH_QUICK=1`.
fn scaled(full: usize, quick: usize) -> usize {
    if std::env::var_os("REACH_BENCH_QUICK").is_some() {
        quick
    } else {
        full
    }
}

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("hotpath/event_queue");
    let n = scaled(200_000, 20_000);

    // Steady-state churn: the queue holds a working set while events are
    // pushed relative to `now` and popped in order — the machine's loop.
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("push_in_pop", |b| {
        b.iter(|| {
            let mut q: EventQueue<u64> = EventQueue::with_capacity(64);
            for i in 0..64u64 {
                q.push(SimTime::from_ps(i), i);
            }
            for i in 0..n as u64 {
                let (_, ev) = q.pop().expect("non-empty");
                q.push_in(SimDuration::from_ps(64 + (ev % 7)), i);
            }
            black_box(q.len())
        });
    });

    // Same-instant bursts drained through the batch pop the machine uses.
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("pop_batch_bursts_of_16", |b| {
        b.iter(|| {
            let mut q: EventQueue<u64> = EventQueue::with_capacity(n);
            for i in 0..n as u64 {
                q.push(SimTime::from_ps(i / 16), i);
            }
            let mut batch = Vec::new();
            let mut drained = 0usize;
            while q.pop_batch_into(&mut batch).is_some() {
                drained += batch.len();
            }
            black_box(drained)
        });
    });
    g.finish();
}

fn bench_machine(c: &mut Criterion) {
    let mut g = c.benchmark_group("hotpath/machine");
    g.sample_size(10);
    let batches = scaled(64, 8);
    let blueprint = blueprint_with(4, 4);
    let pipeline = CbirPipeline::new(CbirWorkload::paper_setup(), CbirMapping::Proper);

    // Steady-state events/sec through submit -> dispatch -> completion with
    // the full pipeline mapped across the hierarchy. The reported element
    // rate is machine events processed per wall second.
    let events_per_run = {
        let mut m = blueprint.instantiate();
        let compiled = pipeline.build(&m);
        let report = compiled.run(&mut m, batches);
        match report.metrics.get("engine.events_processed") {
            Some(reach_sim::MetricValue::Counter { value }) => *value,
            _ => 0,
        }
    };
    g.throughput(Throughput::Elements(events_per_run));
    g.bench_function("steady_state_pipelined", |b| {
        b.iter(|| {
            let mut m = blueprint.instantiate();
            let compiled = pipeline.build(&m);
            black_box(compiled.run(&mut m, batches).makespan)
        });
    });
    g.finish();
}

fn bench_gemm(c: &mut Criterion) {
    use reach_cbir::simd::{self, SimdPath};

    let mut g = c.benchmark_group("hotpath/gemm");
    eprintln!(
        "hotpath/gemm kernel dispatch: {} (auto); paired rows pin scalar vs {}",
        simd::active().name(),
        simd::best_supported().name()
    );
    let m = scaled(512, 128);
    let n = 1000;
    let k = 96;
    let a = Matrix::from_vec(m, k, (0..m * k).map(|i| (i % 17) as f32 - 8.0).collect());
    let bm = Matrix::from_vec(n, k, (0..n * k).map(|i| (i % 13) as f32 - 6.0).collect());
    g.throughput(Throughput::Elements((m * n * k) as u64));
    g.bench_function("rerank_shape_parallel", |b| {
        b.iter(|| black_box(gemm_nt(&a, &bm)));
    });
    // Same shape with the kernel tier pinned: the scalar baseline and the
    // widest SIMD path, bit-identical outputs, only wall time differs.
    simd::force(Some(SimdPath::Scalar));
    g.bench_function("rerank_shape_parallel_scalar", |b| {
        b.iter(|| black_box(gemm_nt(&a, &bm)));
    });
    simd::force(Some(simd::best_supported()));
    let simd_row = format!("rerank_shape_parallel_{}", simd::best_supported().name());
    g.bench_function(&simd_row, |b| {
        b.iter(|| black_box(gemm_nt(&a, &bm)));
    });
    simd::force(None);
    g.finish();
}

fn bench_kmeans(c: &mut Criterion) {
    let mut g = c.benchmark_group("hotpath/kmeans");
    g.sample_size(10);
    let n = scaled(8192, 1024);
    let d = 32;
    let k = 64;
    let mut rng = seeded(42);
    let pts = Matrix::from_vec(
        n,
        d,
        (0..n * d)
            .map(|i| ((i * 2_654_435_761) % 97) as f32)
            .collect(),
    );
    g.throughput(Throughput::Elements((n * k * d) as u64));
    g.bench_function("assign_update_loop", |b| {
        b.iter(|| black_box(kmeans(&pts, k, 5, &mut rng).inertia));
    });
    g.finish();
}

fn bench_cache(c: &mut Criterion) {
    use reach_cbir::linalg::batch_dist_sq;
    use reach_cbir::QueryContext;

    let mut g = c.benchmark_group("hotpath/cache");
    let nq = scaled(64, 16);
    let np = scaled(4096, 512);
    let d = 32;
    let queries = Matrix::from_vec(
        nq,
        d,
        (0..nq * d).map(|i| ((i * 31) % 23) as f32 - 11.0).collect(),
    );
    let points = Matrix::from_vec(
        np,
        d,
        (0..np * d).map(|i| ((i * 7) % 19) as f32 - 9.0).collect(),
    );
    g.throughput(Throughput::Elements((nq * np) as u64));
    // Every batch recomputes the points-side norms from scratch.
    g.bench_function("batch_dist_uncached", |b| {
        b.iter(|| black_box(batch_dist_sq(&queries, &points)));
    });
    // The QueryContext keeps `||p||^2` warm across batches; only the first
    // iteration misses.
    let ctx = QueryContext::new();
    g.bench_function("batch_dist_cached", |b| {
        b.iter(|| black_box(ctx.batch_dist_sq(&queries, &points)));
    });
    g.finish();
}

fn bench_ddr_stream(c: &mut Criterion) {
    use reach_mem::{AccessKind, Dimm, DimmConfig, RowPolicy};

    let mut g = c.benchmark_group("hotpath/ddr");
    let bytes = (scaled(256, 16) as u64) << 20;
    // Simulated-stream throughput: how fast the timing model itself chews
    // through a multi-hundred-MiB sequential scan (the refresh-period row
    // batching collapses ~18 row reservations into one).
    g.throughput(Throughput::Bytes(bytes));
    g.bench_function("stream_row_batched", |b| {
        b.iter(|| {
            let mut d = Dimm::new(DimmConfig::ddr4_16gb());
            black_box(
                d.stream(
                    SimTime::ZERO,
                    0,
                    bytes,
                    AccessKind::Read,
                    RowPolicy::OpenPage,
                )
                .complete,
            )
        });
    });
    g.finish();
}

fn bench_topk(c: &mut Criterion) {
    let mut g = c.benchmark_group("hotpath/topk");
    let n = scaled(262_144, 16_384);
    let dists: Vec<(f32, usize)> = (0..n)
        .map(|i| (((i * 2_654_435_761) % 1_000_003) as f32, i))
        .collect();
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("top10_large_stream", |b| {
        b.iter(|| black_box(top_k(dists.iter().copied(), 10)));
    });
    g.finish();
}

criterion_group!(
    hotpath,
    bench_event_queue,
    bench_machine,
    bench_gemm,
    bench_kmeans,
    bench_cache,
    bench_ddr_stream,
    bench_topk
);
criterion_main!(hotpath);
