//! Criterion benches for the ablation studies (DESIGN.md section 7).

use criterion::{criterion_group, criterion_main, Criterion};
use reach_cbir::ablations;

fn bench_ablations(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    g.bench_function("poll_interval", |b| b.iter(ablations::poll_interval));
    g.bench_function("reconfig_delay", |b| b.iter(ablations::reconfig_delay));
    g.bench_function("pipelining", |b| b.iter(ablations::pipelining));
    g.bench_function("sl_tile_budget", |b| b.iter(ablations::sl_tile_budget));
    g.bench_function("batch_size", |b| b.iter(ablations::batch_size));
    g.bench_function("rerank_placement", |b| b.iter(ablations::rerank_placement));
    g.finish();
}

criterion_group!(ablation_benches, bench_ablations);
criterion_main!(ablation_benches);
