//! Criterion benches for the beyond-the-paper extension experiments.

use criterion::{criterion_group, criterion_main, Criterion};
use reach_analytics::{AnalyticsPlacement, ScanQuery};

fn bench_recall_vs_compression(c: &mut Criterion) {
    let mut g = c.benchmark_group("extensions/recall");
    g.sample_size(10);
    g.bench_function("recall_vs_compression", |b| {
        b.iter(reach_cbir::experiments::recall_vs_compression)
    });
    g.finish();
}

fn bench_analytics(c: &mut Criterion) {
    let mut g = c.benchmark_group("extensions/analytics");
    g.sample_size(10);
    let q = ScanQuery {
        table_bytes: 8 << 30,
        selectivity_pct: 1,
        row_bytes: 64,
    };
    g.bench_function("scan_host", |b| b.iter(|| q.run(AnalyticsPlacement::Host)));
    g.bench_function("scan_near_storage", |b| {
        b.iter(|| q.run(AnalyticsPlacement::NearStorage))
    });
    g.finish();
}

fn bench_corun(c: &mut Criterion) {
    let mut g = c.benchmark_group("extensions/corun");
    g.sample_size(10);
    let q = ScanQuery {
        table_bytes: 4 << 30,
        selectivity_pct: 2,
        row_bytes: 64,
    };
    g.bench_function("cbir_plus_scan", |b| {
        b.iter(|| reach_analytics::co_run_interference(4, &q))
    });
    g.finish();
}

criterion_group!(
    extensions,
    bench_recall_vs_compression,
    bench_analytics,
    bench_corun
);
criterion_main!(extensions);
