//! One Criterion bench per table/figure of the paper's evaluation.
//!
//! Each bench times the *regeneration* of its experiment (simulation +
//! aggregation); the printed rows themselves come from
//! `cargo run -p reach-bench --bin experiments --release`.

use criterion::{criterion_group, criterion_main, Criterion};
use reach_cbir::experiments as exp;

fn bench_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("tables");
    g.bench_function("table1", |b| b.iter(exp::table1));
    g.bench_function("table2", |b| b.iter(exp::table2));
    g.bench_function("table3", |b| b.iter(exp::table3));
    g.bench_function("table4", |b| b.iter(exp::table4));
    g.finish();
}

fn bench_fig08(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig08");
    g.sample_size(10);
    g.bench_function("onchip_energy_breakdown", |b| b.iter(exp::fig8));
    g.finish();
}

fn bench_fig09(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig09");
    g.sample_size(10);
    g.bench_function("feature_extraction_scaling", |b| b.iter(exp::fig9));
    g.finish();
}

fn bench_fig10(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10");
    g.sample_size(10);
    g.bench_function("shortlist_scaling", |b| b.iter(exp::fig10));
    g.finish();
}

fn bench_fig11(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11");
    g.sample_size(10);
    g.bench_function("rerank_scaling", |b| b.iter(exp::fig11));
    g.finish();
}

fn bench_fig12(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12");
    g.sample_size(10);
    g.bench_function("single_level_end_to_end", |b| b.iter(exp::fig12));
    g.finish();
}

fn bench_fig13(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig13");
    g.sample_size(10);
    g.bench_function("reach_vs_single_level", |b| b.iter(exp::fig13));
    g.finish();
}

criterion_group!(
    figures,
    bench_tables,
    bench_fig08,
    bench_fig09,
    bench_fig10,
    bench_fig11,
    bench_fig12,
    bench_fig13
);
criterion_main!(figures);
