//! Microbenchmarks of the simulation substrates: how fast the models
//! themselves run (host wall-clock per simulated operation).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use reach_mem::{
    AccessKind, Cache, CacheConfig, Dimm, DimmConfig, MemoryController, MemoryControllerConfig,
    RowPolicy,
};
use reach_sim::{EventQueue, SimDuration, SimTime};
use reach_storage::{PcieSwitch, Ssd, SsdConfig};

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim/event_queue");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("push_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u64 {
                q.push(SimTime::from_ps((i * 37) % 100_000), i);
            }
            let mut sum = 0u64;
            while let Some((_, v)) = q.pop() {
                sum = sum.wrapping_add(v);
            }
            black_box(sum)
        });
    });
    g.finish();
}

fn bench_dram(c: &mut Criterion) {
    let mut g = c.benchmark_group("mem/dram");
    g.bench_function("line_access", |b| {
        let mut d = Dimm::new(DimmConfig::ddr4_16gb());
        let mut t = SimTime::ZERO;
        let mut addr = 0u64;
        b.iter(|| {
            let r = d.access(t, addr % (1 << 30), AccessKind::Read, RowPolicy::OpenPage);
            t = r.complete;
            addr += 64;
            black_box(r.complete)
        });
    });
    g.throughput(Throughput::Bytes(64 << 20));
    g.bench_function("stream_64mib", |b| {
        b.iter(|| {
            let mut d = Dimm::new(DimmConfig::ddr4_16gb());
            let r = d.stream(
                SimTime::ZERO,
                0,
                64 << 20,
                AccessKind::Read,
                RowPolicy::OpenPage,
            );
            black_box(r.complete)
        });
    });
    g.finish();
}

fn bench_controller(c: &mut Criterion) {
    let mut g = c.benchmark_group("mem/controller");
    g.throughput(Throughput::Bytes(64 << 20));
    g.bench_function("interleaved_stream_64mib", |b| {
        b.iter(|| {
            let mut mc = MemoryController::new(MemoryControllerConfig::paper_mc());
            black_box(
                mc.stream(SimTime::ZERO, 0, 64 << 20, AccessKind::Read)
                    .complete,
            )
        });
    });
    g.finish();
}

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("mem/cache");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("access_10k", |b| {
        let mut cache = Cache::new(CacheConfig::shared_l2_2mb());
        let mut addr = 0u64;
        b.iter(|| {
            for _ in 0..10_000 {
                cache.access(addr % (8 << 20), false);
                addr += 64;
            }
            black_box(cache.stats().hits)
        });
    });
    g.finish();
}

fn bench_ssd(c: &mut Criterion) {
    let mut g = c.benchmark_group("storage/ssd");
    g.throughput(Throughput::Bytes(256 << 20));
    g.bench_function("read_256mib", |b| {
        b.iter(|| {
            let mut s = Ssd::new(SsdConfig::nytro_class());
            black_box(s.read(SimTime::ZERO, 0, 256 << 20).complete)
        });
    });
    g.finish();
}

fn bench_pcie(c: &mut Criterion) {
    let mut g = c.benchmark_group("storage/pcie");
    g.bench_function("switch_transfer", |b| {
        let mut sw = PcieSwitch::paper_host_io();
        let mut t = SimTime::ZERO;
        b.iter(|| {
            let r = sw.host_transfer(t, 1 << 20);
            t = r.ready;
            black_box(r.complete)
        });
    });
    g.finish();
}

fn bench_machine(c: &mut Criterion) {
    use reach::MachineBlueprint;
    use reach_cbir::{CbirMapping, CbirPipeline, CbirWorkload};
    let mut g = c.benchmark_group("machine");
    g.sample_size(20);
    g.bench_function("proper_mapping_one_batch", |b| {
        let p = CbirPipeline::new(CbirWorkload::paper_setup(), CbirMapping::Proper);
        b.iter(|| {
            let mut m = MachineBlueprint::paper().instantiate();
            black_box(p.run(&mut m, 1).makespan)
        });
    });
    let _ = SimDuration::ZERO;
    g.finish();
}

criterion_group!(
    substrates,
    bench_event_queue,
    bench_dram,
    bench_controller,
    bench_cache,
    bench_ssd,
    bench_pcie,
    bench_machine
);
criterion_main!(substrates);
