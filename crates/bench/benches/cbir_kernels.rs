//! Microbenchmarks of the functional CBIR kernels (the algorithms the
//! accelerator templates implement).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use reach_cbir::dataset::Dataset;
use reach_cbir::ivf::IvfIndex;
use reach_cbir::linalg::{batch_dist_sq, gemm_nt, Matrix};
use reach_cbir::simd::{self, SimdPath};
use reach_cbir::top_k;
use reach_cbir::FeatureNet;
use reach_sim::rng::seeded;

fn bench_gemm(c: &mut Criterion) {
    // The short-list shape: a 16 x 96 query batch against 1000 centroids.
    let mut g = c.benchmark_group("cbir/gemm");
    // Which kernel tier the unpinned rows run on (and what "simd" pins).
    eprintln!(
        "cbir/gemm kernel dispatch: {} (auto); paired rows pin scalar vs {}",
        simd::active().name(),
        simd::best_supported().name()
    );
    let q = Matrix::from_vec(16, 96, (0..16 * 96).map(|i| (i % 17) as f32).collect());
    let cm = Matrix::from_vec(1000, 96, (0..1000 * 96).map(|i| (i % 13) as f32).collect());
    g.throughput(Throughput::Elements(16 * 96 * 1000));
    g.bench_function("shortlist_shape_16x96x1000", |b| {
        b.iter(|| black_box(gemm_nt(&q, &cm)));
    });
    // Paired rows with the kernel tier pinned, so the SIMD speedup (and
    // the scalar baseline it is measured against) is readable from one
    // report. Outputs are bit-identical across rows; only time differs.
    simd::force(Some(SimdPath::Scalar));
    g.bench_function("shortlist_shape_16x96x1000_scalar", |b| {
        b.iter(|| black_box(gemm_nt(&q, &cm)));
    });
    simd::force(Some(simd::best_supported()));
    let simd_row = format!(
        "shortlist_shape_16x96x1000_{}",
        simd::best_supported().name()
    );
    g.bench_function(&simd_row, |b| {
        b.iter(|| black_box(gemm_nt(&q, &cm)));
    });
    simd::force(None);
    g.bench_function("decomposed_distance_16x1000", |b| {
        b.iter(|| black_box(batch_dist_sq(&q, &cm)));
    });
    g.finish();
}

fn bench_topk(c: &mut Criterion) {
    let mut g = c.benchmark_group("cbir/topk");
    let dists: Vec<(f32, usize)> = (0..4096)
        .map(|i| ((i as f32 * 2654435761.0) % 1e6, i))
        .collect();
    g.throughput(Throughput::Elements(4096));
    g.bench_function("top10_of_4096", |b| {
        b.iter(|| black_box(top_k(dists.iter().copied(), 10)));
    });
    g.finish();
}

fn bench_features(c: &mut Criterion) {
    let mut g = c.benchmark_group("cbir/features");
    let net = FeatureNet::new(256, 96, 2, 1);
    let input: Vec<f32> = (0..256).map(|i| (i as f32).sin()).collect();
    g.bench_function("extract_256_to_96", |b| {
        b.iter(|| black_box(net.extract(&input)));
    });
    g.finish();
}

fn bench_search(c: &mut Criterion) {
    let mut g = c.benchmark_group("cbir/search");
    g.sample_size(20);
    let mut rng = seeded(77);
    let ds = Dataset::gaussian_mixture(10_000, 32, 64, 0.3, &mut rng);
    let index = IvfIndex::build(&ds.points, 64, &mut rng);
    let (queries, _) = ds.queries(16, 0.05, &mut rng);
    g.bench_function("batch16_nprobe4_10k_points", |b| {
        b.iter(|| black_box(index.search(&ds.points, &queries, 4, 10, Some(4096))));
    });
    g.finish();
}

criterion_group!(
    cbir_kernels,
    bench_gemm,
    bench_topk,
    bench_features,
    bench_search
);
criterion_main!(cbir_kernels);
