//! The persistent tier of the scenario-result cache.
//!
//! [`DiskCache`] extends the in-memory [`crate::ResultCache`] across
//! processes: every stored [`RunReport`] is serialized with the versioned
//! codec in `reach::codec` and appended to a single store file under the
//! `--result-cache-dir` directory. A warm process replays whole suites
//! without simulating anything.
//!
//! ## On-disk format (`reach-diskcache-v1`)
//!
//! ```text
//! magic   b"reach-diskcache-v1\n"
//! stamp   u128 LE   — reach::simulator_version_stamp()
//! record* [len u32 LE][checksum u64 LE][payload]
//!         payload = [fingerprint u128 LE][encoded RunReport]
//!         checksum = reach_sim::checksum64(payload)
//! ```
//!
//! The stamp makes invalidation trivial and total: a store written by any
//! other build of the simulator (different workspace version, different
//! codec revision, or simply a rebuilt executable) is discarded wholesale.
//! Re-simulating after a rebuild is cheap; replaying a stale report never
//! is.
//!
//! ## Robustness contract
//!
//! Nothing on this path may panic or change results: a missing, truncated,
//! corrupt, wrong-magic, wrong-stamp, or unwritable store degrades to
//! "every lookup misses", with a single warning on stderr per failure
//! class. Partial corruption keeps the valid record prefix (the framing is
//! length-prefixed and checksummed, so a torn tail write cannot poison
//! earlier records). Writes go to a temporary file in the same directory
//! and land via atomic rename, so a crashed or concurrent process can tear
//! the *tail* of a store but never leave a half-renamed one.

use reach::{decode_report, encode_report, simulator_version_stamp, RunReport};
use reach_sim::checksum64;
use std::collections::HashMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Leading magic of the store file; doubles as the format version.
pub const DISKCACHE_MAGIC: &[u8] = b"reach-diskcache-v1\n";

/// Name of the store file inside the cache directory.
pub const DISKCACHE_FILE: &str = "results.reach-diskcache";

/// Hit/miss counters of the disk tier. Like the in-memory
/// [`crate::CacheStats`], counting is the *runner's* policy — lookups
/// themselves never count, so the ledger stays identical at any job count.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DiskCacheStats {
    /// Lookups answered from disk.
    pub hits: u64,
    /// Lookups that fell through to simulation.
    pub misses: u64,
}

/// A persistent fingerprint-to-report store with fail-open semantics.
///
/// Not internally synchronized: the runner guards it with a mutex and only
/// touches it from the sequential resolution/assembly phases, which is
/// what keeps disk accounting byte-identical across `--jobs` levels.
#[derive(Debug)]
pub struct DiskCache {
    path: PathBuf,
    stamp: u128,
    /// Decoded-on-demand payloads: fingerprint → encoded report.
    entries: HashMap<u128, Vec<u8>>,
    /// Insertion order, so a rewritten store lays records out stably.
    order: Vec<u128>,
    /// Entries added since the last successful flush.
    dirty: bool,
    /// Cleared after the first failed flush so an unwritable directory
    /// warns once, not once per batch.
    writable: bool,
    hits: u64,
    misses: u64,
}

fn warn(path: &Path, what: &str) {
    eprintln!("warning: disk cache {}: {what}", path.display());
}

impl DiskCache {
    /// Opens (or initializes) the store under `dir`, keyed to the running
    /// simulator build. Never fails: any problem — unreadable file, bad
    /// magic, foreign stamp, torn tail — degrades to an empty or truncated
    /// store with one stderr warning.
    #[must_use]
    pub fn open(dir: &Path) -> Self {
        Self::open_with_stamp(dir, simulator_version_stamp().0)
    }

    /// [`DiskCache::open`] with an explicit version stamp — the test seam
    /// for simulating "a different build wrote this store" without
    /// rebuilding the binary.
    #[must_use]
    pub fn open_with_stamp(dir: &Path, stamp: u128) -> Self {
        let path = dir.join(DISKCACHE_FILE);
        let mut cache = DiskCache {
            path,
            stamp,
            entries: HashMap::new(),
            order: Vec::new(),
            dirty: false,
            writable: true,
            hits: 0,
            misses: 0,
        };
        if let Err(e) = std::fs::create_dir_all(dir) {
            warn(&cache.path, &format!("cannot create directory ({e})"));
            cache.writable = false;
        }
        cache.load();
        cache
    }

    fn load(&mut self) {
        let bytes = match std::fs::read(&self.path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return,
            Err(e) => {
                warn(&self.path, &format!("unreadable, starting empty ({e})"));
                return;
            }
        };
        if bytes.len() < DISKCACHE_MAGIC.len() + 16
            || &bytes[..DISKCACHE_MAGIC.len()] != DISKCACHE_MAGIC
        {
            warn(&self.path, "unrecognized format, starting empty");
            return;
        }
        let mut pos = DISKCACHE_MAGIC.len();
        let stored_stamp = u128::from_le_bytes(bytes[pos..pos + 16].try_into().expect("16 bytes"));
        pos += 16;
        if stored_stamp != self.stamp {
            warn(
                &self.path,
                "written by a different simulator build, starting empty",
            );
            // The next flush overwrites the foreign store with this
            // build's stamp; leave `dirty` false so an all-miss read-only
            // run does not rewrite it for nothing.
            return;
        }
        // Records: keep the longest valid prefix; stop at the first tear.
        while pos < bytes.len() {
            let Some(frame) = bytes.get(pos..pos + 12) else {
                warn(&self.path, "truncated record header, keeping valid prefix");
                return;
            };
            let len = u32::from_le_bytes(frame[..4].try_into().expect("4 bytes")) as usize;
            let checksum = u64::from_le_bytes(frame[4..12].try_into().expect("8 bytes"));
            let Some(payload) = bytes.get(pos + 12..pos + 12 + len) else {
                warn(&self.path, "truncated record, keeping valid prefix");
                return;
            };
            if len < 16 || checksum64(payload) != checksum {
                warn(&self.path, "corrupt record, keeping valid prefix");
                return;
            }
            let fp = u128::from_le_bytes(payload[..16].try_into().expect("16 bytes"));
            if self.entries.insert(fp, payload[16..].to_vec()).is_none() {
                self.order.push(fp);
            }
            pos += 12 + len;
        }
    }

    /// Looks up a fingerprint, decoding the stored report. A record whose
    /// payload no longer decodes (possible only if corruption defeats the
    /// checksum) is dropped and treated as absent.
    #[must_use]
    pub fn get(&mut self, fp: u128) -> Option<RunReport> {
        let payload = self.entries.get(&fp)?;
        match decode_report(payload) {
            Ok(report) => Some(report),
            Err(e) => {
                warn(&self.path, &format!("undecodable record dropped ({e})"));
                self.entries.remove(&fp);
                self.order.retain(|&k| k != fp);
                None
            }
        }
    }

    /// Stores a report under `fp`. First write wins (the runner only
    /// inserts after a miss, so a duplicate insert means a replay raced a
    /// simulation — keep the bytes already persisted).
    pub fn insert(&mut self, fp: u128, report: &RunReport) {
        if self.entries.contains_key(&fp) {
            return;
        }
        self.entries.insert(fp, encode_report(report));
        self.order.push(fp);
        self.dirty = true;
    }

    /// Rewrites the store if anything was inserted since the last flush.
    /// Uses write-to-temp + atomic rename; a failure warns once and
    /// disables further write attempts (reads keep working).
    pub fn flush(&mut self) {
        if !self.dirty || !self.writable {
            return;
        }
        match self.try_flush() {
            Ok(()) => self.dirty = false,
            Err(e) => {
                warn(
                    &self.path,
                    &format!("not writable, results will not persist ({e})"),
                );
                self.writable = false;
            }
        }
    }

    fn try_flush(&self) -> std::io::Result<()> {
        // Temp name includes the pid so concurrent processes flushing the
        // same directory never interleave partial writes; rename keeps the
        // store itself atomic (last full write wins).
        let tmp = self
            .path
            .with_extension(format!("tmp.{}", std::process::id()));
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(DISKCACHE_MAGIC)?;
        f.write_all(&self.stamp.to_le_bytes())?;
        for fp in &self.order {
            let report = &self.entries[fp];
            let mut payload = Vec::with_capacity(16 + report.len());
            payload.extend_from_slice(&fp.to_le_bytes());
            payload.extend_from_slice(report);
            f.write_all(&(payload.len() as u32).to_le_bytes())?;
            f.write_all(&checksum64(&payload).to_le_bytes())?;
            f.write_all(&payload)?;
        }
        f.sync_all()?;
        drop(f);
        std::fs::rename(&tmp, &self.path)
    }

    /// Counts one disk hit (the runner's sequential resolution phase).
    pub fn record_hit(&mut self) {
        self.hits += 1;
    }

    /// Counts one disk miss.
    pub fn record_miss(&mut self) {
        self.misses += 1;
    }

    /// Hit/miss counters so far.
    #[must_use]
    pub fn stats(&self) -> DiskCacheStats {
        DiskCacheStats {
            hits: self.hits,
            misses: self.misses,
        }
    }

    /// Number of reports currently held (loaded + inserted).
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the store holds nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The store file path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reach::{MetricsSnapshot, SimDuration, SimTime};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "reach-diskcache-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn report(jobs: u64) -> RunReport {
        RunReport {
            makespan: SimDuration::from_ps(1_000_000),
            jobs,
            job_latency_mean: SimDuration::from_ps(1_000_000 / jobs.max(1)),
            job_latency_last: SimDuration::from_ps(900_000),
            stages: Vec::new(),
            ledger: reach::EnergyLedger::new(),
            gam: Default::default(),
            completions: vec![SimTime::from_ps(1_000_000)],
            metrics: MetricsSnapshot::new(1_000_000),
        }
    }

    #[test]
    fn round_trips_across_reopen() {
        let dir = temp_dir("roundtrip");
        let mut cache = DiskCache::open_with_stamp(&dir, 42);
        assert!(cache.is_empty());
        cache.insert(1, &report(1));
        cache.insert(2, &report(2));
        cache.flush();

        let mut reopened = DiskCache::open_with_stamp(&dir, 42);
        assert_eq!(reopened.len(), 2);
        assert_eq!(reopened.get(1).expect("fp 1").jobs, 1);
        assert_eq!(reopened.get(2).expect("fp 2").jobs, 2);
        assert!(reopened.get(3).is_none());
        // Byte-exactness witness: the stored payload re-encodes to itself.
        let r = reopened.get(2).expect("fp 2");
        assert_eq!(
            reach::encode_report(&r),
            reach::encode_report(&report(2)),
            "persisted report drifted"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_stamp_discards_the_store() {
        let dir = temp_dir("stale");
        let mut cache = DiskCache::open_with_stamp(&dir, 1);
        cache.insert(7, &report(7));
        cache.flush();
        // A "different build" opens the same directory: everything misses.
        let mut other = DiskCache::open_with_stamp(&dir, 2);
        assert!(other.is_empty());
        assert!(other.get(7).is_none());
        // And once the new build flushes, its stamp owns the store.
        other.insert(8, &report(8));
        other.flush();
        let mut back = DiskCache::open_with_stamp(&dir, 2);
        assert_eq!(back.len(), 1);
        assert!(back.get(8).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_magic_starts_empty_without_destroying_until_flush() {
        let dir = temp_dir("magic");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(DISKCACHE_FILE), b"not a reach store").unwrap();
        let mut cache = DiskCache::open_with_stamp(&dir, 1);
        assert!(cache.is_empty());
        assert!(cache.get(1).is_none());
        // No insert happened, so the foreign file is left untouched.
        cache.flush();
        assert_eq!(
            std::fs::read(dir.join(DISKCACHE_FILE)).unwrap(),
            b"not a reach store"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_tail_keeps_valid_prefix() {
        let dir = temp_dir("trunc");
        let mut cache = DiskCache::open_with_stamp(&dir, 1);
        cache.insert(1, &report(1));
        cache.insert(2, &report(2));
        cache.flush();
        let path = dir.join(DISKCACHE_FILE);
        let bytes = std::fs::read(&path).unwrap();
        // Chop into the middle of the second record.
        std::fs::write(&path, &bytes[..bytes.len() - 10]).unwrap();
        let mut cache = DiskCache::open_with_stamp(&dir, 1);
        assert_eq!(cache.len(), 1, "valid prefix survives");
        assert!(cache.get(1).is_some());
        assert!(cache.get(2).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flipped_payload_byte_fails_the_checksum() {
        let dir = temp_dir("flip");
        let mut cache = DiskCache::open_with_stamp(&dir, 1);
        cache.insert(1, &report(1));
        cache.flush();
        let path = dir.join(DISKCACHE_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = DISKCACHE_MAGIC.len() + 16 + 12 + 20; // inside record payload
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let mut cache = DiskCache::open_with_stamp(&dir, 1);
        assert!(cache.is_empty(), "corrupt record must not load");
        assert!(cache.get(1).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unwritable_directory_degrades_gracefully() {
        let missing = PathBuf::from("/proc/definitely-not-writable/reach-cache");
        let mut cache = DiskCache::open(&missing);
        assert!(cache.is_empty());
        cache.insert(1, &report(1));
        cache.flush(); // warns, does not panic
        assert!(cache.get(1).is_some(), "in-memory view still serves");
    }

    #[test]
    fn duplicate_insert_keeps_first_bytes() {
        let dir = temp_dir("dup");
        let mut cache = DiskCache::open_with_stamp(&dir, 1);
        cache.insert(1, &report(1));
        cache.insert(1, &report(99));
        assert_eq!(cache.get(1).expect("fp 1").jobs, 1);
        assert_eq!(cache.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flush_is_idempotent_and_lazy() {
        let dir = temp_dir("lazy");
        let mut cache = DiskCache::open_with_stamp(&dir, 1);
        cache.flush(); // nothing to write: no file appears
        assert!(!dir.join(DISKCACHE_FILE).exists());
        cache.insert(1, &report(1));
        cache.flush();
        let first = std::fs::metadata(dir.join(DISKCACHE_FILE))
            .unwrap()
            .modified()
            .unwrap();
        cache.flush(); // clean: no rewrite
        let second = std::fs::metadata(dir.join(DISKCACHE_FILE))
            .unwrap()
            .modified()
            .unwrap();
        assert_eq!(first, second);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stats_count_what_the_caller_records() {
        let dir = temp_dir("stats");
        let mut cache = DiskCache::open_with_stamp(&dir, 1);
        assert_eq!(cache.stats(), DiskCacheStats::default());
        cache.record_hit();
        cache.record_miss();
        cache.record_miss();
        assert_eq!(cache.stats(), DiskCacheStats { hits: 1, misses: 2 });
        let _ = std::fs::remove_dir_all(&dir);
    }
}
