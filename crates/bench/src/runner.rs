//! Deterministic thread-parallel scenario execution.
//!
//! [`ScenarioRunner`] is the parallel counterpart of
//! [`reach::SequentialExecutor`]: it fans a batch of scenarios across up to
//! `jobs` OS threads and collects the results **in submission order**.
//! Scenarios are independent by contract (each instantiates its own machine
//! from its blueprint and derives all randomness from its own seed), so the
//! output is byte-identical to sequential execution — parallelism only
//! changes the wall clock, never a report.
//!
//! The runner uses `std::thread::scope` and an atomic work index; there is
//! no thread pool, no channel and no external dependency. Machines are
//! built and dropped inside the worker that claims the scenario, so only
//! the scenarios themselves and their finished [`ScenarioResult`]s cross
//! thread boundaries.

use reach::{MetricsSnapshot, Scenario, ScenarioExecutor, ScenarioResult};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A work-stealing, order-preserving executor over OS threads.
#[derive(Clone, Copy, Debug)]
pub struct ScenarioRunner {
    jobs: usize,
}

impl ScenarioRunner {
    /// An executor that runs at most `jobs` scenarios concurrently.
    ///
    /// # Panics
    ///
    /// Panics if `jobs` is zero.
    #[must_use]
    pub fn new(jobs: usize) -> Self {
        assert!(jobs > 0, "ScenarioRunner needs at least one worker");
        ScenarioRunner { jobs }
    }

    /// The configured worker count.
    #[must_use]
    pub fn jobs(&self) -> usize {
        self.jobs
    }
}

impl ScenarioExecutor for ScenarioRunner {
    fn run_all(&self, scenarios: Vec<Box<dyn Scenario>>) -> Vec<ScenarioResult> {
        let n = scenarios.len();
        let workers = self.jobs.min(n);
        if workers <= 1 {
            // One worker degenerates to the reference implementation.
            return reach::SequentialExecutor.run_all(scenarios);
        }

        let next = AtomicUsize::new(0);
        let slots: Mutex<Vec<Option<ScenarioResult>>> = Mutex::new((0..n).map(|_| None).collect());
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    // The machine is instantiated, driven and dropped
                    // entirely inside this worker.
                    let result = ScenarioResult {
                        label: scenarios[i].label(),
                        report: scenarios[i].execute(),
                    };
                    slots.lock().expect("result slots poisoned")[i] = Some(result);
                });
            }
        });
        slots
            .into_inner()
            .expect("result slots poisoned")
            .into_iter()
            .map(|r| r.expect("every claimed scenario stores its result"))
            .collect()
    }
}

/// Wraps an executor and counts how many scenarios pass through it —
/// the `experiments` binary uses this for its wall-clock summary.
pub struct CountingExecutor<'a> {
    inner: &'a dyn ScenarioExecutor,
    count: AtomicUsize,
}

impl<'a> CountingExecutor<'a> {
    /// Counts scenarios delegated to `inner`.
    #[must_use]
    pub fn new(inner: &'a dyn ScenarioExecutor) -> Self {
        CountingExecutor {
            inner,
            count: AtomicUsize::new(0),
        }
    }

    /// Scenarios executed so far.
    #[must_use]
    pub fn scenarios_run(&self) -> usize {
        self.count.load(Ordering::Relaxed)
    }
}

impl ScenarioExecutor for CountingExecutor<'_> {
    fn run_all(&self, scenarios: Vec<Box<dyn Scenario>>) -> Vec<ScenarioResult> {
        self.count.fetch_add(scenarios.len(), Ordering::Relaxed);
        self.inner.run_all(scenarios)
    }
}

/// The headline numbers and telemetry snapshot of one finished scenario,
/// captured by a [`RecordingExecutor`].
#[derive(Clone, Debug)]
pub struct CapturedScenario {
    /// The scenario's label (e.g. `"fig13/ReACH"`).
    pub label: String,
    /// Simulated makespan in picoseconds.
    pub makespan_ps: u64,
    /// Jobs completed.
    pub jobs: u64,
    /// Total energy in joules.
    pub energy_j: f64,
    /// The machine-wide telemetry snapshot.
    pub metrics: MetricsSnapshot,
}

impl CapturedScenario {
    /// Jobs per simulated second (0.0 for an empty run).
    #[must_use]
    pub fn throughput_jobs_per_sec(&self) -> f64 {
        if self.makespan_ps == 0 {
            0.0
        } else {
            self.jobs as f64 / (self.makespan_ps as f64 * 1e-12)
        }
    }
}

/// Wraps an executor and captures every finished scenario's label, headline
/// numbers and telemetry snapshot — in submission order, so the capture
/// stream is byte-identical regardless of the inner executor's job count.
pub struct RecordingExecutor<'a> {
    inner: &'a dyn ScenarioExecutor,
    captured: Mutex<Vec<CapturedScenario>>,
}

impl<'a> RecordingExecutor<'a> {
    /// Records scenarios delegated to `inner`.
    #[must_use]
    pub fn new(inner: &'a dyn ScenarioExecutor) -> Self {
        RecordingExecutor {
            inner,
            captured: Mutex::new(Vec::new()),
        }
    }

    /// Takes everything captured since the last drain.
    #[must_use]
    pub fn drain(&self) -> Vec<CapturedScenario> {
        std::mem::take(&mut *self.captured.lock().expect("capture buffer poisoned"))
    }
}

impl ScenarioExecutor for RecordingExecutor<'_> {
    fn run_all(&self, scenarios: Vec<Box<dyn Scenario>>) -> Vec<ScenarioResult> {
        let results = self.inner.run_all(scenarios);
        let mut captured = self.captured.lock().expect("capture buffer poisoned");
        for r in &results {
            captured.push(CapturedScenario {
                label: r.label.clone(),
                makespan_ps: r.report.makespan.as_ps(),
                jobs: r.report.jobs,
                energy_j: r.report.total_energy_j(),
                metrics: r.report.metrics.clone(),
            });
        }
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reach::SequentialExecutor;
    use reach_cbir::{blueprint_with, CbirMapping, CbirPipeline, CbirScenario, CbirWorkload};

    fn batch() -> Vec<Box<dyn Scenario>> {
        let w = CbirWorkload::paper_setup();
        CbirMapping::ALL
            .iter()
            .map(|&mapping| {
                Box::new(CbirScenario::full(
                    format!("runner/{}", mapping.name()),
                    blueprint_with(4, 4),
                    CbirPipeline::new(w, mapping),
                    2,
                )) as Box<dyn Scenario>
            })
            .collect()
    }

    #[test]
    fn parallel_matches_sequential() {
        let seq = SequentialExecutor.run_all(batch());
        let par = ScenarioRunner::new(4).run_all(batch());
        assert_eq!(seq.len(), par.len());
        for (s, p) in seq.iter().zip(&par) {
            assert_eq!(s.label, p.label);
            assert_eq!(s.report.makespan, p.report.makespan);
            assert_eq!(s.report.to_string(), p.report.to_string());
        }
    }

    #[test]
    fn more_workers_than_scenarios_is_fine() {
        let results = ScenarioRunner::new(64).run_all(batch());
        assert_eq!(results.len(), CbirMapping::ALL.len());
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = ScenarioRunner::new(0);
    }

    #[test]
    fn counting_executor_counts() {
        let runner = ScenarioRunner::new(2);
        let counting = CountingExecutor::new(&runner);
        let _ = counting.run_all(batch());
        assert_eq!(counting.scenarios_run(), CbirMapping::ALL.len());
    }
}
