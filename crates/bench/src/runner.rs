//! Deterministic thread-parallel scenario execution.
//!
//! [`ScenarioRunner`] is the parallel counterpart of
//! [`reach::SequentialExecutor`]: it fans a batch of scenarios across up to
//! `jobs` OS threads and collects the results **in submission order**.
//! Scenarios are independent by contract (each instantiates its own machine
//! from its blueprint and derives all randomness from its own seed), so the
//! output is byte-identical to sequential execution — parallelism only
//! changes the wall clock, never a report.
//!
//! The runner uses `std::thread::scope` and an atomic work index; there is
//! no thread pool, no channel and no external dependency. Machines are
//! built and dropped inside the worker that claims the scenario, so only
//! the scenarios themselves and their finished [`ScenarioResult`]s cross
//! thread boundaries.
//!
//! ## The result cache
//!
//! By default every runner carries a shared [`ResultCache`]. Before any
//! thread spawns, a **sequential** pass over the batch (in submission
//! order) fingerprints each scenario via `Scenario::config_fingerprint`
//! and resolves it to one of: replay a stored report, follow an earlier
//! in-batch duplicate, or actually simulate. Only the simulate subset is
//! fanned across workers. Because the resolution pass never races, the
//! hit/miss counters, the cache contents and the returned reports are all
//! byte-identical at any job count — caching, like parallelism, is never
//! observable in the output, only in the wall clock. Build with
//! [`ScenarioRunner::without_cache`] (the `--no-result-cache` flag) to
//! force every scenario to simulate.

use crate::cache::{CacheStats, EvictionPolicy, ResultCache};
use crate::diskcache::{DiskCache, DiskCacheStats};
use reach::fleet::FleetScenario;
use reach::{
    ConfigFingerprint, MetricsSnapshot, RunReport, Scenario, ScenarioExecutor, ScenarioResult,
};
use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// How the sequential fingerprint pass resolved one scenario.
enum Slot {
    /// No fingerprint (e.g. closure-backed): simulate, don't store.
    Run,
    /// First sighting of this fingerprint: simulate and store.
    Lead(ConfigFingerprint),
    /// Duplicate of the in-batch leader at this index.
    Follow(usize),
    /// Already cached: replay without simulating.
    Replay(RunReport),
}

/// A work-stealing, order-preserving executor over OS threads, with a
/// two-tier scenario-result cache in front of the simulator: the
/// in-memory [`ResultCache`], optionally backed by a persistent
/// [`DiskCache`] (`--result-cache-dir`). Lookup order is memory →
/// in-batch leader → disk → simulate; both tiers are consulted and filled
/// only from the sequential phases, so their ledgers are identical at any
/// job count.
#[derive(Clone, Debug)]
pub struct ScenarioRunner {
    jobs: usize,
    cache: Option<Arc<ResultCache>>,
    disk: Option<Arc<Mutex<DiskCache>>>,
    /// Fleet-level aggregated-report cache ledger (`run_fleets` consults
    /// the same two tiers under fleet fingerprints; these counters keep
    /// that accounting separate from the shard-level ledger).
    fleet_hits: Arc<AtomicU64>,
    fleet_misses: Arc<AtomicU64>,
}

impl ScenarioRunner {
    /// An executor that runs at most `jobs` scenarios concurrently, with
    /// result caching on. Clones share the same cache.
    ///
    /// # Panics
    ///
    /// Panics if `jobs` is zero.
    #[must_use]
    pub fn new(jobs: usize) -> Self {
        assert!(jobs > 0, "ScenarioRunner needs at least one worker");
        ScenarioRunner {
            jobs,
            cache: Some(Arc::new(ResultCache::new())),
            disk: None,
            fleet_hits: Arc::new(AtomicU64::new(0)),
            fleet_misses: Arc::new(AtomicU64::new(0)),
        }
    }

    /// An executor with the result cache disabled: every scenario
    /// simulates, every time. The escape hatch behind `--no-result-cache`.
    ///
    /// # Panics
    ///
    /// Panics if `jobs` is zero.
    #[must_use]
    pub fn without_cache(jobs: usize) -> Self {
        ScenarioRunner {
            cache: None,
            ..Self::new(jobs)
        }
    }

    /// An executor whose cache evicts per `policy` (the
    /// `--result-cache-policy` flag). [`ScenarioRunner::new`] is the FIFO
    /// shorthand.
    ///
    /// # Panics
    ///
    /// Panics if `jobs` is zero.
    #[must_use]
    pub fn with_cache_policy(jobs: usize, policy: EvictionPolicy) -> Self {
        ScenarioRunner {
            cache: Some(Arc::new(ResultCache::with_policy(
                ResultCache::DEFAULT_CAPACITY,
                policy,
            ))),
            ..Self::new(jobs)
        }
    }

    /// Attaches the persistent disk tier rooted at `dir` (the
    /// `--result-cache-dir` flag). The store is keyed to the running
    /// simulator build via [`reach::simulator_version_stamp`]; opening a
    /// foreign, corrupt, or unwritable store degrades to an empty one with
    /// a stderr warning — never an error. The disk tier is only consulted
    /// when the in-memory cache is enabled (it backs that cache; with
    /// `--no-result-cache` nothing is looked up or stored at all).
    #[must_use]
    pub fn with_disk_cache(mut self, dir: &Path) -> Self {
        self.disk = Some(Arc::new(Mutex::new(DiskCache::open(dir))));
        self
    }

    /// [`ScenarioRunner::with_disk_cache`] over an already-opened store —
    /// the test seam for injecting a [`DiskCache`] with a foreign version
    /// stamp.
    #[must_use]
    pub fn with_disk_cache_store(mut self, store: DiskCache) -> Self {
        self.disk = Some(Arc::new(Mutex::new(store)));
        self
    }

    /// The configured worker count.
    #[must_use]
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Whether a result cache is attached.
    #[must_use]
    pub fn cache_enabled(&self) -> bool {
        self.cache.is_some()
    }

    /// Hit/miss counters of the attached cache (all zero when disabled).
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.cache
            .as_deref()
            .map(ResultCache::stats)
            .unwrap_or_default()
    }

    /// Whether a persistent disk tier is attached.
    #[must_use]
    pub fn disk_cache_enabled(&self) -> bool {
        self.disk.is_some()
    }

    /// Hit/miss counters of the disk tier (all zero when absent). When
    /// attached, every in-memory miss — shard-level (counted in
    /// [`ScenarioRunner::cache_stats`]) or fleet-level (counted in
    /// [`ScenarioRunner::fleet_cache_stats`]) — falls through to exactly
    /// one disk lookup.
    #[must_use]
    pub fn disk_cache_stats(&self) -> DiskCacheStats {
        self.disk
            .as_ref()
            .map(|d| d.lock().expect("disk cache poisoned").stats())
            .unwrap_or_default()
    }

    /// Hit/miss counters of the fleet-level aggregated-report cache
    /// (all zero when the cache is disabled or no fleets ran).
    #[must_use]
    pub fn fleet_cache_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.fleet_hits.load(Ordering::Relaxed),
            misses: self.fleet_misses.load(Ordering::Relaxed),
        }
    }

    /// Looks `fp` up in the disk tier, counting a hit or miss. `None`
    /// when no disk tier is attached (nothing is counted).
    fn disk_lookup(&self, fp: ConfigFingerprint) -> Option<RunReport> {
        let disk = self.disk.as_ref()?;
        let mut disk = disk.lock().expect("disk cache poisoned");
        match disk.get(fp.as_u128()) {
            Some(report) => {
                disk.record_hit();
                Some(report)
            }
            None => {
                disk.record_miss();
                None
            }
        }
    }

    /// Stores a freshly simulated report in the disk tier, if attached.
    fn disk_store(&self, fp: ConfigFingerprint, report: &RunReport) {
        if let Some(disk) = &self.disk {
            disk.lock()
                .expect("disk cache poisoned")
                .insert(fp.as_u128(), report);
        }
    }

    /// Persists any new disk-tier entries (atomic rename; warns once and
    /// degrades on failure).
    fn disk_flush(&self) {
        if let Some(disk) = &self.disk {
            disk.lock().expect("disk cache poisoned").flush();
        }
    }

    /// Executes the scenarios at `indices` (into `scenarios`), returning
    /// reports in a vector indexed like `scenarios`. Runs on the calling
    /// thread below two effective workers, across scoped threads otherwise.
    fn execute_subset(
        &self,
        scenarios: &[Box<dyn Scenario>],
        indices: &[usize],
    ) -> Vec<Option<RunReport>> {
        let workers = self.jobs.min(indices.len());
        if workers <= 1 {
            let mut reports: Vec<Option<RunReport>> = (0..scenarios.len()).map(|_| None).collect();
            for &i in indices {
                reports[i] = Some(scenarios[i].execute());
            }
            return reports;
        }
        let next = AtomicUsize::new(0);
        let slots: Mutex<Vec<Option<RunReport>>> =
            Mutex::new((0..scenarios.len()).map(|_| None).collect());
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let k = next.fetch_add(1, Ordering::Relaxed);
                    if k >= indices.len() {
                        break;
                    }
                    let i = indices[k];
                    // The machine is instantiated, driven and dropped
                    // entirely inside this worker.
                    let report = scenarios[i].execute();
                    slots.lock().expect("result slots poisoned")[i] = Some(report);
                });
            }
        });
        slots.into_inner().expect("result slots poisoned")
    }
}

impl ScenarioExecutor for ScenarioRunner {
    fn run_all(&self, scenarios: Vec<Box<dyn Scenario>>) -> Vec<ScenarioResult> {
        let n = scenarios.len();

        // Phase 1 (sequential, submission order): resolve every scenario
        // against both cache tiers. Sequencing this phase is what makes
        // the hit/miss counters and the cache contents independent of
        // `jobs`. A memory miss falls through to the disk tier; a disk hit
        // also fills the memory tier, so later in-batch duplicates resolve
        // as ordinary memory hits.
        let mut slots: Vec<Slot> = Vec::with_capacity(n);
        match &self.cache {
            None => slots.extend((0..n).map(|_| Slot::Run)),
            Some(cache) => {
                let mut leaders: HashMap<ConfigFingerprint, usize> = HashMap::new();
                for (i, s) in scenarios.iter().enumerate() {
                    slots.push(match s.config_fingerprint() {
                        None => Slot::Run,
                        Some(fp) => {
                            if let Some(report) = cache.get(&fp) {
                                cache.record_hit();
                                Slot::Replay(report)
                            } else if let Some(&leader) = leaders.get(&fp) {
                                cache.record_hit();
                                Slot::Follow(leader)
                            } else {
                                cache.record_miss();
                                if let Some(report) = self.disk_lookup(fp) {
                                    cache.insert(fp, report.clone());
                                    Slot::Replay(report)
                                } else {
                                    leaders.insert(fp, i);
                                    Slot::Lead(fp)
                                }
                            }
                        }
                    });
                }
            }
        }

        // Phase 2 (parallel): simulate only what phase 1 could not answer.
        let to_run: Vec<usize> = slots
            .iter()
            .enumerate()
            .filter(|(_, slot)| matches!(slot, Slot::Run | Slot::Lead(_)))
            .map(|(i, _)| i)
            .collect();
        let mut reports = self.execute_subset(&scenarios, &to_run);

        // Phase 3 (sequential, submission order): assemble results, store
        // leader reports in both tiers, clone them for in-batch followers.
        let results = slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| {
                let report = match slot {
                    Slot::Run => reports[i].take().expect("executed scenario has a report"),
                    Slot::Lead(fp) => {
                        let report = reports[i].clone().expect("executed scenario has a report");
                        if let Some(cache) = &self.cache {
                            cache.insert(fp, report.clone());
                        }
                        self.disk_store(fp, &report);
                        report
                    }
                    // Leaders always precede their followers, so the
                    // leader's slot is still populated (Lead never takes).
                    Slot::Follow(leader) => reports[leader]
                        .clone()
                        .expect("leader precedes its followers"),
                    Slot::Replay(report) => report,
                };
                ScenarioResult {
                    label: scenarios[i].label(),
                    report,
                }
            })
            .collect();
        self.disk_flush();
        results
    }

    /// Fleet batches resolve through the same two-tier cache at *fleet*
    /// granularity before any shard expands: a fleet whose aggregated
    /// report is already cached (under its [`FleetScenario`] fingerprint)
    /// replays it outright — no shard scenarios, no shard lookups. Only
    /// missed fleets expand, through [`ScenarioExecutor::run_all`] as one
    /// flat batch, so shard-level caching and thread fan-out still apply
    /// within a cold run; their aggregated reports are then stored in both
    /// tiers. Resolution and aggregation are sequential in submission
    /// order, so the fleet ledger ([`ScenarioRunner::fleet_cache_stats`])
    /// is byte-identical at any job count.
    fn run_fleets(&self, fleets: Vec<Box<dyn FleetScenario>>) -> Vec<ScenarioResult> {
        enum FleetSlot {
            /// Expand and aggregate, optionally storing under the fleet
            /// fingerprint afterwards.
            Expand(Option<ConfigFingerprint>),
            /// Aggregated report already cached: replay it.
            Replay(RunReport),
        }

        // Sequential resolution, fleet by fleet.
        let slots: Vec<FleetSlot> = fleets
            .iter()
            .map(|fleet| match (&self.cache, fleet.config_fingerprint()) {
                (Some(cache), Some(fp)) => {
                    if let Some(report) = cache.get(&fp) {
                        self.fleet_hits.fetch_add(1, Ordering::Relaxed);
                        FleetSlot::Replay(report)
                    } else if let Some(report) = self.disk_lookup(fp) {
                        self.fleet_hits.fetch_add(1, Ordering::Relaxed);
                        cache.insert(fp, report.clone());
                        FleetSlot::Replay(report)
                    } else {
                        self.fleet_misses.fetch_add(1, Ordering::Relaxed);
                        FleetSlot::Expand(Some(fp))
                    }
                }
                _ => FleetSlot::Expand(None),
            })
            .collect();

        // Expand every missed fleet into one flat shard batch.
        let mut batch: Vec<Box<dyn Scenario>> = Vec::new();
        let mut spans = Vec::with_capacity(fleets.len());
        for (fleet, slot) in fleets.iter().zip(&slots) {
            let start = batch.len();
            if matches!(slot, FleetSlot::Expand(_)) {
                for shard in 0..fleet.fleet().shards() {
                    batch.push(fleet.shard_scenario(shard));
                }
            }
            spans.push(start..batch.len());
        }
        let mut shard_results = self.run_all(batch).into_iter();

        // Sequential aggregation + store, in submission order.
        let results: Vec<ScenarioResult> = fleets
            .iter()
            .zip(slots)
            .zip(spans)
            .map(|((fleet, slot), span)| {
                let report = match slot {
                    FleetSlot::Replay(report) => report,
                    FleetSlot::Expand(fp) => {
                        let reports: Vec<RunReport> = span
                            .map(|_| {
                                shard_results
                                    .next()
                                    .expect("run_all returns one result per scenario")
                                    .report
                            })
                            .collect();
                        let report = fleet.aggregate(reports);
                        if let Some(fp) = fp {
                            if let Some(cache) = &self.cache {
                                cache.insert(fp, report.clone());
                            }
                            self.disk_store(fp, &report);
                        }
                        report
                    }
                };
                ScenarioResult {
                    label: fleet.label(),
                    report,
                }
            })
            .collect();
        self.disk_flush();
        results
    }
}

/// Wraps an executor and counts how many scenarios pass through it —
/// the `experiments` binary uses this for its wall-clock summary.
pub struct CountingExecutor<'a> {
    inner: &'a dyn ScenarioExecutor,
    count: AtomicUsize,
}

impl<'a> CountingExecutor<'a> {
    /// Counts scenarios delegated to `inner`.
    #[must_use]
    pub fn new(inner: &'a dyn ScenarioExecutor) -> Self {
        CountingExecutor {
            inner,
            count: AtomicUsize::new(0),
        }
    }

    /// Scenarios executed so far.
    #[must_use]
    pub fn scenarios_run(&self) -> usize {
        self.count.load(Ordering::Relaxed)
    }
}

impl ScenarioExecutor for CountingExecutor<'_> {
    fn run_all(&self, scenarios: Vec<Box<dyn Scenario>>) -> Vec<ScenarioResult> {
        self.count.fetch_add(scenarios.len(), Ordering::Relaxed);
        self.inner.run_all(scenarios)
    }

    // Forward instead of taking the trait default: the default would
    // expand fleets through *this* wrapper's `run_all`, bypassing the
    // inner executor's fleet-level result caching. Counts each fleet as
    // one scenario (a cached fleet expands no shards at all).
    fn run_fleets(&self, fleets: Vec<Box<dyn FleetScenario>>) -> Vec<ScenarioResult> {
        self.count.fetch_add(fleets.len(), Ordering::Relaxed);
        self.inner.run_fleets(fleets)
    }
}

/// The headline numbers and telemetry snapshot of one finished scenario,
/// captured by a [`RecordingExecutor`].
#[derive(Clone, Debug)]
pub struct CapturedScenario {
    /// The scenario's label (e.g. `"fig13/ReACH"`).
    pub label: String,
    /// Simulated makespan in picoseconds.
    pub makespan_ps: u64,
    /// Jobs completed.
    pub jobs: u64,
    /// Total energy in joules.
    pub energy_j: f64,
    /// The machine-wide telemetry snapshot.
    pub metrics: MetricsSnapshot,
}

impl CapturedScenario {
    /// Jobs per simulated second (0.0 for an empty run).
    #[must_use]
    pub fn throughput_jobs_per_sec(&self) -> f64 {
        if self.makespan_ps == 0 {
            0.0
        } else {
            self.jobs as f64 / (self.makespan_ps as f64 * 1e-12)
        }
    }
}

/// Wraps an executor and captures every finished scenario's label, headline
/// numbers and telemetry snapshot — in submission order, so the capture
/// stream is byte-identical regardless of the inner executor's job count.
pub struct RecordingExecutor<'a> {
    inner: &'a dyn ScenarioExecutor,
    captured: Mutex<Vec<CapturedScenario>>,
}

impl<'a> RecordingExecutor<'a> {
    /// Records scenarios delegated to `inner`.
    #[must_use]
    pub fn new(inner: &'a dyn ScenarioExecutor) -> Self {
        RecordingExecutor {
            inner,
            captured: Mutex::new(Vec::new()),
        }
    }

    /// Takes everything captured since the last drain.
    #[must_use]
    pub fn drain(&self) -> Vec<CapturedScenario> {
        std::mem::take(&mut *self.captured.lock().expect("capture buffer poisoned"))
    }

    fn capture(&self, results: &[ScenarioResult]) {
        let mut captured = self.captured.lock().expect("capture buffer poisoned");
        for r in results {
            captured.push(CapturedScenario {
                label: r.label.clone(),
                makespan_ps: r.report.makespan.as_ps(),
                jobs: r.report.jobs,
                energy_j: r.report.total_energy_j(),
                metrics: r.report.metrics.clone(),
            });
        }
    }
}

impl ScenarioExecutor for RecordingExecutor<'_> {
    fn run_all(&self, scenarios: Vec<Box<dyn Scenario>>) -> Vec<ScenarioResult> {
        let results = self.inner.run_all(scenarios);
        self.capture(&results);
        results
    }

    // Forward instead of taking the trait default, so the inner
    // executor's fleet-level result caching applies. What gets captured
    // is the *aggregated* fleet result (label + report with the
    // `fleet.*` telemetry block), not the per-shard expansion.
    fn run_fleets(&self, fleets: Vec<Box<dyn FleetScenario>>) -> Vec<ScenarioResult> {
        let results = self.inner.run_fleets(fleets);
        self.capture(&results);
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reach::SequentialExecutor;
    use reach_cbir::{blueprint_with, CbirMapping, CbirPipeline, CbirScenario, CbirWorkload};

    fn batch() -> Vec<Box<dyn Scenario>> {
        let w = CbirWorkload::paper_setup();
        CbirMapping::ALL
            .iter()
            .map(|&mapping| {
                Box::new(CbirScenario::full(
                    format!("runner/{}", mapping.name()),
                    blueprint_with(4, 4),
                    CbirPipeline::new(w, mapping),
                    2,
                )) as Box<dyn Scenario>
            })
            .collect()
    }

    #[test]
    fn parallel_matches_sequential() {
        let seq = SequentialExecutor.run_all(batch());
        let par = ScenarioRunner::new(4).run_all(batch());
        assert_eq!(seq.len(), par.len());
        for (s, p) in seq.iter().zip(&par) {
            assert_eq!(s.label, p.label);
            assert_eq!(s.report.makespan, p.report.makespan);
            assert_eq!(s.report.to_string(), p.report.to_string());
        }
    }

    #[test]
    fn more_workers_than_scenarios_is_fine() {
        let results = ScenarioRunner::new(64).run_all(batch());
        assert_eq!(results.len(), CbirMapping::ALL.len());
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = ScenarioRunner::new(0);
    }

    #[test]
    fn counting_executor_counts() {
        let runner = ScenarioRunner::new(2);
        let counting = CountingExecutor::new(&runner);
        let _ = counting.run_all(batch());
        assert_eq!(counting.scenarios_run(), CbirMapping::ALL.len());
    }

    fn rendered(results: &[reach::ScenarioResult]) -> String {
        results
            .iter()
            .map(|r| format!("{}\n{}", r.label, r.report))
            .collect()
    }

    #[test]
    fn cached_output_is_byte_identical_to_uncached() {
        let cached = ScenarioRunner::new(4);
        let warm = rendered(&cached.run_all(batch()));
        let hot = rendered(&cached.run_all(batch()));
        let cold = rendered(&ScenarioRunner::without_cache(4).run_all(batch()));
        assert_eq!(warm, cold);
        assert_eq!(hot, cold, "replayed reports must render identically");
        let stats = cached.cache_stats();
        let n = CbirMapping::ALL.len() as u64;
        assert_eq!(stats.misses, n, "first pass simulates everything");
        assert_eq!(stats.hits, n, "second pass replays everything");
    }

    #[test]
    fn cache_stats_are_identical_across_job_counts() {
        let mut per_jobs = Vec::new();
        for jobs in [1, 4, 8] {
            let runner = ScenarioRunner::new(jobs);
            let _ = runner.run_all(batch());
            let _ = runner.run_all(batch());
            per_jobs.push(runner.cache_stats());
        }
        assert_eq!(per_jobs[0], per_jobs[1]);
        assert_eq!(per_jobs[1], per_jobs[2]);
    }

    #[test]
    fn in_batch_duplicates_simulate_once() {
        let w = CbirWorkload::paper_setup();
        let point = || -> Box<dyn Scenario> {
            Box::new(CbirScenario::full(
                "dup",
                blueprint_with(4, 4),
                CbirPipeline::new(w, CbirMapping::Proper),
                2,
            ))
        };
        let runner = ScenarioRunner::new(4);
        let results = runner.run_all(vec![point(), point(), point()]);
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].report.to_string(), results[1].report.to_string());
        assert_eq!(results[0].report.to_string(), results[2].report.to_string());
        let stats = runner.cache_stats();
        assert_eq!(stats.misses, 1, "one leader simulates");
        assert_eq!(stats.hits, 2, "two followers replay");
    }

    #[test]
    fn uncacheable_scenarios_bypass_the_cache() {
        use reach::{FnScenario, MachineBlueprint};
        let point = || -> Box<dyn Scenario> {
            Box::new(FnScenario::new(
                "closure",
                MachineBlueprint::paper(),
                |machine| {
                    let w = CbirWorkload::paper_setup();
                    CbirPipeline::new(w, CbirMapping::AllOnChip).run(machine, 1)
                },
            ))
        };
        let runner = ScenarioRunner::new(2);
        let _ = runner.run_all(vec![point(), point()]);
        assert_eq!(runner.cache_stats(), crate::cache::CacheStats::default());
    }

    #[test]
    fn cache_policy_is_never_observable_in_output() {
        // LRU vs FIFO changes *which* entries survive a full cache, never
        // what a lookup returns — at these batch sizes both policies hold
        // everything, and even at capacity a hit is a hit.
        let fifo = rendered(&ScenarioRunner::new(4).run_all(batch()));
        let lru_runner = ScenarioRunner::with_cache_policy(4, EvictionPolicy::Lru);
        assert_eq!(fifo, rendered(&lru_runner.run_all(batch())));
        assert_eq!(fifo, rendered(&lru_runner.run_all(batch())), "warm replay");
    }

    #[test]
    fn without_cache_never_counts() {
        let runner = ScenarioRunner::without_cache(4);
        let _ = runner.run_all(batch());
        let _ = runner.run_all(batch());
        assert!(!runner.cache_enabled());
        assert_eq!(runner.cache_stats(), crate::cache::CacheStats::default());
    }
}
