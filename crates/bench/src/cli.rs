//! Argument parsing for the `experiments` binary, kept out of `main` so
//! the accepted grammar — and in particular its rejections, like
//! `--jobs 0` — is unit-testable instead of only exercisable by spawning
//! the binary.

use crate::cache::EvictionPolicy;
use std::fmt;

/// Parsed `experiments` command line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExperimentsArgs {
    /// Worker threads for each experiment's scenario batch (default 1).
    pub jobs: usize,
    /// Telemetry JSON output path (`--metrics PATH`).
    pub metrics: Option<String>,
    /// Benchmark-report JSON output path (`--bench-out PATH`).
    pub bench_out: Option<String>,
    /// Disable the scenario-result cache (`--no-result-cache`).
    pub no_result_cache: bool,
    /// Result-cache eviction policy (`--result-cache-policy fifo|lru`).
    pub result_cache_policy: EvictionPolicy,
    /// Print the known experiment ids and exit (`--list`).
    pub list: bool,
    /// Experiment ids to run (empty means all).
    pub ids: Vec<String>,
}

impl Default for ExperimentsArgs {
    fn default() -> Self {
        ExperimentsArgs {
            jobs: 1,
            metrics: None,
            bench_out: None,
            no_result_cache: false,
            result_cache_policy: EvictionPolicy::Fifo,
            list: false,
            ids: Vec::new(),
        }
    }
}

/// A parse failure, ready to print to stderr.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseArgsError(pub String);

impl fmt::Display for ParseArgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ParseArgsError {}

impl ExperimentsArgs {
    /// Parses the arguments after the program name. Anything that is not a
    /// recognized flag is collected as an experiment id (validated against
    /// the renderer table by the binary, which knows the ids).
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending flag when a value is missing
    /// or out of range — notably `--jobs 0`, which would otherwise panic
    /// deep inside the runner.
    pub fn parse(raw: &[String]) -> Result<Self, ParseArgsError> {
        let mut out = ExperimentsArgs::default();
        let mut it = raw.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--jobs" => {
                    out.jobs = match it.next().map(|v| v.parse::<usize>()) {
                        Some(Ok(n)) if n >= 1 => n,
                        _ => {
                            return Err(ParseArgsError(
                                "--jobs needs a positive integer (at least 1)".into(),
                            ))
                        }
                    };
                }
                "--metrics" => match it.next() {
                    Some(p) => out.metrics = Some(p.clone()),
                    None => return Err(ParseArgsError("--metrics needs a file path".into())),
                },
                "--bench-out" => match it.next() {
                    Some(p) => out.bench_out = Some(p.clone()),
                    None => return Err(ParseArgsError("--bench-out needs a file path".into())),
                },
                "--no-result-cache" => out.no_result_cache = true,
                "--result-cache-policy" => {
                    out.result_cache_policy = match it.next().map(|v| EvictionPolicy::parse(v)) {
                        Some(Some(p)) => p,
                        _ => {
                            return Err(ParseArgsError(
                                "--result-cache-policy needs 'fifo' or 'lru'".into(),
                            ))
                        }
                    };
                }
                "--list" => out.list = true,
                other => out.ids.push(other.to_string()),
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Result<ExperimentsArgs, ParseArgsError> {
        ExperimentsArgs::parse(&tokens.iter().map(ToString::to_string).collect::<Vec<_>>())
    }

    #[test]
    fn defaults() {
        let a = parse(&[]).unwrap();
        assert_eq!(a, ExperimentsArgs::default());
        assert_eq!(a.jobs, 1);
        assert!(!a.no_result_cache);
    }

    #[test]
    fn flags_and_ids() {
        let a = parse(&[
            "fig13",
            "--jobs",
            "4",
            "--metrics",
            "m.json",
            "--bench-out",
            "b.json",
            "--no-result-cache",
            "table1",
        ])
        .unwrap();
        assert_eq!(a.jobs, 4);
        assert_eq!(a.metrics.as_deref(), Some("m.json"));
        assert_eq!(a.bench_out.as_deref(), Some("b.json"));
        assert!(a.no_result_cache);
        assert_eq!(a.ids, ["fig13", "table1"]);
    }

    #[test]
    fn rejects_zero_jobs_with_a_clear_message() {
        let err = parse(&["--jobs", "0"]).unwrap_err();
        assert!(
            err.to_string().contains("--jobs needs a positive integer"),
            "unhelpful message: {err}"
        );
    }

    #[test]
    fn rejects_missing_or_malformed_values() {
        assert!(parse(&["--jobs"]).is_err());
        assert!(parse(&["--jobs", "many"]).is_err());
        assert!(parse(&["--jobs", "-1"]).is_err());
        assert!(parse(&["--metrics"]).is_err());
        assert!(parse(&["--bench-out"]).is_err());
    }

    #[test]
    fn list_flag_parses() {
        assert!(parse(&["--list"]).unwrap().list);
    }

    #[test]
    fn cache_policy_parses_and_defaults_to_fifo() {
        assert_eq!(
            parse(&[]).unwrap().result_cache_policy,
            EvictionPolicy::Fifo
        );
        assert_eq!(
            parse(&["--result-cache-policy", "lru"])
                .unwrap()
                .result_cache_policy,
            EvictionPolicy::Lru
        );
        assert_eq!(
            parse(&["--result-cache-policy", "fifo"])
                .unwrap()
                .result_cache_policy,
            EvictionPolicy::Fifo
        );
    }

    #[test]
    fn rejects_unknown_cache_policy() {
        let err = parse(&["--result-cache-policy", "random"]).unwrap_err();
        assert!(
            err.to_string().contains("'fifo' or 'lru'"),
            "unhelpful message: {err}"
        );
        assert!(parse(&["--result-cache-policy"]).is_err());
    }
}
