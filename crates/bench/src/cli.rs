//! Argument parsing for the `experiments` binary, kept out of `main` so
//! the accepted grammar — and in particular its rejections, like
//! `--jobs 0` — is unit-testable instead of only exercisable by spawning
//! the binary.
//!
//! The flags shared by every runner-driving binary (`--jobs`,
//! `--no-result-cache`, `--result-cache-policy`, `--seed`) live in
//! [`CommonRunnerArgs`]: one accept-loop, one set of rejection messages,
//! embedded by both [`ExperimentsArgs`] and [`crate::sweep::SweepArgs`] so
//! the two grammars cannot drift.

use crate::cache::EvictionPolicy;
use crate::runner::ScenarioRunner;
use std::fmt;

/// The runner-facing flags every batch-running binary accepts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommonRunnerArgs {
    /// Worker threads for each scenario batch (`--jobs N`, default 1).
    pub jobs: usize,
    /// Disable the scenario-result cache (`--no-result-cache`).
    pub no_result_cache: bool,
    /// Result-cache eviction policy (`--result-cache-policy fifo|lru`).
    pub result_cache_policy: EvictionPolicy,
    /// Session-seed override (`--seed N`); `None` keeps
    /// [`reach_sim::rng::DEFAULT_SEED`]. Covered by every scenario
    /// fingerprint, so cached results never leak across seeds.
    pub seed: Option<u64>,
    /// Directory of the persistent result cache (`--result-cache-dir
    /// PATH`); `None` keeps the cache in-memory only.
    pub result_cache_dir: Option<String>,
    /// Keep `--result-cache-dir` parsed but inert (`--no-disk-cache`) —
    /// the escape hatch when a wrapper script always passes the dir.
    pub no_disk_cache: bool,
}

impl Default for CommonRunnerArgs {
    fn default() -> Self {
        CommonRunnerArgs {
            jobs: 1,
            no_result_cache: false,
            result_cache_policy: EvictionPolicy::Fifo,
            seed: None,
            result_cache_dir: None,
            no_disk_cache: false,
        }
    }
}

impl CommonRunnerArgs {
    /// Tries to consume `key` (and its value, if any) from the iterator.
    /// Returns `Ok(true)` when the flag was one of the shared ones,
    /// `Ok(false)` when the caller should match it against its own grammar.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending flag when a value is missing
    /// or out of range.
    pub fn accept(
        &mut self,
        key: &str,
        it: &mut std::slice::Iter<'_, String>,
    ) -> Result<bool, ParseArgsError> {
        match key {
            "--jobs" => {
                self.jobs = match it.next().map(|v| v.parse::<usize>()) {
                    Some(Ok(n)) if n >= 1 => n,
                    _ => {
                        return Err(ParseArgsError(
                            "--jobs needs a positive integer (at least 1)".into(),
                        ))
                    }
                };
            }
            "--seed" => {
                self.seed = match it.next().map(|v| v.parse::<u64>()) {
                    Some(Ok(n)) => Some(n),
                    _ => return Err(ParseArgsError("--seed needs an unsigned integer".into())),
                };
            }
            "--no-result-cache" => self.no_result_cache = true,
            "--no-disk-cache" => self.no_disk_cache = true,
            "--result-cache-dir" => {
                self.result_cache_dir = match it.next() {
                    Some(p) if !p.is_empty() => Some(p.clone()),
                    _ => {
                        return Err(ParseArgsError(
                            "--result-cache-dir needs a directory path".into(),
                        ))
                    }
                };
            }
            "--result-cache-policy" => {
                self.result_cache_policy = match it.next().map(|v| EvictionPolicy::parse(v)) {
                    Some(Some(p)) => p,
                    _ => {
                        return Err(ParseArgsError(
                            "--result-cache-policy needs 'fifo' or 'lru'".into(),
                        ))
                    }
                };
            }
            _ => return Ok(false),
        }
        Ok(true)
    }

    /// The runner these flags select: `jobs` workers, result cache on
    /// (with the chosen eviction policy) unless `--no-result-cache`, and
    /// the persistent disk tier attached when `--result-cache-dir` is set
    /// (and neither `--no-disk-cache` nor `--no-result-cache` vetoes it —
    /// the disk tier backs the in-memory cache, so disabling the cache
    /// disables persistence too).
    #[must_use]
    pub fn runner(&self) -> ScenarioRunner {
        if self.no_result_cache {
            return ScenarioRunner::without_cache(self.jobs);
        }
        let runner = ScenarioRunner::with_cache_policy(self.jobs, self.result_cache_policy);
        match &self.result_cache_dir {
            Some(dir) if !self.no_disk_cache => runner.with_disk_cache(std::path::Path::new(dir)),
            _ => runner,
        }
    }

    /// Installs the `--seed` override as the process-wide session seed.
    /// Call once, right after parsing, before any scenario is built.
    pub fn apply_seed(&self) {
        if let Some(seed) = self.seed {
            reach_sim::rng::set_session_seed(seed);
        }
    }
}

/// Parsed `experiments` command line.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct ExperimentsArgs {
    /// The shared runner flags.
    pub common: CommonRunnerArgs,
    /// Telemetry JSON output path (`--metrics PATH`).
    pub metrics: Option<String>,
    /// Benchmark-report JSON output path (`--bench-out PATH`).
    pub bench_out: Option<String>,
    /// Print the known experiment ids and exit (`--list`).
    pub list: bool,
    /// Experiment ids to run (empty means all).
    pub ids: Vec<String>,
}

/// A parse failure, ready to print to stderr.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseArgsError(pub String);

impl fmt::Display for ParseArgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ParseArgsError {}

impl ExperimentsArgs {
    /// Parses the arguments after the program name. Anything that is not a
    /// recognized flag is collected as an experiment id (validated against
    /// the renderer table by the binary, which knows the ids).
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending flag when a value is missing
    /// or out of range — notably `--jobs 0`, which would otherwise panic
    /// deep inside the runner.
    pub fn parse(raw: &[String]) -> Result<Self, ParseArgsError> {
        let mut out = ExperimentsArgs::default();
        let mut it = raw.iter();
        while let Some(a) = it.next() {
            if out.common.accept(a.as_str(), &mut it)? {
                continue;
            }
            match a.as_str() {
                "--metrics" => match it.next() {
                    Some(p) => out.metrics = Some(p.clone()),
                    None => return Err(ParseArgsError("--metrics needs a file path".into())),
                },
                "--bench-out" => match it.next() {
                    Some(p) => out.bench_out = Some(p.clone()),
                    None => return Err(ParseArgsError("--bench-out needs a file path".into())),
                },
                "--list" => out.list = true,
                other => out.ids.push(other.to_string()),
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Result<ExperimentsArgs, ParseArgsError> {
        ExperimentsArgs::parse(&tokens.iter().map(ToString::to_string).collect::<Vec<_>>())
    }

    #[test]
    fn defaults() {
        let a = parse(&[]).unwrap();
        assert_eq!(a, ExperimentsArgs::default());
        assert_eq!(a.common.jobs, 1);
        assert!(!a.common.no_result_cache);
        assert_eq!(a.common.seed, None);
    }

    #[test]
    fn flags_and_ids() {
        let a = parse(&[
            "fig13",
            "--jobs",
            "4",
            "--metrics",
            "m.json",
            "--bench-out",
            "b.json",
            "--no-result-cache",
            "table1",
        ])
        .unwrap();
        assert_eq!(a.common.jobs, 4);
        assert_eq!(a.metrics.as_deref(), Some("m.json"));
        assert_eq!(a.bench_out.as_deref(), Some("b.json"));
        assert!(a.common.no_result_cache);
        assert_eq!(a.ids, ["fig13", "table1"]);
    }

    #[test]
    fn seed_parses_without_applying() {
        // Parsing records the override; only `apply_seed` (called by the
        // binaries, never by tests) touches the process-wide seed.
        let a = parse(&["--seed", "7"]).unwrap();
        assert_eq!(a.common.seed, Some(7));
        assert_eq!(reach_sim::rng::session_seed(), reach_sim::rng::DEFAULT_SEED);
    }

    // Every rejection message of the shared grammar, asserted in one
    // place — the sweep parser routes through the same `accept`, so these
    // cover both binaries.

    #[test]
    fn rejects_zero_jobs_with_a_clear_message() {
        let err = parse(&["--jobs", "0"]).unwrap_err();
        assert!(
            err.to_string().contains("--jobs needs a positive integer"),
            "unhelpful message: {err}"
        );
    }

    #[test]
    fn rejects_missing_or_malformed_values() {
        assert!(parse(&["--jobs"]).is_err());
        assert!(parse(&["--jobs", "many"]).is_err());
        assert!(parse(&["--jobs", "-1"]).is_err());
        assert!(parse(&["--metrics"]).is_err());
        assert!(parse(&["--bench-out"]).is_err());
    }

    #[test]
    fn rejects_missing_or_malformed_seed() {
        for bad in [&["--seed"][..], &["--seed", "lucky"], &["--seed", "-3"]] {
            let err = parse(bad).unwrap_err();
            assert!(
                err.to_string().contains("--seed needs an unsigned integer"),
                "unhelpful message: {err}"
            );
        }
    }

    #[test]
    fn list_flag_parses() {
        assert!(parse(&["--list"]).unwrap().list);
    }

    #[test]
    fn cache_policy_parses_and_defaults_to_fifo() {
        assert_eq!(
            parse(&[]).unwrap().common.result_cache_policy,
            EvictionPolicy::Fifo
        );
        assert_eq!(
            parse(&["--result-cache-policy", "lru"])
                .unwrap()
                .common
                .result_cache_policy,
            EvictionPolicy::Lru
        );
        assert_eq!(
            parse(&["--result-cache-policy", "fifo"])
                .unwrap()
                .common
                .result_cache_policy,
            EvictionPolicy::Fifo
        );
    }

    #[test]
    fn rejects_unknown_cache_policy() {
        let err = parse(&["--result-cache-policy", "random"]).unwrap_err();
        assert!(
            err.to_string().contains("'fifo' or 'lru'"),
            "unhelpful message: {err}"
        );
        assert!(parse(&["--result-cache-policy"]).is_err());
    }

    #[test]
    fn common_runner_selects_cache_mode() {
        assert!(parse(&[]).unwrap().common.runner().cache_enabled());
        assert!(!parse(&["--no-result-cache"])
            .unwrap()
            .common
            .runner()
            .cache_enabled());
    }

    #[test]
    fn result_cache_dir_parses_and_requires_a_path() {
        let a = parse(&["--result-cache-dir", "/tmp/reach-cache"]).unwrap();
        assert_eq!(
            a.common.result_cache_dir.as_deref(),
            Some("/tmp/reach-cache")
        );
        assert!(!a.common.no_disk_cache);
        let err = parse(&["--result-cache-dir"]).unwrap_err();
        assert!(
            err.to_string()
                .contains("--result-cache-dir needs a directory path"),
            "unhelpful message: {err}"
        );
        assert!(parse(&["--result-cache-dir", ""]).is_err());
    }

    #[test]
    fn disk_tier_attaches_only_when_asked_and_not_vetoed() {
        let dir = std::env::temp_dir().join(format!("reach-cli-disk-{}", std::process::id()));
        let dir_s = dir.to_str().unwrap();
        // No dir: memory-only.
        assert!(!parse(&[]).unwrap().common.runner().disk_cache_enabled());
        // Dir given: disk tier on.
        let on = parse(&["--result-cache-dir", dir_s])
            .unwrap()
            .common
            .runner();
        assert!(on.cache_enabled() && on.disk_cache_enabled());
        // --no-disk-cache vetoes persistence but keeps the memory tier.
        let vetoed = parse(&["--result-cache-dir", dir_s, "--no-disk-cache"])
            .unwrap()
            .common
            .runner();
        assert!(vetoed.cache_enabled() && !vetoed.disk_cache_enabled());
        // --no-result-cache disables both tiers.
        let off = parse(&["--result-cache-dir", dir_s, "--no-result-cache"])
            .unwrap()
            .common
            .runner();
        assert!(!off.cache_enabled() && !off.disk_cache_enabled());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
