//! # reach-bench — experiment harness
//!
//! Two front doors to the paper's evaluation:
//!
//! * the **`experiments` binary** (`cargo run -p reach-bench --bin
//!   experiments --release [-- fig13]`) prints every table and figure in
//!   the paper's row/series format;
//! * the **Criterion benches** (`cargo bench`) time the regeneration of
//!   each figure plus the substrate and CBIR kernels.
//!
//! This library holds the shared formatting used by both.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod cli;
pub mod diskcache;
pub mod export;
pub mod runner;
pub mod sweep;

pub use cache::{CacheStats, EvictionPolicy, ResultCache};
pub use cli::{CommonRunnerArgs, ExperimentsArgs};
pub use diskcache::{DiskCache, DiskCacheStats};
pub use export::{
    bench_report_json, label_file_stem, run_metrics_json, scenario_metrics_json, BenchEntry,
};
pub use runner::{CapturedScenario, RecordingExecutor, ScenarioRunner};

use reach::{ScenarioExecutor, SystemComponent};
use reach_cbir::experiments as exp;
use reach_cbir::pipeline::CbirStage;
use std::fmt::Write as _;

/// Renders Table I in the paper's layout.
#[must_use]
pub fn render_table1(_executor: &dyn ScenarioExecutor) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "TABLE I. MEMORY AND COMPUTE REQUIREMENTS PER CBIR STAGE");
    for row in exp::table1() {
        let _ = writeln!(s, "  {:<22} {:<55} {}", row.stage, row.memory, row.compute);
    }
    s
}

/// Renders Table II (the system configuration).
#[must_use]
pub fn render_table2(_executor: &dyn ScenarioExecutor) -> String {
    let cfg = exp::table2();
    let mut s = String::new();
    let _ = writeln!(
        s,
        "TABLE II. EXPERIMENTAL SETUP OF THE COMPUTE HIERARCHY SYSTEM"
    );
    let _ = writeln!(
        s,
        "  CPU: 1 x86-64 OoO core @ 2 GHz, 32 KB L1, 2 MB shared L2"
    );
    let _ = writeln!(
        s,
        "  Memory controllers: 2 MCs, {}-entry read / {}-entry write queues, FR-FCFS",
        cfg.host_mc.read_queue, cfg.host_mc.write_queue
    );
    let host_dimms = cfg.host_mc.channels * cfg.host_mc.dimms_per_channel;
    let _ = writeln!(
        s,
        "  Memory system: {} DDR4 DIMMs ({} near-memory accelerators + {} for CPU/on-chip)",
        host_dimms + cfg.near_memory_accelerators,
        cfg.near_memory_accelerators,
        host_dimms
    );
    let _ = writeln!(
        s,
        "  Storage: {} NVMe SSDs behind PCIe Gen3 x16 (~12 GB/s effective)",
        cfg.near_storage_accelerators
    );
    let _ = writeln!(
        s,
        "  On-chip accelerator: Virtex UltraScale+, {} to shared cache",
        cfg.onchip_cache_bandwidth
    );
    let _ = writeln!(
        s,
        "  Near-memory accelerator: Zynq UltraScale+, ~18 GB/s to its DDR4 DIMM"
    );
    let _ = writeln!(
        s,
        "  Near-storage accelerator: Zynq UltraScale+ with {} GB DRAM, 12 GB/s to its SSD",
        cfg.ns_device.buffer_capacity >> 30
    );
    s
}

/// Renders Table III (the kernel registry).
#[must_use]
pub fn render_table3(_executor: &dyn ScenarioExecutor) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "TABLE III. FPGA UTILIZATION FOR EACH ACCELERATOR");
    let _ = writeln!(
        s,
        "  {:<14} {:<6} {:<28} {:>8} {:>8}",
        "kernel", "part", "utilization (ff,lut,dsp,bram)", "freq", "power"
    );
    for k in exp::table3().iter() {
        let _ = writeln!(
            s,
            "  {:<14} {:<6} {:<28} {:>8} {:>7}W  ({})",
            k.name,
            k.part.name,
            k.utilization.to_string(),
            k.frequency.to_string(),
            k.power_w,
            k.level
        );
    }
    s
}

/// Renders Table IV (the energy model).
#[must_use]
pub fn render_table4(_executor: &dyn ScenarioExecutor) -> String {
    let p = exp::table4();
    let mut s = String::new();
    let _ = writeln!(
        s,
        "TABLE IV. ENERGY MODEL CONSTANTS (TOOLS REDUCED TO NUMBERS)"
    );
    let _ = writeln!(
        s,
        "  Cache (CACTI-class): {} pJ/access, {} W leakage",
        p.cache.pj_per_access, p.cache.leakage_w
    );
    let _ = writeln!(
        s,
        "  DRAM (Micron-calculator-class): {} pJ/activation, {} pJ/B, {} W/DIMM background",
        p.dram.pj_per_activation, p.dram.pj_per_byte, p.dram.background_w_per_dimm
    );
    let _ = writeln!(
        s,
        "  SSD (NVMe datasheet): {} W active, {} W idle per drive",
        p.ssd.active_w, p.ssd.idle_w
    );
    let _ = writeln!(
        s,
        "  MC+interconnect: {} pJ/B, {} W static;  PCIe: {} pJ/B, {} W static",
        p.mc_interconnect.pj_per_byte,
        p.mc_interconnect.static_w,
        p.pcie.pj_per_byte,
        p.pcie.static_w
    );
    let _ = writeln!(
        s,
        "  Accelerators: Table III active power; idle = {:.0}% of active",
        p.accel_idle_fraction * 100.0
    );
    s
}

/// Renders Figure 8 (baseline energy breakdown).
#[must_use]
pub fn render_fig8(executor: &dyn ScenarioExecutor) -> String {
    let f = exp::fig8_with(executor);
    let mut s = String::new();
    let _ = writeln!(
        s,
        "FIGURE 8. ENERGY BREAKDOWN, CBIR FULLY ON-CHIP (one batch)"
    );
    let _ = write!(s, "{}", f.ledger);
    let _ = writeln!(
        s,
        "  data movement: {:.1}% of total (paper: 79%)",
        f.movement_fraction * 100.0
    );
    let _ = writeln!(
        s,
        "  stage shares: feature extraction {:.1}%, short-list {:.1}%, rerank {:.1}% (paper: 22/17/61)",
        f.stage_shares[0] * 100.0,
        f.stage_shares[1] * 100.0,
        f.stage_shares[2] * 100.0
    );
    s
}

fn render_stage_scaling(title: &str, rows: &[exp::StageScalingRow]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{title}");
    let _ = writeln!(
        s,
        "  (runtime and energy normalized to the on-chip accelerator)"
    );
    for r in rows {
        let _ = writeln!(s, "  {r}");
    }
    s
}

/// Renders Figure 9 (feature-extraction scaling).
#[must_use]
pub fn render_fig9(executor: &dyn ScenarioExecutor) -> String {
    render_stage_scaling(
        "FIGURE 9. FEATURE EXTRACTION AT NEAR-MEMORY / NEAR-STORAGE",
        &exp::fig9_with(executor),
    )
}

/// Renders Figure 10 (short-list retrieval scaling).
#[must_use]
pub fn render_fig10(executor: &dyn ScenarioExecutor) -> String {
    render_stage_scaling(
        "FIGURE 10. SHORT-LIST RETRIEVAL AT NEAR-MEMORY / NEAR-STORAGE",
        &exp::fig10_with(executor),
    )
}

/// Renders Figure 11 (rerank scaling).
#[must_use]
pub fn render_fig11(executor: &dyn ScenarioExecutor) -> String {
    render_stage_scaling(
        "FIGURE 11. RERANK AT NEAR-MEMORY / NEAR-STORAGE",
        &exp::fig11_with(executor),
    )
}

/// Renders Figure 12 (end-to-end, single compute level).
#[must_use]
pub fn render_fig12(executor: &dyn ScenarioExecutor) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "FIGURE 12. END-TO-END CBIR ON A SINGLE COMPUTE LEVEL");
    for r in exp::fig12_with(executor) {
        let _ = writeln!(s, "  {r}");
    }
    s
}

/// Renders Figure 13 (the headline comparison).
#[must_use]
pub fn render_fig13(executor: &dyn ScenarioExecutor) -> String {
    let rows = exp::fig13_with(executor);
    let mut s = String::new();
    let _ = writeln!(s, "FIGURE 13. CBIR ON ReACH VS SINGLE-LEVEL ACCELERATION");
    for r in &rows {
        let _ = writeln!(s, "  {r}");
        let parts: Vec<String> = r
            .energy_by_component
            .iter()
            .filter(|(_, j)| *j > 0.005)
            .map(|(c, j)| format!("{c}={j:.2}J"))
            .collect();
        let _ = writeln!(s, "      {}", parts.join(" "));
    }
    let base = rows
        .iter()
        .find(|r| r.mapping == reach_cbir::CbirMapping::AllOnChip)
        .expect("baseline present");
    let reach = rows
        .iter()
        .find(|r| r.mapping == reach_cbir::CbirMapping::Proper)
        .expect("ReACH present");
    let _ = writeln!(
        s,
        "  headline: {:.2}x throughput (paper 4.5x), {:.2}x latency (paper 2.2x), {:.0}% energy reduction (paper 52%)",
        reach.throughput_gain,
        reach.latency_gain,
        (1.0 - reach.energy_total / base.energy_total) * 100.0
    );
    s
}

fn render_ablation(title: &str, rows: &[reach_cbir::ablations::AblationRow]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{title}");
    for r in rows {
        let _ = writeln!(s, "  {r}");
    }
    s
}

/// Renders the status-poll interval ablation.
#[must_use]
pub fn render_ablation_poll(executor: &dyn ScenarioExecutor) -> String {
    render_ablation(
        "ABLATION. GAM MINIMUM STATUS-POLL INTERVAL (proper mapping)",
        &reach_cbir::ablations::poll_interval_with(executor),
    )
}

/// Renders the reconfiguration-delay ablation.
#[must_use]
pub fn render_ablation_reconfig(executor: &dyn ScenarioExecutor) -> String {
    render_ablation(
        "ABLATION. PARTIAL-RECONFIGURATION DELAY (on-chip baseline)",
        &reach_cbir::ablations::reconfig_delay_with(executor),
    )
}

/// Renders the cross-job pipelining ablation.
#[must_use]
pub fn render_ablation_pipelining(executor: &dyn ScenarioExecutor) -> String {
    render_ablation(
        "ABLATION. GAM CROSS-JOB PIPELINING ON/OFF",
        &reach_cbir::ablations::pipelining_with(executor),
    )
}

/// Renders the GEMM tile-budget ablation.
#[must_use]
pub fn render_ablation_tile(executor: &dyn ScenarioExecutor) -> String {
    render_ablation(
        "ABLATION. EMBEDDED GEMM TILE BUDGET (BRAM capacity proxy)",
        &reach_cbir::ablations::sl_tile_budget_with(executor),
    )
}

/// Renders the batch-size ablation (throughput column is queries/s).
#[must_use]
pub fn render_ablation_batch(executor: &dyn ScenarioExecutor) -> String {
    render_ablation(
        "ABLATION. QUERY BATCH SIZE (throughput column = queries/s)",
        &reach_cbir::ablations::batch_size_with(executor),
    )
}

/// Renders the rerank candidate-volume ablation.
#[must_use]
pub fn render_ablation_candidates(executor: &dyn ScenarioExecutor) -> String {
    render_ablation(
        "ABLATION. RERANK CANDIDATE VOLUME",
        &reach_cbir::ablations::candidate_volume_with(executor),
    )
}

/// Renders the interleave-reorganization ablation.
#[must_use]
pub fn render_ablation_interleave(executor: &dyn ScenarioExecutor) -> String {
    render_ablation(
        "ABLATION. GAM MEMORY-SPACE REORGANIZATION (tile vs cache-line interleave)",
        &reach_cbir::ablations::interleave_reorganization_with(executor),
    )
}

/// Renders the rerank-placement ablation.
#[must_use]
pub fn render_ablation_rerank_home(executor: &dyn ScenarioExecutor) -> String {
    render_ablation(
        "ABLATION. RERANK STAGE PLACEMENT (single-stage runs)",
        &reach_cbir::ablations::rerank_placement_with(executor),
    )
}

/// Renders the recall-vs-compression extension experiment. The evaluation
/// runs as one cacheable scenario, so a warm process replays it from the
/// persistent result cache instead of re-training every codec.
#[must_use]
pub fn render_extension_recall(executor: &dyn ScenarioExecutor) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "EXTENSION. RECALL VS COMPRESSION (Section IV-A's argument, executed)"
    );
    for r in exp::recall_vs_compression_with(executor) {
        let _ = writeln!(s, "  {r}");
    }
    let _ = writeln!(
        s,
        "  -> lossy compression buys bytes but pays recall; ReACH keeps full\n\
            precision and buys the bytes back with near-data bandwidth."
    );
    s
}

/// Renders the analytics-offload extension experiment.
#[must_use]
pub fn render_extension_analytics(_executor: &dyn ScenarioExecutor) -> String {
    use reach_analytics::{AnalyticsPlacement, ScanQuery};
    let mut s = String::new();
    let _ = writeln!(
        s,
        "EXTENSION. NEAR-DATA ANALYTICS (selective scan + aggregate, 16 GB table)"
    );
    for sel in [1u32, 10, 50, 100] {
        let q = ScanQuery {
            table_bytes: 16 << 30,
            selectivity_pct: sel,
            row_bytes: 64,
        };
        let host = q.run(AnalyticsPlacement::Host);
        let near = q.run(AnalyticsPlacement::NearStorage);
        let _ = writeln!(
            s,
            "  selectivity {:>3}%   host {:>12}   near-storage {:>12}   speedup {:>5.2}x",
            sel,
            host.makespan.to_string(),
            near.makespan.to_string(),
            host.makespan.as_secs_f64() / near.makespan.as_secs_f64()
        );
    }
    s
}

/// Renders the multi-tenant co-run extension experiment.
#[must_use]
pub fn render_extension_corun(executor: &dyn ScenarioExecutor) -> String {
    use reach_analytics::{co_run_interference_with, ScanQuery};
    let q = ScanQuery {
        table_bytes: 8 << 30,
        selectivity_pct: 2,
        row_bytes: 64,
    };
    let r = co_run_interference_with(executor, 6, &q);
    let mut s = String::new();
    let _ = writeln!(
        s,
        "EXTENSION. MULTI-TENANT CO-RUN (CBIR proper mapping + 8 GB near-storage scan)"
    );
    let _ = writeln!(
        s,
        "  CBIR : alone {:>12}, shared {:>12}  (slowdown {:.2}x)",
        r.cbir_alone.to_string(),
        r.cbir_shared.to_string(),
        r.cbir_slowdown()
    );
    let _ = writeln!(
        s,
        "  scan : alone {:>12}, shared {:>12}  (slowdown {:.2}x)",
        r.scan_alone.to_string(),
        r.scan_shared.to_string(),
        r.scan_slowdown()
    );
    let _ = writeln!(
        s,
        "  -> the tenants collide only on the near-storage level; the GAM's\n\
            per-level queues and buffer isolation bound the damage."
    );
    s
}

/// Renders the fleet scatter-gather extension experiment: the CBIR dataset
/// sharded across N machines per placement level, queries scattered from an
/// aggregator and per-shard partial top-K gathered back over the
/// inter-machine link.
#[must_use]
pub fn render_extension_fleet(executor: &dyn ScenarioExecutor) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "EXTENSION. FLEET SCATTER-GATHER (N dataset shards, partial top-K merged at the aggregator)"
    );
    for r in reach_cbir::fleet::fleet_scatter_gather_with(executor) {
        let _ = writeln!(s, "  {r}");
    }
    let _ = writeln!(
        s,
        "  -> sharding divides the centroid store and rerank volume per machine;\n\
         \x20    the rack link and the serial merge set the floor."
    );
    s
}

/// Renders the graph-analytics extension experiment: BFS and PageRank as
/// pipelines over the hierarchy, swept across placements and graph scales.
/// The printed frontier sizes and residuals come from the host-side
/// reference traversal — the correctness witness `ci/validate.py graph`
/// re-checks from this stdout.
#[must_use]
pub fn render_extension_graph(executor: &dyn ScenarioExecutor) -> String {
    use reach_graph::scenarios::{GRAPH_DEGREE, GRAPH_SCALES};
    let mut s = String::new();
    let _ = writeln!(
        s,
        "EXTENSION. GRAPH ANALYTICS (BFS + PageRank, avg degree {GRAPH_DEGREE}, \
         scales {GRAPH_SCALES:?})"
    );
    for r in reach_graph::graph_sweep_with(executor) {
        let _ = writeln!(s, "  {r}");
    }
    let _ = writeln!(
        s,
        "  -> the traversal kernels are gather-bound: near-memory wins once the\n\
         \x20    frontier stops fitting the on-chip gather window, while the\n\
         \x20    near-storage edge-list rescan pays the full list every level."
    );
    s
}

/// Renders the graph + CBIR co-run extension experiment: open-loop CBIR
/// traffic served while PageRank batch jobs gather on the same near-memory
/// level, with per-tenant admission ledgers, latency quantiles and the DDR
/// / AIMbus contention gauges.
#[must_use]
pub fn render_extension_graph_corun(executor: &dyn ScenarioExecutor) -> String {
    use reach_graph::co_run::{CORUN_OFFERED, CORUN_QUEUE_DEPTH};
    let mut s = String::new();
    let _ = writeln!(
        s,
        "EXTENSION. GRAPH + CBIR CO-RUN ({CORUN_OFFERED} offered query batches, \
         admission queue depth {CORUN_QUEUE_DEPTH}, PageRank batch tenant near memory)"
    );
    for r in reach_graph::graph_corun_rows_with(executor) {
        let _ = writeln!(s, "  {r}");
    }
    let _ = writeln!(
        s,
        "  -> the batch tenant's gathers hold near-memory slots the short-list\n\
         \x20    stage needs: the p99 delta is the price of co-residency, and the\n\
         \x20    contended-cycle gauges show where it was paid."
    );
    s
}

/// Renders the open-loop traffic-serving extension experiment: Poisson
/// query-batch arrivals swept across rates at every placement behind a
/// bounded admission queue, reporting admission/rejection counts and
/// latency quantiles — the saturation knee per placement — plus a bursty
/// arrival point and its bit-for-bit trace replay.
#[must_use]
pub fn render_extension_traffic(executor: &dyn ScenarioExecutor) -> String {
    use reach_cbir::traffic::{TRAFFIC_OFFERED, TRAFFIC_QUEUE_DEPTH};
    let mut s = String::new();
    let _ = writeln!(
        s,
        "EXTENSION. TRAFFIC SERVING (open-loop arrivals, {TRAFFIC_OFFERED} offered batches, \
         admission queue depth {TRAFFIC_QUEUE_DEPTH})"
    );
    for r in reach_cbir::traffic::traffic_knee_with(executor) {
        let _ = writeln!(s, "  {r}");
    }
    let _ = writeln!(
        s,
        "  -> each placement saturates where rejections appear and tail latency flattens\n\
         \x20    at the queue bound; the trace row replays the bursty arrivals bit-for-bit."
    );
    s
}

/// A named experiment renderer. Every renderer drives its simulations
/// through the given executor, so the whole suite parallelizes with one
/// [`ScenarioRunner`] — with output byte-identical to sequential.
pub type Renderer = (&'static str, fn(&dyn ScenarioExecutor) -> String);

/// Every renderer keyed by the experiment id accepted on the command line.
#[must_use]
pub fn renderers() -> Vec<Renderer> {
    vec![
        (
            "table1",
            render_table1 as fn(&dyn ScenarioExecutor) -> String,
        ),
        ("table2", render_table2),
        ("table3", render_table3),
        ("table4", render_table4),
        ("fig8", render_fig8),
        ("fig9", render_fig9),
        ("fig10", render_fig10),
        ("fig11", render_fig11),
        ("fig12", render_fig12),
        ("fig13", render_fig13),
        ("ablation-poll", render_ablation_poll),
        ("ablation-reconfig", render_ablation_reconfig),
        ("ablation-pipelining", render_ablation_pipelining),
        ("ablation-tile", render_ablation_tile),
        ("ablation-batch", render_ablation_batch),
        ("ablation-candidates", render_ablation_candidates),
        ("ablation-rerank-home", render_ablation_rerank_home),
        ("ablation-interleave", render_ablation_interleave),
        ("extension-recall", render_extension_recall),
        ("extension-analytics", render_extension_analytics),
        ("extension-corun", render_extension_corun),
        // Appended last: the golden stdout/fingerprint files are append-only,
        // so new experiments must not reorder existing output.
        ("extension-fleet", render_extension_fleet),
        ("extension-traffic", render_extension_traffic),
        ("extension-graph", render_extension_graph),
        ("extension-graph-corun", render_extension_graph_corun),
    ]
}

/// The label of one CBIR stage for ad-hoc tools.
#[must_use]
pub fn stage_label(stage: CbirStage) -> &'static str {
    stage.label()
}

/// Re-exported so binaries can format component names consistently.
pub fn component_names() -> Vec<String> {
    SystemComponent::ALL
        .iter()
        .map(ToString::to_string)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    use reach::SequentialExecutor;

    #[test]
    fn all_renderers_produce_output() {
        for (name, f) in renderers() {
            let out = f(&SequentialExecutor);
            assert!(out.len() > 40, "{name} output too short:\n{out}");
        }
    }

    #[test]
    fn fig13_render_mentions_headline() {
        let out = render_fig13(&SequentialExecutor);
        assert!(out.contains("throughput"));
        assert!(out.contains("paper 4.5x"));
    }
}
