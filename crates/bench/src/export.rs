//! Metrics and benchmark exporters for the harness binaries.
//!
//! Hand-rolled JSON in the same no-dependency style as the Chrome trace
//! serializer and [`reach_sim::MetricsSnapshot::to_json`]: name-ordered
//! keys and fixed-precision floats, so a given run's exports are
//! byte-stable and CI can diff them.

use crate::runner::CapturedScenario;
use std::fmt::Write as _;

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Re-indents an embedded pretty-printed JSON document by `pad` spaces so
/// it nests cleanly inside a larger document.
fn indent(doc: &str, pad: usize) -> String {
    let prefix = " ".repeat(pad);
    doc.trim_end()
        .lines()
        .enumerate()
        .map(|(i, l)| {
            if i == 0 {
                l.to_string()
            } else {
                format!("{prefix}{l}")
            }
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// Serializes the telemetry of a batch of scenarios as one JSON document
/// (`reach-run-metrics-v1`): an array of `{label, headline, metrics}`
/// entries in capture order.
#[must_use]
pub fn scenario_metrics_json(scenarios: &[CapturedScenario]) -> String {
    run_metrics_json(scenarios, None)
}

/// [`scenario_metrics_json`] with an optional run-level snapshot of
/// process-wide counters (e.g. `cbir.cache_hits` / `cbir.cache_misses`
/// from the cross-batch distance cache) appended as a top-level
/// `"process"` object. Existing consumers of the scenario array are
/// unaffected — the extra key is additive.
#[must_use]
pub fn run_metrics_json(
    scenarios: &[CapturedScenario],
    process: Option<&reach::MetricsSnapshot>,
) -> String {
    let mut out = String::from("{\n  \"schema\": \"reach-run-metrics-v1\",\n  \"scenarios\": [");
    for (i, s) in scenarios.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\n      \"label\": \"{}\",\n      \"makespan_ps\": {},\n      \
             \"jobs\": {},\n      \"throughput_jobs_per_sec\": {:.6},\n      \
             \"energy_j\": {:.6},\n      \"metrics\": {}\n    }}",
            escape(&s.label),
            s.makespan_ps,
            s.jobs,
            s.throughput_jobs_per_sec(),
            s.energy_j,
            indent(&s.metrics.to_json(), 6)
        );
    }
    out.push_str("\n  ]");
    if let Some(snapshot) = process {
        let _ = write!(out, ",\n  \"process\": {}", indent(&snapshot.to_json(), 2));
    }
    out.push_str("\n}\n");
    out
}

/// One benchmark entry: an experiment id, its wall-clock time, and the
/// scenarios it ran.
#[derive(Clone, Debug)]
pub struct BenchEntry {
    /// Experiment id (e.g. `"fig13"`).
    pub id: String,
    /// Host wall-clock seconds spent rendering the experiment.
    pub wall_s: f64,
    /// Scenarios the experiment executed, in capture order.
    pub scenarios: Vec<CapturedScenario>,
}

/// Serializes benchmark entries as `reach-bench-v1` JSON: wall-clock per
/// experiment plus each scenario's headline throughput numbers (without
/// the full telemetry snapshots — those go to the metrics export).
#[must_use]
pub fn bench_report_json(entries: &[BenchEntry]) -> String {
    let mut out = String::from("{\n  \"schema\": \"reach-bench-v1\",\n  \"experiments\": [");
    for (i, e) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\n      \"id\": \"{}\",\n      \"wall_s\": {:.3},\n      \"scenarios\": [",
            escape(&e.id),
            e.wall_s
        );
        for (j, s) in e.scenarios.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n        {{\"label\": \"{}\", \"makespan_ps\": {}, \"jobs\": {}, \
                 \"throughput_jobs_per_sec\": {:.6}, \"energy_j\": {:.6}}}",
                escape(&s.label),
                s.makespan_ps,
                s.jobs,
                s.throughput_jobs_per_sec(),
                s.energy_j
            );
        }
        if e.scenarios.is_empty() {
            out.push_str("]\n    }");
        } else {
            out.push_str("\n      ]\n    }");
        }
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Turns a scenario label into a safe file stem: path separators and other
/// non-alphanumeric characters become `-`.
#[must_use]
pub fn label_file_stem(label: &str) -> String {
    label
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.' {
                c
            } else {
                '-'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use reach::MetricsSnapshot;

    fn captured(label: &str) -> CapturedScenario {
        let mut metrics = MetricsSnapshot::new(2_000_000_000_000);
        metrics.set_counter("gam.dispatches", 7);
        CapturedScenario {
            label: label.to_string(),
            makespan_ps: 2_000_000_000_000,
            jobs: 4,
            energy_j: 12.5,
            metrics,
        }
    }

    #[test]
    fn metrics_json_embeds_snapshots() {
        let doc = scenario_metrics_json(&[captured("fig13/ReACH"), captured("fig13/on-chip")]);
        assert!(doc.contains("\"schema\": \"reach-run-metrics-v1\""));
        assert!(doc.contains("\"label\": \"fig13/ReACH\""));
        assert!(doc.contains("\"gam.dispatches\": {\"kind\":\"counter\",\"value\":7}"));
        // 4 jobs over 2 simulated seconds.
        assert!(doc.contains("\"throughput_jobs_per_sec\": 2.000000"));
    }

    #[test]
    fn bench_json_lists_experiments() {
        let entries = vec![
            BenchEntry {
                id: "fig12".into(),
                wall_s: 1.25,
                scenarios: vec![captured("fig12/on-chip")],
            },
            BenchEntry {
                id: "table1".into(),
                wall_s: 0.0,
                scenarios: vec![],
            },
        ];
        let doc = bench_report_json(&entries);
        assert!(doc.contains("\"schema\": \"reach-bench-v1\""));
        assert!(doc.contains("\"id\": \"fig12\""));
        assert!(doc.contains("\"wall_s\": 1.250"));
        assert!(doc.contains("\"scenarios\": []"));
    }

    #[test]
    fn labels_escape_and_sanitize() {
        let doc = scenario_metrics_json(&[captured("a\"b")]);
        assert!(doc.contains("a\\\"b"));
        assert_eq!(
            label_file_stem("sweep/ReACH/nm2-ns4"),
            "sweep-ReACH-nm2-ns4"
        );
    }

    #[test]
    fn process_snapshot_is_appended() {
        let mut process = MetricsSnapshot::new(0);
        process.set_counter("cbir.cache_hits", 41);
        process.set_counter("cbir.cache_misses", 5);
        let doc = run_metrics_json(&[captured("x")], Some(&process));
        assert!(doc.contains("\"process\": {"));
        assert!(doc.contains("\"cbir.cache_hits\": {\"kind\":\"counter\",\"value\":41}"));
        // Scenario entries are unchanged relative to the plain export.
        assert!(doc.contains("\"label\": \"x\""));
        assert!(!scenario_metrics_json(&[captured("x")]).contains("process"));
    }

    #[test]
    fn exports_are_deterministic() {
        let batch = vec![captured("x"), captured("y")];
        assert_eq!(scenario_metrics_json(&batch), scenario_metrics_json(&batch));
    }
}
