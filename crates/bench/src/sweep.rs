//! Configuration for the `sweep` binary: run any CBIR mapping on any
//! machine shape from the command line.

use reach::{Machine, RunReport, SystemConfig};
use reach_cbir::{CbirMapping, CbirPipeline, CbirWorkload};
use std::fmt;

/// Parsed sweep parameters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SweepArgs {
    /// Near-memory accelerator count.
    pub nm: usize,
    /// Near-storage unit count.
    pub ns: usize,
    /// Batches to run.
    pub batches: usize,
    /// Mapping to deploy.
    pub mapping: CbirMapping,
    /// Rerank candidates per query.
    pub candidates: usize,
    /// Query batch size.
    pub batch_size: usize,
    /// Run synchronously (no GAM cross-batch pipelining).
    pub sequential: bool,
}

impl Default for SweepArgs {
    fn default() -> Self {
        SweepArgs {
            nm: 4,
            ns: 4,
            batches: 8,
            mapping: CbirMapping::Proper,
            candidates: 4096,
            batch_size: 16,
            sequential: false,
        }
    }
}

/// A parse failure with the offending token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseSweepError(pub String);

impl fmt::Display for ParseSweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid sweep argument: {}", self.0)
    }
}

impl std::error::Error for ParseSweepError {}

impl SweepArgs {
    /// Parses `--key value` style arguments.
    ///
    /// Accepted keys: `--nm`, `--ns`, `--batches`, `--batch-size`,
    /// `--candidates`, `--mapping onchip|near-mem|near-stor|proper`,
    /// `--sequential`.
    ///
    /// # Errors
    ///
    /// Returns the offending token on unknown keys, missing values or
    /// unparsable numbers.
    pub fn parse(args: &[String]) -> Result<Self, ParseSweepError> {
        let mut out = SweepArgs::default();
        let mut it = args.iter();
        while let Some(key) = it.next() {
            let mut take_usize = |key: &str| -> Result<usize, ParseSweepError> {
                it.next()
                    .ok_or_else(|| ParseSweepError(format!("{key} needs a value")))?
                    .parse()
                    .map_err(|_| ParseSweepError(format!("{key} needs an integer")))
            };
            match key.as_str() {
                "--nm" => out.nm = take_usize("--nm")?,
                "--ns" => out.ns = take_usize("--ns")?,
                "--batches" => out.batches = take_usize("--batches")?,
                "--batch-size" => out.batch_size = take_usize("--batch-size")?,
                "--candidates" => out.candidates = take_usize("--candidates")?,
                "--sequential" => out.sequential = true,
                "--mapping" => {
                    let v = it
                        .next()
                        .ok_or_else(|| ParseSweepError("--mapping needs a value".into()))?;
                    out.mapping = match v.as_str() {
                        "onchip" | "on-chip" => CbirMapping::AllOnChip,
                        "near-mem" | "nearmem" => CbirMapping::AllNearMemory,
                        "near-stor" | "nearstor" => CbirMapping::AllNearStorage,
                        "proper" | "reach" => CbirMapping::Proper,
                        other => return Err(ParseSweepError(format!("unknown mapping '{other}'"))),
                    };
                }
                other => return Err(ParseSweepError(format!("unknown flag '{other}'"))),
            }
        }
        if out.nm == 0 || out.ns == 0 || out.batches == 0 || out.batch_size == 0 {
            return Err(ParseSweepError("counts must be positive".into()));
        }
        Ok(out)
    }

    /// Runs the configured sweep point.
    #[must_use]
    pub fn run(&self) -> RunReport {
        let mut workload = CbirWorkload::paper_setup();
        workload.candidates_per_query = self.candidates;
        workload.batch = self.batch_size;
        let cfg = SystemConfig::paper_table2()
            .with_near_memory(self.nm)
            .with_near_storage(self.ns);
        let pipeline = CbirPipeline::new(workload, self.mapping);
        let mut machine = Machine::new(cfg);
        if self.sequential {
            pipeline.run_sequential(&mut machine, self.batches)
        } else {
            pipeline.run(&mut machine, self.batches)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Result<SweepArgs, ParseSweepError> {
        SweepArgs::parse(&tokens.iter().map(ToString::to_string).collect::<Vec<_>>())
    }

    #[test]
    fn defaults_and_overrides() {
        let d = parse(&[]).unwrap();
        assert_eq!(d, SweepArgs::default());
        let a = parse(&["--nm", "8", "--mapping", "near-stor", "--sequential"]).unwrap();
        assert_eq!(a.nm, 8);
        assert_eq!(a.mapping, CbirMapping::AllNearStorage);
        assert!(a.sequential);
    }

    #[test]
    fn rejects_unknown_and_malformed() {
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--nm"]).is_err());
        assert!(parse(&["--nm", "x"]).is_err());
        assert!(parse(&["--mapping", "sideways"]).is_err());
        assert!(parse(&["--batches", "0"]).is_err());
    }

    #[test]
    fn runs_a_small_point() {
        let args = parse(&["--nm", "2", "--ns", "2", "--batches", "2"]).unwrap();
        let r = args.run();
        assert_eq!(r.jobs, 2);
        assert!(r.total_energy_j() > 0.0);
    }
}
