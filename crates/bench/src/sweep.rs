//! Configuration for the `sweep` binary: run any CBIR mapping on any
//! machine shape — or a grid of shapes — from the command line.
//!
//! `--nm` and `--ns` accept comma-separated lists; the sweep runs the cross
//! product of shapes, one [`CbirScenario`] per point, fanned across
//! `--jobs` threads by the [`ScenarioRunner`]. Results come back in grid
//! order regardless of the job count. The runner-facing flags (`--jobs`,
//! `--seed`, `--no-result-cache`, `--result-cache-policy`) are the shared
//! [`CommonRunnerArgs`] grammar, identical to the `experiments` binary.

use crate::cli::CommonRunnerArgs;
use crate::runner::ScenarioRunner;
use reach::{Scenario, ScenarioExecutor, ScenarioResult};
use reach_cbir::{blueprint_with, CbirMapping, CbirPipeline, CbirScenario, CbirWorkload};
use std::fmt;

/// Parsed sweep parameters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SweepArgs {
    /// Near-memory accelerator counts (one sweep axis).
    pub nm: Vec<usize>,
    /// Near-storage unit counts (the other sweep axis).
    pub ns: Vec<usize>,
    /// Batches to run per point.
    pub batches: usize,
    /// Mapping to deploy.
    pub mapping: CbirMapping,
    /// Rerank candidates per query.
    pub candidates: usize,
    /// Query batch size.
    pub batch_size: usize,
    /// Run synchronously (no GAM cross-batch pipelining).
    pub sequential: bool,
    /// Directory to drop one per-point telemetry CSV into, if set.
    pub metrics_dir: Option<String>,
    /// Times to run the whole grid (models iterative design-space
    /// exploration; passes after the first hit the result cache).
    pub repeat: usize,
    /// The shared runner flags (`--jobs`, `--seed`, cache controls).
    pub common: CommonRunnerArgs,
}

impl Default for SweepArgs {
    fn default() -> Self {
        SweepArgs {
            nm: vec![4],
            ns: vec![4],
            batches: 8,
            mapping: CbirMapping::Proper,
            candidates: 4096,
            batch_size: 16,
            sequential: false,
            metrics_dir: None,
            repeat: 1,
            common: CommonRunnerArgs::default(),
        }
    }
}

/// A parse failure with the offending token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseSweepError(pub String);

impl fmt::Display for ParseSweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid sweep argument: {}", self.0)
    }
}

impl std::error::Error for ParseSweepError {}

impl SweepArgs {
    /// Parses `--key value` style arguments.
    ///
    /// Accepted keys: `--nm`, `--ns` (both accept comma-separated lists),
    /// `--batches`, `--batch-size`, `--candidates`,
    /// `--mapping onchip|near-mem|near-stor|proper`, `--sequential`,
    /// `--metrics-dir DIR` (one telemetry CSV per grid point),
    /// `--repeat N` (run the grid N times; later passes hit the result
    /// cache), plus the shared runner flags `--jobs`, `--seed`,
    /// `--no-result-cache` and `--result-cache-policy fifo|lru`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending flag on unknown keys,
    /// missing values, unparsable numbers or zero counts.
    pub fn parse(args: &[String]) -> Result<Self, ParseSweepError> {
        let mut out = SweepArgs::default();
        let mut it = args.iter();
        while let Some(key) = it.next() {
            // Shared grammar first, so `--jobs 0` etc. fail with the same
            // message here as in the `experiments` binary.
            if out
                .common
                .accept(key.as_str(), &mut it)
                .map_err(|e| ParseSweepError(e.0))?
            {
                continue;
            }
            let mut take = |key: &str| -> Result<&String, ParseSweepError> {
                it.next()
                    .ok_or_else(|| ParseSweepError(format!("{key} needs a value")))
            };
            let take_usize = |v: &str, key: &str| -> Result<usize, ParseSweepError> {
                v.parse()
                    .map_err(|_| ParseSweepError(format!("{key} needs an integer")))
            };
            let take_list = |v: &str, key: &str| -> Result<Vec<usize>, ParseSweepError> {
                v.split(',').map(|tok| take_usize(tok, key)).collect()
            };
            match key.as_str() {
                "--nm" => out.nm = take_list(take("--nm")?, "--nm")?,
                "--ns" => out.ns = take_list(take("--ns")?, "--ns")?,
                "--batches" => out.batches = take_usize(take("--batches")?, "--batches")?,
                "--batch-size" => {
                    out.batch_size = take_usize(take("--batch-size")?, "--batch-size")?;
                }
                "--candidates" => {
                    out.candidates = take_usize(take("--candidates")?, "--candidates")?;
                }
                "--repeat" => out.repeat = take_usize(take("--repeat")?, "--repeat")?,
                "--metrics-dir" => out.metrics_dir = Some(take("--metrics-dir")?.clone()),
                "--sequential" => out.sequential = true,
                "--mapping" => {
                    let v = take("--mapping")?;
                    out.mapping = match v.as_str() {
                        "onchip" | "on-chip" => CbirMapping::AllOnChip,
                        "near-mem" | "nearmem" => CbirMapping::AllNearMemory,
                        "near-stor" | "nearstor" => CbirMapping::AllNearStorage,
                        "proper" | "reach" => CbirMapping::Proper,
                        other => return Err(ParseSweepError(format!("unknown mapping '{other}'"))),
                    };
                }
                other => return Err(ParseSweepError(format!("unknown flag '{other}'"))),
            }
        }
        if out.nm.is_empty() || out.nm.contains(&0) {
            return Err(ParseSweepError(
                "--nm needs positive accelerator counts".into(),
            ));
        }
        if out.ns.is_empty() || out.ns.contains(&0) {
            return Err(ParseSweepError("--ns needs positive unit counts".into()));
        }
        if out.batches == 0 {
            return Err(ParseSweepError("--batches must be positive".into()));
        }
        if out.batch_size == 0 {
            return Err(ParseSweepError("--batch-size must be positive".into()));
        }
        if out.repeat == 0 {
            return Err(ParseSweepError("--repeat must be positive".into()));
        }
        Ok(out)
    }

    /// The sweep grid: one scenario per `(nm, ns)` shape, in grid order.
    #[must_use]
    pub fn scenarios(&self) -> Vec<Box<dyn Scenario>> {
        let mut workload = CbirWorkload::paper_setup();
        workload.candidates_per_query = self.candidates;
        workload.batch = self.batch_size;
        let pipeline = CbirPipeline::new(workload, self.mapping);
        let mut points: Vec<Box<dyn Scenario>> = Vec::new();
        for &nm in &self.nm {
            for &ns in &self.ns {
                let label = format!("sweep/{}/nm{nm}-ns{ns}", self.mapping.name());
                let blueprint = blueprint_with(nm, ns);
                points.push(Box::new(if self.sequential {
                    CbirScenario::synchronous(label, blueprint, pipeline, self.batches)
                } else {
                    CbirScenario::full(label, blueprint, pipeline, self.batches)
                }));
            }
        }
        points
    }

    /// The runner these arguments select (see [`CommonRunnerArgs::runner`]).
    #[must_use]
    pub fn runner(&self) -> ScenarioRunner {
        self.common.runner()
    }

    /// Runs the whole grid once across `jobs` workers. (The `sweep` binary
    /// drives `--repeat` itself so every pass shares one runner — and
    /// therefore one result cache.)
    #[must_use]
    pub fn run_all(&self) -> Vec<ScenarioResult> {
        self.runner().run_all(self.scenarios())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::EvictionPolicy;

    fn parse(tokens: &[&str]) -> Result<SweepArgs, ParseSweepError> {
        SweepArgs::parse(&tokens.iter().map(ToString::to_string).collect::<Vec<_>>())
    }

    #[test]
    fn defaults_and_overrides() {
        let d = parse(&[]).unwrap();
        assert_eq!(d, SweepArgs::default());
        let a = parse(&["--nm", "8", "--mapping", "near-stor", "--sequential"]).unwrap();
        assert_eq!(a.nm, vec![8]);
        assert_eq!(a.mapping, CbirMapping::AllNearStorage);
        assert!(a.sequential);
    }

    #[test]
    fn parses_lists_and_jobs() {
        let a = parse(&["--nm", "2,4,8", "--ns", "1,2", "--jobs", "3"]).unwrap();
        assert_eq!(a.nm, vec![2, 4, 8]);
        assert_eq!(a.ns, vec![1, 2]);
        assert_eq!(a.common.jobs, 3);
        assert_eq!(a.scenarios().len(), 6);
    }

    #[test]
    fn parses_metrics_dir() {
        let a = parse(&["--metrics-dir", "out/metrics"]).unwrap();
        assert_eq!(a.metrics_dir.as_deref(), Some("out/metrics"));
        assert!(parse(&["--metrics-dir"]).is_err());
    }

    #[test]
    fn parses_seed_override() {
        let a = parse(&["--seed", "42"]).unwrap();
        assert_eq!(a.common.seed, Some(42));
        assert!(parse(&["--seed", "lucky"]).is_err());
    }

    #[test]
    fn rejects_unknown_and_malformed() {
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--nm"]).is_err());
        assert!(parse(&["--nm", "x"]).is_err());
        assert!(parse(&["--nm", "4,"]).is_err());
        assert!(parse(&["--mapping", "sideways"]).is_err());
        assert!(parse(&["--batches", "0"]).is_err());
        assert!(parse(&["--jobs", "0"]).is_err());
        assert!(parse(&["--repeat", "0"]).is_err());
    }

    #[test]
    fn zero_counts_name_the_offending_flag() {
        // `--jobs 0` goes through the shared grammar, so the sweep binary
        // prints the exact same message as `experiments`.
        let jobs = parse(&["--jobs", "0"]).unwrap_err().to_string();
        assert!(
            jobs.contains("--jobs needs a positive integer"),
            "got: {jobs}"
        );
        let batches = parse(&["--batches", "0"]).unwrap_err().to_string();
        assert!(
            batches.contains("--batches must be positive"),
            "got: {batches}"
        );
        let nm = parse(&["--nm", "0,4"]).unwrap_err().to_string();
        assert!(nm.contains("--nm"), "got: {nm}");
    }

    #[test]
    fn parses_cache_and_repeat_flags() {
        let a = parse(&["--repeat", "3", "--no-result-cache"]).unwrap();
        assert_eq!(a.repeat, 3);
        assert!(a.common.no_result_cache);
        assert!(!a.runner().cache_enabled());
        assert!(parse(&[]).unwrap().runner().cache_enabled());
    }

    #[test]
    fn parses_cache_policy() {
        assert_eq!(
            parse(&[]).unwrap().common.result_cache_policy,
            EvictionPolicy::Fifo
        );
        let a = parse(&["--result-cache-policy", "lru"]).unwrap();
        assert_eq!(a.common.result_cache_policy, EvictionPolicy::Lru);
        assert!(a.runner().cache_enabled());
        let err = parse(&["--result-cache-policy", "mru"]).unwrap_err();
        assert!(err.to_string().contains("'fifo' or 'lru'"), "got: {err}");
        assert!(parse(&["--result-cache-policy"]).is_err());
    }

    #[test]
    fn cached_grid_matches_uncached() {
        let args = parse(&["--nm", "2,4", "--ns", "2", "--batches", "2", "--jobs", "2"]).unwrap();
        let mut uncached = args.clone();
        uncached.common.no_result_cache = true;
        let render = |rs: &[ScenarioResult]| -> String {
            rs.iter()
                .map(|r| format!("{}\n{}", r.label, r.report))
                .collect()
        };
        assert_eq!(render(&args.run_all()), render(&uncached.run_all()));
    }

    #[test]
    fn runs_a_small_grid() {
        let args = parse(&["--nm", "2,4", "--ns", "2", "--batches", "2", "--jobs", "2"]).unwrap();
        let results = args.run_all();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].label, "sweep/ReACH/nm2-ns2");
        for r in &results {
            assert_eq!(r.report.jobs, 2);
            assert!(r.report.total_energy_j() > 0.0);
        }
    }
}
