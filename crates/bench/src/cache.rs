//! A bounded scenario-result cache keyed by [`ConfigFingerprint`].
//!
//! Sweep grids and repeated experiment suites re-simulate the same
//! configuration over and over: the Figure 13 proper-mapping point is also
//! the baseline of four ablations, and every `--repeat` pass of a sweep
//! revisits the whole grid. Because a [`ConfigFingerprint`] covers *every*
//! input of a scenario's run (see `Scenario::config_fingerprint`), equal
//! fingerprints mean byte-identical [`RunReport`]s — so the runner can
//! replay a stored report instead of simulating again.
//!
//! The cache is bounded and supports two [`EvictionPolicy`]s: FIFO (the
//! default — insertion order is eviction order, no recency tracking) and
//! LRU (a hit moves the entry to the back of the eviction queue). Either
//! way the contents after a run depend only on the submission sequence —
//! lookups happen in the runner's **sequential** fingerprint phase, never
//! from worker threads, so recency order is deterministic too. Hit/miss
//! counters are maintained by the same sequential phase, which keeps them
//! identical at any `--jobs` count.

use reach::{ConfigFingerprint, RunReport};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// How a full [`ResultCache`] chooses its victim.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EvictionPolicy {
    /// Evict the oldest *insertion*: hits never reorder the queue.
    #[default]
    Fifo,
    /// Evict the least recently *used*: every hit (and every re-insert)
    /// moves the entry to the back of the eviction queue.
    Lru,
}

impl EvictionPolicy {
    /// Parses a `--result-cache-policy` value (`"fifo"` or `"lru"`).
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "fifo" => Some(EvictionPolicy::Fifo),
            "lru" => Some(EvictionPolicy::Lru),
            _ => None,
        }
    }

    /// The flag spelling of this policy.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EvictionPolicy::Fifo => "fifo",
            EvictionPolicy::Lru => "lru",
        }
    }
}

/// Hit/miss counters of a [`ResultCache`], cheap to copy out.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from a stored or in-flight report.
    pub hits: u64,
    /// Lookups that had to simulate.
    pub misses: u64,
}

#[derive(Debug)]
struct CacheInner {
    map: HashMap<ConfigFingerprint, RunReport>,
    order: VecDeque<ConfigFingerprint>,
}

/// A bounded map from configuration fingerprint to finished run report,
/// with FIFO or LRU eviction. Thread-safe; shared behind an `Arc` by every
/// clone of a `ScenarioRunner`.
#[derive(Debug)]
pub struct ResultCache {
    capacity: usize,
    policy: EvictionPolicy,
    inner: Mutex<CacheInner>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ResultCache {
    /// Default bound: comfortably holds the full experiment suite
    /// (126 single-machine scenarios plus the fleet shard expansions) and
    /// a generous sweep grid without growing unbounded in a long-running
    /// process.
    pub const DEFAULT_CAPACITY: usize = 256;

    /// An empty FIFO cache bounded to [`Self::DEFAULT_CAPACITY`] entries.
    #[must_use]
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// An empty FIFO cache holding at most `capacity` reports (minimum 1).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self::with_policy(capacity, EvictionPolicy::Fifo)
    }

    /// An empty cache with an explicit eviction policy (minimum capacity
    /// 1).
    #[must_use]
    pub fn with_policy(capacity: usize, policy: EvictionPolicy) -> Self {
        ResultCache {
            capacity: capacity.max(1),
            policy,
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                order: VecDeque::new(),
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The configured eviction policy.
    #[must_use]
    pub fn policy(&self) -> EvictionPolicy {
        self.policy
    }

    /// The stored report for `fp`, if any. Under [`EvictionPolicy::Lru`] a
    /// hit refreshes the entry's recency. Does **not** touch the hit/miss
    /// counters — accounting is the caller's policy (the runner counts
    /// in-batch duplicates as hits even though the leader's report is not
    /// stored yet).
    #[must_use]
    pub fn get(&self, fp: &ConfigFingerprint) -> Option<RunReport> {
        let mut inner = self.inner.lock().expect("result cache poisoned");
        let found = inner.map.get(fp).cloned();
        if found.is_some() && self.policy == EvictionPolicy::Lru {
            Self::touch(&mut inner, fp);
        }
        found
    }

    /// Moves `fp` to the back of the eviction queue. O(capacity), which is
    /// fine at the bounds this cache runs at; eviction order stays
    /// deterministic because all callers run in the sequential phase.
    fn touch(inner: &mut CacheInner, fp: &ConfigFingerprint) {
        if let Some(pos) = inner.order.iter().position(|k| k == fp) {
            let key = inner.order.remove(pos).expect("position just found");
            inner.order.push_back(key);
        }
    }

    /// Stores `report` under `fp`, evicting per the configured policy if
    /// the cache is full. Re-inserting an existing key refreshes the
    /// report without consuming capacity (and, under LRU, refreshes its
    /// recency).
    pub fn insert(&self, fp: ConfigFingerprint, report: RunReport) {
        let mut inner = self.inner.lock().expect("result cache poisoned");
        if inner.map.insert(fp, report).is_some() {
            if self.policy == EvictionPolicy::Lru {
                Self::touch(&mut inner, &fp);
            }
            return;
        }
        inner.order.push_back(fp);
        while inner.order.len() > self.capacity {
            if let Some(old) = inner.order.pop_front() {
                inner.map.remove(&old);
            }
        }
    }

    /// Counts one lookup answered without simulating.
    pub fn record_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one lookup that had to simulate.
    pub fn record_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Current hit/miss counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Number of reports currently stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().expect("result cache poisoned").map.len()
    }

    /// Whether the cache holds no reports.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured entry bound.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl Default for ResultCache {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reach::{MachineBlueprint, Scenario};
    use reach_cbir::{blueprint_with, CbirMapping, CbirPipeline, CbirScenario, CbirWorkload};

    fn fp_of(nm: usize) -> (ConfigFingerprint, RunReport) {
        let s = CbirScenario::full(
            "cache-test",
            blueprint_with(nm, 2),
            CbirPipeline::new(CbirWorkload::paper_setup(), CbirMapping::AllOnChip),
            1,
        );
        (s.config_fingerprint().expect("cacheable"), s.execute())
    }

    #[test]
    fn round_trips_a_report() {
        let cache = ResultCache::new();
        let (fp, report) = fp_of(2);
        assert!(cache.get(&fp).is_none());
        cache.insert(fp, report.clone());
        let back = cache.get(&fp).expect("stored");
        assert_eq!(back.to_string(), report.to_string());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn evicts_oldest_first_at_capacity() {
        let cache = ResultCache::with_capacity(2);
        let (fp_a, r_a) = fp_of(1);
        let (fp_b, r_b) = fp_of(2);
        let (fp_c, r_c) = fp_of(3);
        cache.insert(fp_a, r_a.clone());
        cache.insert(fp_b, r_b);
        // Refreshing an existing key must not evict anything.
        cache.insert(fp_a, r_a);
        assert_eq!(cache.len(), 2);
        cache.insert(fp_c, r_c);
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&fp_a).is_none(), "oldest entry evicted");
        assert!(cache.get(&fp_b).is_some());
        assert!(cache.get(&fp_c).is_some());
    }

    #[test]
    fn counters_are_explicit() {
        let cache = ResultCache::new();
        let (fp, _) = fp_of(2);
        // `get` never counts on its own.
        let _ = cache.get(&fp);
        assert_eq!(cache.stats(), CacheStats::default());
        cache.record_miss();
        cache.record_hit();
        cache.record_hit();
        assert_eq!(cache.stats(), CacheStats { hits: 2, misses: 1 });
    }

    /// The policies diverge exactly where they should: after `a b`,
    /// touching `a` and inserting `c` evicts `b` under LRU but still `a`
    /// under FIFO — and repeating the sequence replays the same eviction
    /// every time (deterministic order, no thread timing involved).
    #[test]
    fn lru_and_fifo_evict_deterministically_and_differently() {
        for _ in 0..3 {
            let lru = ResultCache::with_policy(2, EvictionPolicy::Lru);
            let fifo = ResultCache::with_policy(2, EvictionPolicy::Fifo);
            let (fp_a, r_a) = fp_of(1);
            let (fp_b, r_b) = fp_of(2);
            let (fp_c, r_c) = fp_of(3);
            for cache in [&lru, &fifo] {
                cache.insert(fp_a, r_a.clone());
                cache.insert(fp_b, r_b.clone());
                let _ = cache.get(&fp_a); // recency touch (LRU only)
                cache.insert(fp_c, r_c.clone());
                assert_eq!(cache.len(), 2);
                assert!(cache.get(&fp_c).is_some());
            }
            assert!(lru.get(&fp_a).is_some(), "LRU keeps the touched entry");
            assert!(lru.get(&fp_b).is_none(), "LRU evicts the cold entry");
            assert!(fifo.get(&fp_a).is_none(), "FIFO ignores recency");
            assert!(fifo.get(&fp_b).is_some());
        }
    }

    #[test]
    fn lru_reinsert_refreshes_recency() {
        let cache = ResultCache::with_policy(2, EvictionPolicy::Lru);
        let (fp_a, r_a) = fp_of(1);
        let (fp_b, r_b) = fp_of(2);
        let (fp_c, r_c) = fp_of(3);
        cache.insert(fp_a, r_a.clone());
        cache.insert(fp_b, r_b);
        cache.insert(fp_a, r_a); // refresh, not a new entry
        assert_eq!(cache.len(), 2);
        cache.insert(fp_c, r_c);
        assert!(cache.get(&fp_b).is_none(), "b was least recently used");
        assert!(cache.get(&fp_a).is_some());
    }

    #[test]
    fn policy_parse_and_name_round_trip() {
        assert_eq!(EvictionPolicy::parse("fifo"), Some(EvictionPolicy::Fifo));
        assert_eq!(EvictionPolicy::parse("lru"), Some(EvictionPolicy::Lru));
        assert_eq!(EvictionPolicy::parse("mru"), None);
        assert_eq!(EvictionPolicy::Lru.name(), "lru");
        assert_eq!(EvictionPolicy::default(), EvictionPolicy::Fifo);
        assert_eq!(ResultCache::new().policy(), EvictionPolicy::Fifo);
    }

    #[test]
    fn fingerprint_distinguishes_machine_shapes() {
        // Sanity for the cache key itself: the blueprint knob the sweep
        // varies must produce distinct keys.
        let _ = MachineBlueprint::paper();
        let (fp_a, _) = fp_of(2);
        let (fp_b, _) = fp_of(4);
        assert_ne!(fp_a, fp_b);
    }
}
