//! A bounded scenario-result cache keyed by [`ConfigFingerprint`].
//!
//! Sweep grids and repeated experiment suites re-simulate the same
//! configuration over and over: the Figure 13 proper-mapping point is also
//! the baseline of four ablations, and every `--repeat` pass of a sweep
//! revisits the whole grid. Because a [`ConfigFingerprint`] covers *every*
//! input of a scenario's run (see `Scenario::config_fingerprint`), equal
//! fingerprints mean byte-identical [`RunReport`]s — so the runner can
//! replay a stored report instead of simulating again.
//!
//! The cache is a plain bounded FIFO: insertion order is eviction order,
//! with no recency tracking, so its contents after a run depend only on
//! the submission sequence — never on thread timing. Hit/miss counters are
//! likewise maintained by the runner's sequential fingerprint phase, which
//! keeps them identical at any `--jobs` count.

use reach::{ConfigFingerprint, RunReport};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Hit/miss counters of a [`ResultCache`], cheap to copy out.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from a stored or in-flight report.
    pub hits: u64,
    /// Lookups that had to simulate.
    pub misses: u64,
}

#[derive(Debug)]
struct CacheInner {
    map: HashMap<ConfigFingerprint, RunReport>,
    order: VecDeque<ConfigFingerprint>,
}

/// A bounded, insertion-ordered (FIFO) map from configuration fingerprint
/// to finished run report. Thread-safe; shared behind an `Arc` by every
/// clone of a `ScenarioRunner`.
#[derive(Debug)]
pub struct ResultCache {
    capacity: usize,
    inner: Mutex<CacheInner>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ResultCache {
    /// Default bound: comfortably holds the full 126-scenario experiment
    /// suite plus a generous sweep grid without growing unbounded in a
    /// long-running process.
    pub const DEFAULT_CAPACITY: usize = 256;

    /// An empty cache bounded to [`Self::DEFAULT_CAPACITY`] entries.
    #[must_use]
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// An empty cache holding at most `capacity` reports (minimum 1).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        ResultCache {
            capacity: capacity.max(1),
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                order: VecDeque::new(),
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The stored report for `fp`, if any. Does **not** touch the hit/miss
    /// counters — accounting is the caller's policy (the runner counts
    /// in-batch duplicates as hits even though the leader's report is not
    /// stored yet).
    #[must_use]
    pub fn get(&self, fp: &ConfigFingerprint) -> Option<RunReport> {
        self.inner
            .lock()
            .expect("result cache poisoned")
            .map
            .get(fp)
            .cloned()
    }

    /// Stores `report` under `fp`, evicting the oldest entry if the cache
    /// is full. Re-inserting an existing key refreshes the report without
    /// consuming capacity.
    pub fn insert(&self, fp: ConfigFingerprint, report: RunReport) {
        let mut inner = self.inner.lock().expect("result cache poisoned");
        if inner.map.insert(fp, report).is_some() {
            return;
        }
        inner.order.push_back(fp);
        while inner.order.len() > self.capacity {
            if let Some(old) = inner.order.pop_front() {
                inner.map.remove(&old);
            }
        }
    }

    /// Counts one lookup answered without simulating.
    pub fn record_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one lookup that had to simulate.
    pub fn record_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Current hit/miss counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Number of reports currently stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().expect("result cache poisoned").map.len()
    }

    /// Whether the cache holds no reports.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured entry bound.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl Default for ResultCache {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reach::{MachineBlueprint, Scenario};
    use reach_cbir::{blueprint_with, CbirMapping, CbirPipeline, CbirScenario, CbirWorkload};

    fn fp_of(nm: usize) -> (ConfigFingerprint, RunReport) {
        let s = CbirScenario::full(
            "cache-test",
            blueprint_with(nm, 2),
            CbirPipeline::new(CbirWorkload::paper_setup(), CbirMapping::AllOnChip),
            1,
        );
        (s.config_fingerprint().expect("cacheable"), s.execute())
    }

    #[test]
    fn round_trips_a_report() {
        let cache = ResultCache::new();
        let (fp, report) = fp_of(2);
        assert!(cache.get(&fp).is_none());
        cache.insert(fp, report.clone());
        let back = cache.get(&fp).expect("stored");
        assert_eq!(back.to_string(), report.to_string());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn evicts_oldest_first_at_capacity() {
        let cache = ResultCache::with_capacity(2);
        let (fp_a, r_a) = fp_of(1);
        let (fp_b, r_b) = fp_of(2);
        let (fp_c, r_c) = fp_of(3);
        cache.insert(fp_a, r_a.clone());
        cache.insert(fp_b, r_b);
        // Refreshing an existing key must not evict anything.
        cache.insert(fp_a, r_a);
        assert_eq!(cache.len(), 2);
        cache.insert(fp_c, r_c);
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&fp_a).is_none(), "oldest entry evicted");
        assert!(cache.get(&fp_b).is_some());
        assert!(cache.get(&fp_c).is_some());
    }

    #[test]
    fn counters_are_explicit() {
        let cache = ResultCache::new();
        let (fp, _) = fp_of(2);
        // `get` never counts on its own.
        let _ = cache.get(&fp);
        assert_eq!(cache.stats(), CacheStats::default());
        cache.record_miss();
        cache.record_hit();
        cache.record_hit();
        assert_eq!(cache.stats(), CacheStats { hits: 2, misses: 1 });
    }

    #[test]
    fn fingerprint_distinguishes_machine_shapes() {
        // Sanity for the cache key itself: the blueprint knob the sweep
        // varies must produce distinct keys.
        let _ = MachineBlueprint::paper();
        let (fp_a, _) = fp_of(2);
        let (fp_b, _) = fp_of(4);
        assert_ne!(fp_a, fp_b);
    }
}
