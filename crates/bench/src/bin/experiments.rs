//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run -p reach-bench --bin experiments --release            # everything
//! cargo run -p reach-bench --bin experiments --release -- fig13  # one id
//! cargo run -p reach-bench --bin experiments --release -- --jobs 4
//! ```
//!
//! `--jobs N` fans each experiment's scenarios across `N` threads via
//! [`reach_bench::ScenarioRunner`]; the printed rows are byte-identical to
//! the default sequential run (`--jobs 1`). The wall-clock summary goes to
//! stderr so stdout stays comparable across job counts.

use reach::{ScenarioExecutor, SequentialExecutor};
use reach_bench::runner::CountingExecutor;
use reach_bench::ScenarioRunner;
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let renderers = reach_bench::renderers();

    let mut jobs = 1usize;
    let mut args: Vec<String> = Vec::new();
    let mut it = raw.iter();
    while let Some(a) = it.next() {
        if a == "--jobs" {
            jobs = match it.next().map(|v| v.parse()) {
                Some(Ok(n)) if n >= 1 => n,
                _ => {
                    eprintln!("--jobs needs a positive integer");
                    return ExitCode::FAILURE;
                }
            };
        } else {
            args.push(a.clone());
        }
    }

    if args.iter().any(|a| a == "--list") {
        for (name, _) in &renderers {
            println!("{name}");
        }
        return ExitCode::SUCCESS;
    }

    let selected: Vec<&reach_bench::Renderer> = if args.is_empty() {
        renderers.iter().collect()
    } else {
        let mut picked = Vec::new();
        for a in &args {
            match renderers.iter().find(|(n, _)| n == a) {
                Some(r) => picked.push(r),
                None => {
                    eprintln!(
                        "unknown experiment '{a}'; known ids: {}",
                        renderers
                            .iter()
                            .map(|(n, _)| *n)
                            .collect::<Vec<_>>()
                            .join(", ")
                    );
                    return ExitCode::FAILURE;
                }
            }
        }
        picked
    };

    let sequential = SequentialExecutor;
    let runner = ScenarioRunner::new(jobs);
    let inner: &dyn ScenarioExecutor = if jobs == 1 { &sequential } else { &runner };
    let executor = CountingExecutor::new(inner);

    let started = Instant::now();
    for (i, (_, render)) in selected.iter().enumerate() {
        if i > 0 {
            println!();
        }
        print!("{}", render(&executor));
    }
    eprintln!(
        "ran {} scenario(s) across {} experiment(s) with {} job(s) in {:.2}s",
        executor.scenarios_run(),
        selected.len(),
        jobs,
        started.elapsed().as_secs_f64()
    );
    ExitCode::SUCCESS
}
