//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run -p reach-bench --bin experiments --release          # everything
//! cargo run -p reach-bench --bin experiments --release -- fig13 # one id
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let renderers = reach_bench::renderers();

    if args.iter().any(|a| a == "--list") {
        for (name, _) in &renderers {
            println!("{name}");
        }
        return ExitCode::SUCCESS;
    }

    let selected: Vec<&reach_bench::Renderer> = if args.is_empty() {
        renderers.iter().collect()
    } else {
        let mut picked = Vec::new();
        for a in &args {
            match renderers.iter().find(|(n, _)| n == a) {
                Some(r) => picked.push(r),
                None => {
                    eprintln!(
                        "unknown experiment '{a}'; known ids: {}",
                        renderers
                            .iter()
                            .map(|(n, _)| *n)
                            .collect::<Vec<_>>()
                            .join(", ")
                    );
                    return ExitCode::FAILURE;
                }
            }
        }
        picked
    };

    for (i, (_, render)) in selected.iter().enumerate() {
        if i > 0 {
            println!();
        }
        print!("{}", render());
    }
    ExitCode::SUCCESS
}
