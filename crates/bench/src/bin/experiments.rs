//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run -p reach-bench --bin experiments --release            # everything
//! cargo run -p reach-bench --bin experiments --release -- fig13  # one id
//! cargo run -p reach-bench --bin experiments --release -- --jobs 4
//! cargo run -p reach-bench --bin experiments --release -- \
//!     fig13 --metrics metrics.json --bench-out BENCH_PR2.json
//! ```
//!
//! `--jobs N` fans each experiment's scenarios across `N` threads via
//! [`reach_bench::ScenarioRunner`]; the printed rows are byte-identical to
//! the default sequential run (`--jobs 1`). The wall-clock summary goes to
//! stderr so stdout stays comparable across job counts.
//!
//! A scenario-result cache replays reports for repeated configurations
//! (several figures and ablations share points); `--no-result-cache`
//! disables it and `--result-cache-policy fifo|lru` picks the eviction
//! policy (default fifo). Stdout is byte-identical either way.
//!
//! `--result-cache-dir PATH` backs the cache with a persistent on-disk
//! store keyed by fingerprint + simulator build stamp, so a *second
//! process* replays previously simulated scenarios too (a warm run of the
//! full suite performs zero simulations). `--no-disk-cache` keeps the flag
//! parsed but inert. Stdout is byte-identical cold or warm.
//!
//! `--seed N` overrides the session RNG seed (default
//! `reach_sim::rng::DEFAULT_SEED`) for every stochastic scenario — traffic
//! arrival processes, noisy sweeps. The seed is part of each scenario's
//! fingerprint, so cached results never leak across seeds, and the same
//! seed always reproduces the same stdout bytes.
//!
//! `--metrics PATH` writes every executed scenario's machine telemetry
//! (queue depths, occupancy, link traffic) as `reach-run-metrics-v1` JSON;
//! `--bench-out PATH` writes per-experiment wall-clock and headline
//! throughput numbers as `reach-bench-v1` JSON. Both go to files, never to
//! stdout, so the determinism contract above holds.

use reach_bench::runner::{CountingExecutor, RecordingExecutor};
use reach_bench::{BenchEntry, ExperimentsArgs};
use reach_sim::{MetricValue, MetricsSnapshot};
use std::process::ExitCode;
use std::time::Instant;

/// Final value of an engine counter in a telemetry snapshot (0 if absent).
fn engine_counter(metrics: &MetricsSnapshot, name: &str) -> u64 {
    match metrics.get(name) {
        Some(MetricValue::Counter { value }) => *value,
        _ => 0,
    }
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let renderers = reach_bench::renderers();

    let parsed = match ExperimentsArgs::parse(&raw) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    // Install any `--seed N` override before the first scenario is built —
    // scenarios capture the session seed at construction.
    parsed.common.apply_seed();
    let jobs = parsed.common.jobs;
    let metrics_path = parsed.metrics.clone();
    let bench_path = parsed.bench_out.clone();

    if parsed.list {
        for (name, _) in &renderers {
            println!("{name}");
        }
        return ExitCode::SUCCESS;
    }

    let selected: Vec<&reach_bench::Renderer> = if parsed.ids.is_empty() {
        renderers.iter().collect()
    } else {
        let mut picked = Vec::new();
        for a in &parsed.ids {
            match renderers.iter().find(|(n, _)| n == a) {
                Some(r) => picked.push(r),
                None => {
                    eprintln!(
                        "unknown experiment '{a}'; known ids: {}",
                        renderers
                            .iter()
                            .map(|(n, _)| *n)
                            .collect::<Vec<_>>()
                            .join(", ")
                    );
                    return ExitCode::FAILURE;
                }
            }
        }
        picked
    };

    // Always go through the ScenarioRunner — even at the default
    // `--jobs 1` — so the scenario-result cache replays repeated
    // configurations across figures and ablations. Caching, like
    // parallelism, never changes stdout (enforced by
    // tests/runner_determinism.rs), only the wall clock.
    let runner = parsed.common.runner();
    let recording = RecordingExecutor::new(&runner);
    let executor = CountingExecutor::new(&recording);

    let started = Instant::now();
    let mut entries: Vec<BenchEntry> = Vec::new();
    let mut captured = Vec::new();
    for (i, (id, render)) in selected.iter().enumerate() {
        if i > 0 {
            println!();
        }
        let exp_started = Instant::now();
        print!("{}", render(&executor));
        let wall_s = exp_started.elapsed().as_secs_f64();
        let scenarios = recording.drain();
        // Engine load per experiment — stderr only, so stdout stays
        // byte-comparable across job counts.
        let events: u64 = scenarios
            .iter()
            .map(|s| engine_counter(&s.metrics, "engine.events_processed"))
            .sum();
        let peak_depth = scenarios
            .iter()
            .map(|s| engine_counter(&s.metrics, "engine.queue_depth_peak"))
            .max()
            .unwrap_or(0);
        eprintln!(
            "  {id}: {events} event(s), {:.0} event/s, peak queue depth {peak_depth}",
            events as f64 / wall_s.max(1e-9)
        );
        captured.extend(scenarios.iter().cloned());
        entries.push(BenchEntry {
            id: (*id).to_string(),
            wall_s,
            scenarios,
        });
    }
    eprintln!(
        "ran {} scenario(s) across {} experiment(s) with {} job(s) in {:.2}s",
        executor.scenarios_run(),
        selected.len(),
        jobs,
        started.elapsed().as_secs_f64()
    );
    // Cache effectiveness — stderr + metrics export only, so stdout stays
    // byte-comparable across job counts and cache settings.
    let (cache_hits, cache_misses) = reach_cbir::cache::cache_stats();
    eprintln!("cbir distance cache: {cache_hits} hit(s), {cache_misses} miss(es)");
    let result_cache = runner.cache_stats();
    let disk_cache = runner.disk_cache_stats();
    let fleet_cache = runner.fleet_cache_stats();
    // All four scenario-cache counters on one line, so a warm run is
    // visible without opening the metrics JSON.
    eprintln!(
        "scenario result cache: {} mem hit(s), {} mem miss(es), \
         {} disk hit(s), {} disk miss(es){}",
        result_cache.hits,
        result_cache.misses,
        disk_cache.hits,
        disk_cache.misses,
        if parsed.common.no_result_cache {
            " (disabled)"
        } else if !runner.disk_cache_enabled() {
            " (no disk tier)"
        } else {
            ""
        }
    );
    eprintln!(
        "fleet result cache: {} hit(s), {} miss(es)",
        fleet_cache.hits, fleet_cache.misses
    );

    if let Some(path) = metrics_path {
        let mut process = MetricsSnapshot::new(0);
        // Which kernel tier served this run (0 scalar, 1 avx2, 2 neon) —
        // resolving it here also emits the once-per-process stderr note,
        // so a --metrics run is always attributable even if no functional
        // kernel happened to execute.
        process.set_gauge(
            "cbir.simd_dispatch",
            reach_cbir::simd::active().gauge_value(),
        );
        process.set_counter("cbir.cache_hits", cache_hits);
        process.set_counter("cbir.cache_misses", cache_misses);
        process.set_counter("runner.result_cache_hits", result_cache.hits);
        process.set_counter("runner.result_cache_misses", result_cache.misses);
        process.set_counter("runner.result_cache_disk_hits", disk_cache.hits);
        process.set_counter("runner.result_cache_disk_misses", disk_cache.misses);
        process.set_counter("runner.fleet_cache_hits", fleet_cache.hits);
        process.set_counter("runner.fleet_cache_misses", fleet_cache.misses);
        let doc = reach_bench::run_metrics_json(&captured, Some(&process));
        if let Err(e) = std::fs::write(&path, doc) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!(
            "wrote telemetry for {} scenario(s) to {path}",
            captured.len()
        );
    }
    if let Some(path) = bench_path {
        let doc = reach_bench::bench_report_json(&entries);
        if let Err(e) = std::fs::write(&path, doc) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote benchmark report to {path}");
    }
    ExitCode::SUCCESS
}
