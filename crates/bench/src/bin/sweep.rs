//! Ad-hoc CBIR sweeps from the command line.
//!
//! ```text
//! cargo run -p reach-bench --bin sweep --release -- \
//!     --nm 2,4,8 --ns 4 --batches 16 --mapping proper --jobs 4
//! ```

use reach_bench::sweep::SweepArgs;
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match SweepArgs::parse(&raw) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            eprintln!(
                "usage: sweep [--nm N[,N..]] [--ns N[,N..]] [--batches N] [--batch-size N] \
                 [--candidates N] [--mapping onchip|near-mem|near-stor|proper] [--sequential] \
                 [--jobs N]"
            );
            return ExitCode::FAILURE;
        }
    };
    println!(
        "mapping {:?}, nm {:?} x ns {:?}, {} batches of {} queries, {} candidates/query{}",
        args.mapping,
        args.nm,
        args.ns,
        args.batches,
        args.batch_size,
        args.candidates,
        if args.sequential { " (sequential)" } else { "" }
    );
    let started = Instant::now();
    let results = args.run_all();
    for r in &results {
        println!();
        println!("{}", r.label);
        println!("{}", r.report);
    }
    eprintln!(
        "ran {} scenario(s) with {} job(s) in {:.2}s",
        results.len(),
        args.jobs,
        started.elapsed().as_secs_f64()
    );
    ExitCode::SUCCESS
}
