//! Ad-hoc CBIR sweeps from the command line.
//!
//! ```text
//! cargo run -p reach-bench --bin sweep --release -- \
//!     --nm 2,4,8 --ns 4 --batches 16 --mapping proper --jobs 4 \
//!     --metrics-dir out/metrics
//! ```
//!
//! With `--metrics-dir DIR`, each grid point drops its machine telemetry
//! as `DIR/<label>.csv` (one row per metric) for spreadsheet or pandas
//! post-processing. Stdout stays identical with or without the flag.
//!
//! `--repeat N` runs the whole grid `N` times in one process — the shape
//! of iterative design-space exploration. Passes after the first replay
//! from the scenario-result cache unless `--no-result-cache` is given;
//! stdout is byte-identical either way, only the wall clock moves.

use reach::ScenarioExecutor;
use reach_bench::sweep::SweepArgs;
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match SweepArgs::parse(&raw) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            eprintln!(
                "usage: sweep [--nm N[,N..]] [--ns N[,N..]] [--batches N] [--batch-size N] \
                 [--candidates N] [--mapping onchip|near-mem|near-stor|proper] [--sequential] \
                 [--jobs N] [--seed N] [--metrics-dir DIR] [--repeat N] [--no-result-cache] \
                 [--result-cache-policy fifo|lru] [--result-cache-dir PATH] [--no-disk-cache]"
            );
            return ExitCode::FAILURE;
        }
    };
    // Install any `--seed N` override before the first scenario is built.
    args.common.apply_seed();
    println!(
        "mapping {:?}, nm {:?} x ns {:?}, {} batches of {} queries, {} candidates/query{}",
        args.mapping,
        args.nm,
        args.ns,
        args.batches,
        args.batch_size,
        args.candidates,
        if args.sequential { " (sequential)" } else { "" }
    );
    let started = Instant::now();
    // One runner for all passes, so `--repeat` passes share the result
    // cache. Reports are deterministic, so every pass prints identically
    // whether it simulated or replayed.
    let runner = args.runner();
    let mut results = Vec::new();
    for _ in 0..args.repeat {
        results = runner.run_all(args.scenarios());
        for r in &results {
            println!();
            println!("{}", r.label);
            println!("{}", r.report);
        }
    }
    if let Some(dir) = &args.metrics_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("failed to create {dir}: {e}");
            return ExitCode::FAILURE;
        }
        for r in &results {
            let path = format!("{dir}/{}.csv", reach_bench::label_file_stem(&r.label));
            if let Err(e) = std::fs::write(&path, r.report.metrics.to_csv()) {
                eprintln!("failed to write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
        eprintln!("wrote {} telemetry CSV(s) to {dir}", results.len());
    }
    let stats = runner.cache_stats();
    let disk = runner.disk_cache_stats();
    eprintln!(
        "ran {} scenario(s) x {} pass(es) with {} job(s) in {:.2}s \
         (result cache: {} mem hit(s), {} mem miss(es), \
         {} disk hit(s), {} disk miss(es){})",
        results.len(),
        args.repeat,
        args.common.jobs,
        started.elapsed().as_secs_f64(),
        stats.hits,
        stats.misses,
        disk.hits,
        disk.misses,
        if args.common.no_result_cache {
            ", disabled"
        } else if !runner.disk_cache_enabled() {
            ", no disk tier"
        } else {
            ""
        }
    );
    ExitCode::SUCCESS
}
