//! Ad-hoc CBIR sweeps from the command line.
//!
//! ```text
//! cargo run -p reach-bench --bin sweep --release -- \
//!     --nm 8 --ns 8 --batches 16 --mapping proper --candidates 8192
//! ```

use reach_bench::sweep::SweepArgs;
use std::process::ExitCode;

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match SweepArgs::parse(&raw) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            eprintln!(
                "usage: sweep [--nm N] [--ns N] [--batches N] [--batch-size N] \
                 [--candidates N] [--mapping onchip|near-mem|near-stor|proper] [--sequential]"
            );
            return ExitCode::FAILURE;
        }
    };
    println!(
        "mapping {:?}, {} NM + {} NS accelerators, {} batches of {} queries, {} candidates/query{}",
        args.mapping,
        args.nm,
        args.ns,
        args.batches,
        args.batch_size,
        args.candidates,
        if args.sequential { " (sequential)" } else { "" }
    );
    let report = args.run();
    println!("{report}");
    ExitCode::SUCCESS
}
