//! Anchor crate for the repository-level integration tests in `tests/`.
//!
//! The test sources live at the workspace root (see the `[[test]]` entries
//! in this crate's manifest) so they can exercise every crate together.
