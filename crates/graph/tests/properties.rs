//! Property tests over the graph structures and reference algorithms.

use proptest::prelude::*;
use reach_graph::{bfs_levels, pagerank, Graph, GraphKind, GraphSpec, PAGERANK_DAMPING};
use std::collections::BinaryHeap;

/// Dijkstra with unit edge weights: the independent oracle for BFS levels.
/// Same reachability semantics, completely different traversal order.
fn unit_dijkstra(g: &Graph, source: u32) -> Vec<u32> {
    let n = g.node_count() as usize;
    let mut dist = vec![u32::MAX; n];
    dist[source as usize] = 0;
    let mut heap = BinaryHeap::new();
    heap.push((std::cmp::Reverse(0u32), source));
    while let Some((std::cmp::Reverse(d), u)) = heap.pop() {
        if d > dist[u as usize] {
            continue;
        }
        for &v in g.neighbors(u) {
            let nd = d + 1;
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                heap.push((std::cmp::Reverse(nd), v));
            }
        }
    }
    dist
}

/// Builds the spec the raw drawn inputs describe (the vendored proptest
/// has no `prop_map`, so the mapping lives here).
fn spec_of(nodes: u32, avg_degree: u32, rmat: bool, seed: u64) -> GraphSpec {
    GraphSpec {
        nodes,
        avg_degree,
        kind: if rmat {
            GraphKind::Rmat
        } else {
            GraphKind::Uniform
        },
        seed,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// BFS levels equal unit-weight Dijkstra distances on arbitrary
    /// generated graphs — including the unreachable (`u32::MAX`) nodes.
    #[test]
    fn bfs_levels_match_unit_dijkstra(
        nodes in 2u32..200,
        avg_degree in 1u32..8,
        rmat in any::<bool>(),
        seed in any::<u64>(),
        source_ix in 0u32..200,
    ) {
        let g = spec_of(nodes, avg_degree, rmat, seed).build();
        let source = source_ix % g.node_count();
        let bfs = bfs_levels(&g, source);
        prop_assert_eq!(&bfs.levels, &unit_dijkstra(&g, source));
    }

    /// Rank mass is conserved: every PageRank iterate sums to 1 within
    /// 1e-9, for any generated graph, damping in (0, 1) and depth.
    #[test]
    fn pagerank_conserves_mass(
        nodes in 2u32..200,
        avg_degree in 1u32..8,
        rmat in any::<bool>(),
        seed in any::<u64>(),
        iterations in 1usize..6,
        d_millis in 1u32..1000,
    ) {
        let g = spec_of(nodes, avg_degree, rmat, seed).build();
        let d = f64::from(d_millis) / 1000.0;
        let r = pagerank(&g, iterations, d);
        let sum: f64 = r.ranks.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9, "rank mass {} drifted", sum);
        prop_assert_eq!(r.residuals.len(), iterations);
    }

    /// The CSR round-trips the generator's edge multiset: rebuilding a
    /// graph from `edges()` reproduces it exactly, and `edges()` is the
    /// sorted edge list.
    #[test]
    fn csr_round_trips_the_edge_list(
        nodes in 2u32..200,
        avg_degree in 1u32..8,
        rmat in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let g = spec_of(nodes, avg_degree, rmat, seed).build();
        let edges = g.edges();
        prop_assert_eq!(edges.len() as u64, g.edge_count());
        let mut sorted = edges.clone();
        sorted.sort_unstable();
        prop_assert_eq!(&sorted, &edges, "edges() not sorted by (src, dst)");
        prop_assert_eq!(&Graph::from_edges(g.node_count(), &edges), &g);
    }

    /// Frontier accounting is consistent on arbitrary graphs: sizes are
    /// positive, they sum to the reachable-node count, and the scanned
    /// edges per level equal the out-degrees of that frontier.
    #[test]
    fn bfs_frontier_accounting_is_exact(
        nodes in 2u32..200,
        avg_degree in 1u32..8,
        rmat in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let g = spec_of(nodes, avg_degree, rmat, seed).build();
        let r = bfs_levels(&g, 0);
        prop_assert!(r.frontier_sizes.iter().all(|&f| f > 0));
        let reachable = r.levels.iter().filter(|&&l| l != u32::MAX).count() as u64;
        prop_assert_eq!(r.visited(), reachable);
        for (depth, &scanned) in r.edges_scanned.iter().enumerate() {
            let expected: u64 = (0..g.node_count())
                .filter(|&u| r.levels[u as usize] == depth as u32)
                .map(|u| u64::from(g.out_degree(u)))
                .sum();
            prop_assert_eq!(scanned, expected, "level {}", depth);
        }
    }
}

#[test]
fn damping_envelope_in_the_paper_setting() {
    // Non-property anchor: the canonical damping on a midsize graph keeps
    // residuals strictly decreasing for a deep run.
    let g = GraphSpec {
        nodes: 4096,
        avg_degree: 8,
        kind: GraphKind::Rmat,
        seed: 17,
    }
    .build();
    let r = pagerank(&g, 12, PAGERANK_DAMPING);
    for w in r.residuals.windows(2) {
        assert!(w[1] < w[0]);
    }
}
