//! Reference BFS and PageRank over [`Graph`], with the traversal-shape
//! summaries the simulated pipelines are priced from.
//!
//! These run on the host for real (integer frontiers, f64 ranks) — the
//! simulator prices *time*, not values, so the values must come from an
//! actual computation for the frontier sizes and residuals printed by the
//! experiments to mean anything. Both algorithms are strictly
//! deterministic: fixed iteration order, no data-dependent float
//! reassociation.

use crate::csr::Graph;

/// Level-synchronous BFS from `source`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BfsResult {
    /// Per-node level, `u32::MAX` for unreachable nodes.
    pub levels: Vec<u32>,
    /// Frontier size per level, starting with `[1]` for the source. Every
    /// entry is positive; the sum is the reachable-node count.
    pub frontier_sizes: Vec<u32>,
    /// Edges scanned expanding each frontier (the gather volume of the
    /// corresponding simulated task).
    pub edges_scanned: Vec<u64>,
}

impl BfsResult {
    /// Nodes reached, including the source.
    #[must_use]
    pub fn visited(&self) -> u64 {
        self.frontier_sizes.iter().map(|&f| u64::from(f)).sum()
    }
}

/// Runs level-synchronous BFS (the frontier-expansion shape the traversal
/// kernels simulate) from `source`.
///
/// # Panics
///
/// Panics if `source` is out of range.
#[must_use]
pub fn bfs_levels(g: &Graph, source: u32) -> BfsResult {
    assert!(source < g.node_count(), "bfs_levels: source out of range");
    let n = g.node_count() as usize;
    let mut levels = vec![u32::MAX; n];
    levels[source as usize] = 0;
    let mut frontier = vec![source];
    let mut frontier_sizes = Vec::new();
    let mut edges_scanned = Vec::new();
    let mut depth = 0u32;
    while !frontier.is_empty() {
        frontier_sizes.push(frontier.len() as u32);
        let mut scanned = 0u64;
        let mut next = Vec::new();
        for &u in &frontier {
            scanned += u64::from(g.out_degree(u));
            for &v in g.neighbors(u) {
                if levels[v as usize] == u32::MAX {
                    levels[v as usize] = depth + 1;
                    next.push(v);
                }
            }
        }
        edges_scanned.push(scanned);
        frontier = next;
        depth += 1;
    }
    BfsResult {
        levels,
        frontier_sizes,
        edges_scanned,
    }
}

/// Fixed-iteration PageRank.
#[derive(Clone, Debug, PartialEq)]
pub struct PagerankResult {
    /// Final rank per node; sums to 1 within float tolerance.
    pub ranks: Vec<f64>,
    /// L1 distance between successive iterates, one entry per iteration —
    /// strictly decreasing for damping < 1 on any fixed graph.
    pub residuals: Vec<f64>,
}

/// The damping factor every experiment uses.
pub const PAGERANK_DAMPING: f64 = 0.85;

/// Runs `iterations` of push-style PageRank with damping `d`, redistributing
/// dangling mass uniformly so every iterate sums to 1.
///
/// # Panics
///
/// Panics if the graph is empty, `iterations` is zero, or `d` is outside
/// `(0, 1)`.
#[must_use]
pub fn pagerank(g: &Graph, iterations: usize, d: f64) -> PagerankResult {
    let n = g.node_count() as usize;
    assert!(n > 0, "pagerank: empty graph");
    assert!(iterations > 0, "pagerank: zero iterations");
    assert!(d > 0.0 && d < 1.0, "pagerank: damping {d} outside (0, 1)");
    let uniform = 1.0 / n as f64;
    let mut ranks = vec![uniform; n];
    let mut residuals = Vec::with_capacity(iterations);
    for _ in 0..iterations {
        let mut next = vec![0.0f64; n];
        let mut dangling = 0.0f64;
        for (u, &rank) in ranks.iter().enumerate() {
            let deg = g.out_degree(u as u32);
            if deg == 0 {
                dangling += rank;
            } else {
                let share = rank / f64::from(deg);
                for &v in g.neighbors(u as u32) {
                    next[v as usize] += share;
                }
            }
        }
        let base = (1.0 - d) * uniform + d * dangling * uniform;
        let mut residual = 0.0f64;
        for u in 0..n {
            let r = base + d * next[u];
            residual += (r - ranks[u]).abs();
            ranks[u] = r;
        }
        residuals.push(residual);
    }
    PagerankResult { ranks, residuals }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::{GraphKind, GraphSpec};

    #[test]
    fn golden_bfs_levels_match_hand_computation() {
        let r = bfs_levels(&Graph::golden(), 0);
        assert_eq!(r.levels, vec![0, 1, 1, 2, 2, 2, 3, u32::MAX]);
        assert_eq!(r.frontier_sizes, vec![1, 2, 3, 1]);
        assert_eq!(r.visited(), 7);
        assert_eq!(r.edges_scanned.iter().sum::<u64>(), 8);
    }

    #[test]
    fn pagerank_sums_to_one_every_iteration() {
        let g = GraphSpec {
            nodes: 512,
            avg_degree: 4,
            kind: GraphKind::Rmat,
            seed: 9,
        }
        .build();
        // Re-run with increasing iteration counts: the *final* iterate of
        // each run is an intermediate iterate of the longest run.
        for iters in 1..=8 {
            let r = pagerank(&g, iters, PAGERANK_DAMPING);
            let sum: f64 = r.ranks.iter().sum();
            assert!(
                (sum - 1.0).abs() < 1e-9,
                "iteration {iters}: rank mass {sum} drifted"
            );
        }
    }

    #[test]
    fn pagerank_residuals_strictly_decrease() {
        let g = GraphSpec {
            nodes: 1024,
            avg_degree: 8,
            kind: GraphKind::Uniform,
            seed: 4,
        }
        .build();
        let r = pagerank(&g, 8, PAGERANK_DAMPING);
        assert_eq!(r.residuals.len(), 8);
        for w in r.residuals.windows(2) {
            assert!(w[1] < w[0], "residual rose: {} -> {}", w[0], w[1]);
        }
    }

    #[test]
    fn bfs_frontiers_partition_the_reachable_set() {
        let g = GraphSpec {
            nodes: 2048,
            avg_degree: 8,
            kind: GraphKind::Uniform,
            seed: 12,
        }
        .build();
        let r = bfs_levels(&g, 0);
        assert!(r.frontier_sizes.iter().all(|&f| f > 0));
        let by_levels = r.levels.iter().filter(|&&l| l != u32::MAX).count() as u64;
        assert_eq!(r.visited(), by_levels);
    }
}
