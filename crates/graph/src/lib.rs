//! Graph-analytics workloads for the ReACH hierarchy, and their co-run
//! scenarios against CBIR traffic.
//!
//! The CBIR case study exercises the hierarchy with regular, dense-compute
//! pipelines. This crate adds the opposite pole — irregular, memory-bound
//! graph traversal — and then puts both on the *same* machine at the same
//! time:
//!
//! * [`csr`] — compressed-sparse-row graphs with deterministic generators
//!   (uniform random, RMAT-skewed, and a hand-checkable golden graph);
//! * [`algo`] — reference BFS and PageRank on the host, producing the
//!   traversal shapes (frontier sizes, residuals) the simulated kernels
//!   are priced from;
//! * [`templates`] — traversal and rank-update kernel templates for each
//!   hierarchy level, on top of the paper's Table III registry;
//! * [`pipeline`] — the workloads as ReACH pipelines: one task per BFS
//!   level / PageRank iteration, dependency-chained through frontier
//!   streams, with gather-shaped DRAM access and edge-list streaming at
//!   the near-storage level;
//! * [`scenarios`] — the `extension-graph` placement × scale sweep;
//! * [`co_run`] — the `extension-corun` rows: CBIR open-loop traffic
//!   served while graph batch jobs run, with per-tenant latency accounting
//!   and the DDR/AIMbus contention gauges.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algo;
pub mod co_run;
pub mod csr;
pub mod pipeline;
pub mod scenarios;
pub mod templates;

pub use algo::{bfs_levels, pagerank, BfsResult, PagerankResult, PAGERANK_DAMPING};
pub use co_run::{graph_corun_rows_with, CorunRow};
pub use csr::{Graph, GraphKind, GraphSpec};
pub use pipeline::{
    graph_pipeline, GraphPlacement, GraphRun, GraphWorkload, WorkloadShape, EDGE_BYTES,
    PAGERANK_ITERATIONS,
};
pub use scenarios::{graph_sweep_with, GraphRow, GraphScenario};
pub use templates::{graph_blueprint, graph_registry};
