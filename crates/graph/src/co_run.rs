//! The `extension-corun` experiment: CBIR traffic served while graph batch
//! jobs run on the same hierarchy.
//!
//! The GAM's reason to exist is coordinating *multiple* workloads on one
//! reconfigurable hierarchy. This module measures what that coordination
//! costs the latency-sensitive tenant: open-loop CBIR query traffic
//! (PR 7's admission-queue serving) co-runs with a stream of PageRank
//! batch jobs whose near-memory gathers occupy the same accelerator slots
//! and DIMMs the CBIR short-list stage needs. Each swept rate produces a
//! solo baseline and a co-run point with identical arrivals, so the p99
//! delta is pure interference — backed by the new contention gauges
//! (`mem.ddr.contended_cycles`, `mem.aimbus.queued_ps`) and per-tenant
//! dispatch/latency attribution ([`reach_gam::tenant::TenantLedger`]).
//!
//! Job-id spaces are disjoint: CBIR arrivals from 0, graph batches from
//! [`GRAPH_JOB_BASE`]. Both runs declare the same tenants and admission
//! depth, so the ledgers line up row for row.

use crate::csr::{GraphKind, GraphSpec};
use crate::pipeline::{graph_pipeline, GraphPlacement, GraphRun, GraphWorkload};
use crate::templates::graph_registry;
use reach::fingerprint::ConfigFingerprint;
use reach::traffic::ArrivalProcess;
use reach::{
    FnScenario, MachineBlueprint, MetricValue, RunReport, Scenario, ScenarioExecutor, SystemConfig,
};
use reach_cbir::pipeline::CbirStage;
use reach_cbir::{CbirMapping, CbirPipeline, CbirWorkload};
use reach_sim::{FingerprintBuilder, SimDuration};
use std::fmt;

/// Offered CBIR arrival rates swept, in query batches per second. Both
/// sit below the proper mapping's saturation knee, where p99 reflects the
/// pipeline (and any interference) rather than the tenant's own queueing.
pub const CORUN_RATES_PER_SEC: [u64; 2] = [4, 8];

/// CBIR batch arrivals offered at each rate.
pub const CORUN_OFFERED: usize = 16;

/// Admission-queue depth for arrivals — graph jobs in flight count
/// against it, so it is deliberately deeper than the traffic sweep's: the
/// batch tenant's backlog can push the queue to the bound and bounce CBIR
/// arrivals, which is admission control doing its job, visibly.
pub const CORUN_QUEUE_DEPTH: usize = 12;

/// Graph batch jobs submitted per CBIR arrival instant (see
/// [`graph_corun_rows_with`] for why they share instants).
pub const GRAPH_JOBS_PER_ARRIVAL: usize = 2;

/// Graph batch jobs submitted during the serving window.
pub const CORUN_GRAPH_BATCHES: usize = CORUN_OFFERED * GRAPH_JOBS_PER_ARRIVAL;

/// First job id of the graph tenant (CBIR owns `0..GRAPH_JOB_BASE`).
pub const GRAPH_JOB_BASE: u64 = 512;

/// The graph batch tenant's workload: a near-memory PageRank big enough
/// that each iteration's gather occupies an accelerator slot for tens of
/// milliseconds at a time — the same order as one CBIR short-list shard,
/// so a query landing behind a graph task feels it.
fn corun_graph_spec() -> GraphSpec {
    GraphSpec {
        nodes: 262_144,
        avg_degree: 32,
        kind: GraphKind::Uniform,
        seed: reach_sim::rng::session_seed(),
    }
}

fn corun_graph_run() -> GraphRun {
    graph_pipeline(
        &corun_graph_spec(),
        GraphWorkload::Pagerank,
        GraphPlacement::NearMemory,
    )
}

/// The co-run machine: the paper shape widened to 4 near-memory and 4
/// near-storage units, with both the CBIR and graph kernels registered.
#[must_use]
pub fn corun_blueprint() -> MachineBlueprint {
    MachineBlueprint::with_registry(
        SystemConfig::paper_table2()
            .with_near_memory(4)
            .with_near_storage(4),
        graph_registry(),
    )
}

/// Final value of a counter in a report's telemetry (0 if absent).
fn counter(report: &RunReport, name: &str) -> u64 {
    match report.metrics.get(name) {
        Some(MetricValue::Counter { value }) => *value,
        _ => 0,
    }
}

/// One co-run sweep row: the solo and shared serving points at one rate.
#[derive(Clone, Debug)]
pub struct CorunRow {
    /// Offered CBIR arrival rate, batches per second.
    pub rate_per_sec: u64,
    /// CBIR arrivals offered (same in both runs).
    pub offered: usize,
    /// CBIR arrivals admitted, solo.
    pub solo_admitted: u64,
    /// CBIR arrivals bounced, solo.
    pub solo_rejected: u64,
    /// CBIR p99 latency, solo, ms.
    pub solo_p99_ms: f64,
    /// DDR contended cycles, solo.
    pub solo_ddr_contended: u64,
    /// CBIR arrivals admitted, co-run.
    pub corun_admitted: u64,
    /// CBIR arrivals bounced, co-run.
    pub corun_rejected: u64,
    /// CBIR p99 latency, co-run, ms.
    pub corun_p99_ms: f64,
    /// DDR contended cycles, co-run.
    pub corun_ddr_contended: u64,
    /// AIMbus queueing, co-run, ps.
    pub corun_aimbus_queued_ps: u64,
    /// Graph batch jobs completed in the co-run.
    pub graph_jobs: u64,
    /// GAM dispatches attributed to the CBIR tenant, co-run.
    pub cbir_dispatches: u64,
    /// GAM dispatches attributed to the graph tenant, co-run.
    pub graph_dispatches: u64,
}

impl CorunRow {
    /// What co-running cost CBIR at p99, ms (positive = slower).
    #[must_use]
    pub fn p99_delta_ms(&self) -> f64 {
        self.corun_p99_ms - self.solo_p99_ms
    }
}

impl fmt::Display for CorunRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "corun @{:>2}/s    solo  admitted {:>2}/{:<2} rejected {:>2}  cbir-p99 {:>9.3}ms  \
             ddr-contended {:>8}cy",
            self.rate_per_sec,
            self.solo_admitted,
            self.offered,
            self.solo_rejected,
            self.solo_p99_ms,
            self.solo_ddr_contended,
        )?;
        write!(
            f,
            "  corun @{:>2}/s  shared  admitted {:>2}/{:<2} rejected {:>2}  cbir-p99 {:>9.3}ms  \
             ddr-contended {:>8}cy  aimbus-queued {}ps  graph-jobs {}  \
             dispatches cbir/graph {}/{}  p99-delta {:+.3}ms",
            self.rate_per_sec,
            self.corun_admitted,
            self.offered,
            self.corun_rejected,
            self.corun_p99_ms,
            self.corun_ddr_contended,
            self.corun_aimbus_queued_ps,
            self.graph_jobs,
            self.cbir_dispatches,
            self.graph_dispatches,
            self.p99_delta_ms(),
        )
    }
}

/// Runs the co-run sweep — solo and shared serving points at each
/// [`CORUN_RATES_PER_SEC`] rate — through `executor` and reduces each rate
/// to a [`CorunRow`].
#[must_use]
pub fn graph_corun_rows_with(executor: &dyn ScenarioExecutor) -> Vec<CorunRow> {
    let blueprint = corun_blueprint();
    let seed = reach_sim::rng::session_seed();
    let cbir = CbirPipeline::new(CbirWorkload::paper_setup(), CbirMapping::Proper);

    // Vouched fingerprints for the closures below: each report is fully
    // determined by the machine shape, the two compiled pipelines, the
    // arrival process (variant + parameters + embedded seed via the debug
    // rendering), the offered count, the admission depth, the graph batch
    // schedule and the session seed. Over-keying the solo points with the
    // graph pipeline costs nothing and can never under-key.
    let cbir_compiled = cbir.compile(blueprint.config(), blueprint.registry(), &CbirStage::ALL);
    let graph_fp = corun_graph_run().pipeline.fingerprint();
    let vouch = |tag: &str, arrival: &ArrivalProcess| {
        let mut b = FingerprintBuilder::new("reach-graph-corun-v1");
        b.write_str(tag);
        blueprint.fingerprint().write_into(&mut b);
        cbir_compiled.fingerprint().write_into(&mut b);
        graph_fp.write_into(&mut b);
        b.write_debug(arrival);
        b.write_usize(CORUN_OFFERED);
        b.write_usize(CORUN_QUEUE_DEPTH);
        b.write_usize(GRAPH_JOBS_PER_ARRIVAL);
        b.write_u64(seed);
        ConfigFingerprint::from_builder(b)
    };

    let mut scenarios: Vec<Box<dyn Scenario>> = Vec::new();
    for &rate in &CORUN_RATES_PER_SEC {
        let arrival = ArrivalProcess::Poisson {
            mean_gap: SimDuration::from_secs_f64(1.0 / rate as f64),
            seed,
        };

        let solo_arrival = arrival.clone();
        let solo_cbir = cbir;
        scenarios.push(Box::new(
            FnScenario::new(
                format!("corun/{rate}qps/solo"),
                blueprint.clone(),
                move |machine| {
                    machine.declare_tenant("cbir", 0, GRAPH_JOB_BASE);
                    let compiled = solo_cbir.build(machine);
                    for (i, at) in solo_arrival.arrivals(CORUN_OFFERED).into_iter().enumerate() {
                        let (job, works) = compiled.job_for_batch(i as u64);
                        machine.submit_at_bounded(at, job, works, CORUN_QUEUE_DEPTH);
                    }
                    machine.run()
                },
            )
            .with_fingerprint(vouch("solo", &arrival)),
        ));

        let corun_arrival = arrival.clone();
        let corun_cbir = cbir;
        scenarios.push(Box::new(
            FnScenario::new(
                format!("corun/{rate}qps/shared"),
                blueprint.clone(),
                move |machine| {
                    machine.declare_tenant("cbir", 0, GRAPH_JOB_BASE);
                    machine.declare_tenant("graph", GRAPH_JOB_BASE, 2 * GRAPH_JOB_BASE);
                    let compiled = corun_cbir.build(machine);
                    let graph = corun_graph_run();
                    // The batch tenant submits its jobs at the query
                    // arrival instants (fully correlated phase): every
                    // serving point then measures interference by
                    // construction instead of leaving the overlap between
                    // the two tenants to the luck of the seed.
                    for (i, at) in corun_arrival
                        .arrivals(CORUN_OFFERED)
                        .into_iter()
                        .enumerate()
                    {
                        let (job, works) = compiled.job_for_batch(i as u64);
                        machine.submit_at_bounded(at, job, works, CORUN_QUEUE_DEPTH);
                        for g in 0..GRAPH_JOBS_PER_ARRIVAL {
                            let id = GRAPH_JOB_BASE + (i * GRAPH_JOBS_PER_ARRIVAL + g) as u64;
                            let (job, works) = graph.pipeline.job_for_batch(id);
                            machine.submit_at(at, job, works);
                        }
                    }
                    machine.run()
                },
            )
            .with_fingerprint(vouch("shared", &arrival)),
        ));
    }

    let results = executor.run_all(scenarios);
    let ms = |ps: u64| ps as f64 * 1e-9;
    CORUN_RATES_PER_SEC
        .iter()
        .zip(results.chunks(2))
        .map(|(&rate, pair)| {
            let [solo, shared] = pair else {
                unreachable!("two scenarios per rate")
            };
            let s = &solo.report;
            let c = &shared.report;
            CorunRow {
                rate_per_sec: rate,
                offered: CORUN_OFFERED,
                solo_admitted: counter(s, "tenant.cbir.jobs_completed"),
                solo_rejected: counter(s, "tenant.cbir.jobs_rejected"),
                solo_p99_ms: ms(counter(s, "tenant.cbir.latency.p99_ps")),
                solo_ddr_contended: counter(s, "mem.ddr.contended_cycles"),
                corun_admitted: counter(c, "tenant.cbir.jobs_completed"),
                corun_rejected: counter(c, "tenant.cbir.jobs_rejected"),
                corun_p99_ms: ms(counter(c, "tenant.cbir.latency.p99_ps")),
                corun_ddr_contended: counter(c, "mem.ddr.contended_cycles"),
                corun_aimbus_queued_ps: counter(c, "mem.aimbus.queued_ps"),
                graph_jobs: counter(c, "tenant.graph.jobs_completed"),
                cbir_dispatches: counter(c, "tenant.cbir.dispatches"),
                graph_dispatches: counter(c, "tenant.graph.dispatches"),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use reach::SequentialExecutor;

    #[test]
    fn corun_shows_measurable_contention() {
        let rows = graph_corun_rows_with(&SequentialExecutor);
        assert_eq!(rows.len(), CORUN_RATES_PER_SEC.len());
        for row in &rows {
            // The acceptance bar: co-running strictly raises CBIR's p99 at
            // the same offered rate, and the ledgers balance per tenant.
            assert!(
                row.corun_p99_ms > row.solo_p99_ms,
                "@{}qps: co-run p99 {:.3}ms not above solo {:.3}ms",
                row.rate_per_sec,
                row.corun_p99_ms,
                row.solo_p99_ms
            );
            assert_eq!(
                row.solo_admitted + row.solo_rejected,
                row.offered as u64,
                "@{}qps solo ledger",
                row.rate_per_sec
            );
            assert_eq!(
                row.corun_admitted + row.corun_rejected,
                row.offered as u64,
                "@{}qps co-run ledger",
                row.rate_per_sec
            );
            assert_eq!(row.graph_jobs, CORUN_GRAPH_BATCHES as u64);
            assert!(row.cbir_dispatches > 0 && row.graph_dispatches > 0);
        }
    }

    #[test]
    fn corun_rows_replay_byte_identically() {
        let a: Vec<String> = graph_corun_rows_with(&SequentialExecutor)
            .iter()
            .map(ToString::to_string)
            .collect();
        let b: Vec<String> = graph_corun_rows_with(&SequentialExecutor)
            .iter()
            .map(ToString::to_string)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn contention_gauges_move_under_co_run() {
        let rows = graph_corun_rows_with(&SequentialExecutor);
        for row in &rows {
            assert!(
                row.corun_ddr_contended >= row.solo_ddr_contended,
                "@{}qps: co-run cannot reduce DDR contention",
                row.rate_per_sec
            );
        }
    }
}
