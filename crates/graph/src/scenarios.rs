//! The `extension-graph` experiment: placement × scale sweep of the graph
//! workloads.
//!
//! Each point runs one workload (BFS on an RMAT graph, PageRank on a
//! uniform graph) at one placement and one scale, and reports the makespan
//! plus the traversal shape — frontier sizes for BFS, per-iteration L1
//! residuals for PageRank. The shape numbers come from the host-side
//! reference run, so the printed rows double as a correctness witness the
//! CI validator re-checks from stdout (frontiers positive and summing to
//! the visited count; residuals strictly decreasing).
//!
//! Determinism contract: graphs derive from fixed seeds through
//! [`reach_sim::rng`] streams, simulation from the event queue — every row
//! is byte-identical at any `--jobs` and replays through the
//! scenario-result cache (fingerprint `reach-graph-v1`).

use crate::csr::{GraphKind, GraphSpec};
use crate::pipeline::{graph_pipeline, GraphPlacement, GraphWorkload, WorkloadShape};
use crate::templates::graph_blueprint;
use reach::fingerprint::ConfigFingerprint;
use reach::{Machine, MachineBlueprint, RunReport, Scenario, ScenarioExecutor};
use reach_sim::FingerprintBuilder;
use std::fmt;

/// Node counts swept per workload × placement.
pub const GRAPH_SCALES: [u32; 3] = [1024, 4096, 16384];

/// Average out-degree of every swept graph.
pub const GRAPH_DEGREE: u32 = 8;

/// One graph sweep point: a workload on a generated graph at a placement.
#[derive(Clone, Debug)]
pub struct GraphScenario {
    label: String,
    blueprint: MachineBlueprint,
    spec: GraphSpec,
    workload: GraphWorkload,
    placement: GraphPlacement,
    batches: usize,
    seed: u64,
}

impl GraphScenario {
    /// A sweep point on the paper-shape machine with the graph kernels
    /// registered. The graph seed derives from the session seed, so
    /// `--seed N` reshuffles every generated graph at once.
    #[must_use]
    pub fn new(spec: GraphSpec, workload: GraphWorkload, placement: GraphPlacement) -> Self {
        GraphScenario {
            label: format!(
                "graph/{}/{}/{}",
                workload.name(),
                placement.name(),
                spec.label()
            ),
            blueprint: graph_blueprint(),
            spec,
            workload,
            placement,
            batches: 1,
            seed: reach_sim::rng::session_seed(),
        }
    }

    /// The graph spec this point traverses.
    #[must_use]
    pub fn spec(&self) -> &GraphSpec {
        &self.spec
    }
}

impl Scenario for GraphScenario {
    fn label(&self) -> String {
        self.label.clone()
    }

    fn seed(&self) -> u64 {
        self.seed
    }

    fn blueprint(&self) -> MachineBlueprint {
        self.blueprint.clone()
    }

    fn run(&self, machine: &mut Machine) -> RunReport {
        let run = graph_pipeline(&self.spec, self.workload, self.placement);
        run.pipeline.run(machine, self.batches)
    }

    /// Everything `run` consumes: machine shape, the compiled pipeline
    /// (which itself digests the traversal shape, hence the graph), the
    /// generating spec, workload, placement, batch count and seed.
    fn config_fingerprint(&self) -> Option<ConfigFingerprint> {
        let run = graph_pipeline(&self.spec, self.workload, self.placement);
        let mut b = FingerprintBuilder::new("reach-graph-v1");
        self.blueprint.fingerprint().write_into(&mut b);
        run.pipeline.fingerprint().write_into(&mut b);
        b.write_debug(&self.spec);
        b.write_str(self.workload.name());
        b.write_str(self.placement.name());
        b.write_usize(self.batches);
        b.write_u64(self.seed);
        Some(ConfigFingerprint::from_builder(b))
    }
}

/// One rendered sweep row.
#[derive(Clone, Debug)]
pub struct GraphRow {
    /// Workload name (`bfs` / `pagerank`).
    pub workload: &'static str,
    /// Placement name.
    pub placement: &'static str,
    /// Graph label, e.g. `rmat/4096`.
    pub graph: String,
    /// Directed edge count.
    pub edges: u64,
    /// Simulated makespan, ms.
    pub makespan_ms: f64,
    /// Edge traversals per simulated second.
    pub events_per_sec: f64,
    /// Traversal shape: frontier sizes (BFS) or residuals (PageRank).
    pub shape: WorkloadShape,
}

impl GraphRow {
    /// Edge-traversal events this row's run performed (BFS: edges scanned
    /// over all frontiers; PageRank: edges × iterations).
    #[must_use]
    pub fn events(&self) -> u64 {
        match &self.shape {
            WorkloadShape::Bfs(r) => r.edges_scanned.iter().sum(),
            WorkloadShape::Pagerank { residuals } => self.edges * residuals.len() as u64,
        }
    }
}

impl fmt::Display for GraphRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:>8} {:>12} {:>12}  {:>8} edges  {:>10.3}ms  {:>12.0} ev/s  ",
            self.workload,
            self.placement,
            self.graph,
            self.edges,
            self.makespan_ms,
            self.events_per_sec
        )?;
        match &self.shape {
            WorkloadShape::Bfs(r) => {
                write!(f, "frontiers [")?;
                for (i, s) in r.frontier_sizes.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{s}")?;
                }
                write!(f, "] visited {}", r.visited())
            }
            WorkloadShape::Pagerank { residuals } => {
                write!(f, "residuals [")?;
                for (i, r) in residuals.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{r:.3e}")?;
                }
                write!(f, "]")
            }
        }
    }
}

/// The sweep grid: (workload, graph kind) pairs × placements × scales.
fn sweep_points() -> Vec<(GraphWorkload, GraphKind, GraphPlacement, u32)> {
    let mut pts = Vec::new();
    for (workload, kind) in [
        (GraphWorkload::Bfs, GraphKind::Rmat),
        (GraphWorkload::Pagerank, GraphKind::Uniform),
    ] {
        for placement in GraphPlacement::ALL {
            for &nodes in &GRAPH_SCALES {
                pts.push((workload, kind, placement, nodes));
            }
        }
    }
    pts
}

/// Runs the placement × scale sweep through `executor` and reduces each
/// point to a [`GraphRow`].
#[must_use]
pub fn graph_sweep_with(executor: &dyn ScenarioExecutor) -> Vec<GraphRow> {
    let seed = reach_sim::rng::session_seed();
    let points = sweep_points();
    let scenarios: Vec<Box<dyn Scenario>> = points
        .iter()
        .map(|&(workload, kind, placement, nodes)| {
            let spec = GraphSpec {
                nodes,
                avg_degree: GRAPH_DEGREE,
                kind,
                seed,
            };
            Box::new(GraphScenario::new(spec, workload, placement)) as Box<dyn Scenario>
        })
        .collect();
    let results = executor.run_all(scenarios);

    points
        .iter()
        .zip(results)
        .map(|(&(workload, kind, placement, nodes), res)| {
            let spec = GraphSpec {
                nodes,
                avg_degree: GRAPH_DEGREE,
                kind,
                seed,
            };
            // Re-derive the shape host-side (cheap; the simulation is what
            // the cache skips) so rows render identically on warm replays.
            let run = graph_pipeline(&spec, workload, placement);
            let makespan = res.report.makespan;
            let mut row = GraphRow {
                workload: workload.name(),
                placement: placement.name(),
                graph: spec.label(),
                edges: run.edges,
                makespan_ms: makespan.as_ms_f64(),
                events_per_sec: 0.0,
                shape: run.shape,
            };
            row.events_per_sec = row.events() as f64 / makespan.as_secs_f64();
            row
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use reach::SequentialExecutor;

    fn point() -> GraphScenario {
        GraphScenario::new(
            GraphSpec {
                nodes: 1024,
                avg_degree: 8,
                kind: GraphKind::Rmat,
                seed: reach_sim::rng::session_seed(),
            },
            GraphWorkload::Bfs,
            GraphPlacement::NearMemory,
        )
    }

    #[test]
    fn fingerprint_tracks_every_knob() {
        let base = point();
        let mut variants: Vec<GraphScenario> = Vec::new();
        let mut v = point();
        v.spec.nodes = 2048;
        variants.push(v);
        let mut v = point();
        v.spec.seed ^= 1;
        variants.push(v);
        let mut v = point();
        v.spec.kind = GraphKind::Uniform;
        variants.push(v);
        let mut v = point();
        v.workload = GraphWorkload::Pagerank;
        variants.push(v);
        let mut v = point();
        v.placement = GraphPlacement::NearStorage;
        variants.push(v);
        let mut v = point();
        v.batches = 2;
        variants.push(v);
        let mut v = point();
        v.seed ^= 1;
        variants.push(v);

        let mut seen = vec![base.config_fingerprint().unwrap()];
        for (i, v) in variants.iter().enumerate() {
            let fp = v.config_fingerprint().unwrap();
            assert!(
                !seen.contains(&fp),
                "variant {i} did not change the fingerprint"
            );
            seen.push(fp);
        }
    }

    #[test]
    fn equal_fingerprints_mean_byte_identical_rows() {
        let a = point();
        let b = point();
        assert_eq!(a.config_fingerprint(), b.config_fingerprint());
        assert_eq!(
            a.execute().makespan,
            b.execute().makespan,
            "equal fingerprints must replay identically"
        );
    }

    #[test]
    fn sweep_rows_cover_the_grid_and_obey_the_validator_contract() {
        let rows = graph_sweep_with(&SequentialExecutor);
        assert_eq!(rows.len(), 2 * 3 * GRAPH_SCALES.len());
        for row in &rows {
            assert!(row.makespan_ms > 0.0, "{}: empty run", row.graph);
            match &row.shape {
                WorkloadShape::Bfs(r) => {
                    assert!(r.frontier_sizes.iter().all(|&f| f > 0));
                    let by_levels = r.levels.iter().filter(|&&l| l != u32::MAX).count() as u64;
                    assert_eq!(r.visited(), by_levels);
                }
                WorkloadShape::Pagerank { residuals } => {
                    for w in residuals.windows(2) {
                        assert!(w[1] < w[0], "residual rose in {}", row.graph);
                    }
                }
            }
        }
    }
}
