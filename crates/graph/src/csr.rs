//! Compressed-sparse-row graphs and their deterministic generators.
//!
//! The graph is the *data* side of the workload model: the simulated
//! kernels' cost comes from the traversal shape (how many edges each BFS
//! frontier scans, how many rank entries each PageRank iteration touches),
//! and that shape is computed here, on the host, from a real CSR structure
//! — not mocked. Everything derives from a [`GraphSpec`] through
//! [`reach_sim::rng`] streams, so the same spec always yields the same
//! graph, bit for bit, at any thread count.

use rand::rngs::StdRng;
use rand::Rng;

/// Which generator family a [`GraphSpec`] draws from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum GraphKind {
    /// Uniform random: every edge's endpoints drawn independently.
    Uniform,
    /// RMAT-style skewed: recursive quadrant descent with the canonical
    /// (0.57, 0.19, 0.19, 0.05) probabilities, yielding the power-law
    /// degree distribution real web/social graphs show.
    Rmat,
    /// A small fixed graph with a hand-checkable BFS tree (see
    /// [`Graph::golden`]); `nodes`, `avg_degree` and `seed` are ignored.
    Golden,
}

impl GraphKind {
    /// Stable lower-case name for labels and fingerprints.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            GraphKind::Uniform => "uniform",
            GraphKind::Rmat => "rmat",
            GraphKind::Golden => "golden",
        }
    }
}

/// Everything that determines a generated graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct GraphSpec {
    /// Node count (rounded up to a power of two internally by the RMAT
    /// quadrant descent; stored counts are exact).
    pub nodes: u32,
    /// Average out-degree: the generator draws `nodes * avg_degree` edges.
    pub avg_degree: u32,
    /// Generator family.
    pub kind: GraphKind,
    /// Seed for the generator's RNG stream.
    pub seed: u64,
}

impl GraphSpec {
    /// Builds the graph this spec describes.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` or `avg_degree` is zero for a generated kind.
    #[must_use]
    pub fn build(&self) -> Graph {
        match self.kind {
            GraphKind::Uniform => Graph::from_edges(
                self.nodes,
                &uniform_edges(self.nodes, self.avg_degree, self.seed),
            ),
            GraphKind::Rmat => Graph::from_edges(
                self.nodes,
                &rmat_edges(self.nodes, self.avg_degree, self.seed),
            ),
            GraphKind::Golden => Graph::golden(),
        }
    }

    /// Stable label, e.g. `rmat/4096`.
    #[must_use]
    pub fn label(&self) -> String {
        match self.kind {
            GraphKind::Golden => "golden".to_string(),
            _ => format!("{}/{}", self.kind.name(), self.nodes),
        }
    }
}

/// The generator's raw output: a directed edge list.
fn uniform_edges(nodes: u32, avg_degree: u32, seed: u64) -> Vec<(u32, u32)> {
    assert!(
        nodes > 1 && avg_degree > 0,
        "uniform_edges: degenerate graph"
    );
    let mut rng = reach_sim::rng::derived(seed, "graph-uniform");
    let count = nodes as usize * avg_degree as usize;
    let mut edges = Vec::with_capacity(count);
    while edges.len() < count {
        let u = rng.gen_range(0..nodes);
        let v = rng.gen_range(0..nodes);
        if u != v {
            edges.push((u, v));
        }
    }
    edges
}

/// One RMAT endpoint pair: descend `log2(n)` quadrant levels with the
/// canonical skew (a=0.57, b=0.19, c=0.19, d=0.05).
fn rmat_edge(rng: &mut StdRng, levels: u32) -> (u32, u32) {
    let (mut u, mut v) = (0u32, 0u32);
    for _ in 0..levels {
        u <<= 1;
        v <<= 1;
        let p: f64 = rng.gen_range(0.0..1.0);
        if p < 0.57 {
            // quadrant a: (0, 0)
        } else if p < 0.76 {
            v |= 1; // quadrant b: (0, 1)
        } else if p < 0.95 {
            u |= 1; // quadrant c: (1, 0)
        } else {
            u |= 1;
            v |= 1; // quadrant d: (1, 1)
        }
    }
    (u, v)
}

fn rmat_edges(nodes: u32, avg_degree: u32, seed: u64) -> Vec<(u32, u32)> {
    assert!(nodes > 1 && avg_degree > 0, "rmat_edges: degenerate graph");
    let mut rng = reach_sim::rng::derived(seed, "graph-rmat");
    let levels = 32 - (nodes - 1).leading_zeros().min(31);
    let count = nodes as usize * avg_degree as usize;
    let mut edges = Vec::with_capacity(count);
    while edges.len() < count {
        let (u, v) = rmat_edge(&mut rng, levels);
        // The quadrant descent covers the power-of-two closure of the node
        // range; resample anything past the requested count (and loops).
        if u < nodes && v < nodes && u != v {
            edges.push((u, v));
        }
    }
    edges
}

/// A directed graph in compressed-sparse-row form.
///
/// # Example
///
/// ```
/// use reach_graph::Graph;
///
/// let g = Graph::from_edges(3, &[(0, 1), (0, 2), (1, 2)]);
/// assert_eq!(g.out_degree(0), 2);
/// assert_eq!(g.neighbors(1), &[2]);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Graph {
    nodes: u32,
    row_ptr: Vec<u32>,
    col: Vec<u32>,
}

impl Graph {
    /// Builds the CSR from a directed edge list (duplicates kept — a
    /// multigraph stays a multigraph, which is what makes the round trip
    /// through [`Graph::edges`] exact).
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    #[must_use]
    pub fn from_edges(nodes: u32, edges: &[(u32, u32)]) -> Self {
        let n = nodes as usize;
        let mut degree = vec![0u32; n];
        for &(u, v) in edges {
            assert!(
                u < nodes && v < nodes,
                "Graph::from_edges: endpoint {u}->{v} out of range"
            );
            degree[u as usize] += 1;
        }
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut acc = 0u32;
        row_ptr.push(0);
        for &d in &degree {
            acc += d;
            row_ptr.push(acc);
        }
        let mut cursor: Vec<u32> = row_ptr[..n].to_vec();
        let mut col = vec![0u32; edges.len()];
        for &(u, v) in edges {
            let c = &mut cursor[u as usize];
            col[*c as usize] = v;
            *c += 1;
        }
        // Sort each row so equal edge *sets* yield equal CSRs regardless of
        // the generator's emission order.
        for u in 0..n {
            col[row_ptr[u] as usize..row_ptr[u + 1] as usize].sort_unstable();
        }
        Graph {
            nodes,
            row_ptr,
            col,
        }
    }

    /// The fixed golden graph: 8 nodes, a two-level tree plus a back edge
    /// and a cross edge, with BFS levels from node 0 of
    /// `[0, 1, 1, 2, 2, 2, 3, unreachable]`.
    #[must_use]
    pub fn golden() -> Self {
        Graph::from_edges(
            8,
            &[
                (0, 1),
                (0, 2),
                (1, 3),
                (1, 4),
                (2, 5),
                (5, 6),
                (6, 2), // back edge
                (3, 5), // cross edge
            ],
        )
    }

    /// Node count.
    #[must_use]
    pub fn node_count(&self) -> u32 {
        self.nodes
    }

    /// Directed edge count.
    #[must_use]
    pub fn edge_count(&self) -> u64 {
        self.col.len() as u64
    }

    /// Out-degree of `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[must_use]
    pub fn out_degree(&self, u: u32) -> u32 {
        self.row_ptr[u as usize + 1] - self.row_ptr[u as usize]
    }

    /// Out-neighbors of `u`, sorted ascending.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[must_use]
    pub fn neighbors(&self, u: u32) -> &[u32] {
        &self.col[self.row_ptr[u as usize] as usize..self.row_ptr[u as usize + 1] as usize]
    }

    /// Reconstructs the edge list, sorted by `(source, destination)` —
    /// exactly the generator's edge multiset.
    #[must_use]
    pub fn edges(&self) -> Vec<(u32, u32)> {
        let mut out = Vec::with_capacity(self.col.len());
        for u in 0..self.nodes {
            for &v in self.neighbors(u) {
                out.push((u, v));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_graph_shape() {
        let g = Graph::golden();
        assert_eq!(g.node_count(), 8);
        assert_eq!(g.edge_count(), 8);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.out_degree(7), 0);
    }

    #[test]
    fn generators_are_deterministic() {
        for kind in [GraphKind::Uniform, GraphKind::Rmat] {
            let spec = GraphSpec {
                nodes: 256,
                avg_degree: 4,
                kind,
                seed: 42,
            };
            assert_eq!(spec.build(), spec.build(), "{kind:?} not reproducible");
        }
    }

    #[test]
    fn seed_changes_the_graph() {
        let a = GraphSpec {
            nodes: 256,
            avg_degree: 4,
            kind: GraphKind::Uniform,
            seed: 1,
        };
        let b = GraphSpec { seed: 2, ..a };
        assert_ne!(a.build(), b.build());
    }

    #[test]
    fn generated_edge_counts_are_exact() {
        for kind in [GraphKind::Uniform, GraphKind::Rmat] {
            let g = GraphSpec {
                nodes: 512,
                avg_degree: 8,
                kind,
                seed: 7,
            }
            .build();
            assert_eq!(g.edge_count(), 512 * 8, "{kind:?}");
        }
    }

    #[test]
    fn rmat_is_skewed_uniform_is_not() {
        let max_deg = |kind| {
            let g = GraphSpec {
                nodes: 1024,
                avg_degree: 8,
                kind,
                seed: 3,
            }
            .build();
            (0..1024).map(|u| g.out_degree(u)).max().unwrap()
        };
        let rmat = max_deg(GraphKind::Rmat);
        let uniform = max_deg(GraphKind::Uniform);
        assert!(
            rmat > 2 * uniform,
            "RMAT hub degree {rmat} not clearly above uniform max {uniform}"
        );
    }
}
