//! Graph workloads expressed as ReACH pipelines.
//!
//! A BFS run becomes one task per frontier level, chained through
//! same-level frontier streams; a PageRank run becomes one task per
//! iteration, chained through rank-vector streams. The work descriptor of
//! each task comes from the *actual* host-side traversal
//! ([`crate::algo`]): the edges each frontier scanned, the rank entries
//! each iteration touched. Placement decides the access shape the
//! simulator prices:
//!
//! * **DRAM levels (on-chip, near-memory)** — `Gather` in 64-byte lines:
//!   per-frontier irregular row activations (the near-memory path batches
//!   row reservations through `reserve_many` inside the DIMM model, and
//!   pays the closed-row conflict penalty per line);
//! * **near-storage** — `Stream` of the whole edge list per level /
//!   iteration: the semi-external pattern out-of-core graph engines use,
//!   because random 8-byte reads at 4 KiB flash-page granularity would be
//!   catastrophically worse than a full rescan.

use crate::algo::{bfs_levels, pagerank, BfsResult, PAGERANK_DAMPING};
use crate::csr::{Graph, GraphSpec};
use crate::templates::graph_registry;
use reach::{Level, Pipeline, ReachConfig, StreamType, TaskWork};

/// Bytes per CSR edge record the kernels move (4 B destination id + 4 B
/// mark / rank-share payload).
pub const EDGE_BYTES: u64 = 8;

/// Bytes per rank-vector entry (one f64).
pub const RANK_BYTES: u64 = 8;

/// DRAM gather granule: one cache line.
pub const DRAM_GRANULE: u64 = 64;

/// PageRank iteration count every experiment uses — enough for the
/// residual trend to be unmistakable, few enough to keep the suite fast.
pub const PAGERANK_ITERATIONS: usize = 6;

/// Which graph algorithm a pipeline runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum GraphWorkload {
    /// Level-synchronous breadth-first search from node 0.
    Bfs,
    /// Fixed-iteration PageRank ([`PAGERANK_ITERATIONS`] iterations).
    Pagerank,
}

impl GraphWorkload {
    /// All workloads, sweep order.
    pub const ALL: [GraphWorkload; 2] = [GraphWorkload::Bfs, GraphWorkload::Pagerank];

    /// Stable lower-case name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            GraphWorkload::Bfs => "bfs",
            GraphWorkload::Pagerank => "pagerank",
        }
    }
}

/// Where the graph kernels run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum GraphPlacement {
    /// The on-chip accelerator (coherent, TLB-translated gathers).
    OnChip,
    /// Near-memory AIM modules (closed-row gathers on their own DIMMs).
    NearMemory,
    /// Near-storage units (edge-list streaming from the SSD).
    NearStorage,
}

impl GraphPlacement {
    /// All placements, sweep order.
    pub const ALL: [GraphPlacement; 3] = [
        GraphPlacement::OnChip,
        GraphPlacement::NearMemory,
        GraphPlacement::NearStorage,
    ];

    /// Stable name used in labels and rows.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            GraphPlacement::OnChip => "on-chip",
            GraphPlacement::NearMemory => "near-memory",
            GraphPlacement::NearStorage => "near-storage",
        }
    }

    /// The config level this placement maps to.
    #[must_use]
    pub fn level(self) -> Level {
        match self {
            GraphPlacement::OnChip => Level::OnChip,
            GraphPlacement::NearMemory => Level::NearMem,
            GraphPlacement::NearStorage => Level::NearStor,
        }
    }

    /// The traversal / rank kernel template names at this placement.
    #[must_use]
    pub fn templates(self) -> (&'static str, &'static str) {
        match self {
            GraphPlacement::OnChip => ("GTRAV-VU9P", "GRANK-VU9P"),
            _ => ("GTRAV-ZCU9", "GRANK-ZCU9"),
        }
    }

    /// The work descriptor for `macs` of compute over `touched`
    /// randomly-addressed bytes when the full edge list holds
    /// `edge_list_bytes`: gather on DRAM levels, whole-list stream near
    /// storage (see the module docs).
    #[must_use]
    fn work(self, macs: u64, touched: u64, edge_list_bytes: u64) -> TaskWork {
        match self {
            GraphPlacement::NearStorage => TaskWork::stream(macs, edge_list_bytes.max(1)),
            _ => TaskWork::gather(macs, touched.max(1), DRAM_GRANULE),
        }
    }
}

/// The traversal shape a compiled pipeline was priced from — everything
/// the experiment rows print about the host-side computation.
#[derive(Clone, Debug)]
pub enum WorkloadShape {
    /// BFS: the per-level frontier structure.
    Bfs(BfsResult),
    /// PageRank: the per-iteration L1 residuals.
    Pagerank {
        /// L1 distance between successive iterates.
        residuals: Vec<f64>,
    },
}

/// A compiled graph pipeline plus the shape summary it was priced from.
#[derive(Clone, Debug)]
pub struct GraphRun {
    /// The submit-ready pipeline.
    pub pipeline: Pipeline,
    /// Host-side traversal summary.
    pub shape: WorkloadShape,
    /// Node count of the underlying graph.
    pub nodes: u32,
    /// Edge count of the underlying graph.
    pub edges: u64,
}

/// CSR footprint in bytes: the row-pointer array plus the column array.
fn csr_bytes(g: &Graph) -> u64 {
    4 * (u64::from(g.node_count()) + 1) + 4 * g.edge_count()
}

/// Builds the pipeline for `workload` on `spec`'s graph at `placement`.
///
/// # Panics
///
/// Panics if the spec is degenerate (see [`GraphSpec::build`]).
#[must_use]
pub fn graph_pipeline(
    spec: &GraphSpec,
    workload: GraphWorkload,
    placement: GraphPlacement,
) -> GraphRun {
    let g = spec.build();
    let level = placement.level();
    let (trav_tpl, rank_tpl) = placement.templates();
    let edge_list_bytes = g.edge_count() * EDGE_BYTES;

    let mut rc = ReachConfig::new();
    let csr = rc.create_fixed_buffer("csr", level, csr_bytes(&g).max(1));

    // Per-step work: (template, macs, touched-bytes, hand-off bytes, stage).
    let (shape, steps) = match workload {
        GraphWorkload::Bfs => {
            let r = bfs_levels(&g, 0);
            let steps: Vec<_> = r
                .edges_scanned
                .iter()
                .zip(&r.frontier_sizes)
                .map(|(&scanned, &frontier)| {
                    (
                        trav_tpl,
                        scanned,                 // one compare-and-mark per edge
                        scanned * EDGE_BYTES,    // rows touched expanding the frontier
                        u64::from(frontier) * 4, // next-frontier hand-off
                        "frontier",
                    )
                })
                .collect();
            (WorkloadShape::Bfs(r), steps)
        }
        GraphWorkload::Pagerank => {
            let r = pagerank(&g, PAGERANK_ITERATIONS, PAGERANK_DAMPING);
            let rank_vec = u64::from(g.node_count()) * RANK_BYTES;
            let steps: Vec<_> = (0..PAGERANK_ITERATIONS)
                .map(|_| {
                    (
                        rank_tpl,
                        2 * g.edge_count(), // multiply + accumulate per edge
                        g.edge_count() * EDGE_BYTES,
                        rank_vec,
                        "rank-update",
                    )
                })
                .collect();
            (
                WorkloadShape::Pagerank {
                    residuals: r.residuals,
                },
                steps,
            )
        }
    };

    // Chain the steps: seed stream from the CPU, one same-level hand-off
    // stream between consecutive steps, final results back to the CPU.
    // Stream wiring is what derives the task dependencies, so the GAM runs
    // the levels strictly in order — BFS is level-synchronous by
    // construction, not by luck.
    let seed_bytes = steps.first().map_or(4, |s| s.3);
    let mut input = rc.create_stream(Level::Cpu, level, StreamType::Pair, seed_bytes.max(4), 2);
    let mut calls = Vec::with_capacity(steps.len());
    for (i, &(tpl, macs, touched, hand_off, stage)) in steps.iter().enumerate() {
        let last = i + 1 == steps.len();
        let output = if last {
            rc.create_stream(level, Level::Cpu, StreamType::Pair, hand_off.max(4), 2)
        } else {
            rc.create_stream(level, level, StreamType::Pair, hand_off.max(4), 2)
        };
        let acc = rc.register_acc(tpl, level);
        rc.set_arg(acc, 0, csr);
        rc.set_arg(acc, 1, input);
        rc.set_arg(acc, 2, output);
        calls.push((acc, placement.work(macs, touched, edge_list_bytes), stage));
        input = output;
    }

    let mut pipeline = Pipeline::new(
        rc.build_with(&graph_registry())
            .expect("graph pipeline config"),
    );
    for (acc, work, stage) in calls {
        pipeline.call(acc, work, stage);
    }
    GraphRun {
        pipeline,
        shape,
        nodes: g.node_count(),
        edges: g.edge_count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::GraphKind;
    use crate::templates::graph_blueprint;

    fn spec() -> GraphSpec {
        GraphSpec {
            nodes: 512,
            avg_degree: 4,
            kind: GraphKind::Uniform,
            seed: 5,
        }
    }

    #[test]
    fn bfs_pipeline_has_one_task_per_level() {
        let run = graph_pipeline(&spec(), GraphWorkload::Bfs, GraphPlacement::NearMemory);
        let WorkloadShape::Bfs(r) = &run.shape else {
            panic!("bfs shape expected")
        };
        let mut machine = graph_blueprint().instantiate();
        let report = run.pipeline.run(&mut machine, 1);
        assert_eq!(report.jobs, 1);
        // One "frontier" task per BFS level.
        let frontier = report
            .stages
            .iter()
            .find(|s| s.name == "frontier")
            .expect("frontier stage");
        assert_eq!(frontier.tasks, r.frontier_sizes.len() as u64);
    }

    #[test]
    fn pagerank_pipeline_runs_at_every_placement() {
        for placement in GraphPlacement::ALL {
            let run = graph_pipeline(&spec(), GraphWorkload::Pagerank, placement);
            let mut machine = graph_blueprint().instantiate();
            let report = run.pipeline.run(&mut machine, 1);
            assert_eq!(report.jobs, 1, "{}", placement.name());
            let rank = report
                .stages
                .iter()
                .find(|s| s.name == "rank-update")
                .expect("rank-update stage");
            assert_eq!(rank.tasks, PAGERANK_ITERATIONS as u64);
        }
    }

    #[test]
    fn near_storage_costs_more_than_near_memory_per_level() {
        // Near-storage rescans the whole edge list per level while the DRAM
        // placements gather only the frontier's rows, so the out-of-core
        // run must take longer on the same workload.
        let run = |placement| {
            let r = graph_pipeline(&spec(), GraphWorkload::Bfs, placement);
            let mut machine = graph_blueprint().instantiate();
            r.pipeline.run(&mut machine, 1).makespan
        };
        let nm = run(GraphPlacement::NearMemory);
        let ns = run(GraphPlacement::NearStorage);
        assert!(
            ns > nm,
            "edge-list streaming ({ns:?}) should dominate frontier gathers ({nm:?})"
        );
    }
}
