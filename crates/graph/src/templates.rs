//! Graph-analytics accelerator templates.
//!
//! Frontier-traversal and rank-update kernels for the on-chip Virtex part
//! and the embedded Zynq parts, registered on top of the paper's Table III
//! registry — the same extension path the analytics case study uses. The
//! traversal kernel is sized like the FPGA graph accelerators surveyed by
//! Dann & Ritter ("Demystifying Memory Access Patterns of FPGA-Based Graph
//! Processing Accelerators"): trivial arithmetic, entirely bound by
//! irregular memory access, which is why its interesting deployments are
//! the near-data levels.

use reach::{MachineBlueprint, SystemConfig, TemplateRegistry};
use reach_accel::{ComputeLevel, FpgaPart, KernelClass, KernelSpec, Utilization};
use reach_sim::Frequency;

/// The machine every graph experiment runs on: the paper's Table II shape
/// with the graph kernels registered alongside the CBIR ones (co-run
/// scenarios schedule both workloads on this one machine).
#[must_use]
pub fn graph_blueprint() -> MachineBlueprint {
    MachineBlueprint::with_registry(SystemConfig::paper_table2(), graph_registry())
}

/// The Table III registry extended with the graph kernels.
#[must_use]
pub fn graph_registry() -> TemplateRegistry {
    let mut reg = TemplateRegistry::paper_table3();
    let vu9p = FpgaPart::vu9p();
    let zu9 = FpgaPart::zu9eg();

    // Frontier traversal: per-edge work is a compare-and-mark, so the
    // datapath is wide and shallow and the kernel lives or dies on gather
    // throughput (the opposite of CBIR's GEMM stages).
    reg.register(KernelSpec {
        name: "GTRAV-VU9P",
        class: KernelClass::Knn, // streaming-comparison family
        part: vu9p,
        level: ComputeLevel::OnChip,
        frequency: Frequency::from_mhz(273),
        utilization: Utilization::new(10, 14, 5, 20),
        power_w: 10.1,
        mac_efficiency: 0.5,
        pipeline_depth: 16,
        io_bytes_per_cycle: 128.0,
        arg_slots: 3,
    });
    for (level, power) in [
        (ComputeLevel::NearMemory, 2.3),
        (ComputeLevel::NearStorage, 3.0),
    ] {
        reg.register(KernelSpec {
            name: "GTRAV-ZCU9",
            class: KernelClass::Knn,
            part: zu9,
            level,
            frequency: Frequency::from_mhz(200),
            utilization: Utilization::new(14, 18, 7, 26),
            power_w: power,
            mac_efficiency: 0.5,
            pipeline_depth: 16,
            io_bytes_per_cycle: 64.0,
            arg_slots: 3,
        });
    }

    // Rank update: multiply-accumulate over the out-edge shares plus the
    // damped base term — dense-arithmetic family, stream-shaped over the
    // edge list with a gathered rank vector.
    reg.register(KernelSpec {
        name: "GRANK-VU9P",
        class: KernelClass::Gemm,
        part: vu9p,
        level: ComputeLevel::OnChip,
        frequency: Frequency::from_mhz(273),
        utilization: Utilization::new(16, 18, 26, 30),
        power_w: 12.4,
        mac_efficiency: 0.8,
        pipeline_depth: 40,
        io_bytes_per_cycle: 128.0,
        arg_slots: 3,
    });
    for (level, power) in [
        (ComputeLevel::NearMemory, 3.1),
        (ComputeLevel::NearStorage, 3.9),
    ] {
        reg.register(KernelSpec {
            name: "GRANK-ZCU9",
            class: KernelClass::Gemm,
            part: zu9,
            level,
            frequency: Frequency::from_mhz(150),
            utilization: Utilization::new(20, 22, 36, 42),
            power_w: power,
            mac_efficiency: 0.8,
            pipeline_depth: 40,
            io_bytes_per_cycle: 64.0,
            arg_slots: 3,
        });
    }
    reg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_table3_plus_graph() {
        let reg = graph_registry();
        // 9 paper kernels + 1 GTRAV-VU9P + 2 GTRAV-ZCU9 + 1 GRANK-VU9P
        // + 2 GRANK-ZCU9.
        assert_eq!(reg.len(), 15);
        assert!(reg
            .resolve("GTRAV-ZCU9", ComputeLevel::NearMemory)
            .is_some());
        assert!(reg
            .resolve("GRANK-ZCU9", ComputeLevel::NearStorage)
            .is_some());
        assert!(reg.resolve("VGG16-VU9P", ComputeLevel::OnChip).is_some());
    }

    #[test]
    fn embedded_traversal_keeps_up_with_its_medium() {
        let reg = graph_registry();
        let trav = reg.resolve("GTRAV-ZCU9", ComputeLevel::NearMemory).unwrap();
        let rate = trav.io_rate_bytes_per_sec().unwrap();
        assert!(
            rate >= 12.0e9,
            "traversal datapath {rate:.2e} below one DDR channel"
        );
    }

    #[test]
    fn graph_kernels_fit_their_parts() {
        for k in graph_registry().iter() {
            assert!(
                k.part.fits(k.utilization),
                "{} overflows {}",
                k.name,
                k.part
            );
        }
    }
}
