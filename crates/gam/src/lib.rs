//! # reach-gam — the Global Accelerator Manager
//!
//! The GAM (Section II-D of the paper) is an on-chip hardware block that
//! frees the CPU cores from managing the compute hierarchy. It:
//!
//! 1. receives job requests for accelerators from the cores,
//! 2. distributes the tasks within each job to available accelerators,
//! 3. tracks running/waiting tasks with their start and *estimated*
//!    execution times,
//! 4. initiates data transfers between dependent tasks, and
//! 5. interrupts the host core when a requested job completes.
//!
//! Because memory- and storage-side modules cannot interrupt the GAM, task
//! completion at those levels is observed through *status-request packets*
//! sent when the estimated runtime elapses; an unfinished task answers with
//! a new wait time (Figure 5). On-chip tasks complete through the coherent
//! interconnect and need no polling.
//!
//! This crate is the *decision logic*: a deterministic state machine that
//! consumes `submit / started / poll / dma-finished` notifications and emits
//! [`GamAction`]s (dispatches, DMA requests, polls, host interrupts). The
//! machine model in `reach` (the core crate) executes those actions against
//! the timing substrates and feeds the results back — which is exactly the
//! hardware/software split of the paper's design.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod manager;
pub mod task;
pub mod tenant;

pub use manager::{Gam, GamAction, GamConfig, GamStats};
pub use task::{BufferDesc, BufferId, Job, JobBuilder, JobId, Task, TaskId, TaskState};
pub use tenant::{TenantLedger, TenantStats};
