//! Jobs, tasks and buffers — the units the GAM schedules.

use reach_accel::ComputeLevel;
use reach_sim::{SimDuration, Symbol};
use std::fmt;

/// Identifies a job (one host-side `execute` group).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

/// Identifies a task within the GAM (globally unique, not per-job).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u64);

/// Identifies a buffer in the GAM buffer table.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BufferId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job{}", self.0)
    }
}
impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task{}", self.0)
    }
}
impl fmt::Display for BufferId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "buf{}", self.0)
    }
}

/// A buffer-table entry: where a region of data currently lives.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BufferDesc {
    /// Identifier.
    pub id: BufferId,
    /// Human-readable name for reports.
    pub name: String,
    /// Size in bytes.
    pub bytes: u64,
    /// Which level's memory currently holds the valid copy (`None` while the
    /// producing task has not finished).
    pub resident: Option<ComputeLevel>,
}

/// Life-cycle of a task inside the GAM.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TaskState {
    /// Waiting on dependencies or input transfers.
    Blocked,
    /// All inputs ready; sitting in its level's dispatch queue.
    Ready,
    /// Running on an accelerator.
    Running,
    /// Finished; outputs valid.
    Done,
}

/// One schedulable unit of work.
#[derive(Clone, Debug)]
pub struct Task {
    /// Identifier (assigned by [`JobBuilder`]).
    pub id: TaskId,
    /// The job this task belongs to (its *task group* in paper terms).
    pub job: JobId,
    /// Stage label for reports (e.g. `"short-list"`), interned so the
    /// per-event accounting path never clones or hashes strings.
    pub stage: Symbol,
    /// Accelerator template this task needs, e.g. `"GEMM-ZCU9"`, interned.
    pub template: Symbol,
    /// Level the task is mapped to.
    pub level: ComputeLevel,
    /// Estimated execution time, from the kernel synthesis report — what
    /// the progress table uses to time status polls.
    pub est_duration: SimDuration,
    /// Input buffers that must be resident at `level` before dispatch.
    pub inputs: Vec<BufferId>,
    /// Buffers this task produces.
    pub outputs: Vec<BufferId>,
    /// Tasks (possibly in earlier jobs) that must finish first.
    pub deps: Vec<TaskId>,
}

/// A job: a group of tasks submitted together.
#[derive(Clone, Debug)]
pub struct Job {
    /// Identifier.
    pub id: JobId,
    /// Tasks, in submission order.
    pub tasks: Vec<Task>,
    /// Buffers referenced by the tasks (new entries for the buffer table).
    pub buffers: Vec<BufferDesc>,
}

/// Builds a [`Job`] with correctly threaded identifiers.
///
/// # Example
///
/// ```
/// use reach_gam::JobBuilder;
/// use reach_accel::ComputeLevel;
/// use reach_sim::SimDuration;
///
/// let mut b = JobBuilder::new(0);
/// let feats = b.buffer("features", 6144, None);
/// let cnn = b.task("feature-extraction", "VGG16-VU9P", ComputeLevel::OnChip,
///                  SimDuration::from_ms(100), vec![], vec![feats], vec![]);
/// let _knn = b.task("rerank", "KNN-ZCU9", ComputeLevel::NearStorage,
///                   SimDuration::from_ms(80), vec![feats], vec![], vec![cnn]);
/// let job = b.build();
/// assert_eq!(job.tasks.len(), 2);
/// ```
#[derive(Debug)]
pub struct JobBuilder {
    job: JobId,
    tasks: Vec<Task>,
    buffers: Vec<BufferDesc>,
    next_task: u64,
    next_buffer: u64,
}

impl JobBuilder {
    /// Starts a job with the given id; task and buffer ids are namespaced
    /// under it so ids from different jobs never collide.
    #[must_use]
    pub fn new(job: u64) -> Self {
        JobBuilder {
            job: JobId(job),
            tasks: Vec::new(),
            buffers: Vec::new(),
            next_task: job << 20,
            next_buffer: job << 20,
        }
    }

    /// Declares a buffer. `resident` says which level already holds valid
    /// data (`None` for outputs yet to be produced).
    pub fn buffer(&mut self, name: &str, bytes: u64, resident: Option<ComputeLevel>) -> BufferId {
        let id = BufferId(self.next_buffer);
        self.next_buffer += 1;
        self.buffers.push(BufferDesc {
            id,
            name: name.to_string(),
            bytes,
            resident,
        });
        id
    }

    /// Declares a task and returns its id for dependency wiring.
    #[allow(clippy::too_many_arguments)]
    pub fn task(
        &mut self,
        stage: &str,
        template: &str,
        level: ComputeLevel,
        est_duration: SimDuration,
        inputs: Vec<BufferId>,
        outputs: Vec<BufferId>,
        deps: Vec<TaskId>,
    ) -> TaskId {
        let id = TaskId(self.next_task);
        self.next_task += 1;
        self.tasks.push(Task {
            id,
            job: self.job,
            stage: Symbol::intern(stage),
            template: Symbol::intern(template),
            level,
            est_duration,
            inputs,
            outputs,
            deps,
        });
        id
    }

    /// Finalizes the job.
    ///
    /// # Panics
    ///
    /// Panics if a task references an undeclared buffer or dependency, or if
    /// the dependency graph has a forward reference to a later task in the
    /// same job that would deadlock dispatch (self-cycles).
    #[must_use]
    pub fn build(self) -> Job {
        for t in &self.tasks {
            for b in t.inputs.iter().chain(&t.outputs) {
                assert!(
                    self.buffers.iter().any(|d| d.id == *b),
                    "JobBuilder: {} references undeclared {b}",
                    t.id
                );
            }
            for d in &t.deps {
                assert!(
                    self.tasks.iter().any(|o| o.id == *d),
                    "JobBuilder: {} depends on undeclared {d} (cross-job deps are wired at submit time)",
                    t.id
                );
                assert!(*d != t.id, "JobBuilder: {} depends on itself", t.id);
            }
        }
        Job {
            id: self.job,
            tasks: self.tasks,
            buffers: self.buffers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_threads_ids() {
        let mut b = JobBuilder::new(3);
        let buf = b.buffer("x", 64, Some(ComputeLevel::OnChip));
        let t = b.task(
            "s",
            "K",
            ComputeLevel::OnChip,
            SimDuration::from_ms(1),
            vec![buf],
            vec![],
            vec![],
        );
        let job = b.build();
        assert_eq!(job.id, JobId(3));
        assert_eq!(job.tasks[0].id, t);
        assert_eq!(job.buffers[0].id, buf);
        // Namespaced under the job id.
        assert_eq!(t.0 >> 20, 3);
    }

    #[test]
    fn different_jobs_never_collide() {
        let mut a = JobBuilder::new(1);
        let mut b = JobBuilder::new(2);
        let ta = a.task(
            "s",
            "K",
            ComputeLevel::OnChip,
            SimDuration::ZERO,
            vec![],
            vec![],
            vec![],
        );
        let tb = b.task(
            "s",
            "K",
            ComputeLevel::OnChip,
            SimDuration::ZERO,
            vec![],
            vec![],
            vec![],
        );
        assert_ne!(ta, tb);
    }

    #[test]
    #[should_panic(expected = "undeclared")]
    fn undeclared_buffer_rejected() {
        let mut b = JobBuilder::new(0);
        b.task(
            "s",
            "K",
            ComputeLevel::OnChip,
            SimDuration::ZERO,
            vec![BufferId(999)],
            vec![],
            vec![],
        );
        let _ = b.build();
    }

    #[test]
    #[should_panic(expected = "depends on itself")]
    fn self_dependency_rejected() {
        let mut b = JobBuilder::new(0);
        // The first task id under job 0 is 0 << 20 = 0.
        b.task(
            "s",
            "K",
            ComputeLevel::OnChip,
            SimDuration::ZERO,
            vec![],
            vec![],
            vec![TaskId(0)],
        );
        let _ = b.build();
    }

    #[test]
    fn ids_display() {
        assert_eq!(JobId(5).to_string(), "job5");
        assert_eq!(TaskId(7).to_string(), "task7");
        assert_eq!(BufferId(2).to_string(), "buf2");
    }
}
