//! The GAM state machine: scheduling queue, progress table, buffer table.

use crate::task::{BufferDesc, BufferId, Job, JobId, TaskId, TaskState};
use reach_accel::{AcceleratorId, ComputeLevel};
use reach_sim::{SimDuration, SimTime};
use std::collections::{BTreeMap, BTreeSet};

/// Identifies an in-flight GAM-initiated DMA transfer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DmaId(pub u64);

/// GAM timing parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GamConfig {
    /// Latency of an ACC command packet from the GAM to an accelerator.
    pub command_latency: SimDuration,
    /// Round-trip latency of a status-request packet.
    pub poll_latency: SimDuration,
    /// Minimum interval between consecutive polls of the same task, so an
    /// underestimated task does not flood the interconnect.
    pub min_poll_interval: SimDuration,
}

impl Default for GamConfig {
    fn default() -> Self {
        GamConfig {
            command_latency: SimDuration::from_ns(500),
            poll_latency: SimDuration::from_us(2),
            min_poll_interval: SimDuration::from_us(50),
        }
    }
}

/// What the GAM asks the machine to do next.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GamAction {
    /// Launch `task` on accelerator `acc` (the machine computes the actual
    /// duration from the kernel model and data paths).
    Dispatch {
        /// Target accelerator slot.
        acc: AcceleratorId,
        /// Task to launch.
        task: TaskId,
    },
    /// Move a buffer between levels (forced write-backs and PCIe transfers
    /// are billed by the machine).
    Dma {
        /// Transfer id, echoed back via [`Gam::dma_finished`].
        id: DmaId,
        /// The buffer being moved.
        buffer: BufferId,
        /// Payload size.
        bytes: u64,
        /// Source level.
        from: ComputeLevel,
        /// Destination level.
        to: ComputeLevel,
        /// The first consumer task waiting on this transfer (for stage
        /// attribution in the machine's accounting).
        dest: TaskId,
    },
    /// Send a status-request packet for `task` at time `at`.
    Poll {
        /// Accelerator being polled.
        acc: AcceleratorId,
        /// Task being polled.
        task: TaskId,
        /// When the packet should be sent (estimated completion).
        at: SimTime,
    },
    /// Interrupt the host: `job` is complete.
    HostInterrupt {
        /// The finished job.
        job: JobId,
    },
}

/// Aggregate GAM statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GamStats {
    /// Jobs submitted.
    pub jobs_submitted: u64,
    /// Jobs completed (host interrupts raised).
    pub jobs_completed: u64,
    /// Tasks dispatched.
    pub dispatches: u64,
    /// Status polls sent.
    pub polls_sent: u64,
    /// Polls that found the task still running.
    pub polls_missed: u64,
    /// DMA transfers initiated.
    pub dmas: u64,
    /// Bytes moved by GAM-initiated DMA.
    pub dma_bytes: u64,
    /// Job arrivals turned away by admission control before submission
    /// (never entered the GAM's task tables).
    pub jobs_rejected: u64,
}

impl GamStats {
    /// Accumulates `other` into `self`, field by field — the reduction a
    /// fleet aggregator applies over per-machine GAM counters.
    pub fn merge(&mut self, other: &GamStats) {
        self.jobs_submitted += other.jobs_submitted;
        self.jobs_completed += other.jobs_completed;
        self.dispatches += other.dispatches;
        self.polls_sent += other.polls_sent;
        self.polls_missed += other.polls_missed;
        self.dmas += other.dmas;
        self.dma_bytes += other.dma_bytes;
        self.jobs_rejected += other.jobs_rejected;
    }
}

struct TaskEntry {
    task: crate::task::Task,
    state: TaskState,
    unmet_deps: usize,
    pending_inputs: usize,
    assigned: Option<AcceleratorId>,
}

struct BufferEntry {
    desc: BufferDesc,
    copies: BTreeSet<ComputeLevel>,
}

/// The Global Accelerator Manager.
///
/// Drive it with notifications; execute the [`GamAction`]s it returns. See
/// the crate docs for the protocol and `reach::Machine` for the production
/// driver. The state machine is deterministic: same notification sequence,
/// same actions.
///
/// # Example
///
/// ```
/// use reach_gam::{Gam, GamConfig, GamAction, JobBuilder};
/// use reach_accel::{AcceleratorId, ComputeLevel};
/// use reach_sim::SimDuration;
///
/// let mut gam = Gam::new(GamConfig::default());
/// gam.register_instance(AcceleratorId { level: ComputeLevel::OnChip, index: 0 });
/// let mut job = JobBuilder::new(0);
/// let t = job.task("w", "K", ComputeLevel::OnChip, SimDuration::from_ms(1),
///                  vec![], vec![], vec![]);
/// let actions = gam.submit_job(job.build());
/// assert!(matches!(actions[0], GamAction::Dispatch { task, .. } if task == t));
/// let done = gam.complete(t);
/// assert!(matches!(done[0], GamAction::HostInterrupt { .. }));
/// ```
pub struct Gam {
    config: GamConfig,
    buffers: BTreeMap<BufferId, BufferEntry>,
    tasks: BTreeMap<TaskId, TaskEntry>,
    dependents: BTreeMap<TaskId, Vec<TaskId>>,
    queues: BTreeMap<ComputeLevel, BTreeSet<TaskId>>,
    instances: BTreeMap<AcceleratorId, Option<TaskId>>,
    jobs_remaining: BTreeMap<JobId, usize>,
    dma_waiters: BTreeMap<(BufferId, ComputeLevel), Vec<TaskId>>,
    dma_inflight: BTreeMap<DmaId, (BufferId, ComputeLevel)>,
    next_dma: u64,
    stats: GamStats,
}

impl Gam {
    /// Creates a GAM with no registered accelerators.
    #[must_use]
    pub fn new(config: GamConfig) -> Self {
        Gam {
            config,
            buffers: BTreeMap::new(),
            tasks: BTreeMap::new(),
            dependents: BTreeMap::new(),
            queues: BTreeMap::new(),
            instances: BTreeMap::new(),
            jobs_remaining: BTreeMap::new(),
            dma_waiters: BTreeMap::new(),
            dma_inflight: BTreeMap::new(),
            next_dma: 0,
            stats: GamStats::default(),
        }
    }

    /// The GAM configuration.
    #[must_use]
    pub fn config(&self) -> &GamConfig {
        &self.config
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &GamStats {
        &self.stats
    }

    /// Registers an accelerator slot (done once during ReACH configuration).
    ///
    /// # Panics
    ///
    /// Panics on duplicate registration.
    pub fn register_instance(&mut self, acc: AcceleratorId) {
        let prev = self.instances.insert(acc, None);
        assert!(prev.is_none(), "Gam: accelerator {acc} registered twice");
    }

    /// Number of registered instances at `level`.
    #[must_use]
    pub fn instances_at(&self, level: ComputeLevel) -> usize {
        self.instances.keys().filter(|a| a.level == level).count()
    }

    /// Current state of a task, if known.
    #[must_use]
    pub fn task_state(&self, task: TaskId) -> Option<TaskState> {
        self.tasks.get(&task).map(|e| e.state)
    }

    /// Tasks ready at `level` but waiting for a free instance — the
    /// dispatch backlog a telemetry gauge samples.
    #[must_use]
    pub fn queue_depth(&self, level: ComputeLevel) -> usize {
        self.queues.get(&level).map_or(0, BTreeSet::len)
    }

    /// Jobs submitted but not yet completed — the backlog an admission
    /// queue bounds.
    #[must_use]
    pub fn jobs_in_flight(&self) -> usize {
        (self.stats.jobs_submitted - self.stats.jobs_completed) as usize
    }

    /// Records a job arrival turned away by admission control. The job is
    /// never submitted; only the rejection counter moves.
    pub fn reject_job(&mut self) {
        self.stats.jobs_rejected += 1;
    }

    /// Submits a job: allocates buffer-table entries, threads dependencies,
    /// and returns the initial dispatch/DMA actions.
    ///
    /// # Panics
    ///
    /// Panics if the job references an unknown cross-job dependency, reuses
    /// a task id, or targets a level with no registered accelerator.
    pub fn submit_job(&mut self, job: Job) -> Vec<GamAction> {
        self.stats.jobs_submitted += 1;
        let mut actions = Vec::new();
        for desc in &job.buffers {
            let mut copies = BTreeSet::new();
            if let Some(level) = desc.resident {
                copies.insert(level);
            }
            self.buffers.insert(
                desc.id,
                BufferEntry {
                    desc: desc.clone(),
                    copies,
                },
            );
        }
        self.jobs_remaining.insert(job.id, job.tasks.len());

        // First pass: create entries so intra-job forward deps resolve.
        for task in &job.tasks {
            assert!(
                self.instances.keys().any(|a| a.level == task.level),
                "Gam: {} targets {} but no accelerator is registered there",
                task.id,
                task.level
            );
            let unmet = task
                .deps
                .iter()
                .filter(|d| {
                    let state = self
                        .tasks
                        .get(d)
                        .map(|e| e.state)
                        .or_else(|| {
                            job.tasks
                                .iter()
                                .any(|t| t.id == **d)
                                .then_some(TaskState::Blocked)
                        })
                        .unwrap_or_else(|| panic!("Gam: {} depends on unknown {d}", task.id));
                    state != TaskState::Done
                })
                .count();
            let prev = self.tasks.insert(
                task.id,
                TaskEntry {
                    task: task.clone(),
                    state: TaskState::Blocked,
                    unmet_deps: unmet,
                    pending_inputs: 0,
                    assigned: None,
                },
            );
            assert!(prev.is_none(), "Gam: duplicate task id {}", task.id);
            for d in &task.deps {
                self.dependents.entry(*d).or_default().push(task.id);
            }
        }

        // Second pass: tasks with no unmet deps start their input transfers.
        for task in &job.tasks {
            if self.tasks[&task.id].unmet_deps == 0 {
                actions.extend(self.stage_inputs(task.id));
            }
        }
        actions.extend(self.try_dispatch());
        actions
    }

    /// Requests DMAs for every input of `task` that is not yet resident at
    /// its level; marks the task Ready if nothing needs to move.
    fn stage_inputs(&mut self, task_id: TaskId) -> Vec<GamAction> {
        let entry = &self.tasks[&task_id];
        let level = entry.task.level;
        let inputs = entry.task.inputs.clone();
        let mut actions = Vec::new();
        let mut pending = 0;
        for buf in inputs {
            let b = self
                .buffers
                .get(&buf)
                .unwrap_or_else(|| panic!("Gam: {task_id} reads unknown {buf}"));
            if b.copies.contains(&level) {
                continue;
            }
            let from = *b.copies.iter().next().unwrap_or_else(|| {
                panic!(
                    "Gam: {task_id} needs {buf} but no valid copy exists (producer not finished?)"
                )
            });
            pending += 1;
            let key = (buf, level);
            let waiters = self.dma_waiters.entry(key).or_default();
            waiters.push(task_id);
            if waiters.len() == 1 {
                // First consumer triggers the transfer; the rest share it.
                let id = DmaId(self.next_dma);
                self.next_dma += 1;
                self.dma_inflight.insert(id, key);
                self.stats.dmas += 1;
                self.stats.dma_bytes += b.desc.bytes;
                actions.push(GamAction::Dma {
                    id,
                    buffer: buf,
                    bytes: b.desc.bytes,
                    from,
                    to: level,
                    dest: task_id,
                });
            }
        }
        let entry = self.tasks.get_mut(&task_id).expect("task exists");
        entry.pending_inputs = pending;
        if pending == 0 {
            entry.state = TaskState::Ready;
            self.queues.entry(level).or_default().insert(task_id);
        }
        actions
    }

    /// Fills every free accelerator from its level queue.
    fn try_dispatch(&mut self) -> Vec<GamAction> {
        let mut actions = Vec::new();
        let free: Vec<AcceleratorId> = self
            .instances
            .iter()
            .filter(|(_, t)| t.is_none())
            .map(|(a, _)| *a)
            .collect();
        for acc in free {
            let Some(queue) = self.queues.get_mut(&acc.level) else {
                continue;
            };
            let Some(task) = queue.pop_first() else {
                continue;
            };
            self.instances.insert(acc, Some(task));
            let entry = self.tasks.get_mut(&task).expect("queued task exists");
            entry.state = TaskState::Running;
            entry.assigned = Some(acc);
            self.stats.dispatches += 1;
            actions.push(GamAction::Dispatch { acc, task });
        }
        actions
    }

    /// The machine reports that `task` started on its accelerator at
    /// `started`; for near-memory / near-storage tasks the GAM schedules the
    /// first status poll at the estimated completion.
    #[must_use]
    pub fn task_started(&mut self, task: TaskId, started: SimTime) -> Vec<GamAction> {
        let entry = &self.tasks[&task];
        assert_eq!(entry.state, TaskState::Running, "Gam: {task} not running");
        let acc = entry.assigned.expect("running task has an accelerator");
        if acc.level == ComputeLevel::OnChip {
            // Coherent: completion arrives as a direct notification.
            return Vec::new();
        }
        self.stats.polls_sent += 1;
        vec![GamAction::Poll {
            acc,
            task,
            at: started + self.config.command_latency + entry.task.est_duration,
        }]
    }

    /// A status poll came back "not finished"; the progress table records the
    /// new wait time and another poll is scheduled.
    #[must_use]
    pub fn poll_missed(
        &mut self,
        task: TaskId,
        now: SimTime,
        remaining: SimDuration,
    ) -> Vec<GamAction> {
        let entry = &self.tasks[&task];
        assert_eq!(
            entry.state,
            TaskState::Running,
            "Gam: polled {task} not running"
        );
        let acc = entry.assigned.expect("running task has an accelerator");
        self.stats.polls_missed += 1;
        self.stats.polls_sent += 1;
        let wait = remaining.max(self.config.min_poll_interval);
        vec![GamAction::Poll {
            acc,
            task,
            at: now + wait + self.config.poll_latency,
        }]
    }

    /// The machine observed `task` complete (directly for on-chip, via a
    /// successful poll otherwise). Outputs become resident, dependents
    /// unblock, the instance frees, and the host is interrupted when the
    /// whole job is done.
    #[must_use]
    pub fn complete(&mut self, task: TaskId) -> Vec<GamAction> {
        let (level, outputs, job, acc) = {
            let entry = self.tasks.get_mut(&task).expect("completing unknown task");
            assert_eq!(entry.state, TaskState::Running, "Gam: {task} not running");
            entry.state = TaskState::Done;
            (
                entry.task.level,
                entry.task.outputs.clone(),
                entry.task.job,
                entry
                    .assigned
                    .take()
                    .expect("running task has an accelerator"),
            )
        };
        self.instances.insert(acc, None);
        for buf in outputs {
            self.buffers
                .get_mut(&buf)
                .expect("output buffer declared")
                .copies
                .insert(level);
        }

        let mut actions = Vec::new();
        for dep in self.dependents.remove(&task).unwrap_or_default() {
            let e = self.tasks.get_mut(&dep).expect("dependent exists");
            e.unmet_deps -= 1;
            if e.unmet_deps == 0 {
                actions.extend(self.stage_inputs(dep));
            }
        }

        let remaining = self.jobs_remaining.get_mut(&job).expect("job tracked");
        *remaining -= 1;
        if *remaining == 0 {
            self.stats.jobs_completed += 1;
            actions.push(GamAction::HostInterrupt { job });
        }
        actions.extend(self.try_dispatch());
        actions
    }

    /// A GAM-initiated DMA finished: the destination copy is valid and any
    /// waiting tasks move toward Ready.
    #[must_use]
    pub fn dma_finished(&mut self, id: DmaId) -> Vec<GamAction> {
        let (buffer, to) = self
            .dma_inflight
            .remove(&id)
            .expect("Gam: unknown DMA completion");
        self.buffers
            .get_mut(&buffer)
            .expect("DMA of known buffer")
            .copies
            .insert(to);
        let waiters = self.dma_waiters.remove(&(buffer, to)).unwrap_or_default();
        let mut actions = Vec::new();
        for task in waiters {
            let e = self.tasks.get_mut(&task).expect("waiter exists");
            e.pending_inputs -= 1;
            if e.pending_inputs == 0 && e.unmet_deps == 0 {
                e.state = TaskState::Ready;
                self.queues.entry(e.task.level).or_default().insert(task);
            }
        }
        actions.extend(self.try_dispatch());
        actions
    }

    /// `true` when no task is queued, staged or running — used by the
    /// machine loop to detect quiescence.
    #[must_use]
    pub fn idle(&self) -> bool {
        self.tasks.values().all(|e| e.state == TaskState::Done)
    }
}

impl std::fmt::Debug for Gam {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gam")
            .field("tasks", &self.tasks.len())
            .field("instances", &self.instances.len())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::JobBuilder;

    fn ms(n: u64) -> SimDuration {
        SimDuration::from_ms(n)
    }

    fn gam_with(levels: &[(ComputeLevel, usize)]) -> Gam {
        let mut g = Gam::new(GamConfig::default());
        for &(level, n) in levels {
            for index in 0..n {
                g.register_instance(AcceleratorId { level, index });
            }
        }
        g
    }

    /// A two-stage job: on-chip producer feeding a near-storage consumer.
    fn pipeline_job(id: u64) -> (Job, TaskId, TaskId, BufferId) {
        let mut b = JobBuilder::new(id);
        let feats = b.buffer("features", 6144, None);
        let t1 = b.task(
            "fe",
            "CNN",
            ComputeLevel::OnChip,
            ms(100),
            vec![],
            vec![feats],
            vec![],
        );
        let t2 = b.task(
            "rr",
            "KNN",
            ComputeLevel::NearStorage,
            ms(80),
            vec![feats],
            vec![],
            vec![t1],
        );
        (b.build(), t1, t2, feats)
    }

    #[test]
    fn submit_dispatches_unblocked_tasks_only() {
        let mut g = gam_with(&[(ComputeLevel::OnChip, 1), (ComputeLevel::NearStorage, 1)]);
        let (job, t1, t2, _) = pipeline_job(0);
        let actions = g.submit_job(job);
        assert_eq!(
            actions,
            vec![GamAction::Dispatch {
                acc: AcceleratorId {
                    level: ComputeLevel::OnChip,
                    index: 0
                },
                task: t1
            }]
        );
        assert_eq!(g.task_state(t2), Some(TaskState::Blocked));
    }

    #[test]
    fn completion_stages_dependent_inputs_via_dma() {
        let mut g = gam_with(&[(ComputeLevel::OnChip, 1), (ComputeLevel::NearStorage, 1)]);
        let (job, t1, t2, feats) = pipeline_job(0);
        g.submit_job(job);
        let actions = g.complete(t1);
        // The features buffer is on-chip; t2 needs it near-storage -> DMA.
        match &actions[0] {
            GamAction::Dma {
                buffer,
                from,
                to,
                bytes,
                ..
            } => {
                assert_eq!(*buffer, feats);
                assert_eq!(*from, ComputeLevel::OnChip);
                assert_eq!(*to, ComputeLevel::NearStorage);
                assert_eq!(*bytes, 6144);
            }
            other => panic!("expected DMA, got {other:?}"),
        }
        assert_eq!(g.task_state(t2), Some(TaskState::Blocked));
        // DMA completion makes t2 dispatchable.
        let id = match &actions[0] {
            GamAction::Dma { id, .. } => *id,
            _ => unreachable!(),
        };
        let actions = g.dma_finished(id);
        assert!(matches!(actions[0], GamAction::Dispatch { task, .. } if task == t2));
    }

    #[test]
    fn job_completion_interrupts_host() {
        let mut g = gam_with(&[(ComputeLevel::OnChip, 1), (ComputeLevel::NearStorage, 1)]);
        let (job, t1, t2, _) = pipeline_job(0);
        let jid = job.id;
        g.submit_job(job);
        let a1 = g.complete(t1);
        let dma = a1
            .iter()
            .find_map(|a| match a {
                GamAction::Dma { id, .. } => Some(*id),
                _ => None,
            })
            .unwrap();
        let _ = g.dma_finished(dma);
        let a2 = g.complete(t2);
        assert!(a2.contains(&GamAction::HostInterrupt { job: jid }));
        assert!(g.idle());
        assert_eq!(g.stats().jobs_completed, 1);
    }

    #[test]
    fn offchip_tasks_get_polled_onchip_do_not() {
        let mut g = gam_with(&[(ComputeLevel::OnChip, 1), (ComputeLevel::NearStorage, 1)]);
        let (job, t1, t2, _) = pipeline_job(0);
        g.submit_job(job);
        assert!(g.task_started(t1, SimTime::ZERO).is_empty());
        let a = g.complete(t1);
        let dma = a
            .iter()
            .find_map(|x| match x {
                GamAction::Dma { id, .. } => Some(*id),
                _ => None,
            })
            .unwrap();
        let _ = g.dma_finished(dma);
        let started = SimTime::from_ps(1_000);
        let polls = g.task_started(t2, started);
        match polls.as_slice() {
            [GamAction::Poll { task, at, .. }] => {
                assert_eq!(*task, t2);
                // est 80 ms + command latency.
                assert!(*at >= started + ms(80));
            }
            other => panic!("expected poll, got {other:?}"),
        }
    }

    #[test]
    fn missed_poll_reschedules_with_new_wait() {
        let mut g = gam_with(&[(ComputeLevel::NearMemory, 1)]);
        let mut b = JobBuilder::new(0);
        let t = b.task(
            "s",
            "K",
            ComputeLevel::NearMemory,
            ms(10),
            vec![],
            vec![],
            vec![],
        );
        g.submit_job(b.build());
        let _ = g.task_started(t, SimTime::ZERO);
        let now = SimTime::ZERO + ms(10);
        let again = g.poll_missed(t, now, ms(3));
        match again.as_slice() {
            [GamAction::Poll { at, .. }] => assert!(*at >= now + ms(3)),
            other => panic!("expected poll, got {other:?}"),
        }
        assert_eq!(g.stats().polls_missed, 1);
        assert_eq!(g.stats().polls_sent, 2);
    }

    #[test]
    fn cross_job_pipelining_dispatches_next_job_early() {
        // Two identical jobs; the second's on-chip task must dispatch as
        // soon as the on-chip accelerator frees, not when job 0 finishes.
        let mut g = gam_with(&[(ComputeLevel::OnChip, 1), (ComputeLevel::NearStorage, 1)]);
        let (job0, t1a, _t2a, _) = pipeline_job(0);
        let (job1, t1b, _t2b, _) = pipeline_job(1);
        g.submit_job(job0);
        let a = g.submit_job(job1);
        // Job 1's CNN waits: the single on-chip instance is busy.
        assert!(a.is_empty());
        let actions = g.complete(t1a);
        // Completing job 0's CNN both stages job 0's DMA and dispatches job
        // 1's CNN on the freed instance.
        assert!(actions
            .iter()
            .any(|x| matches!(x, GamAction::Dispatch { task, .. } if *task == t1b)));
        assert_eq!(g.stats().dispatches, 2);
    }

    #[test]
    fn broadcast_buffer_shares_one_dma_per_level() {
        // One producer, two near-storage consumers of the same buffer:
        // only one DMA to the near-storage level must be issued.
        let mut g = gam_with(&[(ComputeLevel::OnChip, 1), (ComputeLevel::NearStorage, 2)]);
        let mut b = JobBuilder::new(0);
        let feats = b.buffer("features", 4096, None);
        let t1 = b.task(
            "fe",
            "CNN",
            ComputeLevel::OnChip,
            ms(1),
            vec![],
            vec![feats],
            vec![],
        );
        let _k0 = b.task(
            "rr",
            "KNN",
            ComputeLevel::NearStorage,
            ms(1),
            vec![feats],
            vec![],
            vec![t1],
        );
        let _k1 = b.task(
            "rr",
            "KNN",
            ComputeLevel::NearStorage,
            ms(1),
            vec![feats],
            vec![],
            vec![t1],
        );
        g.submit_job(b.build());
        let actions = g.complete(t1);
        let dmas = actions
            .iter()
            .filter(|a| matches!(a, GamAction::Dma { .. }))
            .count();
        assert_eq!(dmas, 1, "broadcast must share the transfer");
        // Both consumers dispatch once the single DMA lands.
        let id = actions
            .iter()
            .find_map(|a| match a {
                GamAction::Dma { id, .. } => Some(*id),
                _ => None,
            })
            .unwrap();
        let after = g.dma_finished(id);
        let dispatches = after
            .iter()
            .filter(|a| matches!(a, GamAction::Dispatch { .. }))
            .count();
        assert_eq!(dispatches, 2);
    }

    #[test]
    fn parallel_instances_drain_one_queue() {
        let mut g = gam_with(&[(ComputeLevel::NearMemory, 4)]);
        let mut b = JobBuilder::new(0);
        for _ in 0..6 {
            b.task(
                "s",
                "G",
                ComputeLevel::NearMemory,
                ms(1),
                vec![],
                vec![],
                vec![],
            );
        }
        let job = b.build();
        let ids: Vec<TaskId> = job.tasks.iter().map(|t| t.id).collect();
        let actions = g.submit_job(job);
        let dispatched = actions
            .iter()
            .filter(|a| matches!(a, GamAction::Dispatch { .. }))
            .count();
        assert_eq!(dispatched, 4, "all four instances fill");
        // Completing one task pulls in the fifth.
        let next = g.complete(ids[0]);
        assert!(next
            .iter()
            .any(|a| matches!(a, GamAction::Dispatch { task, .. } if *task == ids[4])));
    }

    #[test]
    #[should_panic(expected = "no accelerator is registered")]
    fn submit_to_unregistered_level_rejected() {
        let mut g = gam_with(&[(ComputeLevel::OnChip, 1)]);
        let mut b = JobBuilder::new(0);
        b.task(
            "s",
            "K",
            ComputeLevel::NearStorage,
            ms(1),
            vec![],
            vec![],
            vec![],
        );
        g.submit_job(b.build());
    }

    #[test]
    fn prestaged_inputs_skip_dma() {
        let mut g = gam_with(&[(ComputeLevel::NearStorage, 1)]);
        let mut b = JobBuilder::new(0);
        let db = b.buffer("db", 1 << 20, Some(ComputeLevel::NearStorage));
        let t = b.task(
            "rr",
            "KNN",
            ComputeLevel::NearStorage,
            ms(1),
            vec![db],
            vec![],
            vec![],
        );
        let actions = g.submit_job(b.build());
        assert!(matches!(
            actions.as_slice(),
            [GamAction::Dispatch { task, .. }] if *task == t
        ));
        assert_eq!(g.stats().dmas, 0);
    }
}
