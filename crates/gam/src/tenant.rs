//! Two-tenant (and N-tenant) accounting for co-run scenarios.
//!
//! When two workloads share one machine — CBIR serving open-loop traffic
//! while a graph batch job runs — every GAM counter in [`crate::GamStats`]
//! aggregates over both, which is exactly the wrong granularity for asking
//! "who got the dispatch slots?". A [`TenantLedger`] splits the accounting
//! by *job-id range*: each workload submits its jobs from a disjoint id
//! span (the co-run scenarios put CBIR at `0..` and graph batches at
//! `512..`), and the machine attributes dispatches, completions and
//! admission rejections to the span the job id falls in.
//!
//! The ledger is deliberately not part of [`crate::Gam`] itself: the GAM is
//! a hardware block that neither knows nor cares which host process a job
//! came from. Attribution is a *measurement* concern, so it lives beside
//! the stats and is fed by the machine model's event loop.

use crate::task::JobId;

/// One tenant's accumulated share of the GAM's work.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Task dispatches attributed to this tenant's jobs.
    pub dispatches: u64,
    /// Jobs from this tenant that ran to completion.
    pub jobs_completed: u64,
    /// Jobs from this tenant bounced at the admission queue.
    pub jobs_rejected: u64,
}

/// A named, half-open job-id span `[lo, hi)` with its accumulated stats.
#[derive(Clone, Debug)]
struct Tenant {
    name: String,
    lo: u64,
    hi: u64,
    stats: TenantStats,
}

/// Per-tenant attribution of GAM work, keyed by disjoint job-id spans.
///
/// # Example
///
/// ```
/// use reach_gam::{JobId, TenantLedger};
///
/// let mut ledger = TenantLedger::new();
/// ledger.declare("cbir", 0, 512);
/// ledger.declare("graph", 512, 1024);
/// ledger.on_dispatch(JobId(3));
/// ledger.on_complete(JobId(512));
/// assert_eq!(ledger.stats("cbir").unwrap().dispatches, 1);
/// assert_eq!(ledger.stats("graph").unwrap().jobs_completed, 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct TenantLedger {
    tenants: Vec<Tenant>,
}

impl TenantLedger {
    /// An empty ledger: attribution is off until a tenant is declared.
    #[must_use]
    pub fn new() -> Self {
        TenantLedger::default()
    }

    /// True when no tenant has been declared (the common single-workload
    /// case — the machine skips all attribution work).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }

    /// Number of declared tenants.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// Declares a tenant owning job ids `lo..hi`. Returns its index.
    ///
    /// # Panics
    ///
    /// Panics on an empty span, or one that overlaps an existing tenant —
    /// ambiguous attribution would silently double-count.
    pub fn declare(&mut self, name: &str, lo: u64, hi: u64) -> usize {
        assert!(lo < hi, "TenantLedger::declare: empty span {lo}..{hi}");
        for t in &self.tenants {
            assert!(
                hi <= t.lo || lo >= t.hi,
                "TenantLedger::declare: span {lo}..{hi} overlaps tenant '{}' ({}..{})",
                t.name,
                t.lo,
                t.hi
            );
        }
        self.tenants.push(Tenant {
            name: name.to_string(),
            lo,
            hi,
            stats: TenantStats::default(),
        });
        self.tenants.len() - 1
    }

    /// The tenant index owning `job`, if any span covers it.
    #[must_use]
    pub fn index_of(&self, job: JobId) -> Option<usize> {
        self.tenants
            .iter()
            .position(|t| t.lo <= job.0 && job.0 < t.hi)
    }

    /// Tenant name at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn name(&self, index: usize) -> &str {
        &self.tenants[index].name
    }

    /// Stats for the named tenant, if declared.
    #[must_use]
    pub fn stats(&self, name: &str) -> Option<&TenantStats> {
        self.tenants
            .iter()
            .find(|t| t.name == name)
            .map(|t| &t.stats)
    }

    /// Stats at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn stats_at(&self, index: usize) -> &TenantStats {
        &self.tenants[index].stats
    }

    /// Iterates `(name, stats)` in declaration order (deterministic).
    pub fn iter(&self) -> impl Iterator<Item = (&str, &TenantStats)> {
        self.tenants.iter().map(|t| (t.name.as_str(), &t.stats))
    }

    /// Attributes one task dispatch to `job`'s tenant (no-op for jobs
    /// outside every span).
    pub fn on_dispatch(&mut self, job: JobId) {
        if let Some(i) = self.index_of(job) {
            self.tenants[i].stats.dispatches += 1;
        }
    }

    /// Attributes one job completion.
    pub fn on_complete(&mut self, job: JobId) {
        if let Some(i) = self.index_of(job) {
            self.tenants[i].stats.jobs_completed += 1;
        }
    }

    /// Attributes one admission rejection.
    pub fn on_reject(&mut self, job: JobId) {
        if let Some(i) = self.index_of(job) {
            self.tenants[i].stats.jobs_rejected += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribution_follows_spans() {
        let mut l = TenantLedger::new();
        l.declare("a", 0, 4);
        l.declare("b", 512, 516);
        l.on_dispatch(JobId(0));
        l.on_dispatch(JobId(3));
        l.on_dispatch(JobId(513));
        l.on_complete(JobId(1));
        l.on_reject(JobId(515));
        assert_eq!(
            *l.stats("a").unwrap(),
            TenantStats {
                dispatches: 2,
                jobs_completed: 1,
                jobs_rejected: 0
            }
        );
        assert_eq!(
            *l.stats("b").unwrap(),
            TenantStats {
                dispatches: 1,
                jobs_completed: 0,
                jobs_rejected: 1
            }
        );
    }

    #[test]
    fn jobs_outside_every_span_are_ignored() {
        let mut l = TenantLedger::new();
        l.declare("a", 0, 4);
        l.on_dispatch(JobId(100));
        l.on_complete(JobId(100));
        assert_eq!(*l.stats("a").unwrap(), TenantStats::default());
    }

    #[test]
    fn boundaries_are_half_open() {
        let mut l = TenantLedger::new();
        l.declare("a", 0, 4);
        l.declare("b", 4, 8); // hi == next lo is NOT an overlap
        assert_eq!(l.index_of(JobId(3)), Some(0));
        assert_eq!(l.index_of(JobId(4)), Some(1));
        assert_eq!(l.index_of(JobId(8)), None);
    }

    #[test]
    #[should_panic(expected = "overlaps tenant")]
    fn overlapping_spans_rejected() {
        let mut l = TenantLedger::new();
        l.declare("a", 0, 10);
        l.declare("b", 5, 15);
    }

    #[test]
    #[should_panic(expected = "empty span")]
    fn empty_span_rejected() {
        let mut l = TenantLedger::new();
        l.declare("a", 7, 7);
    }

    #[test]
    fn iter_is_declaration_ordered() {
        let mut l = TenantLedger::new();
        l.declare("z", 0, 1);
        l.declare("a", 1, 2);
        let names: Vec<&str> = l.iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["z", "a"]);
    }
}
