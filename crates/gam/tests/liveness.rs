//! GAM liveness and safety under randomized job graphs, driven by a
//! minimal synchronous executor (no machine, no timing): every action is
//! resolved immediately, so these properties hold independent of any
//! substrate behaviour.

use proptest::prelude::*;
use reach_accel::{AcceleratorId, ComputeLevel};
use reach_gam::manager::{Gam, GamAction, GamConfig};
use reach_gam::{Job, JobBuilder, TaskId};
use reach_sim::{SimDuration, SimTime};
use std::collections::{BTreeSet, VecDeque};

fn gam_all_levels(per_level: usize) -> Gam {
    let mut g = Gam::new(GamConfig::default());
    for level in ComputeLevel::ALL {
        for index in 0..per_level {
            g.register_instance(AcceleratorId { level, index });
        }
    }
    g
}

/// Builds a random DAG job: each task may depend on a subset of earlier
/// tasks and may consume buffers produced by them.
fn random_job(spec: &[(u8, Vec<usize>)]) -> (Job, Vec<TaskId>) {
    let mut b = JobBuilder::new(0);
    let mut ids: Vec<TaskId> = Vec::new();
    let mut bufs = Vec::new();
    for (i, (level_pick, dep_picks)) in spec.iter().enumerate() {
        let level = match level_pick % 3 {
            0 => ComputeLevel::OnChip,
            1 => ComputeLevel::NearMemory,
            _ => ComputeLevel::NearStorage,
        };
        let out = b.buffer(&format!("buf{i}"), 4096, None);
        let deps: Vec<TaskId> = dep_picks
            .iter()
            .filter(|&&d| d < i)
            .map(|&d| ids[d])
            .collect();
        let inputs: Vec<_> = dep_picks
            .iter()
            .filter(|&&d| d < i)
            .map(|&d| bufs[d])
            .collect();
        let t = b.task(
            &format!("t{i}"),
            "K",
            level,
            SimDuration::from_us(10),
            inputs,
            vec![out],
            deps,
        );
        ids.push(t);
        bufs.push(out);
    }
    (b.build(), ids)
}

/// Synchronous executor: dispatches complete instantly, DMAs finish
/// instantly, polls are acknowledged as completions. Returns the dispatch
/// order.
fn drive(gam: &mut Gam, initial: Vec<GamAction>) -> Vec<TaskId> {
    let mut queue: VecDeque<GamAction> = initial.into();
    let mut order = Vec::new();
    let mut interrupts = 0;
    let mut steps = 0;
    while let Some(action) = queue.pop_front() {
        steps += 1;
        assert!(steps < 100_000, "executor runaway — GAM livelock?");
        match action {
            GamAction::Dispatch { task, .. } => {
                order.push(task);
                // Started (may emit a poll we ignore by completing directly).
                let _ = gam.task_started(task, SimTime::ZERO);
                queue.extend(gam.complete(task));
            }
            GamAction::Dma { id, .. } => queue.extend(gam.dma_finished(id)),
            GamAction::Poll { .. } => { /* completion already delivered */ }
            GamAction::HostInterrupt { .. } => interrupts += 1,
        }
    }
    assert_eq!(interrupts, 1, "exactly one interrupt per job");
    order
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every random DAG completes, every task dispatches exactly once, and
    /// no task starts before all of its dependencies completed.
    #[test]
    fn random_dags_complete_in_dependency_order(
        spec in proptest::collection::vec(
            (any::<u8>(), proptest::collection::vec(0usize..12, 0..3)),
            1..12
        ),
        per_level in 1usize..4,
    ) {
        let (job, ids) = random_job(&spec);
        let deps: Vec<BTreeSet<TaskId>> = spec
            .iter()
            .enumerate()
            .map(|(i, (_, dp))| {
                dp.iter().filter(|&&d| d < i).map(|&d| ids[d]).collect()
            })
            .collect();

        let mut gam = gam_all_levels(per_level);
        let initial = gam.submit_job(job);
        let order = drive(&mut gam, initial);

        // Exactly once each.
        let unique: BTreeSet<_> = order.iter().collect();
        prop_assert_eq!(unique.len(), ids.len(), "duplicate or missing dispatch");
        prop_assert_eq!(order.len(), ids.len());
        prop_assert!(gam.idle());

        // Dependency order respected.
        for (i, id) in ids.iter().enumerate() {
            let my_pos = order.iter().position(|t| t == id).expect("dispatched");
            for d in &deps[i] {
                let dep_pos = order.iter().position(|t| t == d).expect("dep dispatched");
                prop_assert!(dep_pos < my_pos, "task {i} ran before its dependency");
            }
        }
        prop_assert_eq!(gam.stats().dispatches, ids.len() as u64);
        prop_assert_eq!(gam.stats().jobs_completed, 1);
    }

    /// DMA accounting: every transferred buffer is counted once per
    /// (buffer, destination level), never more.
    #[test]
    fn dma_count_is_bounded_by_cross_level_edges(
        spec in proptest::collection::vec(
            (any::<u8>(), proptest::collection::vec(0usize..12, 0..3)),
            1..12
        ),
    ) {
        let (job, ids) = random_job(&spec);
        // Upper bound: each task contributes at most |inputs| transfers.
        let max_dmas: usize = spec
            .iter()
            .enumerate()
            .map(|(i, (_, dp))| dp.iter().filter(|&&d| d < i).count())
            .sum();
        let _ = ids;
        let mut gam = gam_all_levels(2);
        let initial = gam.submit_job(job);
        drive(&mut gam, initial);
        prop_assert!(gam.stats().dmas as usize <= max_dmas);
    }
}
