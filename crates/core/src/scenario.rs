//! The scenario layer: one trait for every experiment point.
//!
//! A [`Scenario`] is a self-contained, independent unit of simulation — a
//! figure point, an ablation point, an analytics co-run, a sweep point.
//! It knows how to describe the machine it needs (a
//! [`MachineBlueprint`]) and what to do with it (`run`). Because scenarios
//! are `Send + Sync` and instantiate their own machines, any
//! [`ScenarioExecutor`] can fan them out — sequentially here in core, or
//! across threads in `reach-bench`'s `ScenarioRunner` — with byte-identical
//! results: determinism comes from each scenario's own seed, never from
//! execution order.

use crate::blueprint::MachineBlueprint;
use crate::fingerprint::ConfigFingerprint;
use crate::fleet::FleetScenario;
use crate::machine::Machine;
use crate::report::RunReport;

/// Default seed for scenarios that do not choose one
/// (re-exported from `reach_sim::rng`).
pub use reach_sim::rng::DEFAULT_SEED;

/// An independent experiment point.
pub trait Scenario: Send + Sync {
    /// Human-readable identity, e.g. `"fig8/near-memory/x4"`.
    fn label(&self) -> String;

    /// The seed this scenario derives all its randomness from. Executors
    /// never inject randomness, so runs replay bit-for-bit. Defaults to the
    /// process-wide session seed ([`DEFAULT_SEED`] unless `--seed N`
    /// overrode it via [`reach_sim::rng::set_session_seed`]).
    fn seed(&self) -> u64 {
        reach_sim::rng::session_seed()
    }

    /// The machine this scenario runs on.
    fn blueprint(&self) -> MachineBlueprint;

    /// Drives `machine` and reports. The machine is freshly instantiated
    /// from [`Scenario::blueprint`] and owned by this call.
    fn run(&self, machine: &mut Machine) -> RunReport;

    /// Instantiates the blueprint and runs — the one-stop entry point.
    fn execute(&self) -> RunReport {
        let mut machine = self.blueprint().instantiate();
        self.run(&mut machine)
    }

    /// A canonical digest of *everything* that determines this scenario's
    /// [`RunReport`] — machine blueprint, compiled pipeline, batch count,
    /// execution mode, seed — or `None` if the scenario cannot fully
    /// describe itself (e.g. a closure-backed [`FnScenario`]).
    ///
    /// The contract a `Some` return signs up for: two scenarios with equal
    /// fingerprints produce byte-identical reports, so executors may run
    /// one and replay the report for the other. Return `None` unless every
    /// input to `run` is covered; an under-keyed fingerprint silently
    /// poisons any result cache built on it.
    fn config_fingerprint(&self) -> Option<ConfigFingerprint> {
        None
    }
}

/// A labelled report produced by an executor.
#[derive(Clone, Debug)]
pub struct ScenarioResult {
    /// The scenario's [`Scenario::label`].
    pub label: String,
    /// The report its run produced.
    pub report: RunReport,
}

/// Something that can execute a batch of scenarios.
///
/// The contract every executor must honour: results come back **in
/// submission order** and are **identical to sequential execution** —
/// parallelism is an implementation detail, never an observable one.
pub trait ScenarioExecutor {
    /// Executes every scenario and returns their results in submission
    /// order.
    fn run_all(&self, scenarios: Vec<Box<dyn Scenario>>) -> Vec<ScenarioResult>;

    /// Executes a batch of fleet scenarios, in submission order.
    ///
    /// Every fleet expands into one ordinary [`Scenario`] per shard; the
    /// whole expansion is submitted to [`ScenarioExecutor::run_all`] as a
    /// single flat batch, so thread fan-out, shard-level result caching
    /// and fingerprint harvesting all apply unchanged. The per-shard
    /// reports are then reduced by each fleet's
    /// [`FleetScenario::aggregate`] — sequentially, in submission order,
    /// which keeps the output byte-identical at any job count.
    fn run_fleets(&self, fleets: Vec<Box<dyn FleetScenario>>) -> Vec<ScenarioResult> {
        let mut batch: Vec<Box<dyn Scenario>> = Vec::new();
        let mut spans = Vec::with_capacity(fleets.len());
        for fleet in &fleets {
            let start = batch.len();
            let shards = fleet.fleet().shards();
            for shard in 0..shards {
                batch.push(fleet.shard_scenario(shard));
            }
            spans.push(start..batch.len());
        }
        let mut results = self.run_all(batch).into_iter();
        fleets
            .iter()
            .zip(spans)
            .map(|(fleet, span)| {
                let reports: Vec<RunReport> = span
                    .map(|_| {
                        results
                            .next()
                            .expect("run_all returns one result per scenario")
                            .report
                    })
                    .collect();
                ScenarioResult {
                    label: fleet.label(),
                    report: fleet.aggregate(reports),
                }
            })
            .collect()
    }
}

/// The trivial executor: runs scenarios one after another on the calling
/// thread. The reference implementation all parallel executors must match.
#[derive(Clone, Copy, Debug, Default)]
pub struct SequentialExecutor;

impl ScenarioExecutor for SequentialExecutor {
    fn run_all(&self, scenarios: Vec<Box<dyn Scenario>>) -> Vec<ScenarioResult> {
        scenarios
            .iter()
            .map(|s| ScenarioResult {
                label: s.label(),
                report: s.execute(),
            })
            .collect()
    }
}

/// A closure-backed scenario for one-off experiment points.
pub struct FnScenario<F> {
    label: String,
    seed: u64,
    blueprint: MachineBlueprint,
    fingerprint: Option<ConfigFingerprint>,
    body: F,
}

impl<F> FnScenario<F>
where
    F: Fn(&mut Machine) -> RunReport + Send + Sync,
{
    /// A scenario running `body` on a machine built from `blueprint`.
    pub fn new(label: impl Into<String>, blueprint: MachineBlueprint, body: F) -> Self {
        FnScenario {
            label: label.into(),
            seed: reach_sim::rng::session_seed(),
            blueprint,
            fingerprint: None,
            body,
        }
    }

    /// Overrides the seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Declares a [`Scenario::config_fingerprint`] for this closure.
    ///
    /// The executor cannot see inside `body`, so this is a *vouch*: the
    /// caller asserts that `fingerprint` covers every input the closure's
    /// report depends on (blueprint, pipelines, batch counts, seed, …) —
    /// exactly the contract `config_fingerprint` documents. Hand-compose
    /// the digest from the same fingerprint plumbing the structural
    /// scenario types use; an under-keyed vouch silently poisons any
    /// result cache, which with a persistent tier outlives the process.
    #[must_use]
    pub fn with_fingerprint(mut self, fingerprint: ConfigFingerprint) -> Self {
        self.fingerprint = Some(fingerprint);
        self
    }
}

impl<F> Scenario for FnScenario<F>
where
    F: Fn(&mut Machine) -> RunReport + Send + Sync,
{
    fn label(&self) -> String {
        self.label.clone()
    }

    fn seed(&self) -> u64 {
        self.seed
    }

    fn blueprint(&self) -> MachineBlueprint {
        self.blueprint.clone()
    }

    fn run(&self, machine: &mut Machine) -> RunReport {
        (self.body)(machine)
    }

    fn config_fingerprint(&self) -> Option<ConfigFingerprint> {
        self.fingerprint
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{ExecMode, Level, Pipeline, ReachConfig};
    use crate::work::TaskWork;

    fn demo_scenario(batches: usize) -> impl Scenario {
        let mut cfg = ReachConfig::new();
        let acc = cfg.register_acc("VGG16-VU9P", Level::OnChip);
        let mut pipeline = Pipeline::new(cfg.build().expect("demo config"));
        pipeline.call(acc, TaskWork::compute(1_000_000_000), "fe");
        FnScenario::new(
            format!("demo/x{batches}"),
            MachineBlueprint::paper(),
            move |machine| pipeline.run_mode(machine, batches, ExecMode::Pipelined),
        )
    }

    #[test]
    fn execute_builds_and_runs() {
        let scenario = demo_scenario(2);
        let report = scenario.execute();
        assert_eq!(report.jobs, 2);
        assert_eq!(scenario.label(), "demo/x2");
        assert_eq!(scenario.seed(), DEFAULT_SEED);
    }

    #[test]
    fn sequential_executor_preserves_order() {
        let batch: Vec<Box<dyn Scenario>> = vec![
            Box::new(demo_scenario(1)),
            Box::new(demo_scenario(3)),
            Box::new(demo_scenario(2)),
        ];
        let results = SequentialExecutor.run_all(batch);
        let labels: Vec<_> = results.iter().map(|r| r.label.as_str()).collect();
        assert_eq!(labels, ["demo/x1", "demo/x3", "demo/x2"]);
        assert_eq!(results[1].report.jobs, 3);
    }
}
