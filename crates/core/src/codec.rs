//! Versioned binary serialization of [`RunReport`] — the payload format of
//! the persistent result cache.
//!
//! The in-memory `ResultCache` in `reach-bench` rests on one invariant:
//! equal [`crate::ConfigFingerprint`]s produce byte-identical reports. To
//! extend that across *processes* the report must survive a trip through
//! disk bit-exactly, so this codec is deliberately dumb: little-endian
//! fixed-width integers, length-prefixed UTF-8 strings, and `f64`s by bit
//! pattern (`to_bits`/`from_bits` — never a decimal detour). No `serde`,
//! matching the workspace's no-dependency discipline.
//!
//! Two safety properties the disk cache depends on:
//!
//! * **Decoding never panics.** Every read is bounds-checked, every length
//!   is validated against the remaining bytes before allocation, and
//!   values with internal invariants (energy cells must be finite and
//!   non-negative, stage windows must not be reversed) are checked before
//!   they reach constructors that would `assert!`. Corrupt input yields a
//!   [`CodecError`], which the cache layer treats as a miss.
//! * **Versioning is explicit.** [`REPORT_CODEC_VERSION`] leads every
//!   payload; a report from a different codec revision is rejected, and
//!   the [`simulator_version_stamp`] folds the codec version in so a
//!   store written by one revision is never even opened by another.

use crate::report::{RunReport, StageSummary};
use reach_energy::{EnergyLedger, SystemComponent};
use reach_gam::manager::GamStats;
use reach_sim::{
    Fingerprint, FingerprintBuilder, MetricValue, MetricsSnapshot, SimDuration, SimTime,
};
use std::fmt;
use std::sync::OnceLock;

/// Version of the [`RunReport`] wire format. Bump on any layout change —
/// the version is also folded into [`simulator_version_stamp`], so a bump
/// invalidates every persisted store.
pub const REPORT_CODEC_VERSION: u32 = 1;

/// Why a persisted report failed to decode. The disk cache maps every
/// variant to "miss"; the distinctions exist for the warning message and
/// the robustness tests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The payload ended before the structure did.
    Truncated,
    /// The payload leads with an unknown codec version.
    BadVersion(u32),
    /// A tagged union (metric kind, component index) carried an unknown tag.
    BadTag(u8),
    /// A decoded value violates an invariant of the type it feeds
    /// (non-finite energy, reversed stage window, trailing bytes, …).
    Invalid(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "payload truncated"),
            CodecError::BadVersion(v) => {
                write!(f, "codec version {v} (expected {REPORT_CODEC_VERSION})")
            }
            CodecError::BadTag(t) => write!(f, "unknown tag {t}"),
            CodecError::Invalid(what) => write!(f, "invalid payload: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64_bits(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

/// Bounds-checked cursor over an immutable payload.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if n > self.remaining() {
            return Err(CodecError::Truncated);
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64_bits(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// A length-prefixed UTF-8 string. The length is validated against the
    /// remaining bytes *before* any allocation, so a corrupt length can
    /// never trigger a huge reservation.
    fn str(&mut self) -> Result<String, CodecError> {
        let len = self.u64()?;
        if len > self.remaining() as u64 {
            return Err(CodecError::Truncated);
        }
        let bytes = self.take(len as usize)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::Invalid("non-UTF-8 string"))
    }

    /// A sequence length, validated against a conservative lower bound on
    /// per-element size so a corrupt count can never pre-commit to more
    /// elements than the payload could possibly hold.
    fn seq_len(&mut self, min_elem_bytes: usize) -> Result<usize, CodecError> {
        let len = self.u64()?;
        if len > (self.remaining() / min_elem_bytes.max(1)) as u64 {
            return Err(CodecError::Truncated);
        }
        Ok(len as usize)
    }
}

fn component_index(c: SystemComponent) -> u8 {
    SystemComponent::ALL
        .iter()
        .position(|&x| x == c)
        .expect("component in ALL") as u8
}

const METRIC_COUNTER: u8 = 0;
const METRIC_GAUGE: u8 = 1;
const METRIC_HISTOGRAM: u8 = 2;
const METRIC_OCCUPANCY: u8 = 3;

/// Serializes a report. The encoding is canonical: equal reports produce
/// equal bytes, and `encode(decode(bytes)) == bytes` for any bytes this
/// function produced.
#[must_use]
pub fn encode_report(report: &RunReport) -> Vec<u8> {
    let mut out = Vec::with_capacity(512);
    put_u32(&mut out, REPORT_CODEC_VERSION);
    put_u64(&mut out, report.makespan.as_ps());
    put_u64(&mut out, report.jobs);
    put_u64(&mut out, report.job_latency_mean.as_ps());
    put_u64(&mut out, report.job_latency_last.as_ps());

    put_u64(&mut out, report.stages.len() as u64);
    for s in &report.stages {
        put_str(&mut out, &s.name);
        put_u64(&mut out, s.busy.as_ps());
        put_u64(&mut out, s.window.0.since(SimTime::ZERO).as_ps());
        put_u64(&mut out, s.window.1.since(SimTime::ZERO).as_ps());
        put_u64(&mut out, s.tasks);
    }

    put_u64(&mut out, report.ledger.cell_count() as u64);
    for (component, stage, joules) in report.ledger.cells() {
        put_u8(&mut out, component_index(component));
        put_str(&mut out, stage);
        put_f64_bits(&mut out, joules);
    }

    let g = &report.gam;
    for v in [
        g.jobs_submitted,
        g.jobs_completed,
        g.dispatches,
        g.polls_sent,
        g.polls_missed,
        g.dmas,
        g.dma_bytes,
        g.jobs_rejected,
    ] {
        put_u64(&mut out, v);
    }

    put_u64(&mut out, report.completions.len() as u64);
    for &t in &report.completions {
        put_u64(&mut out, t.since(SimTime::ZERO).as_ps());
    }

    put_u64(&mut out, report.metrics.horizon_ps());
    put_u64(&mut out, report.metrics.len() as u64);
    for (name, value) in report.metrics.iter() {
        put_str(&mut out, name);
        match value {
            MetricValue::Counter { value } => {
                put_u8(&mut out, METRIC_COUNTER);
                put_u64(&mut out, *value);
            }
            MetricValue::Gauge { mean, last } => {
                put_u8(&mut out, METRIC_GAUGE);
                put_f64_bits(&mut out, *mean);
                put_f64_bits(&mut out, *last);
            }
            MetricValue::Histogram {
                count,
                mean,
                p50,
                p99,
            } => {
                put_u8(&mut out, METRIC_HISTOGRAM);
                put_u64(&mut out, *count);
                put_f64_bits(&mut out, *mean);
                put_u64(&mut out, *p50);
                put_u64(&mut out, *p99);
            }
            MetricValue::Occupancy { mean, peak } => {
                put_u8(&mut out, METRIC_OCCUPANCY);
                put_f64_bits(&mut out, *mean);
                put_f64_bits(&mut out, *peak);
            }
        }
    }
    out
}

/// Deserializes a report previously produced by [`encode_report`].
///
/// Never panics: corrupt or truncated input (including input that would
/// violate an invariant of the reconstructed types) yields a
/// [`CodecError`].
pub fn decode_report(bytes: &[u8]) -> Result<RunReport, CodecError> {
    let mut r = Reader::new(bytes);
    let version = r.u32()?;
    if version != REPORT_CODEC_VERSION {
        return Err(CodecError::BadVersion(version));
    }
    let makespan = SimDuration::from_ps(r.u64()?);
    let jobs = r.u64()?;
    let job_latency_mean = SimDuration::from_ps(r.u64()?);
    let job_latency_last = SimDuration::from_ps(r.u64()?);

    let n_stages = r.seq_len(8 * 4 + 8)?;
    let mut stages = Vec::with_capacity(n_stages);
    for _ in 0..n_stages {
        let name = r.str()?;
        let busy = SimDuration::from_ps(r.u64()?);
        let w0 = r.u64()?;
        let w1 = r.u64()?;
        if w1 < w0 {
            return Err(CodecError::Invalid("reversed stage window"));
        }
        let tasks = r.u64()?;
        stages.push(StageSummary {
            name,
            busy,
            window: (SimTime::from_ps(w0), SimTime::from_ps(w1)),
            tasks,
        });
    }

    let n_cells = r.seq_len(1 + 8 + 8)?;
    let mut ledger = EnergyLedger::new();
    for _ in 0..n_cells {
        let idx = r.u8()?;
        let component = *SystemComponent::ALL
            .get(idx as usize)
            .ok_or(CodecError::BadTag(idx))?;
        let stage = r.str()?;
        let joules = r.f64_bits()?;
        if !(joules.is_finite() && joules >= 0.0) {
            return Err(CodecError::Invalid("non-finite or negative energy"));
        }
        ledger.add(component, &stage, joules);
    }

    let gam = GamStats {
        jobs_submitted: r.u64()?,
        jobs_completed: r.u64()?,
        dispatches: r.u64()?,
        polls_sent: r.u64()?,
        polls_missed: r.u64()?,
        dmas: r.u64()?,
        dma_bytes: r.u64()?,
        jobs_rejected: r.u64()?,
    };

    let n_completions = r.seq_len(8)?;
    let mut completions = Vec::with_capacity(n_completions);
    for _ in 0..n_completions {
        completions.push(SimTime::from_ps(r.u64()?));
    }

    let horizon_ps = r.u64()?;
    let mut metrics = MetricsSnapshot::new(horizon_ps);
    let n_metrics = r.seq_len(8 + 1 + 8)?;
    for _ in 0..n_metrics {
        let name = r.str()?;
        let value = match r.u8()? {
            METRIC_COUNTER => MetricValue::Counter { value: r.u64()? },
            METRIC_GAUGE => MetricValue::Gauge {
                mean: r.f64_bits()?,
                last: r.f64_bits()?,
            },
            METRIC_HISTOGRAM => MetricValue::Histogram {
                count: r.u64()?,
                mean: r.f64_bits()?,
                p50: r.u64()?,
                p99: r.u64()?,
            },
            METRIC_OCCUPANCY => MetricValue::Occupancy {
                mean: r.f64_bits()?,
                peak: r.f64_bits()?,
            },
            tag => return Err(CodecError::BadTag(tag)),
        };
        metrics.set(&name, value);
    }

    if r.remaining() != 0 {
        return Err(CodecError::Invalid("trailing bytes"));
    }

    Ok(RunReport {
        makespan,
        jobs,
        job_latency_mean,
        job_latency_last,
        stages,
        ledger,
        gam,
        completions,
        metrics,
    })
}

/// A digest identifying *this build of the simulator* — the invalidation
/// key of every persisted result store.
///
/// Equal fingerprints only guarantee equal reports within one simulator
/// revision: a timing-model fix changes what a fingerprint means without
/// changing the fingerprint. Rather than trying to enumerate "which code
/// changes matter", the stamp hashes the workspace version, the codec
/// version, and the running executable's identity (length + modification
/// time) — so *any* rebuild starts a fresh store. Recompiling is cheap to
/// re-cache against; replaying a stale report is never acceptable.
///
/// Computed once per process. If the executable's metadata is unavailable
/// (unusual platforms, deleted-while-running), the stamp degrades to the
/// version fields alone — still safe across released versions, merely less
/// aggressive about dev rebuilds.
#[must_use]
pub fn simulator_version_stamp() -> Fingerprint {
    static STAMP: OnceLock<Fingerprint> = OnceLock::new();
    *STAMP.get_or_init(|| {
        let mut b = FingerprintBuilder::new("reach-version-stamp-v1");
        b.write_str(env!("CARGO_PKG_VERSION"));
        b.write_u64(u64::from(REPORT_CODEC_VERSION));
        if let Ok(meta) = std::env::current_exe().and_then(std::fs::metadata) {
            b.write_u64(meta.len());
            if let Ok(mtime) = meta.modified() {
                if let Ok(since) = mtime.duration_since(std::time::UNIX_EPOCH) {
                    b.write_u64(since.as_secs());
                    b.write_u64(u64::from(since.subsec_nanos()));
                }
            }
        }
        b.finish()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use crate::machine::Machine;
    use crate::work::{DataAccess, TaskWork};
    use reach_accel::ComputeLevel;
    use reach_gam::JobBuilder;

    /// A synthetic report exercising every field and every metric kind.
    fn sample_report() -> RunReport {
        let mut ledger = EnergyLedger::new();
        ledger.add(SystemComponent::Accelerator, "fe", 2.25);
        ledger.add(SystemComponent::Dram, "fe", 0.1 + 0.2); // a non-exact sum
        ledger.add(SystemComponent::Pcie, "rerank", 6.0);
        let mut metrics = MetricsSnapshot::new(500_000);
        metrics.set("a.count", MetricValue::Counter { value: 7 });
        metrics.set(
            "b.depth",
            MetricValue::Gauge {
                mean: 1.5,
                last: 3.0,
            },
        );
        metrics.set(
            "c.lat",
            MetricValue::Histogram {
                count: 4,
                mean: 0.1 + 0.7, // a non-exact double
                p50: 15,
                p99: 31,
            },
        );
        metrics.set(
            "d.occ",
            MetricValue::Occupancy {
                mean: 0.25,
                peak: 2.0,
            },
        );
        RunReport {
            makespan: SimDuration::from_ps(500_000),
            jobs: 2,
            job_latency_mean: SimDuration::from_ps(250_000),
            job_latency_last: SimDuration::from_ps(260_000),
            stages: vec![
                StageSummary {
                    name: "fe".into(),
                    busy: SimDuration::from_ps(100_000),
                    window: (SimTime::from_ps(0), SimTime::from_ps(100_000)),
                    tasks: 2,
                },
                StageSummary {
                    name: "rerank".into(),
                    busy: SimDuration::from_ps(50_000),
                    window: (SimTime::from_ps(100_000), SimTime::from_ps(400_000)),
                    tasks: 1,
                },
            ],
            ledger,
            gam: GamStats {
                jobs_submitted: 2,
                jobs_completed: 2,
                dispatches: 3,
                polls_sent: 5,
                polls_missed: 1,
                dmas: 4,
                dma_bytes: 4096,
                jobs_rejected: 1,
            },
            completions: vec![SimTime::from_ps(250_000), SimTime::from_ps(500_000)],
            metrics,
        }
    }

    /// Bit-exact equality witness: rendered text (covers makespan, stages,
    /// the full energy ledger at display precision), the metrics JSON
    /// (covers every metric at export precision), and the canonical bytes
    /// (covers everything at full precision).
    #[test]
    fn round_trip_is_bit_exact() {
        let report = sample_report();
        let bytes = encode_report(&report);
        let decoded = decode_report(&bytes).expect("decode");
        assert_eq!(decoded.to_string(), report.to_string());
        assert_eq!(decoded.metrics.to_json(), report.metrics.to_json());
        assert_eq!(decoded.completions, report.completions);
        assert_eq!(decoded.gam, report.gam);
        assert_eq!(encode_report(&decoded), bytes, "canonical bytes drifted");
    }

    /// The same witness against a report from a real machine run — the
    /// codec must cover whatever the machine actually emits, not just the
    /// hand-built sample.
    #[test]
    fn round_trips_a_real_machine_report() {
        let mut machine = Machine::new(SystemConfig::paper_table2());
        let mut job = JobBuilder::new(0);
        let t = job.task(
            "demo",
            "VGG16-VU9P",
            ComputeLevel::OnChip,
            SimDuration::from_ms(10),
            vec![],
            vec![],
            vec![],
        );
        machine.submit(
            job.build(),
            [(
                t,
                TaskWork {
                    macs: 1_000_000,
                    access: DataAccess::None,
                    stage_label: None,
                },
            )]
            .into(),
        );
        let report = machine.run();
        let bytes = encode_report(&report);
        let decoded = decode_report(&bytes).expect("decode");
        assert_eq!(decoded.to_string(), report.to_string());
        assert_eq!(decoded.metrics.to_json(), report.metrics.to_json());
        assert_eq!(encode_report(&decoded), bytes);
    }

    /// Decoding any strict prefix fails with an error — never a panic.
    #[test]
    fn every_truncation_errors_cleanly() {
        let bytes = encode_report(&sample_report());
        for len in 0..bytes.len() {
            assert!(
                decode_report(&bytes[..len]).is_err(),
                "prefix of {len} bytes decoded successfully"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode_report(&sample_report());
        bytes.push(0);
        assert_eq!(
            decode_report(&bytes).unwrap_err(),
            CodecError::Invalid("trailing bytes")
        );
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut bytes = encode_report(&sample_report());
        bytes[0] = bytes[0].wrapping_add(1);
        assert!(matches!(
            decode_report(&bytes),
            Err(CodecError::BadVersion(_))
        ));
    }

    /// Corruption that happens to pass structural checks but violates a
    /// type invariant (here: energy must be finite and non-negative, which
    /// `EnergyLedger::add` would otherwise assert on) must surface as an
    /// error, not a panic.
    #[test]
    fn invalid_energy_is_an_error_not_a_panic() {
        let report = sample_report();
        let bytes = encode_report(&report);
        // Locate the first ledger cell's f64 and overwrite it with NaN.
        let needle = 2.25f64.to_bits().to_le_bytes();
        let pos = bytes
            .windows(8)
            .position(|w| w == needle)
            .expect("ledger cell bytes present");
        let mut corrupt = bytes.clone();
        corrupt[pos..pos + 8].copy_from_slice(&f64::NAN.to_bits().to_le_bytes());
        assert_eq!(
            decode_report(&corrupt).unwrap_err(),
            CodecError::Invalid("non-finite or negative energy")
        );
    }

    /// A corrupt sequence length can't cause a huge allocation or a panic:
    /// it is validated against the remaining payload first.
    #[test]
    fn corrupt_length_is_bounded() {
        let bytes = encode_report(&sample_report());
        // The stage-count u64 sits right after version + 4 u64 header
        // fields (4 + 32 bytes in).
        let mut corrupt = bytes.clone();
        corrupt[36..44].copy_from_slice(&u64::MAX.to_le_bytes());
        assert_eq!(decode_report(&corrupt).unwrap_err(), CodecError::Truncated);
    }

    #[test]
    fn version_stamp_is_stable_within_a_process() {
        let a = simulator_version_stamp();
        let b = simulator_version_stamp();
        assert_eq!(a, b);
        // And it is not the trivial empty digest.
        assert_ne!(
            a,
            FingerprintBuilder::new("reach-version-stamp-v1").finish()
        );
    }
}
