//! Canonical configuration fingerprints.
//!
//! A [`ConfigFingerprint`] is a stable 128-bit digest of *everything that
//! determines a simulated outcome*: the machine shape ([`SystemConfig`]
//! down to every timing and capacity knob), the kernel templates, the
//! ReACH configuration (buffers, streams with their patterns and depths,
//! accelerator registrations and argument bindings), the recorded host
//! flow, the batch count, the execution mode and the seed. Two runs with
//! equal fingerprints produce byte-identical [`crate::RunReport`]s — the
//! invariant the sweep-point result cache in `reach-bench` rests on, and
//! the same keying discipline memoized design-space exploration uses in
//! accelerator simulators (PARADE / gem5-Aladdin style sweeps).
//!
//! Fingerprints are built from [`reach_sim::FingerprintBuilder`]'s framed
//! FNV-1a-128 stream, so they are stable across processes, platforms and
//! Rust versions — which is why a golden file of suite fingerprints can
//! live in CI and catch accidental keying changes (a silent keying change
//! would quietly disable, or worse poison, any persisted cache).
//!
//! The encoding convention, per type:
//!
//! * plain-data config structs whose fields are all public and `Debug`
//!   (e.g. [`SystemConfig`] and its nested component configs) are written
//!   via `write_debug` — derived `Debug` lists every field, so a knob
//!   added next year flows into the fingerprint without anyone updating a
//!   hand-written encoder;
//! * structural types with identity semantics (the ReACH config, the
//!   pipeline call sequence) are written field by field under a domain
//!   tag, so the unit tests below can state exactly which flip changes
//!   the digest.

use reach_sim::{Fingerprint, FingerprintBuilder};
use std::fmt;

/// A stable digest of one complete run configuration.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConfigFingerprint(Fingerprint);

impl ConfigFingerprint {
    /// Wraps a finished builder.
    #[must_use]
    pub fn from_builder(builder: FingerprintBuilder) -> Self {
        ConfigFingerprint(builder.finish())
    }

    /// The raw 128-bit value.
    #[must_use]
    pub fn as_u128(self) -> u128 {
        self.0 .0
    }

    /// Rebuilds a fingerprint from its raw 128-bit value — the inverse of
    /// [`ConfigFingerprint::as_u128`], used when decoding persisted cache
    /// keys. Not a hashing entry point: values should originate from a
    /// builder or a previously persisted fingerprint.
    #[must_use]
    pub fn from_u128(raw: u128) -> Self {
        ConfigFingerprint(Fingerprint(raw))
    }

    /// Folds this fingerprint into an outer builder (used when a scenario
    /// fingerprint composes a blueprint digest and a pipeline digest).
    pub fn write_into(self, builder: &mut FingerprintBuilder) {
        builder.write_bytes(&self.as_u128().to_le_bytes());
    }

    /// Parses the 32-hex-digit `Display` form (golden-file round trips).
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        Fingerprint::parse(s).map(ConfigFingerprint)
    }
}

impl fmt::Display for ConfigFingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl fmt::Debug for ConfigFingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ConfigFingerprint({})", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{ExecMode, Level, Pipeline, ReachConfig, StreamType};
    use crate::blueprint::MachineBlueprint;
    use crate::config::SystemConfig;
    use crate::work::TaskWork;
    use reach_sim::SimDuration;

    type Mutation<T> = (&'static str, Box<dyn Fn(&mut T)>);
    type Builder<T> = (&'static str, Box<dyn Fn() -> T>);

    fn base_config() -> ReachConfig {
        let mut cfg = ReachConfig::new();
        let params = cfg.create_fixed_buffer("vgg16_param", Level::OnChip, 11_300_000);
        let feats = cfg.create_stream(
            Level::OnChip,
            Level::NearStor,
            StreamType::Broadcast,
            6144,
            2,
        );
        let cnn = cfg.register_acc("VGG16-VU9P", Level::OnChip);
        cfg.set_arg(cnn, 0, params);
        cfg.set_arg(cnn, 1, feats);
        let knn = cfg.register_acc("KNN-ZCU9", Level::NearStor);
        cfg.set_arg(knn, 0, feats);
        cfg
    }

    fn base_fp() -> ConfigFingerprint {
        base_config().build().expect("valid").fingerprint()
    }

    #[test]
    fn validated_config_fingerprint_is_stable() {
        assert_eq!(base_fp(), base_fp());
    }

    /// Flipping any single configuration knob must change the fingerprint
    /// — buffers, stream endpoints/patterns/sizes/depths, registrations,
    /// bindings. A knob the fingerprint missed would alias two different
    /// configurations onto one cache entry.
    #[test]
    fn every_reach_config_knob_changes_the_fingerprint() {
        let base = base_fp();
        let variants: Vec<Mutation<ReachConfig>> = vec![
            (
                "buffer name",
                Box::new(|c| {
                    c.create_fixed_buffer("extra", Level::OnChip, 1);
                }),
            ),
            (
                "stream bytes",
                Box::new(|c| {
                    c.create_stream(Level::Cpu, Level::OnChip, StreamType::Pair, 64, 1);
                }),
            ),
            (
                "extra acc",
                Box::new(|c| {
                    c.register_acc("GEMM-ZCU9", Level::NearMem);
                }),
            ),
        ];
        let mut seen = vec![base];
        for (what, mutate) in variants {
            let mut cfg = base_config();
            mutate(&mut cfg);
            let fp = cfg.build().expect("still valid").fingerprint();
            assert!(!seen.contains(&fp), "{what} did not change the fingerprint");
            seen.push(fp);
        }

        // Field-level flips on otherwise-identical shapes.
        let mut cfg = ReachConfig::new();
        cfg.create_stream(Level::OnChip, Level::NearMem, StreamType::Broadcast, 64, 2);
        cfg.register_acc("VGG16-VU9P", Level::OnChip);
        let a = cfg.build().expect("valid").fingerprint();
        let variants: Vec<Builder<ReachConfig>> = vec![
            (
                "stream type",
                Box::new(|| {
                    let mut c = ReachConfig::new();
                    c.create_stream(Level::OnChip, Level::NearMem, StreamType::Collect, 64, 2);
                    c.register_acc("VGG16-VU9P", Level::OnChip);
                    c
                }),
            ),
            (
                "stream depth",
                Box::new(|| {
                    let mut c = ReachConfig::new();
                    c.create_stream(Level::OnChip, Level::NearMem, StreamType::Broadcast, 64, 3);
                    c.register_acc("VGG16-VU9P", Level::OnChip);
                    c
                }),
            ),
            (
                "stream dst",
                Box::new(|| {
                    let mut c = ReachConfig::new();
                    c.create_stream(Level::OnChip, Level::NearStor, StreamType::Broadcast, 64, 2);
                    c.register_acc("VGG16-VU9P", Level::OnChip);
                    c
                }),
            ),
        ];
        for (what, build) in variants {
            let b = build().build().expect("valid").fingerprint();
            assert_ne!(a, b, "{what} did not change the fingerprint");
        }
    }

    #[test]
    fn pipeline_calls_change_the_fingerprint() {
        let make = |macs: u64, stage: &str, batchesless_extra: bool| {
            let mut cfg = ReachConfig::new();
            let acc = cfg.register_acc("VGG16-VU9P", Level::OnChip);
            let mut p = Pipeline::new(cfg.build().expect("valid"));
            p.call(acc, TaskWork::compute(macs), stage);
            if batchesless_extra {
                p.call(acc, TaskWork::compute(1), "extra");
            }
            p.fingerprint()
        };
        let base = make(1_000, "fe", false);
        assert_eq!(base, make(1_000, "fe", false), "not stable");
        assert_ne!(base, make(1_001, "fe", false), "macs knob missed");
        assert_ne!(base, make(1_000, "fe2", false), "stage label missed");
        assert_ne!(base, make(1_000, "fe", true), "call count missed");
    }

    /// Every machine knob — instance counts, bandwidths, latencies,
    /// efficiencies, nested component configs — must flow into the
    /// blueprint fingerprint.
    #[test]
    fn every_machine_knob_changes_the_fingerprint() {
        let base = MachineBlueprint::paper().fingerprint();
        let knobs: Vec<Mutation<SystemConfig>> = vec![
            (
                "near_memory_accelerators",
                Box::new(|c| c.near_memory_accelerators = 8),
            ),
            (
                "near_storage_accelerators",
                Box::new(|c| c.near_storage_accelerators = 2),
            ),
            (
                "onchip_stream_efficiency",
                Box::new(|c| c.onchip_stream_efficiency = 0.5),
            ),
            ("onchip_gather_mshr", Box::new(|c| c.onchip_gather_mshr = 8)),
            ("nm_tile_bytes", Box::new(|c| c.nm_tile_bytes = 1 << 21)),
            (
                "nm_tile_interleave",
                Box::new(|c| c.nm_tile_interleave = false),
            ),
            ("cache capacity", Box::new(|c| c.cache.capacity *= 2)),
            (
                "aimbus latency",
                Box::new(|c| c.aimbus_latency = SimDuration::from_ns(80)),
            ),
            (
                "reconfig delay",
                Box::new(|c| c.reconfig_delay = SimDuration::from_us(1)),
            ),
            (
                "gam poll interval",
                Box::new(|c| c.gam.min_poll_interval = SimDuration::from_ms(5)),
            ),
            (
                "ssd jitter",
                Box::new(|c| c.ns_device.ssd.latency_jitter_pct = 7),
            ),
            (
                "host mc read queue",
                Box::new(|c| c.host_mc.read_queue = 32),
            ),
        ];
        let mut seen = vec![base];
        for (what, adjust) in knobs {
            let fp = MachineBlueprint::paper().map_config(adjust).fingerprint();
            assert!(!seen.contains(&fp), "{what} did not change the fingerprint");
            seen.push(fp);
        }
    }

    #[test]
    fn exec_mode_and_domains_are_distinguished() {
        // Same bit content under different domains must not collide.
        let mut a = FingerprintBuilder::new("reach-a");
        a.write_debug(&ExecMode::Pipelined);
        let mut b = FingerprintBuilder::new("reach-b");
        b.write_debug(&ExecMode::Pipelined);
        assert_ne!(
            ConfigFingerprint::from_builder(a),
            ConfigFingerprint::from_builder(b)
        );
    }

    #[test]
    fn display_round_trips() {
        let fp = base_fp();
        assert_eq!(ConfigFingerprint::parse(&fp.to_string()), Some(fp));
    }
}
