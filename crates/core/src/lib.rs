//! # reach — the Reconfigurable Accelerator Compute Hierarchy
//!
//! This crate is the paper's primary contribution as a library: a compute
//! hierarchy that combines **on-chip**, **near-memory** and **near-storage**
//! reconfigurable accelerators, coordinated by a hardware **Global
//! Accelerator Manager** (GAM), programmed through a uniform library
//! interface that decouples the application from the hierarchy
//! configuration.
//!
//! ## Layers
//!
//! * [`config`] — [`SystemConfig`]: the machine shape (Table II of the
//!   paper) plus the handful of microarchitectural rates the experiments
//!   depend on.
//! * [`work`] — [`TaskWork`]/[`DataAccess`]: how a task touches data
//!   (stream / gather / resident) and how many MACs it performs; the machine
//!   turns this plus the kernel template into an actual duration.
//! * [`machine`] — [`Machine`]: the full-system model. It executes
//!   [`reach_gam::GamAction`]s against the timing substrates (DDR4 DIMMs,
//!   the shared LLC, AIM modules and AIMbus, the host PCIe switch, NVMe
//!   SSDs, FPGA slots) and accounts component-by-stage usage for the energy
//!   ledger.
//! * [`report`] — [`RunReport`]: makespan, per-stage times, throughput /
//!   latency and the energy ledger of a run.
//! * [`api`] — the programming interface of Listings 1–3: `Level`,
//!   `StreamType`, `ReachConfig` (buffers, streams, accelerator
//!   registration, `set_arg` bindings) and the host-side `Pipeline` driver.
//! * [`blueprint`] — [`MachineBlueprint`]: an immutable, cheap-to-clone
//!   machine recipe (config + template registry + energy presets);
//!   `instantiate()` builds a fresh [`Machine`] per run.
//! * [`scenario`] — [`Scenario`]: one trait for every experiment point
//!   (figures, ablations, co-runs, sweeps), plus the [`ScenarioExecutor`]
//!   contract that lets `reach-bench` fan independent points across
//!   threads with byte-identical results.
//! * [`fleet`] — [`FleetBlueprint`]/[`FleetScenario`]: the topology layer
//!   above single machines — N nodes with dataset shards, an inter-machine
//!   link, and a deterministic scatter-gather aggregator.
//!
//! ## Quick start
//!
//! ```
//! use reach::{Machine, SystemConfig, TaskWork, DataAccess};
//! use reach_gam::JobBuilder;
//! use reach_accel::ComputeLevel;
//! use reach_sim::SimDuration;
//!
//! let mut machine = Machine::new(SystemConfig::paper_table2());
//! let mut job = JobBuilder::new(0);
//! let t = job.task("demo", "VGG16-VU9P", ComputeLevel::OnChip,
//!                  SimDuration::from_ms(100), vec![], vec![], vec![]);
//! machine.submit(job.build(), [(t, TaskWork {
//!     macs: 16 * 7_750_000_000,
//!     access: DataAccess::None,
//!     stage_label: None,
//! })].into());
//! let report = machine.run();
//! assert!((report.makespan.as_ms_f64() - 100.0).abs() < 5.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod blueprint;
pub mod codec;
pub mod config;
pub mod fingerprint;
pub mod fleet;
pub mod host;
pub mod machine;
pub mod report;
pub mod scenario;
pub mod telemetry;
pub mod trace;
pub mod traffic;
pub mod work;

pub use api::{
    Arg, ArgSlot, ConfigError, ExecMode, Level, Pipeline, ReachConfig, StreamType, ValidatedConfig,
};
pub use blueprint::MachineBlueprint;
pub use codec::{
    decode_report, encode_report, simulator_version_stamp, CodecError, REPORT_CODEC_VERSION,
};
pub use config::SystemConfig;
pub use fingerprint::ConfigFingerprint;
pub use fleet::{
    aggregate_scatter_gather, rack_link, FleetBlueprint, FleetScenario, InterMachineLink,
    ScatterGatherSpec, ShardPlacement,
};
pub use host::{ArrivalProcess, Batcher};
pub use machine::Machine;
pub use report::{RunReport, StageSummary};
pub use scenario::{FnScenario, Scenario, ScenarioExecutor, ScenarioResult, SequentialExecutor};
pub use trace::{Trace, TraceEvent, TraceKind};
pub use traffic::{OpenLoop, TrafficReport};
pub use work::{DataAccess, TaskWork};

// Re-export the vocabulary types users need alongside the API.
pub use reach_accel::{AcceleratorId, ComputeLevel, KernelSpec, TemplateRegistry};
pub use reach_energy::{EnergyLedger, SystemComponent};
pub use reach_gam::manager::GamStats;
pub use reach_gam::{Job, JobBuilder, JobId, TaskId};
pub use reach_sim::{MetricValue, MetricsSnapshot, SimDuration, SimTime};
