//! Immutable machine blueprints.
//!
//! A [`MachineBlueprint`] captures everything needed to build a
//! [`Machine`] — the [`SystemConfig`], the kernel [`TemplateRegistry`] and
//! the [`EnergyPresets`] — as a cheap-to-clone value. Experiments describe
//! the machine once and call [`MachineBlueprint::instantiate`] per run,
//! which is what makes fan-out across threads safe: each run owns a fresh
//! `Machine`, while the blueprint (and the `Arc`-shared registry inside
//! it) is shared read-only.

use crate::config::SystemConfig;
use crate::fingerprint::ConfigFingerprint;
use crate::machine::Machine;
use reach_accel::TemplateRegistry;
use reach_energy::EnergyPresets;
use reach_sim::FingerprintBuilder;
use std::sync::Arc;

/// An immutable recipe for building [`Machine`]s.
///
/// ```
/// use reach::{MachineBlueprint, SystemConfig};
///
/// let blueprint = MachineBlueprint::new(SystemConfig::paper_table2());
/// let a = blueprint.instantiate();
/// let b = blueprint.instantiate(); // independent machine, same shape
/// assert_eq!(a.config().onchip_accelerators, b.config().onchip_accelerators);
/// ```
#[derive(Clone, Debug)]
pub struct MachineBlueprint {
    cfg: SystemConfig,
    registry: Arc<TemplateRegistry>,
    presets: EnergyPresets,
}

impl MachineBlueprint {
    /// A blueprint with the paper's Table III template registry and
    /// Table IV energy presets.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (see
    /// [`SystemConfig::validate`]).
    #[must_use]
    pub fn new(cfg: SystemConfig) -> Self {
        Self::with_registry(cfg, TemplateRegistry::paper_table3())
    }

    /// The paper's Table II machine with default registry and presets.
    #[must_use]
    pub fn paper() -> Self {
        Self::new(SystemConfig::paper_table2())
    }

    /// A blueprint with a custom template registry (for user kernels).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate.
    #[must_use]
    pub fn with_registry(cfg: SystemConfig, registry: TemplateRegistry) -> Self {
        Self::with_shared_registry(cfg, Arc::new(registry))
    }

    /// A blueprint sharing an already-`Arc`'d registry (avoids cloning the
    /// template table when many blueprints differ only in config).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate.
    #[must_use]
    pub fn with_shared_registry(cfg: SystemConfig, registry: Arc<TemplateRegistry>) -> Self {
        cfg.validate();
        MachineBlueprint {
            cfg,
            registry,
            presets: EnergyPresets::paper_table4(),
        }
    }

    /// A copy with the configuration adjusted by `adjust` — the idiom for
    /// ablation sweeps that vary one knob around a base blueprint.
    ///
    /// # Panics
    ///
    /// Panics if the adjusted configuration is degenerate.
    #[must_use]
    pub fn map_config(&self, adjust: impl FnOnce(&mut SystemConfig)) -> Self {
        let mut next = self.clone();
        adjust(&mut next.cfg);
        next.cfg.validate();
        next
    }

    /// A copy with different energy presets.
    #[must_use]
    pub fn with_presets(mut self, presets: EnergyPresets) -> Self {
        self.presets = presets;
        self
    }

    /// The machine configuration this blueprint builds.
    #[must_use]
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// The template registry this blueprint builds with.
    #[must_use]
    pub fn registry(&self) -> &TemplateRegistry {
        &self.registry
    }

    /// Builds a fresh machine. Every call returns an independent runtime;
    /// the blueprint itself is never consumed or mutated.
    #[must_use]
    pub fn instantiate(&self) -> Machine {
        Machine::assemble(self.cfg.clone(), Arc::clone(&self.registry), self.presets)
    }

    /// Canonical digest of the machine recipe: every [`SystemConfig`] knob
    /// (including nested component configs), the full template registry
    /// and the energy presets. Two blueprints with equal fingerprints
    /// instantiate machines that simulate identically.
    ///
    /// The three parts are plain-data structs with derived `Debug`, so the
    /// digest covers every field they have — including ones added after
    /// this method was written.
    #[must_use]
    pub fn fingerprint(&self) -> ConfigFingerprint {
        let mut b = FingerprintBuilder::new("reach-blueprint-v1");
        b.write_debug(&self.cfg);
        b.write_debug(&*self.registry);
        b.write_debug(&self.presets);
        ConfigFingerprint::from_builder(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instantiations_are_independent() {
        let bp = MachineBlueprint::paper();
        let mut a = bp.instantiate();
        let b = bp.instantiate();
        a.enable_trace();
        // `b` and the blueprint are unaffected by mutating `a`.
        assert_eq!(
            b.config().onchip_accelerators,
            bp.config().onchip_accelerators
        );
    }

    #[test]
    fn map_config_leaves_base_untouched() {
        let base = MachineBlueprint::paper();
        let wide = base.map_config(|cfg| cfg.near_memory_accelerators = 16);
        assert_eq!(wide.config().near_memory_accelerators, 16);
        assert_ne!(
            base.config().near_memory_accelerators,
            wide.config().near_memory_accelerators
        );
    }

    #[test]
    #[should_panic]
    fn degenerate_config_rejected() {
        let _ = MachineBlueprint::paper().map_config(|cfg| {
            cfg.onchip_accelerators = 0;
            cfg.near_memory_accelerators = 0;
            cfg.near_storage_accelerators = 0;
        });
    }
}
