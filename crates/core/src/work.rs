//! Task work descriptors: how a task touches data and how much it computes.

/// The data-access pattern of a task at its compute level's attached medium.
///
/// The machine prices each pattern against the level the task runs at:
/// a `Stream` on-chip goes through the coherent cache hierarchy, a `Stream`
/// near memory reads the module's own DIMM, a `Stream` near storage reads
/// the unit's own SSD — and the same for `Gather` with the appropriate
/// random-access penalties. This is how one application description maps to
/// very different costs at different levels, which is the paper's core
/// observation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DataAccess {
    /// No bulk data movement during execution (inputs fit in SPM and were
    /// staged by the GAM).
    None,
    /// Sequential scan of `bytes` from the level's medium.
    Stream {
        /// Total bytes scanned.
        bytes: u64,
    },
    /// Random access of `bytes` in `granule`-byte units (64 B lines in
    /// DRAM, 4 KiB pages on flash).
    Gather {
        /// Total bytes gathered.
        bytes: u64,
        /// Access granule in bytes.
        granule: u64,
    },
    /// Input arrives from the level's stream buffer / scratchpad (already
    /// placed there by a GAM DMA); consumption is bounded only by the
    /// kernel's datapath.
    Resident {
        /// Bytes consumed from the stream buffer.
        bytes: u64,
    },
}

impl DataAccess {
    /// Total bytes this access touches.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        match *self {
            DataAccess::None => 0,
            DataAccess::Stream { bytes }
            | DataAccess::Gather { bytes, .. }
            | DataAccess::Resident { bytes } => bytes,
        }
    }
}

/// Everything the machine needs to price one task beyond its kernel
/// template: arithmetic work and the data-access pattern.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TaskWork {
    /// Multiply-accumulate operations the task performs.
    pub macs: u64,
    /// How the task touches bulk data while executing.
    pub access: DataAccess,
    /// Override the stage label used for time/energy accounting (defaults
    /// to the task's own stage string).
    pub stage_label: Option<String>,
}

impl TaskWork {
    /// A pure-compute task.
    #[must_use]
    pub fn compute(macs: u64) -> Self {
        TaskWork {
            macs,
            access: DataAccess::None,
            stage_label: None,
        }
    }

    /// A streaming task: `macs` of compute over a sequential scan of
    /// `bytes`.
    #[must_use]
    pub fn stream(macs: u64, bytes: u64) -> Self {
        TaskWork {
            macs,
            access: DataAccess::Stream { bytes },
            stage_label: None,
        }
    }

    /// A gathering task: `macs` of compute over random `granule`-sized
    /// accesses totalling `bytes`.
    #[must_use]
    pub fn gather(macs: u64, bytes: u64, granule: u64) -> Self {
        assert!(granule > 0, "TaskWork::gather: zero granule");
        TaskWork {
            macs,
            access: DataAccess::Gather { bytes, granule },
            stage_label: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_patterns() {
        assert_eq!(TaskWork::compute(5).access, DataAccess::None);
        assert_eq!(
            TaskWork::stream(1, 64).access,
            DataAccess::Stream { bytes: 64 }
        );
        assert_eq!(
            TaskWork::gather(1, 128, 64).access,
            DataAccess::Gather {
                bytes: 128,
                granule: 64
            }
        );
    }

    #[test]
    fn bytes_accessor() {
        assert_eq!(DataAccess::None.bytes(), 0);
        assert_eq!(DataAccess::Stream { bytes: 7 }.bytes(), 7);
        assert_eq!(
            DataAccess::Gather {
                bytes: 9,
                granule: 3
            }
            .bytes(),
            9
        );
        assert_eq!(DataAccess::Resident { bytes: 11 }.bytes(), 11);
    }

    #[test]
    #[should_panic(expected = "zero granule")]
    fn zero_granule_rejected() {
        let _ = TaskWork::gather(0, 64, 0);
    }
}
