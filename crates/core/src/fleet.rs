//! The fleet topology layer: many machines, one dataset.
//!
//! One [`crate::MachineBlueprint`] describes one machine. Serving a
//! billion-vector dataset means a *fleet*: N machines, each owning a shard
//! of the dataset, queried scatter-gather style — the aggregator broadcasts
//! each query batch to every shard (the paper's `Broadcast` stream pattern,
//! lifted to the inter-machine link), each machine runs the same pipeline
//! against its shard, and the per-shard partial top-K results are collected
//! (the `Collect` pattern) and merged into the global answer.
//!
//! * [`FleetBlueprint`] composes N node blueprints with the topology knobs:
//!   shard placement, replication, and the inter-machine
//!   [`InterMachineLink`] (latency + bandwidth, modelled in `reach-sim`).
//! * [`FleetScenario`] is the fleet counterpart of [`crate::Scenario`]: it
//!   expands into one ordinary scenario per shard plus a deterministic
//!   `aggregate` step. Executors run the shard scenarios through their
//!   normal [`crate::ScenarioExecutor::run_all`] path (so parallel fan-out
//!   and the shard-level result cache apply unchanged), then reduce.
//! * [`aggregate_scatter_gather`] is the reference reduction: an analytic,
//!   integer-exact timing model of broadcast / compute / collect / merge.
//!
//! A single-node fleet is the degenerate case by construction:
//! [`aggregate_scatter_gather`] returns the lone shard's report **unchanged**
//! (the aggregator is co-located with the only shard, so no link hop is
//! billed), which is what keeps every existing single-machine scenario
//! byte-identical when wrapped as a 1-node fleet.

use crate::blueprint::MachineBlueprint;
use crate::fingerprint::ConfigFingerprint;
use crate::report::{RunReport, StageSummary};
use crate::scenario::Scenario;
use reach_sim::{Bandwidth, FingerprintBuilder, MetricsSnapshot, SimDuration, SimTime};
use std::collections::BTreeMap;

/// The inter-machine link model: fixed propagation latency plus
/// serialization bandwidth (re-exported from `reach-sim`, where the timing
/// resource lives).
pub use reach_sim::Link as InterMachineLink;

/// Which compute level of each node owns its dataset shard — the fleet
/// analogue of a [`crate::api::Level`] choice for the short-list store.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ShardPlacement {
    /// Shards live in the nodes' near-memory DIMMs.
    NearMemory,
    /// Shards live behind the nodes' near-storage SSDs.
    NearStorage,
}

impl ShardPlacement {
    /// Both placements, in presentation order.
    pub const ALL: [ShardPlacement; 2] = [ShardPlacement::NearMemory, ShardPlacement::NearStorage];

    /// Stable lowercase name used in labels and rendered rows.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ShardPlacement::NearMemory => "near-memory",
            ShardPlacement::NearStorage => "near-storage",
        }
    }
}

/// A rack-class default link: 2 us one-way latency, 12.5 GB/s (100 GbE
/// wire rate) serialization.
#[must_use]
pub fn rack_link() -> InterMachineLink {
    InterMachineLink::new(
        SimDuration::from_us(2),
        Bandwidth::from_bytes_per_sec(12_500_000_000),
    )
}

/// An immutable recipe for a fleet: N node blueprints, an inter-machine
/// link, a shard placement level and a replication factor.
///
/// Like [`MachineBlueprint`], a `FleetBlueprint` is a cheap-to-clone value
/// describing topology only; [`FleetScenario`]s decide what runs on it.
/// Replication is a topology/fingerprint knob: replicas are modelled as
/// failover standbys and do not change the timing of a healthy run.
#[derive(Clone, Debug)]
pub struct FleetBlueprint {
    nodes: Vec<MachineBlueprint>,
    link: InterMachineLink,
    placement: ShardPlacement,
    replication: usize,
}

impl FleetBlueprint {
    /// The trivial fleet: one node, no replication, rack-class link. Every
    /// single-machine scenario is this fleet in disguise.
    #[must_use]
    pub fn single(node: MachineBlueprint) -> Self {
        Self::uniform(node, 1)
    }

    /// A homogeneous fleet of `shards` copies of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    #[must_use]
    pub fn uniform(node: MachineBlueprint, shards: usize) -> Self {
        assert!(shards > 0, "FleetBlueprint needs at least one node");
        FleetBlueprint {
            nodes: vec![node; shards],
            link: rack_link(),
            placement: ShardPlacement::NearStorage,
            replication: 1,
        }
    }

    /// A copy with a different inter-machine link.
    #[must_use]
    pub fn with_link(mut self, link: InterMachineLink) -> Self {
        self.link = link;
        self
    }

    /// A copy with a different shard placement level.
    #[must_use]
    pub fn with_placement(mut self, placement: ShardPlacement) -> Self {
        self.placement = placement;
        self
    }

    /// A copy with a different replication factor (minimum 1 = no
    /// replicas). Replicas are standby copies of each shard; they appear in
    /// the fingerprint and the fleet metrics but a healthy scatter-gather
    /// run never routes to them.
    ///
    /// # Panics
    ///
    /// Panics if `replication` is zero.
    #[must_use]
    pub fn with_replication(mut self, replication: usize) -> Self {
        assert!(replication > 0, "replication factor must be at least 1");
        self.replication = replication;
        self
    }

    /// Number of dataset shards (= primary nodes).
    #[must_use]
    pub fn shards(&self) -> usize {
        self.nodes.len()
    }

    /// The blueprint of node `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn node(&self, i: usize) -> &MachineBlueprint {
        &self.nodes[i]
    }

    /// All node blueprints, in shard order.
    #[must_use]
    pub fn nodes(&self) -> &[MachineBlueprint] {
        &self.nodes
    }

    /// The inter-machine link.
    #[must_use]
    pub fn link(&self) -> InterMachineLink {
        self.link
    }

    /// The shard placement level.
    #[must_use]
    pub fn placement(&self) -> ShardPlacement {
        self.placement
    }

    /// The replication factor (1 = primaries only).
    #[must_use]
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// Canonical digest of the whole topology: every node blueprint (in
    /// shard order), the link's latency and bandwidth, the placement and
    /// the replication factor. Two fleets with equal fingerprints simulate
    /// identically under the same [`FleetScenario`].
    #[must_use]
    pub fn fingerprint(&self) -> ConfigFingerprint {
        let mut b = FingerprintBuilder::new("reach-fleet-v1");
        b.write_usize(self.nodes.len());
        for node in &self.nodes {
            node.fingerprint().write_into(&mut b);
        }
        b.write_u64(self.link.latency().as_ps());
        b.write_u64(self.link.bandwidth().as_bytes_per_sec());
        b.write_debug(&self.placement);
        b.write_usize(self.replication);
        ConfigFingerprint::from_builder(b)
    }
}

/// A fleet experiment point: a topology plus one ordinary [`Scenario`] per
/// shard plus a deterministic reduction of the per-shard reports.
///
/// Executors run fleets via
/// [`crate::ScenarioExecutor::run_fleets`], which expands every fleet into
/// its shard scenarios, drives them through the executor's normal
/// `run_all` path (thread fan-out, result caching and fingerprint
/// harvesting all apply at shard granularity), and then calls
/// [`FleetScenario::aggregate`] in submission order.
pub trait FleetScenario: Send + Sync {
    /// Human-readable identity, e.g. `"fleet/near-storage/x8"`.
    fn label(&self) -> String;

    /// The topology this point runs on.
    fn fleet(&self) -> FleetBlueprint;

    /// The single-machine scenario shard `shard` runs (indices
    /// `0..fleet().shards()`).
    fn shard_scenario(&self, shard: usize) -> Box<dyn Scenario>;

    /// Reduces the per-shard reports (in shard order) into the fleet-level
    /// report. Must be deterministic: same reports in, byte-identical
    /// report out.
    fn aggregate(&self, shard_reports: Vec<RunReport>) -> RunReport;

    /// A canonical digest of everything that determines this fleet point's
    /// aggregated report, or `None` if it cannot fully describe itself.
    /// Same contract as [`Scenario::config_fingerprint`].
    fn config_fingerprint(&self) -> Option<ConfigFingerprint> {
        None
    }
}

/// The byte volumes and merge cost of one scatter-gather round trip,
/// expressed in the paper's stream vocabulary: `scatter_bytes` rides a
/// `Broadcast` fan-out from the aggregator to every shard, `gather_bytes`
/// rides the `Collect` fan-in back.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScatterGatherSpec {
    /// Bytes broadcast to **each** shard per job (e.g. the query batch).
    pub scatter_bytes: u64,
    /// Bytes collected from **each** shard per job (e.g. the partial
    /// top-K).
    pub gather_bytes: u64,
    /// Aggregator time to merge the N partial results of one job.
    pub merge_cost: SimDuration,
}

/// The reference scatter-gather reduction: an analytic, integer-exact
/// timing model over per-shard [`RunReport`]s.
///
/// The model, per shard `i` and job `j` (all picosecond-exact):
///
/// * **Scatter** — the aggregator serializes the broadcast copies one
///   after another on its NIC, so shard `i`'s timeline starts at
///   `scatter_done_i = latency + (i+1) * tx(scatter_bytes)`. Later jobs
///   pipeline behind the first, so the offset is charged once per shard,
///   not once per job.
/// * **Compute** — shard `i` finishes job `j` at
///   `scatter_done_i + completions_i[j]` (its own report's completion
///   instant, shifted onto the fleet timeline).
/// * **Gather + merge** — job `j`'s fleet answer is ready one link latency
///   plus N serialized `tx(gather_bytes)` plus `merge_cost` after the
///   **slowest** shard's completion.
///
/// Latencies are the shard-0 latencies plus each job's fleet-added delay
/// (shard 0 is the reference timeline; all shards run the same query
/// stream). Stages are merged by name across shards — busy and task counts
/// summed, windows shifted onto the fleet timeline and unioned. Energy
/// ledgers and GAM counters sum across shards. Fleet-level telemetry
/// (per-shard busy and makespan, link traffic and occupancy, aggregator
/// merge time) replaces the per-machine snapshot.
///
/// **The 1-shard case returns the report completely unchanged** — the
/// aggregator is co-located with the only shard, so no link hop and no
/// merge is billed. This is the byte-identity guarantee existing
/// single-machine scenarios rely on.
///
/// # Panics
///
/// Panics if `reports` does not have exactly one report per shard, if the
/// shards disagree on job count, or if a shard completed zero jobs.
#[must_use]
pub fn aggregate_scatter_gather(
    fleet: &FleetBlueprint,
    mut reports: Vec<RunReport>,
    spec: &ScatterGatherSpec,
) -> RunReport {
    let n = fleet.shards();
    assert_eq!(
        reports.len(),
        n,
        "aggregate_scatter_gather: {} report(s) for {n} shard(s)",
        reports.len()
    );
    if n == 1 {
        return reports.pop().expect("one shard, one report");
    }
    let jobs = reports[0].jobs;
    assert!(jobs > 0, "aggregate_scatter_gather: empty shard runs");
    for r in &reports {
        assert_eq!(r.jobs, jobs, "shards disagree on job count");
        assert_eq!(
            r.completions.len(),
            jobs as usize,
            "shard report missing per-job completions"
        );
    }
    let link = fleet.link();
    let scatter_tx = link.bandwidth().transfer_time(spec.scatter_bytes);
    let scatter_done: Vec<SimDuration> = (0..n)
        .map(|i| link.latency() + scatter_tx * (i as u64 + 1))
        .collect();
    let gather_cost = link.latency()
        + link.bandwidth().transfer_time(spec.gather_bytes) * n as u64
        + spec.merge_cost;

    // Per-job fleet completion instants, on the fleet timeline.
    let completions: Vec<SimTime> = (0..jobs as usize)
        .map(|j| {
            let slowest = reports
                .iter()
                .zip(&scatter_done)
                .map(|(r, &offset)| r.completions[j] + offset)
                .max()
                .expect("at least one shard");
            slowest + gather_cost
        })
        .collect();
    let last = *completions.last().expect("jobs > 0");
    let makespan_floor = reports
        .iter()
        .zip(&scatter_done)
        .map(|(r, &offset)| offset + r.makespan)
        .max()
        .expect("at least one shard");
    let makespan = makespan_floor.max(last.since(SimTime::ZERO));

    // Latency deltas versus the shard-0 reference timeline.
    let delta_ps: Vec<u64> = completions
        .iter()
        .zip(&reports[0].completions)
        .map(|(fleet_c, shard_c)| fleet_c.as_ps() - shard_c.as_ps())
        .collect();
    let mean_delta = SimDuration::from_ps(delta_ps.iter().sum::<u64>() / jobs);
    let job_latency_mean = reports[0].job_latency_mean + mean_delta;
    let job_latency_last =
        reports[0].job_latency_last + SimDuration::from_ps(*delta_ps.last().expect("jobs > 0"));

    // Stages merged by name: busy and tasks summed, windows shifted onto
    // the fleet timeline and unioned. BTreeMap keeps the sorted-by-name
    // invariant of RunReport::stages.
    let mut stages: BTreeMap<String, StageSummary> = BTreeMap::new();
    for (r, &offset) in reports.iter().zip(&scatter_done) {
        for s in &r.stages {
            let window = (s.window.0 + offset, s.window.1 + offset);
            stages
                .entry(s.name.clone())
                .and_modify(|m| {
                    m.busy += s.busy;
                    m.tasks += s.tasks;
                    m.window = (m.window.0.min(window.0), m.window.1.max(window.1));
                })
                .or_insert_with(|| StageSummary {
                    name: s.name.clone(),
                    busy: s.busy,
                    window,
                    tasks: s.tasks,
                });
        }
    }

    let mut ledger = reports[0].ledger.clone();
    let mut gam = reports[0].gam;
    for r in &reports[1..] {
        ledger.merge(&r.ledger);
        gam.merge(&r.gam);
    }

    // Fleet-level telemetry replaces the per-machine snapshots.
    let mut metrics = MetricsSnapshot::new(makespan.as_ps());
    metrics.set_counter("fleet.shards", n as u64);
    metrics.set_counter("fleet.replication", fleet.replication() as u64);
    for (i, r) in reports.iter().enumerate() {
        let busy: SimDuration = r.stages.iter().map(|s| s.busy).sum();
        metrics.set_counter(&format!("fleet.shard{i}.busy_ps"), busy.as_ps());
        metrics.set_counter(&format!("fleet.shard{i}.makespan_ps"), r.makespan.as_ps());
    }
    let scatter_bytes_total = spec.scatter_bytes * n as u64;
    let gather_bytes_total = spec.gather_bytes * n as u64 * jobs;
    let link_busy =
        scatter_tx * n as u64 + link.bandwidth().transfer_time(spec.gather_bytes) * n as u64 * jobs;
    metrics.set_counter("fleet.link.scatter_bytes", scatter_bytes_total);
    metrics.set_counter("fleet.link.gather_bytes", gather_bytes_total);
    metrics.set_counter("fleet.link.busy_ps", link_busy.as_ps());
    metrics.set_counter(
        "fleet.aggregator.merge_ps",
        (spec.merge_cost * jobs).as_ps(),
    );

    RunReport {
        makespan,
        jobs,
        job_latency_mean,
        job_latency_last,
        stages: stages.into_values().collect(),
        ledger,
        gam,
        completions,
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reach_energy::{EnergyLedger, SystemComponent};
    use reach_gam::manager::GamStats;

    fn shard_report(makespan_ms: u64, jobs: u64) -> RunReport {
        let mut ledger = EnergyLedger::new();
        ledger.add(SystemComponent::Accelerator, "sl", 1.5);
        let per_job = SimDuration::from_ms(makespan_ms) / jobs;
        RunReport {
            makespan: SimDuration::from_ms(makespan_ms),
            jobs,
            job_latency_mean: per_job,
            job_latency_last: per_job,
            stages: vec![StageSummary {
                name: "sl".into(),
                busy: SimDuration::from_ms(makespan_ms / 2),
                window: (
                    SimTime::ZERO,
                    SimTime::ZERO + SimDuration::from_ms(makespan_ms),
                ),
                tasks: jobs,
            }],
            ledger,
            gam: GamStats {
                jobs_completed: jobs,
                ..GamStats::default()
            },
            completions: (1..=jobs).map(|j| SimTime::ZERO + per_job * j).collect(),
            metrics: MetricsSnapshot::new(0),
        }
    }

    fn fleet_of(n: usize) -> FleetBlueprint {
        FleetBlueprint::uniform(MachineBlueprint::paper(), n)
    }

    const SPEC: ScatterGatherSpec = ScatterGatherSpec {
        scatter_bytes: 1_000_000,
        gather_bytes: 1_000,
        merge_cost: SimDuration::from_us(1),
    };

    #[test]
    fn single_shard_report_is_returned_unchanged() {
        let report = shard_report(100, 4);
        let reference = report.to_string();
        let merged = aggregate_scatter_gather(&fleet_of(1), vec![report], &SPEC);
        assert_eq!(merged.to_string(), reference);
        assert!(merged.metrics.get("fleet.shards").is_none());
    }

    #[test]
    fn multi_shard_merge_sums_and_shifts() {
        let merged = aggregate_scatter_gather(
            &fleet_of(4),
            (0..4).map(|_| shard_report(100, 4)).collect(),
            &SPEC,
        );
        assert_eq!(merged.jobs, 4);
        // Fan-out, compute, fan-in: strictly slower than one shard alone.
        assert!(merged.makespan > SimDuration::from_ms(100));
        // All four shards' busy time and energy are accounted.
        assert_eq!(merged.stages.len(), 1);
        assert_eq!(merged.stages[0].busy, SimDuration::from_ms(200));
        assert_eq!(merged.stages[0].tasks, 16);
        assert!((merged.total_energy_j() - 6.0).abs() < 1e-9);
        assert_eq!(merged.gam.jobs_completed, 16);
        // Per-job latency grows by the fleet round trip.
        assert!(merged.job_latency_mean > SimDuration::from_ms(25));
        assert_eq!(merged.completions.len(), 4);
    }

    #[test]
    fn fleet_metrics_cover_shards_link_and_merge() {
        let merged = aggregate_scatter_gather(
            &fleet_of(2),
            (0..2).map(|_| shard_report(10, 2)).collect(),
            &SPEC,
        );
        for name in [
            "fleet.shards",
            "fleet.replication",
            "fleet.shard0.busy_ps",
            "fleet.shard1.makespan_ps",
            "fleet.link.scatter_bytes",
            "fleet.link.gather_bytes",
            "fleet.link.busy_ps",
            "fleet.aggregator.merge_ps",
        ] {
            assert!(merged.metrics.get(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn slowest_shard_gates_every_job() {
        let fast = shard_report(100, 2);
        let slow = shard_report(200, 2);
        let merged = aggregate_scatter_gather(&fleet_of(2), vec![fast, slow.clone()], &SPEC);
        // Completion of the last job is bounded below by the slow shard's.
        let slow_last = slow.completions.last().expect("jobs").as_ps();
        assert!(merged.completions.last().expect("jobs").as_ps() > slow_last);
    }

    #[test]
    #[should_panic(expected = "shards disagree")]
    fn mismatched_job_counts_rejected() {
        let _ = aggregate_scatter_gather(
            &fleet_of(2),
            vec![shard_report(10, 2), shard_report(10, 3)],
            &SPEC,
        );
    }

    #[test]
    #[should_panic(expected = "report(s) for")]
    fn report_count_must_match_shards() {
        let _ = aggregate_scatter_gather(&fleet_of(3), vec![shard_report(10, 1)], &SPEC);
    }

    #[test]
    fn builders_and_accessors() {
        let link = InterMachineLink::new(SimDuration::from_us(5), Bandwidth::from_gbps(25));
        let fleet = FleetBlueprint::uniform(MachineBlueprint::paper(), 4)
            .with_link(link)
            .with_placement(ShardPlacement::NearMemory)
            .with_replication(2);
        assert_eq!(fleet.shards(), 4);
        assert_eq!(fleet.nodes().len(), 4);
        assert_eq!(fleet.link(), link);
        assert_eq!(fleet.placement(), ShardPlacement::NearMemory);
        assert_eq!(fleet.replication(), 2);
        assert_eq!(
            FleetBlueprint::single(MachineBlueprint::paper()).shards(),
            1
        );
        assert_eq!(ShardPlacement::NearMemory.name(), "near-memory");
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_shards_rejected() {
        let _ = FleetBlueprint::uniform(MachineBlueprint::paper(), 0);
    }

    #[test]
    #[should_panic(expected = "replication factor")]
    fn zero_replication_rejected() {
        let _ = FleetBlueprint::single(MachineBlueprint::paper()).with_replication(0);
    }

    /// Flipping any fleet knob — shard count, placement, replication, link
    /// latency, link bandwidth, a node's shape — must change the
    /// fingerprint; a missed knob would alias two different fleets in the
    /// result cache.
    #[test]
    fn fingerprint_tracks_every_fleet_knob() {
        let base = || FleetBlueprint::uniform(MachineBlueprint::paper(), 4);
        type Mutation = (&'static str, Box<dyn Fn(FleetBlueprint) -> FleetBlueprint>);
        let mutations: Vec<Mutation> = vec![
            (
                "shard count",
                Box::new(|_| FleetBlueprint::uniform(MachineBlueprint::paper(), 8)),
            ),
            (
                "placement",
                Box::new(|f| f.with_placement(ShardPlacement::NearMemory)),
            ),
            ("replication", Box::new(|f| f.with_replication(3))),
            (
                "link latency",
                Box::new(|f| {
                    let bw = f.link().bandwidth();
                    f.with_link(InterMachineLink::new(SimDuration::from_us(20), bw))
                }),
            ),
            (
                "link bandwidth",
                Box::new(|f| {
                    let lat = f.link().latency();
                    f.with_link(InterMachineLink::new(lat, Bandwidth::from_gbps(100)))
                }),
            ),
            (
                "node shape",
                Box::new(|_| {
                    FleetBlueprint::uniform(
                        MachineBlueprint::paper()
                            .map_config(|cfg| cfg.near_memory_accelerators = 16),
                        4,
                    )
                }),
            ),
        ];
        let reference = base().fingerprint();
        let mut seen = vec![reference];
        for (knob, mutate) in mutations {
            let fp = mutate(base()).fingerprint();
            assert!(
                !seen.contains(&fp),
                "{knob} did not change the fleet fingerprint"
            );
            seen.push(fp);
        }
        // Stability: the same topology digests to the same value.
        assert_eq!(base().fingerprint(), reference);
    }
}
