//! Run reports: what an experiment harness reads out of a finished run.

use reach_energy::EnergyLedger;
use reach_gam::manager::GamStats;
use reach_sim::{MetricsSnapshot, SimDuration, SimTime};
use std::fmt;

/// Per-stage accounting.
#[derive(Clone, Debug)]
pub struct StageSummary {
    /// Stage label (e.g. `"rerank"`).
    pub name: String,
    /// Sum of accelerator busy time attributed to the stage.
    pub busy: SimDuration,
    /// Earliest start and latest completion of the stage's tasks.
    pub window: (SimTime, SimTime),
    /// Tasks executed under this label.
    pub tasks: u64,
}

impl StageSummary {
    /// Wall-clock extent of the stage window.
    #[must_use]
    pub fn span(&self) -> SimDuration {
        self.window.1.since(self.window.0)
    }
}

/// The result of running a workload on a [`crate::Machine`].
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Wall-clock simulated time from first submission to quiescence.
    pub makespan: SimDuration,
    /// Jobs completed.
    pub jobs: u64,
    /// Mean per-job latency (submission to host interrupt).
    pub job_latency_mean: SimDuration,
    /// Latency of the last job (steady-state pipeline latency).
    pub job_latency_last: SimDuration,
    /// Per-stage summaries, sorted by name.
    pub stages: Vec<StageSummary>,
    /// Component-by-stage energy.
    pub ledger: EnergyLedger,
    /// GAM statistics.
    pub gam: GamStats,
    /// Completion instant of each job, in job-id (submission) order.
    pub completions: Vec<SimTime>,
    /// Machine-wide telemetry: queue depths, occupancy, link traffic (see
    /// [`crate::telemetry`] for the namespace). Not part of [`fmt::Display`]
    /// — export it with [`MetricsSnapshot::to_json`] or
    /// [`MetricsSnapshot::to_csv`].
    pub metrics: MetricsSnapshot,
}

impl RunReport {
    /// Jobs per second over the whole run.
    ///
    /// # Panics
    ///
    /// Panics if the run completed no simulated time.
    #[must_use]
    pub fn throughput_jobs_per_sec(&self) -> f64 {
        assert!(!self.makespan.is_zero(), "throughput of an empty run");
        self.jobs as f64 / self.makespan.as_secs_f64()
    }

    /// Total energy in joules.
    #[must_use]
    pub fn total_energy_j(&self) -> f64 {
        self.ledger.total()
    }

    /// Energy per job in joules.
    #[must_use]
    pub fn energy_per_job_j(&self) -> f64 {
        if self.jobs == 0 {
            0.0
        } else {
            self.ledger.total() / self.jobs as f64
        }
    }

    /// The stage summary with the given name, if present.
    #[must_use]
    pub fn stage(&self, name: &str) -> Option<&StageSummary> {
        self.stages.iter().find(|s| s.name == name)
    }

    /// Completion instants per job in job-id order.
    #[must_use]
    pub fn job_completions(&self) -> &[SimTime] {
        &self.completions
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "makespan {} | {} job(s) | mean latency {} | {:.3} jobs/s | {:.2} J/job",
            self.makespan,
            self.jobs,
            self.job_latency_mean,
            self.throughput_jobs_per_sec(),
            self.energy_per_job_j()
        )?;
        for s in &self.stages {
            writeln!(
                f,
                "  stage {:<22} busy {:>12} span {:>12} ({} task(s))",
                s.name,
                s.busy.to_string(),
                s.span().to_string(),
                s.tasks
            )?;
        }
        write!(f, "{}", self.ledger)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reach_energy::SystemComponent;

    fn report() -> RunReport {
        let mut ledger = EnergyLedger::new();
        ledger.add(SystemComponent::Accelerator, "fe", 2.0);
        ledger.add(SystemComponent::Ssd, "rr", 6.0);
        RunReport {
            makespan: SimDuration::from_ms(500),
            jobs: 2,
            job_latency_mean: SimDuration::from_ms(250),
            job_latency_last: SimDuration::from_ms(250),
            stages: vec![StageSummary {
                name: "fe".into(),
                busy: SimDuration::from_ms(100),
                window: (SimTime::from_ps(0), SimTime::from_ps(100_000_000_000)),
                tasks: 2,
            }],
            ledger,
            gam: GamStats::default(),
            completions: vec![
                SimTime::from_ps(250_000_000_000),
                SimTime::from_ps(500_000_000_000),
            ],
            metrics: MetricsSnapshot::new(500_000_000_000),
        }
    }

    #[test]
    fn derived_metrics() {
        let r = report();
        assert!((r.throughput_jobs_per_sec() - 4.0).abs() < 1e-9);
        assert!((r.total_energy_j() - 8.0).abs() < 1e-12);
        assert!((r.energy_per_job_j() - 4.0).abs() < 1e-12);
        assert_eq!(r.stage("fe").unwrap().tasks, 2);
        assert!(r.stage("nope").is_none());
        assert_eq!(r.stage("fe").unwrap().span(), SimDuration::from_ms(100));
    }

    #[test]
    fn display_contains_key_numbers() {
        let text = report().to_string();
        assert!(text.contains("2 job(s)"));
        assert!(text.contains("stage fe"));
        assert!(text.contains("4.00 J/job"));
    }
}
