//! The ReACH programming interface — Listings 1–3 of the paper.
//!
//! The paper separates three things the application programmer writes:
//!
//! 1. **`ReACH.h`** (Listing 1): `RegisterAcc`, `CreateFixedBuffer`,
//!    `CreateStream` with *Broadcast / Collect / Pair* patterns — here the
//!    methods of [`ReachConfig`].
//! 2. **`config.h`** (Listing 2): the *configuration*, instantiating a meta
//!    accelerator from templates, placing fixed buffers at levels, wiring
//!    streams between levels and binding them to kernel arguments with
//!    `set_arg` — here a built [`ReachConfig`] value.
//! 3. **`host.cpp`** (Listing 3): the host flow calling `execute` per
//!    accelerator per batch — here [`Pipeline`], which records the call
//!    sequence once and replays it per batch.
//!
//! The separation is the point: the same [`Pipeline`] runs unmodified on a
//! machine with a different [`ReachConfig`] (all-on-chip, all-near-memory,
//! or the proper hierarchical mapping), which is how the paper's Figure 12
//! and Figure 13 comparisons are produced.
//!
//! A finished configuration is checked **before** anything runs:
//! [`ReachConfig::build`] resolves every template, checks each argument
//! binding against the kernel's driver arity and each stream endpoint
//! against the accelerator's placement, and returns a [`ValidatedConfig`]
//! (or a typed [`ConfigError`]). [`Pipeline::new`] takes the validated
//! form, so a mis-wired `config.h` fails at build time, not mid-run.
//!
//! # Example
//!
//! ```
//! use reach::{Machine, SystemConfig, ReachConfig, Level, StreamType, Pipeline, TaskWork};
//!
//! let mut cfg = ReachConfig::new();
//! let params = cfg.create_fixed_buffer("vgg16_param", Level::OnChip, 11_300_000);
//! let input = cfg.create_stream(Level::Cpu, Level::OnChip, StreamType::Pair, 2 << 20, 2);
//! let feats = cfg.create_stream(Level::OnChip, Level::NearStor, StreamType::Broadcast, 6144, 2);
//! let cnn = cfg.register_acc("VGG16-VU9P", Level::OnChip);
//! cfg.set_arg(cnn, 0, input);
//! cfg.set_arg(cnn, 1, params);
//! cfg.set_arg(cnn, 2, feats);
//! let knn = cfg.register_acc("KNN-ZCU9", Level::NearStor);
//! cfg.set_arg(knn, 0, feats);
//!
//! let mut pipeline = Pipeline::new(cfg.build().expect("valid config"));
//! pipeline.call(cnn, TaskWork::compute(124_000_000_000), "feature-extraction");
//! pipeline.call(knn, TaskWork::gather(1_000_000, 256 << 20, 4096), "rerank");
//!
//! let mut machine = Machine::new(SystemConfig::paper_table2());
//! let report = pipeline.run(&mut machine, 2);
//! assert_eq!(report.jobs, 2);
//! ```

use crate::fingerprint::ConfigFingerprint;
use crate::machine::Machine;
use crate::report::RunReport;
use crate::work::TaskWork;
use reach_accel::{ComputeLevel, KernelSpec, TemplateRegistry};
use reach_gam::{JobBuilder, TaskId};
use reach_sim::{FingerprintBuilder, SimDuration};
use std::collections::HashMap;
use std::fmt;

/// How a [`Pipeline`] feeds batches to the machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ExecMode {
    /// All batches are enqueued up front; the GAM pipelines across batches
    /// wherever dependencies allow. This is the ReACH execution model.
    Pipelined,
    /// Each batch completes before the next is submitted — the
    /// conventional host-driven accelerator flow, used as the paper's
    /// on-chip baseline.
    Sequential,
}

/// Where a buffer or stream endpoint lives (Listing 1's `enum Level`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Level {
    /// The cache-coherent on-chip accelerator.
    OnChip,
    /// Near-memory (AIM) accelerators.
    NearMem,
    /// Near-storage (SSD-attached) accelerators.
    NearStor,
    /// The host CPU (stream sources/sinks).
    Cpu,
}

impl Level {
    /// The compute level backing this endpoint; CPU endpoints live in host
    /// memory, which the hierarchy reaches through the on-chip level.
    #[must_use]
    pub fn compute_level(self) -> ComputeLevel {
        match self {
            Level::OnChip | Level::Cpu => ComputeLevel::OnChip,
            Level::NearMem => ComputeLevel::NearMemory,
            Level::NearStor => ComputeLevel::NearStorage,
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Level::OnChip => "OnChip",
            Level::NearMem => "NearMem",
            Level::NearStor => "NearStor",
            Level::Cpu => "CPU",
        })
    }
}

/// Stream communication patterns (Listing 1's `enum StreamType`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StreamType {
    /// One producer, every destination-level accelerator gets a copy.
    Broadcast,
    /// Every source-level accelerator contributes; one consumer.
    Collect,
    /// One-to-one.
    Pair,
}

/// Handle to a registered accelerator (`ReACH::ACC`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Acc(usize);

/// Handle to a fixed buffer (`ReACH::Buffer<T>`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct FixedBuffer(usize);

/// Handle to a stream (`ReACH::Stream<T>`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Stream(usize);

/// Something that can be bound to a kernel argument slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Arg {
    /// A fixed buffer.
    Buffer(FixedBuffer),
    /// A stream endpoint.
    Stream(Stream),
}

impl From<FixedBuffer> for Arg {
    fn from(b: FixedBuffer) -> Arg {
        Arg::Buffer(b)
    }
}
impl From<Stream> for Arg {
    fn from(s: Stream) -> Arg {
        Arg::Stream(s)
    }
}

/// An argument slot in a kernel's driver signature.
///
/// Slots are validated against the template's arity when the configuration
/// is [built](ReachConfig::build): a slot at or past the kernel's
/// `arg_slots` is a [`ConfigError::ArgOutOfRange`] instead of a silent
/// misbinding. Plain `usize` indices convert implicitly, so
/// `cfg.set_arg(acc, 0, buf)` keeps reading like Listing 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArgSlot(usize);

impl ArgSlot {
    /// Slot with the given zero-based index.
    #[must_use]
    pub const fn new(index: usize) -> Self {
        ArgSlot(index)
    }

    /// Zero-based index of the slot.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0
    }
}

impl From<usize> for ArgSlot {
    fn from(index: usize) -> ArgSlot {
        ArgSlot(index)
    }
}

impl fmt::Display for ArgSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "arg{}", self.0)
    }
}

/// Everything [`ReachConfig::build`] can reject. Each variant corresponds
/// to a distinct way a `config.h` can be mis-wired; none of them survive
/// to run time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// No template with this name is registered at the accelerator's level.
    UnknownTemplate {
        /// The requested template name.
        template: String,
        /// The requested placement.
        level: Level,
    },
    /// An accelerator was registered at [`Level::Cpu`].
    CpuAccelerator {
        /// The requested template name.
        template: String,
    },
    /// A binding targets a slot at or past the kernel's driver arity.
    ArgOutOfRange {
        /// The accelerator's template.
        template: String,
        /// The offending slot index.
        slot: usize,
        /// The kernel's arity (`arg_slots`).
        arity: usize,
    },
    /// Two bindings target the same slot of one accelerator.
    DuplicateArg {
        /// The accelerator's template.
        template: String,
        /// The slot bound twice.
        slot: usize,
    },
    /// A slot below a bound slot was left unbound (the driver would read a
    /// hole in its argument list).
    UnboundArg {
        /// The accelerator's template.
        template: String,
        /// The unbound slot index.
        slot: usize,
    },
    /// A stream that neither starts nor ends at the accelerator's level
    /// was bound to one of its slots.
    MisplacedStream {
        /// The accelerator's template.
        template: String,
        /// The accelerator's placement.
        level: Level,
        /// The stream's source level.
        src: Level,
        /// The stream's destination level.
        dst: Level,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::UnknownTemplate { template, level } => {
                write!(f, "unknown template {template} at {level}")
            }
            ConfigError::CpuAccelerator { template } => {
                write!(f, "{template}: CPU is not an accelerator level")
            }
            ConfigError::ArgOutOfRange {
                template,
                slot,
                arity,
            } => write!(
                f,
                "{template}: arg slot {slot} out of range (kernel arity {arity})"
            ),
            ConfigError::DuplicateArg { template, slot } => {
                write!(f, "{template}: arg slot {slot} bound twice")
            }
            ConfigError::UnboundArg { template, slot } => {
                write!(f, "{template}: arg slot {slot} unbound below a bound slot")
            }
            ConfigError::MisplacedStream {
                template,
                level,
                src,
                dst,
            } => write!(
                f,
                "{template}: stream {src}->{dst} does not touch level {level}"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

#[derive(Clone, Debug)]
struct AccEntry {
    template: String,
    level: Level,
    args: Vec<(ArgSlot, Arg)>,
}

#[derive(Clone, Debug)]
struct BufferEntry {
    name: String,
    level: Level,
    bytes: u64,
}

#[derive(Clone, Debug)]
struct StreamEntry {
    src: Level,
    dst: Level,
    /// Pattern, recorded for validation and debugging dumps; the GAM's
    /// per-level copy dedup realizes broadcast/collect semantics.
    #[allow(dead_code)]
    ty: StreamType,
    bytes: u64,
    /// Queue depth (double-buffering); recorded for future backpressure
    /// modelling.
    #[allow(dead_code)]
    depth: usize,
}

/// A ReACH configuration: registered accelerators, fixed buffers, streams
/// and argument bindings — the contents of the paper's `config.h`.
#[derive(Clone, Debug, Default)]
pub struct ReachConfig {
    accs: Vec<AccEntry>,
    buffers: Vec<BufferEntry>,
    streams: Vec<StreamEntry>,
}

impl ReachConfig {
    /// An empty configuration.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// `RegisterAcc(template, level)`: requests an accelerator instance of
    /// `template` at `level`. Registering the same template twice creates
    /// two logical accelerators (like `knn0` / `knn1` in Listing 2).
    ///
    /// Registering at [`Level::Cpu`] is recorded but rejected by
    /// [`Self::build`] — the CPU is not an accelerator.
    pub fn register_acc(&mut self, template: &str, level: Level) -> Acc {
        self.accs.push(AccEntry {
            template: template.to_string(),
            level,
            args: Vec::new(),
        });
        Acc(self.accs.len() - 1)
    }

    /// `CreateFixedBuffer(path, level, size)`: declares data pre-placed in
    /// `level`'s memory during configuration (the runtime loads it from the
    /// file system before the pipeline starts, so it is *sedentary* at run
    /// time — the paper's key mechanism for limiting data movement).
    pub fn create_fixed_buffer(&mut self, name: &str, level: Level, bytes: u64) -> FixedBuffer {
        self.buffers.push(BufferEntry {
            name: name.to_string(),
            level,
            bytes,
        });
        FixedBuffer(self.buffers.len() - 1)
    }

    /// `CreateStream(src, dst, type, size, depth)`: a communication buffer
    /// between two levels, realized as a queue pair in both levels' memory.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn create_stream(
        &mut self,
        src: Level,
        dst: Level,
        ty: StreamType,
        bytes: u64,
        depth: usize,
    ) -> Stream {
        assert!(depth > 0, "create_stream: zero depth");
        self.streams.push(StreamEntry {
            src,
            dst,
            ty,
            bytes,
            depth,
        });
        Stream(self.streams.len() - 1)
    }

    /// `acc.setArgs(slot, arg)`: binds a buffer or stream to a kernel
    /// argument slot.
    ///
    /// Binding a fixed buffer that lives at a *different* level is legal —
    /// it means the GAM must move the data before each execution, which is
    /// exactly the cost the hierarchy exists to avoid (and the cost the
    /// single-level baselines pay). The binding itself is checked by
    /// [`Self::build`]: out-of-arity slots, duplicate slots and streams
    /// that do not touch the accelerator's level all become typed
    /// [`ConfigError`]s there.
    ///
    /// # Panics
    ///
    /// Panics if `acc` is a stale handle.
    pub fn set_arg(&mut self, acc: Acc, slot: impl Into<ArgSlot>, arg: impl Into<Arg>) {
        self.accs[acc.0].args.push((slot.into(), arg.into()));
    }

    /// Number of registered accelerators.
    #[must_use]
    pub fn acc_count(&self) -> usize {
        self.accs.len()
    }

    /// Writes a canonical encoding of the configuration — every buffer,
    /// stream (endpoints, pattern, size, depth), registration and binding
    /// — into `b`. Shared by the [`ValidatedConfig`] and [`Pipeline`]
    /// fingerprints.
    pub(crate) fn fingerprint_into(&self, b: &mut FingerprintBuilder) {
        b.write_usize(self.buffers.len());
        for buf in &self.buffers {
            b.write_str(&buf.name);
            b.write_debug(&buf.level);
            b.write_u64(buf.bytes);
        }
        b.write_usize(self.streams.len());
        for s in &self.streams {
            b.write_debug(&s.src);
            b.write_debug(&s.dst);
            b.write_debug(&s.ty);
            b.write_u64(s.bytes);
            b.write_usize(s.depth);
        }
        b.write_usize(self.accs.len());
        for acc in &self.accs {
            b.write_str(&acc.template);
            b.write_debug(&acc.level);
            b.write_usize(acc.args.len());
            for (slot, arg) in &acc.args {
                b.write_usize(slot.index());
                b.write_debug(arg);
            }
        }
    }

    /// Validates the configuration against the paper's Table III template
    /// registry. See [`Self::build_with`].
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] found, in accelerator
    /// registration order.
    pub fn build(self) -> Result<ValidatedConfig, ConfigError> {
        let registry = TemplateRegistry::paper_table3();
        self.build_with(&registry)
    }

    /// Validates the configuration against `registry`, resolving every
    /// template and checking every argument binding, and returns the
    /// [`ValidatedConfig`] that [`Pipeline::new`] consumes.
    ///
    /// Checked per accelerator, in registration order:
    ///
    /// * the placement is not [`Level::Cpu`];
    /// * the template resolves at the placement's compute level;
    /// * every bound slot is below the kernel's `arg_slots` arity and no
    ///   slot is bound twice;
    /// * every bound stream starts or ends at the accelerator's level;
    /// * the bound slots have no holes — a prefix `0..n` of the signature
    ///   may be left entirely unbound (work parameters passed at `execute`
    ///   time), but a gap below a bound slot is an error.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] found.
    pub fn build_with(self, registry: &TemplateRegistry) -> Result<ValidatedConfig, ConfigError> {
        let mut kernels = Vec::with_capacity(self.accs.len());
        for acc in &self.accs {
            if acc.level == Level::Cpu {
                return Err(ConfigError::CpuAccelerator {
                    template: acc.template.clone(),
                });
            }
            let kernel = registry
                .resolve(&acc.template, acc.level.compute_level())
                .ok_or_else(|| ConfigError::UnknownTemplate {
                    template: acc.template.clone(),
                    level: acc.level,
                })?;
            let mut bound = vec![false; kernel.arg_slots];
            for &(slot, arg) in &acc.args {
                let i = slot.index();
                if i >= kernel.arg_slots {
                    return Err(ConfigError::ArgOutOfRange {
                        template: acc.template.clone(),
                        slot: i,
                        arity: kernel.arg_slots,
                    });
                }
                if bound[i] {
                    return Err(ConfigError::DuplicateArg {
                        template: acc.template.clone(),
                        slot: i,
                    });
                }
                bound[i] = true;
                if let Arg::Stream(s) = arg {
                    let entry = &self.streams[s.0];
                    if entry.src != acc.level && entry.dst != acc.level {
                        return Err(ConfigError::MisplacedStream {
                            template: acc.template.clone(),
                            level: acc.level,
                            src: entry.src,
                            dst: entry.dst,
                        });
                    }
                }
            }
            if let Some(top) = bound.iter().rposition(|&b| b) {
                if let Some(hole) = bound[..top].iter().position(|&b| !b) {
                    return Err(ConfigError::UnboundArg {
                        template: acc.template.clone(),
                        slot: hole,
                    });
                }
            }
            kernels.push(*kernel);
        }
        Ok(ValidatedConfig {
            config: self,
            kernels,
        })
    }
}

/// A [`ReachConfig`] that passed [`ReachConfig::build`]: every template is
/// resolved (the [`KernelSpec`]s are captured here, so the pipeline never
/// consults a registry mid-run) and every binding is checked.
#[derive(Clone, Debug)]
pub struct ValidatedConfig {
    config: ReachConfig,
    kernels: Vec<KernelSpec>,
}

impl ValidatedConfig {
    /// The underlying configuration.
    #[must_use]
    pub fn config(&self) -> &ReachConfig {
        &self.config
    }

    /// The resolved kernel for each registered accelerator, in
    /// registration order.
    #[must_use]
    pub fn kernels(&self) -> &[KernelSpec] {
        &self.kernels
    }

    /// Canonical digest of the validated configuration: the full
    /// [`ReachConfig`] wiring plus every resolved [`KernelSpec`] (so a
    /// registry change that resolves the same template name to different
    /// timing changes the digest too).
    #[must_use]
    pub fn fingerprint(&self) -> ConfigFingerprint {
        let mut b = FingerprintBuilder::new("reach-validated-config-v1");
        self.fingerprint_into(&mut b);
        ConfigFingerprint::from_builder(b)
    }

    pub(crate) fn fingerprint_into(&self, b: &mut FingerprintBuilder) {
        self.config.fingerprint_into(b);
        b.write_usize(self.kernels.len());
        for k in &self.kernels {
            b.write_debug(k);
        }
    }
}

#[derive(Clone, Debug)]
struct Call {
    acc: Acc,
    work: TaskWork,
    stage: String,
}

/// The host-side flow (Listing 3): a recorded sequence of `execute` calls
/// replayed once per batch, with inter-call dependencies derived from the
/// stream wiring.
#[derive(Clone, Debug)]
pub struct Pipeline {
    config: ReachConfig,
    /// Resolved kernels, parallel to the config's accelerators. Captured at
    /// [`ReachConfig::build`] time, so job building never consults a
    /// registry and cannot fail mid-run.
    kernels: Vec<KernelSpec>,
    calls: Vec<Call>,
}

impl Pipeline {
    /// Wraps a validated configuration. [`ReachConfig::build`] is the only
    /// way to obtain one, so every pipeline's templates are resolved and
    /// its bindings checked before the first batch is built.
    #[must_use]
    pub fn new(config: ValidatedConfig) -> Self {
        Pipeline {
            config: config.config,
            kernels: config.kernels,
            calls: Vec::new(),
        }
    }

    /// Records `acc.execute()` with the given work, labelled `stage` for
    /// time/energy accounting. Returns `&mut self` for chaining.
    ///
    /// # Panics
    ///
    /// Panics if the handle is stale.
    pub fn call(&mut self, acc: Acc, work: TaskWork, stage: &str) -> &mut Self {
        assert!(
            acc.0 < self.config.acc_count(),
            "Pipeline::call: stale handle"
        );
        self.calls.push(Call {
            acc,
            work,
            stage: stage.to_string(),
        });
        self
    }

    /// The configuration this pipeline runs on.
    #[must_use]
    pub fn config(&self) -> &ReachConfig {
        &self.config
    }

    /// Canonical digest of everything the pipeline will submit: the
    /// validated configuration (wiring + resolved kernels) and the
    /// recorded call sequence (callee, [`TaskWork`], stage label). Equal
    /// fingerprints build identical jobs batch for batch.
    #[must_use]
    pub fn fingerprint(&self) -> ConfigFingerprint {
        let mut b = FingerprintBuilder::new("reach-pipeline-v1");
        self.config.fingerprint_into(&mut b);
        b.write_usize(self.kernels.len());
        for k in &self.kernels {
            b.write_debug(k);
        }
        b.write_usize(self.calls.len());
        for call in &self.calls {
            b.write_usize(call.acc.0);
            b.write_debug(&call.work);
            b.write_str(&call.stage);
        }
        ConfigFingerprint::from_builder(b)
    }

    /// Runs `batches` batches through `machine` in the given [`ExecMode`]
    /// and reports.
    ///
    /// Under [`ExecMode::Pipelined`] all batches are enqueued up front and
    /// the GAM pipelines across batches wherever dependencies allow, so
    /// throughput reflects the longest stage rather than the sum of
    /// stages. Under [`ExecMode::Sequential`] each batch completes before
    /// the next is submitted and the last batch's report is returned.
    ///
    /// With `batches == 0` nothing is submitted and both modes return an
    /// empty report (zero jobs, zero makespan).
    ///
    /// # Panics
    ///
    /// Panics if the pipeline is empty.
    pub fn run_mode(&self, machine: &mut Machine, batches: usize, mode: ExecMode) -> RunReport {
        assert!(!self.calls.is_empty(), "Pipeline::run_mode: empty pipeline");
        let mut report = None;
        for batch in 0..batches {
            let (job, works) = self.build_job(batch as u64);
            machine.submit(job, works);
            if mode == ExecMode::Sequential {
                report = Some(machine.run());
            }
        }
        match (mode, report) {
            (ExecMode::Sequential, Some(r)) => r,
            // Pipelined, or Sequential with zero batches: run whatever is
            // queued (possibly nothing) and report on that.
            _ => machine.run(),
        }
    }

    /// Runs `batches` batches in [`ExecMode::Pipelined`].
    ///
    /// # Panics
    ///
    /// Same conditions as [`Pipeline::run_mode`].
    pub fn run(&self, machine: &mut Machine, batches: usize) -> RunReport {
        self.run_mode(machine, batches, ExecMode::Pipelined)
    }

    /// Runs `batches` batches in [`ExecMode::Sequential`].
    ///
    /// # Panics
    ///
    /// Same conditions as [`Pipeline::run_mode`].
    pub fn run_sequential(&self, machine: &mut Machine, batches: usize) -> RunReport {
        self.run_mode(machine, batches, ExecMode::Sequential)
    }

    /// Builds the GAM job and work descriptors for one batch without
    /// submitting it — used by deferred-submission drivers such as
    /// [`crate::host::drive`].
    #[must_use]
    pub fn job_for_batch(&self, batch: u64) -> (reach_gam::Job, HashMap<TaskId, TaskWork>) {
        self.build_job(batch)
    }

    /// Builds the GAM job for one batch.
    fn build_job(&self, batch: u64) -> (reach_gam::Job, HashMap<TaskId, TaskWork>) {
        let mut b = JobBuilder::new(batch);
        let mut works = HashMap::new();

        // Declare fixed buffers (resident at their level).
        let fixed: Vec<_> = self
            .config
            .buffers
            .iter()
            .map(|buf| b.buffer(&buf.name, buf.bytes, Some(buf.level.compute_level())))
            .collect();

        // Declare stream buffers. A stream whose source is the CPU starts
        // resident in host memory; all others are produced by a task.
        let streams: Vec<_> = self
            .config
            .streams
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let resident = (s.src == Level::Cpu).then(|| s.src.compute_level());
                b.buffer(&format!("stream{i}"), s.bytes, resident)
            })
            .collect();

        // Producer map: which call indices write each stream (several, for
        // collect-pattern streams fed by sharded accelerators). For a
        // same-level Pair stream the first call touching it is the
        // producer; later calls consume.
        let mut producer: HashMap<usize, Vec<usize>> = HashMap::new();
        for (ci, call) in self.calls.iter().enumerate() {
            let acc = &self.config.accs[call.acc.0];
            for (_, arg) in &acc.args {
                if let Arg::Stream(s) = arg {
                    let entry = &self.config.streams[s.0];
                    let produces = if entry.src == entry.dst {
                        producer.get(&s.0).is_none_or(|v| v == &[ci])
                    } else {
                        entry.src == acc.level
                    };
                    if produces {
                        let v = producer.entry(s.0).or_default();
                        if !v.contains(&ci) {
                            v.push(ci);
                        }
                    }
                }
            }
        }

        // Emit tasks in call order with stream-derived dependencies.
        let mut task_ids: Vec<TaskId> = Vec::new();
        for (ci, call) in self.calls.iter().enumerate() {
            let acc = &self.config.accs[call.acc.0];
            let level = acc.level.compute_level();
            // The kernel was resolved (and the binding checked) at
            // ReachConfig::build time.
            let kernel = &self.kernels[call.acc.0];

            let mut inputs = Vec::new();
            let mut outputs = Vec::new();
            let mut deps = Vec::new();
            for (_, arg) in &acc.args {
                match arg {
                    Arg::Buffer(fb) => inputs.push(fixed[fb.0]),
                    Arg::Stream(s) => {
                        let entry = &self.config.streams[s.0];
                        let is_producer = producer.get(&s.0).is_some_and(|v| v.contains(&ci));
                        let same_level = entry.src == entry.dst;
                        if (same_level && is_producer) || (!same_level && entry.src == acc.level) {
                            outputs.push(streams[s.0]);
                        } else {
                            inputs.push(streams[s.0]);
                            for &p in producer.get(&s.0).map_or(&[][..], Vec::as_slice) {
                                if p < ci {
                                    deps.push(task_ids[p]);
                                }
                            }
                        }
                    }
                }
            }

            // Estimate: kernel model without contention (the "synthesis
            // report" estimate the GAM progress table uses for polls).
            let mut est = kernel.compute_time(call.work.macs);
            if let Some(rate) = kernel.io_rate_bytes_per_sec() {
                let data = SimDuration::from_secs_f64(call.work.access.bytes() as f64 / rate);
                est = est.max(data);
            }

            let id = b.task(
                &call.stage,
                &acc.template,
                level,
                est,
                inputs,
                outputs,
                deps,
            );
            works.insert(id, call.work.clone());
            task_ids.push(id);
        }
        (b.build(), works)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;

    fn simple_pipeline() -> Pipeline {
        let mut cfg = ReachConfig::new();
        let feats = cfg.create_stream(
            Level::OnChip,
            Level::NearStor,
            StreamType::Broadcast,
            6144,
            2,
        );
        let cnn = cfg.register_acc("VGG16-VU9P", Level::OnChip);
        cfg.set_arg(cnn, 0, feats);
        let knn = cfg.register_acc("KNN-ZCU9", Level::NearStor);
        cfg.set_arg(knn, 0, feats);
        let mut p = Pipeline::new(cfg.build().expect("valid test config"));
        p.call(cnn, TaskWork::compute(10_000_000_000), "fe");
        p.call(knn, TaskWork::stream(1_000_000, 64 << 20), "rr");
        p
    }

    #[test]
    fn pipeline_runs_end_to_end() {
        let mut machine = Machine::new(SystemConfig::paper_table2());
        let report = simple_pipeline().run(&mut machine, 1);
        assert_eq!(report.jobs, 1);
        assert!(report.stage("fe").is_some());
        assert!(report.stage("rr").is_some());
        // The rerank stage cannot start before feature extraction ends.
        let fe = report.stage("fe").unwrap().window.1;
        let rr = report.stage("rr").unwrap().window.0;
        assert!(
            rr >= fe,
            "dependency violated: rr {rr:?} before fe end {fe:?}"
        );
    }

    #[test]
    fn batches_pipeline_for_throughput() {
        let mut m1 = Machine::new(SystemConfig::paper_table2());
        let one = simple_pipeline().run(&mut m1, 1);
        let mut m8 = Machine::new(SystemConfig::paper_table2());
        let eight = simple_pipeline().run(&mut m8, 8);
        // Eight batches must take far less than eight times one batch.
        let speedup = 8.0 * one.makespan.as_secs_f64() / eight.makespan.as_secs_f64();
        assert!(speedup > 1.5, "no cross-batch pipelining: {speedup}");
    }

    #[test]
    fn level_mapping() {
        assert_eq!(Level::Cpu.compute_level(), ComputeLevel::OnChip);
        assert_eq!(Level::NearMem.compute_level(), ComputeLevel::NearMemory);
        assert_eq!(Level::NearStor.compute_level(), ComputeLevel::NearStorage);
    }

    #[test]
    fn cpu_accelerator_rejected_at_build() {
        let mut cfg = ReachConfig::new();
        cfg.register_acc("VGG16-VU9P", Level::Cpu);
        assert_eq!(
            cfg.build().unwrap_err(),
            ConfigError::CpuAccelerator {
                template: "VGG16-VU9P".to_string()
            }
        );
    }

    #[test]
    fn unknown_template_rejected_at_build() {
        let mut cfg = ReachConfig::new();
        cfg.register_acc("NOT-A-KERNEL", Level::OnChip);
        let err = cfg.build().unwrap_err();
        assert_eq!(
            err,
            ConfigError::UnknownTemplate {
                template: "NOT-A-KERNEL".to_string(),
                level: Level::OnChip
            }
        );
        assert!(err.to_string().contains("unknown template"));
    }

    #[test]
    fn unrelated_stream_binding_rejected_at_build() {
        let mut cfg = ReachConfig::new();
        let s = cfg.create_stream(Level::Cpu, Level::OnChip, StreamType::Pair, 64, 1);
        let knn = cfg.register_acc("KNN-ZCU9", Level::NearStor);
        cfg.set_arg(knn, 0, s);
        assert_eq!(
            cfg.build().unwrap_err(),
            ConfigError::MisplacedStream {
                template: "KNN-ZCU9".to_string(),
                level: Level::NearStor,
                src: Level::Cpu,
                dst: Level::OnChip
            }
        );
    }

    #[test]
    fn out_of_arity_slot_rejected_at_build() {
        // The CNN driver exposes three slots; slot 7 is a typo'd index
        // that used to misbind silently.
        let mut cfg = ReachConfig::new();
        let buf = cfg.create_fixed_buffer("params", Level::OnChip, 1 << 20);
        let cnn = cfg.register_acc("VGG16-VU9P", Level::OnChip);
        cfg.set_arg(cnn, 7, buf);
        assert_eq!(
            cfg.build().unwrap_err(),
            ConfigError::ArgOutOfRange {
                template: "VGG16-VU9P".to_string(),
                slot: 7,
                arity: 3
            }
        );
    }

    #[test]
    fn duplicate_slot_rejected_at_build() {
        let mut cfg = ReachConfig::new();
        let buf = cfg.create_fixed_buffer("params", Level::OnChip, 1 << 20);
        let cnn = cfg.register_acc("VGG16-VU9P", Level::OnChip);
        cfg.set_arg(cnn, 1, buf);
        cfg.set_arg(cnn, 1, buf);
        assert_eq!(
            cfg.build().unwrap_err(),
            ConfigError::DuplicateArg {
                template: "VGG16-VU9P".to_string(),
                slot: 1
            }
        );
    }

    #[test]
    fn hole_below_bound_slot_rejected_at_build() {
        // Binding slot 2 while slot 1 is unbound leaves a hole in the
        // driver's argument list; a clean prefix (slots 0..n unbound with
        // nothing above them) stays legal.
        let mut cfg = ReachConfig::new();
        let buf = cfg.create_fixed_buffer("params", Level::OnChip, 1 << 20);
        let cnn = cfg.register_acc("VGG16-VU9P", Level::OnChip);
        cfg.set_arg(cnn, 0, buf);
        cfg.set_arg(cnn, 2, buf);
        assert_eq!(
            cfg.build().unwrap_err(),
            ConfigError::UnboundArg {
                template: "VGG16-VU9P".to_string(),
                slot: 1
            }
        );
    }

    #[test]
    fn zero_and_prefix_bindings_stay_legal() {
        // Work parameters can be passed at execute time, so partially
        // bound (or entirely unbound) signatures must build.
        let mut cfg = ReachConfig::new();
        cfg.register_acc("VGG16-VU9P", Level::OnChip);
        let buf = cfg.create_fixed_buffer("db", Level::NearMem, 1 << 20);
        let gemm = cfg.register_acc("GEMM-ZCU9", Level::NearMem);
        cfg.set_arg(gemm, 0, buf);
        assert!(cfg.build().is_ok());
    }

    #[test]
    fn arg_slot_conversions() {
        assert_eq!(ArgSlot::from(3).index(), 3);
        assert_eq!(ArgSlot::new(2), ArgSlot::from(2));
        assert_eq!(ArgSlot::new(1).to_string(), "arg1");
    }

    #[test]
    fn zero_batches_is_an_empty_run_in_both_modes() {
        for mode in [ExecMode::Pipelined, ExecMode::Sequential] {
            let mut m = Machine::new(SystemConfig::paper_table2());
            let r = simple_pipeline().run_mode(&mut m, 0, mode);
            assert_eq!(r.jobs, 0, "{mode:?}");
            assert!(r.makespan.is_zero(), "{mode:?}");
            assert!(r.stages.is_empty(), "{mode:?}");
        }
    }

    #[test]
    fn validated_pipeline_runs_without_registry_lookups() {
        // The kernels captured at build time are the whole story: a job
        // builds and runs against a machine without consulting its registry.
        let mut cfg = ReachConfig::new();
        let cnn = cfg.register_acc("VGG16-VU9P", Level::OnChip);
        let mut p = Pipeline::new(cfg.build().expect("valid config"));
        p.call(cnn, TaskWork::compute(1_000_000_000), "fe");
        let mut m = Machine::new(SystemConfig::paper_table2());
        assert_eq!(p.run(&mut m, 1).jobs, 1);
    }

    #[test]
    fn cross_level_buffer_binding_is_a_transfer() {
        // A near-storage-resident database bound to an on-chip kernel is
        // legal; the GAM stages it up the hierarchy (and the run pays).
        let mut cfg = ReachConfig::new();
        let buf = cfg.create_fixed_buffer("db", Level::NearStor, 64 << 20);
        let knn = cfg.register_acc("KNN-VU9P", Level::OnChip);
        cfg.set_arg(knn, 0, buf);
        let mut p = Pipeline::new(cfg.build().expect("valid test config"));
        p.call(knn, TaskWork::gather(1_000_000, 64 << 20, 4096), "rr");
        let mut m = Machine::new(SystemConfig::paper_table2());
        let r = p.run(&mut m, 1);
        assert!(r.gam.dmas >= 1, "expected a GAM staging DMA");
    }
}
