//! Machine-wide telemetry: the hot-path handles the [`crate::Machine`]
//! records through, and the end-of-run fold into a
//! [`reach_sim::MetricsSnapshot`].
//!
//! The machine owns one [`MachineMetrics`]. Dispatch, DMA and the event
//! loop record through pre-created handles (no string work per sample);
//! component-internal statistics that already live in the substrate models
//! (memory-channel bytes, SSD flash traffic, per-instance busy time) are
//! pulled once at report time and merged into the same snapshot under the
//! same hierarchical namespace:
//!
//! ```text
//! accel.<level>.busy_ps          accelerator busy time per level
//! accel.<level>.<i>.busy_ps      …and per instance
//! accel.<level>.occupancy        concurrent-busy-instance occupancy
//! gam.queue.<level>.depth        ready-queue depth gauge
//! gam.dma.<from>.<to>.bytes      GAM-initiated staging traffic
//! mem.ddr.host.ch<i>.bytes       host memory-channel traffic
//! mem.noc.port.<port>.busy_ps    on-chip network port busy time
//! storage.ssd<i>.read_bytes      flash traffic per drive
//! ```
//!
//! Levels appear as `on_chip`, `near_mem`, `near_stor`.

use reach_accel::ComputeLevel;
use reach_sim::{
    CounterId, GaugeId, HistogramId, MetricsRegistry, MetricsSnapshot, OccupancyId, SimDuration,
    SimTime,
};

/// Stable dotted-name segment for a compute level.
#[must_use]
pub(crate) fn level_slug(level: ComputeLevel) -> &'static str {
    match level {
        ComputeLevel::OnChip => "on_chip",
        ComputeLevel::NearMemory => "near_mem",
        ComputeLevel::NearStorage => "near_stor",
    }
}

fn level_index(level: ComputeLevel) -> usize {
    match level {
        ComputeLevel::OnChip => 0,
        ComputeLevel::NearMemory => 1,
        ComputeLevel::NearStorage => 2,
    }
}

/// Handles for one compute level's hot-path metrics.
struct LevelMetrics {
    queue_depth: GaugeId,
    dispatches: CounterId,
    busy_ps: CounterId,
    task_ps: HistogramId,
    occupancy: OccupancyId,
}

/// The machine's telemetry surface.
///
/// All metric names are created up front so every run of the same machine
/// shape exports the same schema, even for metrics that stay at zero.
pub(crate) struct MachineMetrics {
    registry: MetricsRegistry,
    levels: [LevelMetrics; 3],
    /// `[from][to]` staging-transfer counters, indexed by hierarchy order.
    dma_bytes: [[CounterId; 3]; 3],
    dma_count: [[CounterId; 3]; 3],
}

impl MachineMetrics {
    pub(crate) fn new() -> Self {
        let mut registry = MetricsRegistry::new();
        let levels = ComputeLevel::ALL.map(|level| {
            let slug = level_slug(level);
            LevelMetrics {
                queue_depth: registry.gauge(&format!("gam.queue.{slug}.depth")),
                dispatches: registry.counter(&format!("gam.dispatch.{slug}.count")),
                busy_ps: registry.counter(&format!("accel.{slug}.busy_ps")),
                task_ps: registry.histogram(&format!("accel.{slug}.task_ps")),
                occupancy: registry.occupancy(&format!("accel.{slug}.occupancy")),
            }
        });
        let dma_bytes = ComputeLevel::ALL.map(|from| {
            ComputeLevel::ALL.map(|to| {
                registry.counter(&format!(
                    "gam.dma.{}.{}.bytes",
                    level_slug(from),
                    level_slug(to)
                ))
            })
        });
        let dma_count = ComputeLevel::ALL.map(|from| {
            ComputeLevel::ALL.map(|to| {
                registry.counter(&format!(
                    "gam.dma.{}.{}.count",
                    level_slug(from),
                    level_slug(to)
                ))
            })
        });
        MachineMetrics {
            registry,
            levels,
            dma_bytes,
            dma_count,
        }
    }

    /// Records one executed task: the busy window `[start, end)` on `level`
    /// with service time `duration` (excludes load/reconfiguration skew
    /// between `start` and the priced duration).
    pub(crate) fn task_executed(
        &mut self,
        level: ComputeLevel,
        start: SimTime,
        end: SimTime,
        duration: SimDuration,
    ) {
        let l = &self.levels[level_index(level)];
        self.registry.inc(l.dispatches);
        self.registry.add(l.busy_ps, duration.as_ps());
        self.registry.record(l.task_ps, duration.as_ps());
        self.registry.occupy(l.occupancy, start, end, 1.0);
    }

    /// Records one GAM-initiated staging transfer.
    pub(crate) fn dma(&mut self, from: ComputeLevel, to: ComputeLevel, bytes: u64) {
        let (f, t) = (level_index(from), level_index(to));
        self.registry.add(self.dma_bytes[f][t], bytes);
        self.registry.inc(self.dma_count[f][t]);
    }

    /// Samples the GAM ready-queue depth of `level` at instant `at`.
    /// Samples must arrive in time order (the event loop is monotonic).
    pub(crate) fn sample_queue_depth(&mut self, level: ComputeLevel, at: SimTime, depth: usize) {
        let l = &self.levels[level_index(level)];
        self.registry.gauge_set(l.queue_depth, at, depth as f64);
    }

    /// Folds the recorded metrics into a snapshot over `[0, until]`.
    pub(crate) fn snapshot(&self, until: SimTime) -> MetricsSnapshot {
        self.registry.snapshot(until)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reach_sim::MetricValue;

    #[test]
    fn schema_is_complete_before_any_recording() {
        let m = MachineMetrics::new();
        let snap = m.snapshot(SimTime::ZERO);
        for slug in ["on_chip", "near_mem", "near_stor"] {
            assert!(snap.get(&format!("gam.queue.{slug}.depth")).is_some());
            assert!(snap.get(&format!("accel.{slug}.busy_ps")).is_some());
            assert!(snap.get(&format!("accel.{slug}.occupancy")).is_some());
        }
        assert!(snap.get("gam.dma.on_chip.near_stor.bytes").is_some());
        assert_eq!(snap.len(), 15 + 18);
    }

    #[test]
    fn task_execution_lands_in_every_level_metric() {
        let mut m = MachineMetrics::new();
        m.task_executed(
            ComputeLevel::NearMemory,
            SimTime::from_ps(10),
            SimTime::from_ps(30),
            SimDuration::from_ps(20),
        );
        let snap = m.snapshot(SimTime::from_ps(40));
        assert_eq!(
            snap.get("accel.near_mem.busy_ps"),
            Some(&MetricValue::Counter { value: 20 })
        );
        match snap.get("accel.near_mem.occupancy").unwrap() {
            MetricValue::Occupancy { mean, peak } => {
                assert!((mean - 0.5).abs() < 1e-12, "mean {mean}");
                assert!((peak - 1.0).abs() < 1e-12);
            }
            other => panic!("expected occupancy, got {other:?}"),
        }
        assert_eq!(
            snap.get("gam.dispatch.near_mem.count"),
            Some(&MetricValue::Counter { value: 1 })
        );
    }

    #[test]
    fn dma_routes_to_the_directed_pair() {
        let mut m = MachineMetrics::new();
        m.dma(ComputeLevel::NearStorage, ComputeLevel::OnChip, 4096);
        let snap = m.snapshot(SimTime::ZERO);
        assert_eq!(
            snap.get("gam.dma.near_stor.on_chip.bytes"),
            Some(&MetricValue::Counter { value: 4096 })
        );
        assert_eq!(
            snap.get("gam.dma.on_chip.near_stor.bytes"),
            Some(&MetricValue::Counter { value: 0 })
        );
    }
}
