//! System configuration — the paper's Table II plus the microarchitectural
//! rates the experiments depend on.

use reach_gam::GamConfig;
use reach_mem::{CacheConfig, DimmConfig, Interleave, MemoryControllerConfig};
use reach_sim::{Bandwidth, SimDuration};
use reach_storage::NearStorageDeviceConfig;

/// Full-system configuration.
///
/// The defaults ([`SystemConfig::paper_table2`]) reproduce the paper's
/// experimental setup: one out-of-order x86 core at 2 GHz with a 2 MB shared
/// L2, two memory controllers over 8 DDR4 DIMMs (4 reserved for near-memory
/// accelerators), 4 NVMe SSDs behind a PCIe Gen3 x16 host interface, a
/// Virtex UltraScale+ on-chip accelerator with 100 GB/s to the shared cache,
/// Zynq UltraScale+ near-memory accelerators at 18 GB/s to their DIMMs, and
/// Zynq UltraScale+ near-storage accelerators with a 1 GB DRAM buffer and a
/// 12 GB/s effective link to their SSDs.
#[derive(Clone, Debug)]
pub struct SystemConfig {
    /// Number of on-chip accelerator slots (the paper uses 1).
    pub onchip_accelerators: usize,
    /// Number of AIM near-memory modules (= accelerator-carrying DIMMs).
    pub near_memory_accelerators: usize,
    /// Number of FPGA+SSD near-storage units.
    pub near_storage_accelerators: usize,
    /// Host-side memory controller (CPU + on-chip accelerator DIMMs).
    pub host_mc: MemoryControllerConfig,
    /// DIMM geometry for the near-memory side.
    pub nm_dimm: DimmConfig,
    /// Tile size used when the GAM switches the near-memory channels to
    /// tile interleaving.
    pub nm_tile_bytes: u64,
    /// Whether the GAM reorganizes the near-memory channels to tile
    /// interleaving (Section III-B). When `false` the channels stay
    /// cache-line interleaved, so each AIM module finds only `1/n` of its
    /// working set in its own DIMM and must pull the rest over the shared
    /// AIMbus — the access-interference case the reorganization prevents.
    pub nm_tile_interleave: bool,
    /// Shared last-level cache.
    pub cache: CacheConfig,
    /// AIMbus rate and hop latency.
    pub aimbus_bandwidth: Bandwidth,
    /// AIMbus hop latency.
    pub aimbus_latency: SimDuration,
    /// Per-unit near-storage device (SSD + buffer + device link).
    pub ns_device: NearStorageDeviceConfig,
    /// On-chip accelerator port into the shared cache (100 GB/s in Table II).
    pub onchip_cache_bandwidth: Bandwidth,
    /// Fraction of peak DRAM bandwidth the on-chip accelerator sustains when
    /// streaming through the coherent cache hierarchy (miss-handling and
    /// contention overheads; 0.74 reproduces the ~28 GB/s effective rate the
    /// calibration in DESIGN.md derives).
    pub onchip_stream_efficiency: f64,
    /// Outstanding misses the on-chip accelerator's address-translation /
    /// MSHR path sustains on *random* (gather) accesses.
    pub onchip_gather_mshr: u64,
    /// Average on-chip round-trip latency of one gathered line (NoC + cache
    /// miss + DRAM activate).
    pub onchip_gather_latency: SimDuration,
    /// On-chip accelerator TLB entries (Figure 2's address translation).
    pub onchip_tlb_entries: usize,
    /// Page-table-walk latency billed per accelerator TLB miss.
    pub page_walk_latency: SimDuration,
    /// Partial-reconfiguration delay (the paper assumes sub-millisecond and
    /// excludes it; default 0 to match).
    pub reconfig_delay: SimDuration,
    /// GAM timing parameters.
    pub gam: GamConfig,
}

impl SystemConfig {
    /// The paper's experimental setup (Table II).
    #[must_use]
    pub fn paper_table2() -> Self {
        SystemConfig {
            onchip_accelerators: 1,
            near_memory_accelerators: 4,
            near_storage_accelerators: 4,
            host_mc: MemoryControllerConfig {
                channels: 2,
                dimms_per_channel: 2,
                dimm: DimmConfig::ddr4_16gb(),
                read_queue: 64,
                write_queue: 64,
                interleave: Interleave::CacheLine,
            },
            nm_dimm: DimmConfig::ddr4_16gb(),
            nm_tile_bytes: 1 << 20,
            nm_tile_interleave: true,
            cache: CacheConfig::shared_l2_2mb(),
            aimbus_bandwidth: Bandwidth::from_mbps(12_800),
            aimbus_latency: SimDuration::from_ns(40),
            ns_device: NearStorageDeviceConfig::paper_default(),
            onchip_cache_bandwidth: Bandwidth::from_gbps(100),
            onchip_stream_efficiency: 0.74,
            onchip_gather_mshr: 4,
            onchip_gather_latency: SimDuration::from_ns(88),
            onchip_tlb_entries: 64,
            page_walk_latency: SimDuration::from_ns(120),
            reconfig_delay: SimDuration::ZERO,
            gam: GamConfig::default(),
        }
    }

    /// A copy with `n` near-memory accelerators (instance-scaling sweeps).
    #[must_use]
    pub fn with_near_memory(mut self, n: usize) -> Self {
        self.near_memory_accelerators = n;
        self
    }

    /// A copy with `n` near-storage units.
    #[must_use]
    pub fn with_near_storage(mut self, n: usize) -> Self {
        self.near_storage_accelerators = n;
        self
    }

    /// A copy with `pct` percent of deterministic SSD latency jitter
    /// (failure-injection knob: FTL interference / flash-die variation).
    #[must_use]
    pub fn with_ssd_jitter(mut self, pct: u8) -> Self {
        self.ns_device.ssd.latency_jitter_pct = pct;
        self
    }

    /// The memory-controller configuration for the near-memory side: two
    /// channels carrying however many accelerator DIMMs the config asks for,
    /// tile-interleaved by the GAM.
    #[must_use]
    pub fn nm_mc(&self) -> MemoryControllerConfig {
        let n = self.near_memory_accelerators.max(1);
        MemoryControllerConfig {
            channels: 2.min(n),
            dimms_per_channel: n.div_ceil(2.min(n)),
            dimm: self.nm_dimm,
            read_queue: 64,
            write_queue: 64,
            interleave: if self.nm_tile_interleave {
                Interleave::Tile(self.nm_tile_bytes)
            } else {
                Interleave::CacheLine
            },
        }
    }

    /// Effective sequential-stream rate of the on-chip accelerator through
    /// the coherent hierarchy, in bytes/s.
    #[must_use]
    pub fn onchip_stream_rate(&self) -> f64 {
        let channels = self.host_mc.channels as u64;
        let peak = {
            let d = reach_mem::Dimm::new(self.host_mc.dimm);
            d.peak_bandwidth_bytes_per_sec() * channels
        };
        (peak as f64 * self.onchip_stream_efficiency)
            .min(self.onchip_cache_bandwidth.as_bytes_per_sec() as f64)
    }

    /// Effective random-gather rate of the on-chip accelerator in bytes/s
    /// (MSHR-limited: `mshr x line / latency`).
    #[must_use]
    pub fn onchip_gather_rate(&self) -> f64 {
        let line = self.host_mc.dimm.line_bytes as f64;
        self.onchip_gather_mshr as f64 * line / self.onchip_gather_latency.as_secs_f64()
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate configuration (no accelerators anywhere, zero
    /// efficiency, …).
    pub fn validate(&self) {
        assert!(
            self.onchip_accelerators
                + self.near_memory_accelerators
                + self.near_storage_accelerators
                > 0,
            "SystemConfig: no accelerators configured"
        );
        assert!(
            self.onchip_stream_efficiency > 0.0 && self.onchip_stream_efficiency <= 1.0,
            "SystemConfig: stream efficiency out of (0,1]"
        );
        assert!(self.onchip_gather_mshr > 0, "SystemConfig: zero MSHRs");
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self::paper_table2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_table2() {
        let c = SystemConfig::paper_table2();
        assert_eq!(c.onchip_accelerators, 1);
        assert_eq!(c.near_memory_accelerators, 4);
        assert_eq!(c.near_storage_accelerators, 4);
        assert_eq!(c.host_mc.channels * c.host_mc.dimms_per_channel, 4);
        assert_eq!(c.cache.capacity, 2 << 20);
        c.validate();
    }

    #[test]
    fn onchip_stream_rate_is_about_28_gbps() {
        let c = SystemConfig::paper_table2();
        let rate = c.onchip_stream_rate();
        assert!((rate - 28.4e9).abs() < 1e9, "rate {rate:.3e}");
    }

    #[test]
    fn onchip_gather_rate_is_about_2_9_gbps() {
        let c = SystemConfig::paper_table2();
        let rate = c.onchip_gather_rate();
        assert!((rate - 2.9e9).abs() < 0.2e9, "rate {rate:.3e}");
    }

    #[test]
    fn nm_mc_scales_with_instances() {
        let c = SystemConfig::paper_table2().with_near_memory(16);
        let mc = c.nm_mc();
        assert_eq!(mc.channels * mc.dimms_per_channel, 16);
        let c1 = SystemConfig::paper_table2().with_near_memory(1);
        assert_eq!(c1.nm_mc().channels, 1);
    }

    #[test]
    fn builders_chain() {
        let c = SystemConfig::paper_table2()
            .with_near_memory(8)
            .with_near_storage(16);
        assert_eq!(c.near_memory_accelerators, 8);
        assert_eq!(c.near_storage_accelerators, 16);
    }

    #[test]
    #[should_panic(expected = "no accelerators")]
    fn degenerate_config_rejected() {
        let mut c = SystemConfig::paper_table2();
        c.onchip_accelerators = 0;
        c.near_memory_accelerators = 0;
        c.near_storage_accelerators = 0;
        c.validate();
    }
}
