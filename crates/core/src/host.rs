//! Host-side query arrival and batching.
//!
//! The paper assumes "user query inputs are sufficiently frequent for
//! batched processing in order to improve the throughput of the system".
//! This module makes that assumption a model: queries arrive as a stream
//! (deterministic or exponential inter-arrivals), a [`Batcher`] closes a
//! batch when it is full or a deadline expires, and [`drive`] replays the
//! resulting batch schedule through a [`crate::Pipeline`], reporting
//! *per-query* end-to-end latency (arrival → job completion) instead of the
//! per-batch numbers the rest of the workspace reports.
//!
//! This is what turns the paper's throughput statement into an operating
//! curve: as offered load approaches the pipeline's bottleneck-stage
//! service rate, queueing delay takes over — and the proper ReACH mapping
//! sustains ~4.5x the arrival rate of the on-chip baseline before it does.

use crate::api::Pipeline;
use crate::machine::Machine;
use reach_sim::{SimDuration, SimTime};

// The arrival-process family grew into the open-loop serving layer; it
// lives in [`crate::traffic`] now and is re-exported here so existing
// `reach::host::ArrivalProcess` callers keep compiling.
pub use crate::traffic::ArrivalProcess;

/// Groups query arrivals into batches.
#[derive(Clone, Copy, Debug)]
pub struct Batcher {
    /// Queries per batch.
    pub batch_size: usize,
    /// A batch closes after this long even if not full (tail-latency
    /// guard); `None` waits for a full batch.
    pub max_wait: Option<SimDuration>,
}

/// One formed batch: when it closed and which arrivals it carries.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FormedBatch {
    /// The instant the batch was dispatched to the hierarchy.
    pub ready_at: SimTime,
    /// Arrival instants of the member queries.
    pub arrivals: Vec<SimTime>,
}

impl Batcher {
    /// Forms batches from a sorted arrival sequence.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` is zero or arrivals are unsorted.
    #[must_use]
    pub fn form(&self, arrivals: &[SimTime]) -> Vec<FormedBatch> {
        assert!(self.batch_size > 0, "Batcher: zero batch size");
        assert!(
            arrivals.windows(2).all(|w| w[0] <= w[1]),
            "Batcher: arrivals must be sorted"
        );
        let mut batches = Vec::new();
        let mut current: Vec<SimTime> = Vec::new();
        for &t in arrivals {
            // Close the pending batch first if its deadline passed before
            // this arrival.
            if let (Some(wait), Some(&first)) = (self.max_wait, current.first()) {
                let deadline = first + wait;
                if t > deadline && !current.is_empty() {
                    batches.push(FormedBatch {
                        ready_at: deadline,
                        arrivals: std::mem::take(&mut current),
                    });
                }
            }
            current.push(t);
            if current.len() == self.batch_size {
                batches.push(FormedBatch {
                    ready_at: t,
                    arrivals: std::mem::take(&mut current),
                });
            }
        }
        if !current.is_empty() {
            let first = *current.first().expect("non-empty");
            let ready = match self.max_wait {
                Some(wait) => first + wait,
                None => *current.last().expect("non-empty"),
            };
            batches.push(FormedBatch {
                ready_at: ready,
                arrivals: current,
            });
        }
        batches
    }
}

/// Per-query latency statistics of a driven run.
#[derive(Clone, Debug)]
pub struct QueryLatencyReport {
    /// Queries served.
    pub queries: usize,
    /// Batches dispatched.
    pub batches: usize,
    /// Mean arrival-to-completion latency over all queries.
    pub mean: SimDuration,
    /// Worst query latency.
    pub max: SimDuration,
    /// The underlying machine report.
    pub run: crate::report::RunReport,
}

/// Replays `batches` through `pipeline` on `machine`, submitting each batch
/// job at its formation instant, and reports per-query latency.
///
/// # Panics
///
/// Panics if `batches` is empty or job completions cannot be matched to
/// batches (internal error).
#[must_use]
pub fn drive(
    pipeline: &Pipeline,
    machine: &mut Machine,
    batches: &[FormedBatch],
) -> QueryLatencyReport {
    assert!(!batches.is_empty(), "host::drive: no batches");
    for (i, b) in batches.iter().enumerate() {
        let (job, works) = pipeline.job_for_batch(i as u64);
        machine.submit_at(b.ready_at, job, works);
    }
    let run = machine.run();
    assert_eq!(run.jobs as usize, batches.len(), "lost a batch");

    // Completion instants: submission + per-job latency, in job order.
    let mut total = SimDuration::ZERO;
    let mut worst = SimDuration::ZERO;
    let mut queries = 0usize;
    for (b, complete) in batches.iter().zip(run.job_completions()) {
        for &arrival in &b.arrivals {
            let lat = complete.since(arrival);
            total += lat;
            worst = worst.max(lat);
            queries += 1;
        }
    }
    QueryLatencyReport {
        queries,
        batches: batches.len(),
        mean: total / queries as u64,
        max: worst,
        run,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> SimDuration {
        SimDuration::from_ms(n)
    }
    fn at(n: u64) -> SimTime {
        SimTime::ZERO + ms(n)
    }

    #[test]
    fn uniform_arrivals_are_evenly_spaced() {
        let a = ArrivalProcess::Uniform { gap: ms(5) }.arrivals(4);
        assert_eq!(a, vec![at(0), at(5), at(10), at(15)]);
    }

    #[test]
    fn poisson_arrivals_are_sorted_and_reproducible() {
        let p = ArrivalProcess::Poisson {
            mean_gap: ms(2),
            seed: 9,
        };
        let a = p.arrivals(100);
        let b = p.arrivals(100);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
        // Mean gap within 3x of nominal for 100 samples.
        let span = a.last().unwrap().since(a[0]).as_ms_f64();
        assert!(span > 60.0 && span < 600.0, "span {span} ms");
    }

    #[test]
    fn batcher_closes_on_size() {
        let arrivals: Vec<SimTime> = (0..6).map(at).collect();
        let b = Batcher {
            batch_size: 3,
            max_wait: None,
        }
        .form(&arrivals);
        assert_eq!(b.len(), 2);
        assert_eq!(b[0].ready_at, at(2));
        assert_eq!(b[1].ready_at, at(5));
        assert_eq!(b[0].arrivals.len(), 3);
    }

    #[test]
    fn batcher_closes_on_deadline() {
        // Arrivals at 0 and 100 ms with a 10 ms deadline: the first batch
        // closes at 10 ms with one query.
        let arrivals = vec![at(0), at(100)];
        let b = Batcher {
            batch_size: 16,
            max_wait: Some(ms(10)),
        }
        .form(&arrivals);
        assert_eq!(b.len(), 2);
        assert_eq!(b[0].ready_at, at(10));
        assert_eq!(b[0].arrivals, vec![at(0)]);
        assert_eq!(b[1].ready_at, at(110));
    }

    #[test]
    fn trailing_partial_batch_without_deadline_closes_at_last_arrival() {
        let arrivals = vec![at(0), at(1)];
        let b = Batcher {
            batch_size: 16,
            max_wait: None,
        }
        .form(&arrivals);
        assert_eq!(b.len(), 1);
        assert_eq!(b[0].ready_at, at(1));
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_arrivals_rejected() {
        let _ = Batcher {
            batch_size: 2,
            max_wait: None,
        }
        .form(&[at(5), at(1)]);
    }
}
