//! Open-loop traffic serving: arrival processes and admission control.
//!
//! Everything before this module is closed-loop — a fixed number of batches
//! submitted up front, so the machine always has work and latency reflects
//! only the pipeline. Serving real traffic is open-loop: arrivals keep
//! coming whether or not the hierarchy keeps up, and the interesting curve
//! is latency (and rejections) versus *offered load*. This module supplies
//! the two missing pieces:
//!
//! * [`ArrivalProcess`] — deterministic arrival-instant generators
//!   (uniform, Poisson, MMPP-style on/off bursts, recorded traces), every
//!   stochastic variant drawn from [`reach_sim::rng`] streams so a run
//!   replays bit-for-bit from its seed;
//! * [`OpenLoop`] — a job source that submits one pipeline batch per
//!   arrival through a *bounded admission queue*
//!   ([`Machine::submit_at_bounded`]): an arrival that finds `queue_depth`
//!   jobs already in flight is rejected and counted, not queued forever —
//!   which is what keeps a past-saturation simulation finite.
//!
//! The per-stage and end-to-end latency distributions of the admitted jobs
//! come out of the machine's [`reach_sim::LatencyHistogram`] telemetry
//! (`latency.job.*` / `latency.stage.*` counters in the metrics snapshot).

use crate::api::Pipeline;
use crate::machine::Machine;
use crate::report::RunReport;
use rand::rngs::StdRng;
use rand::Rng;
use reach_sim::{SimDuration, SimTime};

/// An arrival process: generates the instants at which queries (or query
/// batches) reach the host. All variants are deterministic functions of
/// their parameters — the stochastic ones embed their seed.
#[derive(Clone, Debug)]
pub enum ArrivalProcess {
    /// Fixed inter-arrival gap.
    Uniform {
        /// Time between consecutive queries.
        gap: SimDuration,
    },
    /// Poisson arrivals (exponential gaps) with the given mean gap,
    /// generated deterministically from a seed.
    Poisson {
        /// Mean time between queries.
        mean_gap: SimDuration,
        /// RNG seed.
        seed: u64,
    },
    /// MMPP-style on/off bursts: during an ON period arrivals are Poisson
    /// with mean gap `on_gap`; ON-period and OFF-period lengths are
    /// themselves exponential with means `burst` and `idle`. The long-run
    /// rate is `(burst / (burst + idle)) / on_gap`, delivered in clumps.
    Bursty {
        /// Mean inter-arrival gap while a burst is on.
        on_gap: SimDuration,
        /// Mean ON-period (burst) length.
        burst: SimDuration,
        /// Mean OFF-period (idle) length between bursts.
        idle: SimDuration,
        /// RNG seed.
        seed: u64,
    },
    /// Trace-driven: replays recorded inter-arrival gaps verbatim, cycling
    /// from the start if more arrivals are requested than the trace holds.
    Trace {
        /// Inter-arrival gaps, applied in order from `SimTime::ZERO`.
        gaps: Vec<SimDuration>,
    },
}

/// One exponential draw with the given mean; strictly positive because the
/// uniform sample is drawn from `[EPSILON, 1)`.
fn exp_gap(rng: &mut StdRng, mean: SimDuration) -> SimDuration {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    SimDuration::from_secs_f64(-u.ln() * mean.as_secs_f64())
}

impl ArrivalProcess {
    /// Generates the arrival instants of `count` queries, sorted ascending.
    ///
    /// # Panics
    ///
    /// Panics on a [`ArrivalProcess::Trace`] with no gaps.
    #[must_use]
    pub fn arrivals(&self, count: usize) -> Vec<SimTime> {
        match self {
            ArrivalProcess::Uniform { gap } => (0..count as u64)
                .map(|i| SimTime::ZERO + gap.scaled(i))
                .collect(),
            ArrivalProcess::Poisson { mean_gap, seed } => {
                let mut rng = reach_sim::rng::derived(*seed, "arrivals");
                let mut t = SimTime::ZERO;
                (0..count)
                    .map(|_| {
                        t += exp_gap(&mut rng, *mean_gap);
                        t
                    })
                    .collect()
            }
            ArrivalProcess::Bursty {
                on_gap,
                burst,
                idle,
                seed,
            } => {
                let mut rng = reach_sim::rng::derived(*seed, "arrivals-bursty");
                let mut t = SimTime::ZERO;
                let mut window_end = t + exp_gap(&mut rng, *burst);
                let mut out = Vec::with_capacity(count);
                while out.len() < count {
                    let next = t + exp_gap(&mut rng, *on_gap);
                    if next <= window_end {
                        // Still inside the burst.
                        t = next;
                        out.push(t);
                    } else {
                        // The burst ended first: sit out an idle period,
                        // then open the next burst window.
                        let reopen = window_end + exp_gap(&mut rng, *idle);
                        t = reopen;
                        window_end = reopen + exp_gap(&mut rng, *burst);
                    }
                }
                out
            }
            ArrivalProcess::Trace { gaps } => {
                assert!(!gaps.is_empty(), "ArrivalProcess::Trace: empty gap trace");
                let mut t = SimTime::ZERO;
                (0..count)
                    .map(|i| {
                        t += gaps[i % gaps.len()];
                        t
                    })
                    .collect()
            }
        }
    }

    /// Records this process as a replayable trace: the inter-arrival gaps
    /// of its first `count` arrivals. `Trace { gaps: p.record_trace(n) }`
    /// replays `p`'s first `n` arrivals bit-for-bit.
    #[must_use]
    pub fn record_trace(&self, count: usize) -> Vec<SimDuration> {
        let instants = self.arrivals(count);
        let mut prev = SimTime::ZERO;
        instants
            .into_iter()
            .map(|t| {
                let gap = t.since(prev);
                prev = t;
                gap
            })
            .collect()
    }
}

/// An open-loop job source: `offered` arrivals drawn from `arrival`, each
/// submitting one pipeline batch through an admission queue bounded at
/// `queue_depth` in-flight jobs.
#[derive(Clone, Debug)]
pub struct OpenLoop {
    /// When batches arrive.
    pub arrival: ArrivalProcess,
    /// Total batch arrivals offered (admitted + rejected).
    pub offered: usize,
    /// Maximum jobs in flight before arrivals bounce.
    pub queue_depth: usize,
}

/// What became of an open-loop serving run.
#[derive(Clone, Debug)]
pub struct TrafficReport {
    /// Arrivals offered.
    pub offered: usize,
    /// Arrivals admitted and simulated to completion.
    pub admitted: u64,
    /// Arrivals rejected at the admission queue.
    pub rejected: u64,
    /// The underlying machine report (admitted jobs only).
    pub run: RunReport,
}

impl OpenLoop {
    /// Serves the offered arrivals through `pipeline` on `machine`: one
    /// [`Pipeline::job_for_batch`] job per arrival, submitted via
    /// [`Machine::submit_at_bounded`], then runs the machine to completion.
    ///
    /// # Panics
    ///
    /// Panics if `offered` or `queue_depth` is zero.
    #[must_use]
    pub fn serve(&self, pipeline: &Pipeline, machine: &mut Machine) -> TrafficReport {
        assert!(self.offered > 0, "OpenLoop::serve: zero offered arrivals");
        for (i, at) in self.arrival.arrivals(self.offered).into_iter().enumerate() {
            let (job, works) = pipeline.job_for_batch(i as u64);
            machine.submit_at_bounded(at, job, works, self.queue_depth);
        }
        let run = machine.run();
        let rejected = run.gam.jobs_rejected;
        assert_eq!(
            run.jobs + rejected,
            self.offered as u64,
            "OpenLoop::serve: offered arrivals neither completed nor rejected"
        );
        TrafficReport {
            offered: self.offered,
            admitted: run.jobs,
            rejected,
            run,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> SimDuration {
        SimDuration::from_ms(n)
    }

    #[test]
    fn bursty_arrivals_are_sorted_reproducible_and_clumped() {
        let p = ArrivalProcess::Bursty {
            on_gap: ms(1),
            burst: ms(20),
            idle: ms(200),
            seed: 11,
        };
        let a = p.arrivals(200);
        assert_eq!(a, p.arrivals(200));
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
        // Burstiness: with 1 ms on-gaps separated by ~200 ms idles, the
        // largest gap dwarfs the median gap.
        let gaps: Vec<u64> = a.windows(2).map(|w| w[1].since(w[0]).as_ps()).collect();
        let mut sorted = gaps.clone();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2];
        let max = *sorted.last().unwrap();
        assert!(
            max > 10 * median.max(1),
            "no burst structure: median {median} ps, max {max} ps"
        );
    }

    #[test]
    fn trace_replays_and_cycles() {
        let trace = ArrivalProcess::Trace {
            gaps: vec![ms(3), ms(1)],
        };
        let a = trace.arrivals(5);
        let at = |n: u64| SimTime::ZERO + ms(n);
        assert_eq!(a, vec![at(3), at(4), at(7), at(8), at(11)]);
    }

    #[test]
    fn recorded_trace_replays_any_process_bit_for_bit() {
        let bursty = ArrivalProcess::Bursty {
            on_gap: ms(2),
            burst: ms(30),
            idle: ms(100),
            seed: 5,
        };
        let trace = ArrivalProcess::Trace {
            gaps: bursty.record_trace(64),
        };
        assert_eq!(bursty.arrivals(64), trace.arrivals(64));
    }

    #[test]
    #[should_panic(expected = "empty gap trace")]
    fn empty_trace_rejected() {
        let _ = ArrivalProcess::Trace { gaps: vec![] }.arrivals(1);
    }
}
