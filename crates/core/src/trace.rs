//! Execution traces in Chrome trace-event format.
//!
//! The machine can record every task execution, DMA transfer and status
//! poll as a timeline event; [`Trace::to_chrome_json`] serializes the
//! recording in the `chrome://tracing` / Perfetto JSON array format, with
//! one process row per hierarchy level and one thread row per accelerator
//! instance — the GAM schedule, visible.
//!
//! The serializer is hand-rolled (the format is a flat JSON array of small
//! objects) so the workspace keeps its minimal dependency set.

use reach_sim::{SimDuration, SimTime};

/// What kind of activity an event records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// A task executing on an accelerator.
    Task,
    /// A GAM-initiated DMA transfer.
    Dma,
    /// A status-poll round trip.
    Poll,
}

impl TraceKind {
    fn category(self) -> &'static str {
        match self {
            TraceKind::Task => "task",
            TraceKind::Dma => "dma",
            TraceKind::Poll => "poll",
        }
    }
}

/// One complete-duration event.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Display name (stage or transfer description).
    pub name: String,
    /// Activity kind.
    pub kind: TraceKind,
    /// Row group (hierarchy level name).
    pub track: String,
    /// Lane within the group (accelerator index; 0 for transfers).
    pub lane: usize,
    /// Start instant.
    pub start: SimTime,
    /// Duration.
    pub duration: SimDuration,
}

/// A recorded timeline.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// An empty trace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event.
    pub fn record(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    /// Recorded events in insertion order.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Serializes to the Chrome trace-event JSON array format (micro-second
    /// timestamps, `X` complete events). Load the output in
    /// `chrome://tracing` or <https://ui.perfetto.dev>.
    #[must_use]
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("[\n");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str(&format!(
                "  {{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":\"{}\",\"tid\":{}}}",
                escape(&e.name),
                e.kind.category(),
                e.start.as_us_f64(),
                e.duration.as_us_f64(),
                escape(&e.track),
                e.lane
            ));
        }
        out.push_str("\n]\n");
        out
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut t = Trace::new();
        t.record(TraceEvent {
            name: "feature-extraction".into(),
            kind: TraceKind::Task,
            track: "on-chip".into(),
            lane: 0,
            start: SimTime::from_ps(1_000_000),
            duration: SimDuration::from_us(100),
        });
        t.record(TraceEvent {
            name: "db \"stage\"".into(),
            kind: TraceKind::Dma,
            track: "transfers".into(),
            lane: 0,
            start: SimTime::ZERO,
            duration: SimDuration::from_ns(500),
        });
        t
    }

    #[test]
    fn chrome_json_shape() {
        let json = sample().to_chrome_json();
        assert!(json.starts_with("[\n"));
        assert!(json.trim_end().ends_with(']'));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"cat\":\"task\""));
        assert!(json.contains("\"cat\":\"dma\""));
        // 1 us start, 100 us duration.
        assert!(json.contains("\"ts\":1.000"));
        assert!(json.contains("\"dur\":100.000"));
        // Exactly two objects.
        assert_eq!(json.matches("{\"name\"").count(), 2);
    }

    #[test]
    fn strings_are_escaped() {
        let json = sample().to_chrome_json();
        assert!(json.contains("db \\\"stage\\\""));
        assert_eq!(escape("a\\b\"c\n"), "a\\\\b\\\"c\\u000a");
    }

    #[test]
    fn rows_group_by_level_and_instance() {
        // The machine uses the level name as pid and the instance index as
        // tid, so the viewer shows one process row per hierarchy level and
        // one thread row per accelerator instance.
        let mut t = Trace::new();
        for (track, lane) in [("on-chip", 0), ("near-storage", 0), ("near-storage", 1)] {
            t.record(TraceEvent {
                name: "task".into(),
                kind: TraceKind::Task,
                track: track.into(),
                lane,
                start: SimTime::ZERO,
                duration: SimDuration::from_ns(1),
            });
        }
        let json = t.to_chrome_json();
        assert_eq!(json.matches("\"pid\":\"near-storage\"").count(), 2);
        assert_eq!(json.matches("\"pid\":\"on-chip\"").count(), 1);
        assert!(json.contains("\"pid\":\"near-storage\",\"tid\":0}"));
        assert!(json.contains("\"pid\":\"near-storage\",\"tid\":1}"));
    }

    #[test]
    fn accessors() {
        let t = sample();
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.events()[0].lane, 0);
        assert!(Trace::new().is_empty());
    }
}
