//! The full-system machine model.
//!
//! `Machine` wires every substrate together — host memory controller and
//! LLC, the near-memory controller with AIM modules and the AIMbus, the
//! host PCIe switch with its NVMe near-storage units, the FPGA slots at all
//! three levels — and drives the [`Gam`] state machine over a deterministic
//! event queue. GAM actions are *priced* against resource calendars, so
//! queueing, saturation and cross-stage interference come out of contention
//! rather than closed-form formulas.
//!
//! ## Task pricing
//!
//! A dispatched task's duration is `max(compute, data)`:
//!
//! * compute comes from the kernel's MAC-rate model
//!   ([`reach_accel::KernelSpec::compute_time`]),
//! * data depends on the level x access-pattern pair, e.g. an on-chip
//!   `Stream` is priced against the host channels *and* the coherent-path
//!   effective rate, a near-memory `Stream` against the module's own DIMM,
//!   a near-storage `Gather` against flash page latency, queue depth and the
//!   kernel's datapath width.
//!
//! ## Completion observation
//!
//! On-chip tasks complete through the coherent interconnect at their true
//! finish time. Near-memory and near-storage tasks are observed *by status
//! poll*: the GAM sends a status packet when the estimated runtime elapses,
//! and an unfinished task answers with a new wait time — so a task's
//! effective latency is quantized by the polling protocol, exactly as in the
//! paper's Figure 5 design.

use crate::blueprint::MachineBlueprint;
use crate::config::SystemConfig;
use crate::report::{RunReport, StageSummary};
use crate::telemetry::{level_slug, MachineMetrics};
use crate::trace::{Trace, TraceEvent, TraceKind};
use crate::work::{DataAccess, TaskWork};
use reach_accel::{Accelerator, AcceleratorId, ComputeLevel, TemplateRegistry};
use reach_energy::{EnergyLedger, EnergyPresets, SystemComponent};
use reach_gam::manager::{DmaId, Gam, GamAction};
use reach_gam::{Job, JobId, TaskId, TenantLedger};
use reach_mem::{
    AccessKind, AimBus, AimModule, MemoryController, Noc, NocConfig, NocPort, Tlb, TlbConfig,
};
use reach_sim::{EventQueue, LatencyHistogram, SimDuration, SimTime, Symbol};
use reach_storage::{NearStorageDevice, PcieSwitch};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Events the machine schedules for itself.
#[derive(Clone, Debug)]
enum Event {
    /// An on-chip task reached its true completion.
    TaskDone { task: TaskId },
    /// A GAM status poll fires for an off-chip task.
    Poll { task: TaskId },
    /// A GAM-initiated DMA finished.
    DmaDone { id: DmaId },
    /// A deferred job submission (host-side arrival) comes due.
    SubmitJob { index: usize },
}

/// Per-stage usage accounting used to build the energy ledger.
#[derive(Clone, Debug, Default)]
struct StageAcct {
    acc_active_j: f64,
    acc_busy: SimDuration,
    tasks: u64,
    window: Option<(SimTime, SimTime)>,
    cache_accesses: u64,
    dram_bytes: u64,
    dram_activations: u64,
    ssd_bytes: u64,
    ssd_busy: SimDuration,
    interconnect_bytes: u64,
    pcie_bytes: u64,
}

impl StageAcct {
    fn widen(&mut self, start: SimTime, end: SimTime) {
        self.window = Some(match self.window {
            None => (start, end),
            Some((s, e)) => (s.min(start), e.max(end)),
        });
    }
}

/// Per-task state, flattened to `Copy` fields so the dispatch path reads it
/// without cloning anything.
struct TaskMeta {
    macs: u64,
    access: DataAccess,
    stage: Symbol,
    /// Registry index of the task's kernel, resolved once at submit time so
    /// dispatch never repeats the string lookup.
    kernel: usize,
    /// Owning job, so task completion can look up the submission instant
    /// for the per-stage latency histograms.
    job: JobId,
    actual_finish: Option<SimTime>,
    acc: Option<AcceleratorId>,
}

/// A host-side arrival waiting for its submission instant, with the
/// admission-queue bound it must clear (if any).
struct DeferredJob {
    job: Job,
    /// `Some(depth)`: reject the arrival if `depth` jobs are already in
    /// flight when it comes due. `None`: always admit.
    limit: Option<usize>,
}

struct DmaMeta {
    /// Stage the transfer was billed to (kept for debugging dumps).
    #[allow(dead_code)]
    stage: Symbol,
}

/// The assembled ReACH machine.
///
/// See the crate-level docs for a runnable example.
pub struct Machine {
    cfg: SystemConfig,
    presets: EnergyPresets,
    registry: Arc<TemplateRegistry>,
    host_mc: MemoryController,
    nm_mc: MemoryController,
    noc: Noc,
    onchip_tlb: Tlb,
    aim_modules: Vec<AimModule>,
    aimbus: AimBus,
    host_switch: PcieSwitch,
    ns_devices: Vec<NearStorageDevice>,
    accelerators: BTreeMap<AcceleratorId, Accelerator>,
    acc_stage_busy: BTreeMap<(AcceleratorId, Symbol), SimDuration>,
    gam: Gam,
    queue: EventQueue<Event>,
    tasks: HashMap<TaskId, TaskMeta>,
    dmas: HashMap<DmaId, DmaMeta>,
    job_submit: BTreeMap<JobId, SimTime>,
    job_done: BTreeMap<JobId, SimTime>,
    job_latency: Vec<SimDuration>,
    /// End-to-end job latency distribution (submission -> host interrupt).
    job_latency_hist: LatencyHistogram,
    /// Submission -> stage-completion latency distribution per stage.
    stage_latency: HashMap<Symbol, LatencyHistogram>,
    /// Symbol-keyed so per-event accounting hashes a `u32`, not a string.
    /// Report building sorts by the resolved name to keep output stable.
    stages: HashMap<Symbol, StageAcct>,
    /// Fallback stage for DMAs whose consumer task is already retired.
    sym_transfer: Symbol,
    ns_cursor: u64,
    deferred: Vec<Option<DeferredJob>>,
    /// Per-workload attribution for co-run scenarios; empty (and fully
    /// skipped) unless [`Machine::declare_tenant`] was called.
    tenants: TenantLedger,
    /// Per-tenant end-to-end job latency, parallel to the ledger's tenants.
    tenant_latency: Vec<LatencyHistogram>,
    trace: Option<Trace>,
    metrics: MachineMetrics,
    events_processed: u64,
    queue_depth_peak: usize,
}

impl Machine {
    /// Builds a machine from a configuration, with the paper's Table III
    /// template registry and Table IV energy presets.
    ///
    /// Shorthand for `MachineBlueprint::new(cfg).instantiate()` — prefer
    /// holding a [`MachineBlueprint`] when the same shape is built more
    /// than once.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (see
    /// [`SystemConfig::validate`]).
    #[must_use]
    pub fn new(cfg: SystemConfig) -> Self {
        MachineBlueprint::new(cfg).instantiate()
    }

    /// Builds a machine with a custom template registry (for user kernels).
    ///
    /// Shorthand for `MachineBlueprint::with_registry(..).instantiate()`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate.
    #[must_use]
    pub fn with_registry(cfg: SystemConfig, registry: TemplateRegistry) -> Self {
        MachineBlueprint::with_registry(cfg, registry).instantiate()
    }

    /// Assembles the runtime from blueprint parts. Only
    /// [`MachineBlueprint::instantiate`] calls this; the config has already
    /// been validated there.
    pub(crate) fn assemble(
        cfg: SystemConfig,
        registry: Arc<TemplateRegistry>,
        presets: EnergyPresets,
    ) -> Self {
        let mut gam = Gam::new(cfg.gam);
        let mut accelerators = BTreeMap::new();
        let mut register = |level: ComputeLevel, count: usize| {
            for index in 0..count {
                let id = AcceleratorId { level, index };
                gam.register_instance(id);
                accelerators.insert(id, Accelerator::new(id, cfg.reconfig_delay));
            }
        };
        register(ComputeLevel::OnChip, cfg.onchip_accelerators);
        register(ComputeLevel::NearMemory, cfg.near_memory_accelerators);
        register(ComputeLevel::NearStorage, cfg.near_storage_accelerators);

        let nm_mc_cfg = cfg.nm_mc();
        let aim_modules = (0..cfg.near_memory_accelerators)
            .map(|i| AimModule::new(i % nm_mc_cfg.channels, i / nm_mc_cfg.channels))
            .collect();

        // Pending events are bounded by in-flight work: at most one
        // completion/poll per accelerator, plus staging DMAs and deferred
        // submissions. Pre-sizing from the blueprint keeps the heap from
        // reallocating mid-run.
        let instances =
            cfg.onchip_accelerators + cfg.near_memory_accelerators + cfg.near_storage_accelerators;
        let queue_capacity = 4 * instances + 32;

        Machine {
            presets,
            registry,
            host_mc: MemoryController::new(cfg.host_mc),
            nm_mc: MemoryController::new(nm_mc_cfg),
            noc: Noc::new(NocConfig::paper_default()),
            onchip_tlb: Tlb::new(TlbConfig {
                entries: cfg.onchip_tlb_entries,
                page_bytes: 4 << 10,
            }),
            aim_modules,
            aimbus: AimBus::new(cfg.aimbus_bandwidth, cfg.aimbus_latency),
            host_switch: PcieSwitch::paper_host_io(),
            ns_devices: (0..cfg.near_storage_accelerators)
                .map(|_| NearStorageDevice::new(cfg.ns_device))
                .collect(),
            accelerators,
            acc_stage_busy: BTreeMap::new(),
            gam: Gam::new(cfg.gam),
            queue: EventQueue::with_capacity(queue_capacity),
            tasks: HashMap::new(),
            dmas: HashMap::new(),
            job_submit: BTreeMap::new(),
            job_done: BTreeMap::new(),
            job_latency: Vec::new(),
            job_latency_hist: LatencyHistogram::new(),
            stage_latency: HashMap::new(),
            stages: HashMap::new(),
            sym_transfer: Symbol::intern("transfer"),
            ns_cursor: 0,
            deferred: Vec::new(),
            tenants: TenantLedger::new(),
            tenant_latency: Vec::new(),
            trace: None,
            metrics: MachineMetrics::new(),
            events_processed: 0,
            queue_depth_peak: 0,
            cfg,
        }
        .install_gam(gam)
    }

    fn install_gam(mut self, gam: Gam) -> Self {
        self.gam = gam;
        self
    }

    /// Declares a co-run tenant owning job ids `lo..hi`, so dispatches,
    /// completions, rejections and end-to-end latency are attributed
    /// per-workload (`tenant.<name>.*` in the metrics snapshot). A machine
    /// with no declared tenants skips all attribution work.
    ///
    /// # Panics
    ///
    /// Panics on an empty or overlapping span (see
    /// [`TenantLedger::declare`]).
    pub fn declare_tenant(&mut self, name: &str, lo: u64, hi: u64) {
        self.tenants.declare(name, lo, hi);
        self.tenant_latency.push(LatencyHistogram::new());
    }

    /// The per-tenant ledger (empty unless [`Machine::declare_tenant`] ran).
    #[must_use]
    pub fn tenants(&self) -> &TenantLedger {
        &self.tenants
    }

    /// The machine configuration.
    #[must_use]
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// The template registry in use.
    #[must_use]
    pub fn registry(&self) -> &TemplateRegistry {
        &self.registry
    }

    /// Starts recording a timeline of task executions, DMA transfers and
    /// status polls (see [`crate::trace`]). Call before submitting work.
    pub fn enable_trace(&mut self) {
        self.trace.get_or_insert_with(Trace::new);
    }

    /// The recorded timeline, if tracing was enabled.
    #[must_use]
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Submits a job with the work descriptors for each of its tasks.
    /// Multiple jobs may be submitted before [`Machine::run`]; the GAM
    /// pipelines them.
    ///
    /// # Panics
    ///
    /// Panics if a task has no work descriptor or references an unknown
    /// template.
    pub fn submit(&mut self, job: Job, works: HashMap<TaskId, TaskWork>) {
        self.register_tasks(&job, &works, "Machine::submit");
        self.job_submit.insert(job.id, self.queue.now());
        self.queue.reserve(job.tasks.len());
        let actions = self.gam.submit_job(job);
        self.process_actions(actions);
        self.sample_queues();
    }

    /// Schedules a job to be submitted to the GAM at a future instant —
    /// the host-side arrival of a new query batch.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Machine::submit`], or if `at`
    /// is in the simulated past.
    pub fn submit_at(&mut self, at: SimTime, job: Job, works: HashMap<TaskId, TaskWork>) {
        self.register_tasks(&job, &works, "Machine::submit_at");
        let index = self.deferred.len();
        self.deferred.push(Some(DeferredJob { job, limit: None }));
        self.queue.push(at, Event::SubmitJob { index });
    }

    /// Schedules a job arrival behind a bounded admission queue: when `at`
    /// comes due, the job is submitted only if fewer than `queue_depth`
    /// jobs are in flight; otherwise the arrival is *rejected* — counted in
    /// [`reach_gam::manager::GamStats::jobs_rejected`] and dropped, never
    /// simulated. This is what keeps an open-loop source past saturation
    /// from queueing work without bound.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Machine::submit_at`], or if
    /// `queue_depth` is zero (a queue that admits nothing).
    pub fn submit_at_bounded(
        &mut self,
        at: SimTime,
        job: Job,
        works: HashMap<TaskId, TaskWork>,
        queue_depth: usize,
    ) {
        assert!(
            queue_depth > 0,
            "Machine::submit_at_bounded: zero admission-queue depth"
        );
        self.register_tasks(&job, &works, "Machine::submit_at_bounded");
        let index = self.deferred.len();
        self.deferred.push(Some(DeferredJob {
            job,
            limit: Some(queue_depth),
        }));
        self.queue.push(at, Event::SubmitJob { index });
    }

    /// Validates and records per-task metadata for a job about to be
    /// submitted (now or at a deferred instant). `caller` names the public
    /// entry point in panic messages.
    fn register_tasks(&mut self, job: &Job, works: &HashMap<TaskId, TaskWork>, caller: &str) {
        for t in &job.tasks {
            let work = works
                .get(&t.id)
                .unwrap_or_else(|| panic!("{caller}: no TaskWork for {}", t.id));
            let kernel = self
                .registry
                .resolve_index(t.template.resolve(), t.level)
                .unwrap_or_else(|| {
                    panic!("{caller}: unknown template {} at {}", t.template, t.level)
                });
            let stage = work.stage_label.as_deref().map_or(t.stage, Symbol::intern);
            self.tasks.insert(
                t.id,
                TaskMeta {
                    macs: work.macs,
                    access: work.access,
                    stage,
                    kernel,
                    job: job.id,
                    actual_finish: None,
                    acc: None,
                },
            );
        }
    }

    /// Drains the event queue and produces the run report.
    ///
    /// Events are drained one *instant* at a time through a reusable scratch
    /// buffer ([`EventQueue::pop_batch_into`]) instead of re-popping the
    /// heap per event. The observable order is identical to repeated `pop`:
    /// anything scheduled while a batch is processed carries a later
    /// sequence number than every event already drained.
    pub fn run(&mut self) -> RunReport {
        let mut batch: Vec<Event> = Vec::new();
        while let Some(now) = self.queue.pop_batch_into(&mut batch) {
            self.queue_depth_peak = self.queue_depth_peak.max(self.queue.len() + batch.len());
            for ev in batch.drain(..) {
                self.events_processed += 1;
                match ev {
                    Event::TaskDone { task } => {
                        self.note_stage_latency(task, now);
                        let actions = self.gam.complete(task);
                        self.record_host_interrupts(&actions, now);
                        self.process_actions(actions);
                    }
                    Event::Poll { task } => {
                        let af = self.tasks[&task]
                            .actual_finish
                            .expect("polled task has a finish time");
                        if self.trace.is_some() {
                            self.record_poll_trace(task, now);
                        }
                        if af <= now {
                            self.note_stage_latency(task, now);
                            let actions = self.gam.complete(task);
                            self.record_host_interrupts(&actions, now);
                            self.process_actions(actions);
                        } else {
                            let actions = self.gam.poll_missed(task, now, af.since(now));
                            self.process_actions(actions);
                        }
                    }
                    Event::DmaDone { id } => {
                        let actions = self.gam.dma_finished(id);
                        self.process_actions(actions);
                    }
                    Event::SubmitJob { index } => {
                        let due = self.deferred[index]
                            .take()
                            .expect("deferred job submitted twice");
                        let full = due
                            .limit
                            .is_some_and(|depth| self.gam.jobs_in_flight() >= depth);
                        if full {
                            self.reject_arrival(due.job);
                        } else {
                            self.job_submit.insert(due.job.id, now);
                            let actions = self.gam.submit_job(due.job);
                            self.process_actions(actions);
                        }
                    }
                }
                self.sample_queues();
            }
        }
        assert!(
            self.gam.idle(),
            "Machine::run: queue drained but GAM not idle"
        );
        self.report()
    }

    /// Trace recording is opt-in and string-heavy; kept out of the hot loop.
    #[cold]
    fn record_poll_trace(&mut self, task: TaskId, now: SimTime) {
        let meta = &self.tasks[&task];
        let acc = meta.acc.expect("polled task placed");
        let ev = TraceEvent {
            name: format!("poll {}", meta.stage),
            kind: TraceKind::Poll,
            track: acc.level.to_string(),
            lane: acc.index,
            start: now,
            duration: self.cfg.gam.poll_latency,
        };
        self.trace.as_mut().expect("trace enabled").record(ev);
    }

    /// Samples the GAM ready-queue depth at every level. Called after each
    /// event is fully processed, so the gauges see the settled backlog.
    fn sample_queues(&mut self) {
        let now = self.queue.now();
        for level in ComputeLevel::ALL {
            self.metrics
                .sample_queue_depth(level, now, self.gam.queue_depth(level));
        }
    }

    /// Observes one task completion into its stage's latency histogram:
    /// the distribution of job-submission -> stage-completion times, i.e.
    /// how long a query batch has been in the system when each pipeline
    /// stage finishes with it. Symbol-keyed and allocation-free after the
    /// first sample per stage.
    fn note_stage_latency(&mut self, task: TaskId, now: SimTime) {
        let meta = &self.tasks[&task];
        let submitted = self.job_submit[&meta.job];
        self.stage_latency
            .entry(meta.stage)
            .or_default()
            .record(now.since(submitted).as_ps());
    }

    /// An arrival bounced off a full admission queue: drop its task state
    /// and count the rejection. Off the hot path — below saturation this
    /// never runs.
    #[cold]
    fn reject_arrival(&mut self, job: Job) {
        for t in &job.tasks {
            self.tasks.remove(&t.id);
        }
        if !self.tenants.is_empty() {
            self.tenants.on_reject(job.id);
        }
        self.gam.reject_job();
    }

    fn record_host_interrupts(&mut self, actions: &[GamAction], now: SimTime) {
        for a in actions {
            if let GamAction::HostInterrupt { job } = a {
                let submitted = self.job_submit[job];
                let latency = now.since(submitted);
                self.job_latency.push(latency);
                self.job_latency_hist.record(latency.as_ps());
                if !self.tenants.is_empty() {
                    if let Some(i) = self.tenants.index_of(*job) {
                        self.tenant_latency[i].record(latency.as_ps());
                    }
                    self.tenants.on_complete(*job);
                }
                self.job_done.insert(*job, now);
            }
        }
    }

    fn process_actions(&mut self, actions: Vec<GamAction>) {
        for action in actions {
            match action {
                GamAction::Dispatch { acc, task } => self.dispatch(acc, task),
                GamAction::Dma {
                    id,
                    buffer: _,
                    bytes,
                    from,
                    to,
                    dest,
                } => self.start_dma(id, bytes, from, to, dest),
                GamAction::Poll { task, at, .. } => {
                    self.queue
                        .push(at.max(self.queue.now()), Event::Poll { task });
                }
                GamAction::HostInterrupt { .. } => { /* recorded by the caller */ }
            }
        }
    }

    // ----------------------------------------------------------------- //
    // Task dispatch and pricing
    // ----------------------------------------------------------------- //

    fn dispatch(&mut self, acc_id: AcceleratorId, task: TaskId) {
        let (stage, macs, access, kernel_idx, job) = {
            let meta = &self.tasks[&task];
            (meta.stage, meta.macs, meta.access, meta.kernel, meta.job)
        };
        if !self.tenants.is_empty() {
            self.tenants.on_dispatch(job);
        }
        // Resolved to a registry index at submit time; `KernelSpec` is
        // `Copy`, so dispatch performs no lookup and no heap traffic.
        let kernel = *self.registry.spec_at(kernel_idx);
        let now = self.queue.now();
        let command = self.cfg.gam.command_latency;
        let accel = self
            .accelerators
            .get_mut(&acc_id)
            .expect("dispatch to registered accelerator");
        let ready = accel.load(now + command, kernel);

        let compute = kernel.compute_time(macs);
        let io_rate = kernel.io_rate_bytes_per_sec();
        let data_end = self.price_data(acc_id, ready, &access, io_rate, stage);
        let duration = compute.max(data_end.since(ready));

        let accel = self
            .accelerators
            .get_mut(&acc_id)
            .expect("accelerator exists");
        let res = accel.run(ready, duration);
        let finish = res.ready;

        // Accounting.
        self.metrics
            .task_executed(acc_id.level, res.start, finish, duration);
        let power = kernel.power_w;
        let acct = self.stages.entry(stage).or_default();
        acct.acc_active_j += power * duration.as_secs_f64();
        acct.acc_busy += duration;
        acct.tasks += 1;
        acct.widen(res.start, finish);
        *self
            .acc_stage_busy
            .entry((acc_id, stage))
            .or_insert(SimDuration::ZERO) += duration;

        if self.trace.is_some() {
            self.record_task_trace(stage, acc_id, res.start, finish);
        }
        let meta = self.tasks.get_mut(&task).expect("task meta");
        meta.actual_finish = Some(finish);
        meta.acc = Some(acc_id);

        // Completion observation: direct for on-chip, polled otherwise.
        match acc_id.level {
            ComputeLevel::OnChip => self.queue.push(finish, Event::TaskDone { task }),
            _ => {
                let actions = self.gam.task_started(task, res.start);
                self.process_actions(actions);
            }
        }
    }

    #[cold]
    fn record_task_trace(
        &mut self,
        stage: Symbol,
        acc_id: AcceleratorId,
        start: SimTime,
        end: SimTime,
    ) {
        let ev = TraceEvent {
            name: stage.resolve().to_string(),
            kind: TraceKind::Task,
            track: acc_id.level.to_string(),
            lane: acc_id.index,
            start,
            duration: end.since(start),
        };
        self.trace.as_mut().expect("trace enabled").record(ev);
    }

    /// Prices the data movement of `access` performed from level
    /// `acc.level`, starting at `ready`; returns when the last byte is
    /// consumed. Also bills per-stage usage counters.
    fn price_data(
        &mut self,
        acc: AcceleratorId,
        ready: SimTime,
        access: &DataAccess,
        io_rate: Option<f64>,
        stage: Symbol,
    ) -> SimTime {
        let bytes = access.bytes();
        if bytes == 0 {
            return ready;
        }
        let kernel_floor = |b: u64| match io_rate {
            Some(r) => SimDuration::from_secs_f64(b as f64 / r),
            None => SimDuration::ZERO,
        };

        match (acc.level, access) {
            (_, DataAccess::None) => ready,
            (_, DataAccess::Resident { bytes }) => {
                // Consumed from the level's stream buffer / SPM.
                ready + kernel_floor(*bytes)
            }
            (ComputeLevel::OnChip, DataAccess::Stream { bytes }) => {
                let res = self.host_mc.stream(ready, 0, *bytes, AccessKind::Read);
                let noc = self
                    .noc
                    .transfer(ready, NocPort::Cache, NocPort::Accelerator, *bytes);
                let coherent =
                    SimDuration::from_secs_f64(*bytes as f64 / self.cfg.onchip_stream_rate());
                let acct = self.stages.entry(stage).or_default();
                acct.dram_bytes += bytes;
                acct.dram_activations += bytes / self.cfg.host_mc.dimm.row_bytes;
                acct.interconnect_bytes += bytes;
                acct.cache_accesses += bytes / self.cfg.cache.line_bytes;
                res.complete
                    .max(noc.complete)
                    .max(ready + coherent)
                    .max(ready + kernel_floor(*bytes))
            }
            (ComputeLevel::OnChip, DataAccess::Gather { bytes, granule }) => {
                let res = self.host_mc.stream(ready, 0, *bytes, AccessKind::Read);
                let noc = self
                    .noc
                    .transfer(ready, NocPort::Cache, NocPort::Accelerator, *bytes);
                let records = bytes / (*granule).max(1);
                let mshr = self.cfg.onchip_gather_mshr;
                // Address translation: page walks ride the gather's critical
                // path (Figure 2's TLB + page-table walkers). The touched
                // span is conservatively the whole gathered range.
                let walks = self.onchip_tlb.estimated_walks(records, *granule, *bytes);
                let latency_bound = (self.cfg.onchip_gather_latency.scaled(records)
                    + self.cfg.page_walk_latency.scaled(walks))
                .div_ceil(mshr);
                let acct = self.stages.entry(stage).or_default();
                acct.dram_bytes += bytes;
                acct.dram_activations += records;
                acct.interconnect_bytes += bytes;
                acct.cache_accesses += bytes / self.cfg.cache.line_bytes;
                res.complete
                    .max(noc.complete)
                    .max(ready + latency_bound)
                    .max(ready + kernel_floor(*bytes))
            }
            (ComputeLevel::NearMemory, DataAccess::Stream { bytes }) => {
                let res = self.nm_stream(acc.index, ready, *bytes, stage);
                res.max(ready + kernel_floor(*bytes))
            }
            (ComputeLevel::NearMemory, DataAccess::Gather { bytes, granule }) => {
                let end = self.nm_stream(acc.index, ready, *bytes, stage);
                // Each record additionally pays a closed-row activate +
                // precharge turnaround on the module's DIMM.
                let records = bytes / (*granule).max(1);
                let t = self.cfg.nm_dimm.timing;
                let per_record = t.conflict_latency();
                let overhead = per_record.scaled(records);
                let acct = self.stages.entry(stage).or_default();
                acct.dram_activations += records;
                end.max(ready + overhead).max(ready + kernel_floor(*bytes))
            }
            (ComputeLevel::NearStorage, DataAccess::Stream { bytes }) => {
                let slot = acc.index % self.ns_devices.len().max(1);
                let dev = &mut self.ns_devices[slot];
                let addr = self.ns_cursor % (dev.config().ssd.capacity / 2);
                self.ns_cursor = self.ns_cursor.wrapping_add(*bytes);
                let (res, _) = dev.device_read(ready, addr, *bytes);
                let acct = self.stages.entry(stage).or_default();
                acct.ssd_bytes += bytes;
                acct.ssd_busy += SimDuration::from_secs_f64(
                    *bytes as f64 / dev.config().ssd.internal_bandwidth().as_bytes_per_sec() as f64,
                );
                res.complete.max(ready + kernel_floor(*bytes))
            }
            (ComputeLevel::NearStorage, DataAccess::Gather { bytes, granule }) => {
                let slot = acc.index % self.ns_devices.len().max(1);
                let dev = &mut self.ns_devices[slot];
                let page = dev.config().ssd.page_bytes.max(*granule);
                let pages = bytes.div_ceil(page);
                // Queue-depth-limited random page reads.
                const QUEUE_DEPTH: u64 = 32;
                let latency_bound = dev
                    .config()
                    .ssd
                    .read_latency
                    .scaled(pages)
                    .div_ceil(QUEUE_DEPTH);
                let addr = self.ns_cursor % (dev.config().ssd.capacity / 2);
                self.ns_cursor = self.ns_cursor.wrapping_add(*bytes);
                let (res, _) = dev.device_read(ready, addr, *bytes);
                let acct = self.stages.entry(stage).or_default();
                acct.ssd_bytes += bytes;
                acct.ssd_busy += SimDuration::from_secs_f64(
                    *bytes as f64 / dev.config().ssd.internal_bandwidth().as_bytes_per_sec() as f64,
                );
                res.complete
                    .max(ready + latency_bound)
                    .max(ready + kernel_floor(*bytes))
            }
        }
    }

    /// Streams from a near-memory module's own DIMM (acquiring ownership on
    /// first use), billing DRAM usage.
    /// If the GAM did *not* reorganize the near-memory channels to tile
    /// interleaving, only `1/n` of the module's working set is local; the
    /// remainder arrives from the other modules over the shared AIMbus —
    /// the inter-DIMM path the AIM memory-access filter provides.
    fn nm_stream(&mut self, index: usize, ready: SimTime, bytes: u64, stage: Symbol) -> SimTime {
        let n = self.aim_modules.len().max(1);
        let slot = index % n;
        let (local_bytes, remote_bytes) = if self.cfg.nm_tile_interleave || n == 1 {
            (bytes, 0)
        } else {
            (bytes / n as u64, bytes - bytes / n as u64)
        };
        let module = &mut self.aim_modules[slot];
        let start = if module.owner() == reach_mem::DimmOwner::Host {
            module.acquire(ready, &mut self.nm_mc)
        } else {
            ready
        };
        let cap = self.cfg.nm_dimm.capacity;
        let mut end = start;
        let mut remaining = local_bytes;
        while remaining > 0 {
            let chunk = remaining.min(cap);
            let res = module.stream_local(end, &mut self.nm_mc, 0, chunk, AccessKind::Read);
            end = res.complete;
            remaining -= chunk;
        }
        if remote_bytes > 0 {
            // Remote lines are read on their home DIMMs (overlapped with
            // the local stream) and forwarded over the shared AIMbus.
            let bus = self.aimbus.transfer(start, remote_bytes);
            end = end.max(bus.complete);
        }
        let acct = self.stages.entry(stage).or_default();
        acct.dram_bytes += bytes;
        acct.dram_activations += bytes / self.cfg.nm_dimm.row_bytes;
        acct.interconnect_bytes += remote_bytes;
        end
    }

    // ----------------------------------------------------------------- //
    // DMA pricing
    // ----------------------------------------------------------------- //

    fn start_dma(
        &mut self,
        id: DmaId,
        bytes: u64,
        from: ComputeLevel,
        to: ComputeLevel,
        dest: TaskId,
    ) {
        let now = self.queue.now();
        // Attribute the transfer to the stage of the task that consumes it.
        let stage = self.tasks.get(&dest).map_or(self.sym_transfer, |m| m.stage);
        let done = self.price_dma(now, bytes, from, to, stage);
        self.metrics.dma(from, to, bytes);
        if self.trace.is_some() {
            self.record_dma_trace(stage, bytes, from, to, now, done);
        }
        self.dmas.insert(id, DmaMeta { stage });
        self.queue.push(done, Event::DmaDone { id });
    }

    #[cold]
    fn record_dma_trace(
        &mut self,
        stage: Symbol,
        bytes: u64,
        from: ComputeLevel,
        to: ComputeLevel,
        now: SimTime,
        done: SimTime,
    ) {
        let ev = TraceEvent {
            name: format!("{stage} ({from}->{to}, {bytes} B)"),
            kind: TraceKind::Dma,
            track: "transfers".to_string(),
            lane: 0,
            start: now,
            duration: done.since(now),
        };
        self.trace.as_mut().expect("trace enabled").record(ev);
    }

    fn price_dma(
        &mut self,
        now: SimTime,
        bytes: u64,
        from: ComputeLevel,
        to: ComputeLevel,
        stage: Symbol,
    ) -> SimTime {
        use ComputeLevel::{NearMemory, NearStorage, OnChip};
        #[allow(unused_assignments)]
        let mut end = now;
        let mut dram = 0u64;
        let mut interconnect = 0u64;
        let mut pcie = 0u64;
        let mut ssd = 0u64;

        match (from, to) {
            (OnChip, OnChip) | (NearMemory, NearMemory) | (NearStorage, NearStorage) => {
                // Same level: near-memory modules use the AIMbus; others are
                // local copies at memory speed.
                if from == NearMemory {
                    let res = self.aimbus.transfer(now, bytes);
                    interconnect += bytes;
                    end = res.complete;
                } else {
                    end = now + SimDuration::from_secs_f64(bytes as f64 / 19.2e9);
                    dram += bytes;
                }
            }
            (OnChip, NearMemory) => {
                // Forced cache write-back, read from host DRAM, write into
                // the accelerator DIMMs over the memory network.
                let rd = self.host_mc.stream(now, 0, bytes, AccessKind::Read);
                let wr = self.nm_mc.stream(now, 0, bytes, AccessKind::Write);
                dram += bytes * 2;
                interconnect += bytes;
                end = rd.complete.max(wr.complete);
            }
            (NearMemory, OnChip) => {
                let rd = self.nm_mc.stream(now, 0, bytes, AccessKind::Read);
                let wr = self.host_mc.stream(now, 0, bytes, AccessKind::Write);
                dram += bytes * 2;
                interconnect += bytes;
                end = rd.complete.max(wr.complete);
            }
            (OnChip, NearStorage) | (NearMemory, NearStorage) => {
                // Host memory -> PCIe switch -> device DRAM buffer.
                let rd = if from == OnChip {
                    self.host_mc.stream(now, 0, bytes, AccessKind::Read)
                } else {
                    self.nm_mc.stream(now, 0, bytes, AccessKind::Read)
                };
                let sw = self.host_switch.host_transfer(now, bytes);
                dram += bytes;
                interconnect += bytes;
                pcie += bytes;
                end = rd.complete.max(sw.complete);
            }
            (NearStorage, OnChip) | (NearStorage, NearMemory) => {
                // SSD -> device link -> PCIe switch -> host/nm DRAM,
                // pipelined: completion is the slowest leg.
                let dev = &mut self.ns_devices[0];
                let flash = dev.passthrough_read(now, 0, bytes.min(dev.config().ssd.capacity / 2));
                let sw = self.host_switch.host_transfer(now, bytes);
                let wr = if to == OnChip {
                    self.host_mc.stream(now, 0, bytes, AccessKind::Write)
                } else {
                    self.nm_mc.stream(now, 0, bytes, AccessKind::Write)
                };
                ssd += bytes;
                pcie += bytes;
                dram += bytes;
                interconnect += bytes;
                end = flash.complete.max(sw.complete).max(wr.complete);
            }
        }

        let acct = self.stages.entry(stage).or_default();
        acct.dram_bytes += dram;
        acct.interconnect_bytes += interconnect;
        acct.pcie_bytes += pcie;
        acct.ssd_bytes += ssd;
        if ssd > 0 {
            acct.ssd_busy += SimDuration::from_secs_f64(ssd as f64 / 12.8e9);
        }
        acct.widen(now, end);
        end
    }

    // ----------------------------------------------------------------- //
    // Reporting
    // ----------------------------------------------------------------- //

    /// Folds the hot-path telemetry with the statistics the substrate
    /// models already keep (channel traffic, SSD flash bytes, per-instance
    /// busy time) into one name-sorted snapshot.
    fn metrics_snapshot(&self) -> reach_sim::MetricsSnapshot {
        let mut snap = self.metrics.snapshot(self.queue.now());

        // Memory: host and near-memory DDR channels, NoC ports, AIMbus.
        for (prefix, mc) in [
            ("mem.ddr.host", &self.host_mc),
            ("mem.ddr.near_mem", &self.nm_mc),
        ] {
            for ch in 0..mc.config().channels {
                snap.set_counter(&format!("{prefix}.ch{ch}.bytes"), mc.channel_bytes(ch));
                snap.set_counter(
                    &format!("{prefix}.ch{ch}.busy_ps"),
                    mc.channel_busy(ch).as_ps(),
                );
            }
        }
        snap.set_counter("mem.noc.bytes", self.noc.stats().bytes);
        snap.set_counter("mem.noc.transfers", self.noc.stats().transfers);
        let port_slug = |p: NocPort| match p {
            NocPort::Cpu => "cpu",
            NocPort::Accelerator => "accel",
            NocPort::Gam => "gam",
            NocPort::Cache => "cache",
            NocPort::Pcie => "pcie",
        };
        for port in NocPort::ALL {
            snap.set_counter(
                &format!("mem.noc.port.{}.busy_ps", port_slug(port)),
                self.noc.port_busy(port).as_ps(),
            );
        }
        snap.set_counter("mem.aimbus.bytes", self.aimbus.bytes_transferred());
        snap.set_counter("mem.aimbus.busy_ps", self.aimbus.busy_time().as_ps());

        // Contention gauges: time spent queued behind *other* traffic, the
        // co-run scenarios' primary observable. Zero for solo workloads.
        snap.set_counter(
            "mem.ddr.host.contended_cycles",
            self.host_mc.contended_cycles(),
        );
        snap.set_counter(
            "mem.ddr.near_mem.contended_cycles",
            self.nm_mc.contended_cycles(),
        );
        snap.set_counter(
            "mem.ddr.contended_cycles",
            self.host_mc.contended_cycles() + self.nm_mc.contended_cycles(),
        );
        snap.set_counter("mem.aimbus.queued_ps", self.aimbus.queued_time().as_ps());

        // Storage: the shared host IO interface and each near-storage unit.
        snap.set_counter(
            "storage.pcie.host.bytes",
            self.host_switch.bytes_transferred(),
        );
        snap.set_counter(
            "storage.pcie.host.busy_ps",
            self.host_switch.busy_time().as_ps(),
        );
        for (i, dev) in self.ns_devices.iter().enumerate() {
            let ssd = dev.ssd().stats();
            snap.set_counter(&format!("storage.ssd{i}.read_bytes"), ssd.bytes_read);
            snap.set_counter(&format!("storage.ssd{i}.write_bytes"), ssd.bytes_written);
            snap.set_counter(
                &format!("storage.ssd{i}.flash_busy_ps"),
                dev.ssd().flash_busy_time().as_ps(),
            );
            snap.set_counter(
                &format!("storage.ssd{i}.link.bytes"),
                dev.device_link_bytes(),
            );
            snap.set_counter(
                &format!("storage.ssd{i}.link.busy_ps"),
                dev.device_link_busy().as_ps(),
            );
        }

        // Accelerators: per-instance busy time and reconfigurations.
        for (id, acc) in &self.accelerators {
            let slug = level_slug(id.level);
            snap.set_counter(
                &format!("accel.{slug}.{}.busy_ps", id.index),
                acc.busy_time().as_ps(),
            );
            snap.set_counter(
                &format!("accel.{slug}.{}.reconfigs", id.index),
                acc.stats().reconfigurations,
            );
        }

        // GAM aggregates.
        let g = self.gam.stats();
        snap.set_counter("gam.jobs_submitted", g.jobs_submitted);
        snap.set_counter("gam.jobs_completed", g.jobs_completed);
        snap.set_counter("gam.dispatches", g.dispatches);
        snap.set_counter("gam.polls_sent", g.polls_sent);
        snap.set_counter("gam.polls_missed", g.polls_missed);
        snap.set_counter("gam.dmas", g.dmas);
        snap.set_counter("gam.dma_bytes", g.dma_bytes);
        snap.set_counter("gam.jobs_rejected", g.jobs_rejected);

        // Latency-distribution quantiles (submission -> completion, in
        // picoseconds), from the deterministic log-bucketed histograms.
        // Emitted only once something completed, so closed-loop runs that
        // predate the traffic layer keep their exact metric schema.
        let quantiles =
            |snap: &mut reach_sim::MetricsSnapshot, prefix: &str, h: &LatencyHistogram| {
                snap.set_counter(&format!("{prefix}.samples"), h.count());
                snap.set_counter(&format!("{prefix}.p50_ps"), h.p50());
                snap.set_counter(&format!("{prefix}.p95_ps"), h.p95());
                snap.set_counter(&format!("{prefix}.p99_ps"), h.p99());
                snap.set_counter(&format!("{prefix}.p999_ps"), h.p999());
            };
        if self.job_latency_hist.count() > 0 {
            quantiles(&mut snap, "latency.job", &self.job_latency_hist);
        }
        let mut stage_hists: Vec<(&'static str, &LatencyHistogram)> = self
            .stage_latency
            .iter()
            .map(|(s, h)| (s.resolve(), h))
            .collect();
        stage_hists.sort_unstable_by_key(|&(name, _)| name);
        for (name, h) in stage_hists {
            quantiles(&mut snap, &format!("latency.stage.{name}"), h);
        }

        // Per-tenant attribution, only when a co-run scenario declared
        // tenants — single-workload runs keep their exact metric schema.
        for (i, (name, stats)) in self.tenants.iter().enumerate() {
            snap.set_counter(&format!("tenant.{name}.dispatches"), stats.dispatches);
            snap.set_counter(
                &format!("tenant.{name}.jobs_completed"),
                stats.jobs_completed,
            );
            snap.set_counter(&format!("tenant.{name}.jobs_rejected"), stats.jobs_rejected);
            if self.tenant_latency[i].count() > 0 {
                quantiles(
                    &mut snap,
                    &format!("tenant.{name}.latency"),
                    &self.tenant_latency[i],
                );
            }
        }

        // Event-loop throughput counters (fed to the experiments stderr
        // summary; never printed on stdout).
        snap.set_counter("engine.events_processed", self.events_processed);
        snap.set_counter("engine.queue_depth_peak", self.queue_depth_peak as u64);
        snap
    }

    fn report(&self) -> RunReport {
        let makespan = self.queue.now().since(SimTime::ZERO);
        let mut ledger = EnergyLedger::new();
        let p = &self.presets;

        // Usage totals for static-energy attribution weights.
        let total_ssd_bytes: u64 = self.stages.values().map(|a| a.ssd_bytes).sum();
        let total_pcie_bytes: u64 = self.stages.values().map(|a| a.pcie_bytes).sum();
        let total_dram_bytes: u64 = self.stages.values().map(|a| a.dram_bytes).sum();
        let total_ic_bytes: u64 = self.stages.values().map(|a| a.interconnect_bytes).sum();
        let total_cache: u64 = self.stages.values().map(|a| a.cache_accesses).sum();
        let total_busy: SimDuration = self.stages.values().map(|a| a.acc_busy).sum();

        // Two static-energy attribution rules (see EXPERIMENTS.md):
        // storage-path components (SSD, PCIe) are billed to the stages that
        // *use* them, weighted by bytes; always-on memory-side components
        // (DRAM background, cache leakage, MC/NoC static) are billed by
        // wall-clock stage extent.
        let weight = |part: u64, whole: u64, acct: &StageAcct| -> f64 {
            if whole > 0 {
                part as f64 / whole as f64
            } else if !total_busy.is_zero() {
                acct.acc_busy.as_ps() as f64 / total_busy.as_ps() as f64
            } else {
                0.0
            }
        };
        let total_span: f64 = self
            .stages
            .values()
            .filter_map(|a| a.window.map(|(s, e)| e.since(s).as_ps() as f64))
            .sum();
        let weight_time = |acct: &StageAcct| -> f64 {
            match acct.window {
                Some((s, e)) if total_span > 0.0 => e.since(s).as_ps() as f64 / total_span,
                _ => 0.0,
            }
        };

        // Static energy pools.
        let dimms = self.cfg.host_mc.channels * self.cfg.host_mc.dimms_per_channel
            + self.cfg.near_memory_accelerators;
        let dram_static = p.dram.energy_j(0, 0, dimms, makespan);
        let cache_static = p.cache.energy_j(0, makespan);
        let ssd_static = p
            .ssd
            .energy_j(SimDuration::ZERO, self.ns_devices.len(), makespan);
        let ic_static = p.mc_interconnect.energy_j(0, makespan);
        let pcie_static = p.pcie.energy_j(0, makespan);

        // Accelerator idle pools per level (kernel idle power x idle time).
        let mut acc_idle_j = 0.0;
        for acc in self.accelerators.values() {
            let busy = acc.busy_time().min(makespan);
            let idle = makespan - busy;
            acc_idle_j += acc.active_power_w() * p.accel_idle_fraction * idle.as_secs_f64();
        }

        // Resolve symbols once and sort by name so the report is identical
        // to the old string-keyed BTreeMap iteration order.
        let mut stage_rows: Vec<(&'static str, &StageAcct)> = self
            .stages
            .iter()
            .map(|(sym, acct)| (sym.resolve(), acct))
            .collect();
        stage_rows.sort_unstable_by_key(|&(name, _)| name);

        let mut summaries = Vec::new();
        for &(name, acct) in &stage_rows {
            // Dynamic terms.
            ledger.add(SystemComponent::Accelerator, name, acct.acc_active_j);
            ledger.add(
                SystemComponent::Cache,
                name,
                p.cache.pj_per_access * 1e-12 * acct.cache_accesses as f64,
            );
            ledger.add(
                SystemComponent::Dram,
                name,
                p.dram.pj_per_activation * 1e-12 * acct.dram_activations as f64
                    + p.dram.pj_per_byte * 1e-12 * acct.dram_bytes as f64,
            );
            let ssd_active = (p.ssd.active_w - p.ssd.idle_w).max(0.0) * acct.ssd_busy.as_secs_f64();
            ledger.add(SystemComponent::Ssd, name, ssd_active);
            ledger.add(
                SystemComponent::McInterconnect,
                name,
                p.mc_interconnect.pj_per_byte * 1e-12 * acct.interconnect_bytes as f64,
            );
            ledger.add(
                SystemComponent::Pcie,
                name,
                p.pcie.pj_per_byte * 1e-12 * acct.pcie_bytes as f64,
            );

            // Static attributions: time-extent for memory-side components,
            // usage for storage-path components.
            let _ = (total_dram_bytes, total_ic_bytes, total_cache);
            ledger.add(SystemComponent::Dram, name, dram_static * weight_time(acct));
            ledger.add(
                SystemComponent::Cache,
                name,
                cache_static * weight_time(acct),
            );
            ledger.add(
                SystemComponent::Ssd,
                name,
                ssd_static * weight(acct.ssd_bytes, total_ssd_bytes, acct),
            );
            ledger.add(
                SystemComponent::McInterconnect,
                name,
                ic_static * weight_time(acct),
            );
            ledger.add(
                SystemComponent::Pcie,
                name,
                pcie_static * weight(acct.pcie_bytes, total_pcie_bytes, acct),
            );
            if !total_busy.is_zero() {
                ledger.add(
                    SystemComponent::Accelerator,
                    name,
                    acc_idle_j * acct.acc_busy.as_ps() as f64 / total_busy.as_ps() as f64,
                );
            }

            summaries.push(StageSummary {
                name: name.to_string(),
                busy: acct.acc_busy,
                window: acct.window.unwrap_or((SimTime::ZERO, SimTime::ZERO)),
                tasks: acct.tasks,
            });
        }

        let jobs = self.job_latency.len() as u64;
        let mean = if jobs > 0 {
            SimDuration::from_ps(
                (self
                    .job_latency
                    .iter()
                    .map(|d| u128::from(d.as_ps()))
                    .sum::<u128>()
                    / u128::from(jobs)) as u64,
            )
        } else {
            SimDuration::ZERO
        };
        RunReport {
            makespan,
            jobs,
            job_latency_mean: mean,
            job_latency_last: self
                .job_latency
                .last()
                .copied()
                .unwrap_or(SimDuration::ZERO),
            stages: summaries,
            ledger,
            gam: *self.gam.stats(),
            completions: self.job_done.values().copied().collect(),
            metrics: self.metrics_snapshot(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reach_gam::JobBuilder;
    use std::collections::HashMap;

    fn machine() -> Machine {
        Machine::new(SystemConfig::paper_table2())
    }

    fn compute_job(
        job_id: u64,
        macs: u64,
        level: ComputeLevel,
        template: &str,
    ) -> (Job, HashMap<TaskId, TaskWork>) {
        let mut b = JobBuilder::new(job_id);
        let t = b.task(
            "w",
            template,
            level,
            SimDuration::from_ms(1),
            vec![],
            vec![],
            vec![],
        );
        (b.build(), HashMap::from([(t, TaskWork::compute(macs))]))
    }

    #[test]
    fn submit_at_defers_work() {
        let mut m = machine();
        let (job, works) = compute_job(0, 1_000_000_000, ComputeLevel::OnChip, "VGG16-VU9P");
        let start = SimTime::ZERO + SimDuration::from_ms(250);
        m.submit_at(start, job, works);
        let r = m.run();
        // Nothing ran before the deferred submission instant.
        assert!(r.makespan >= SimDuration::from_ms(250));
        assert_eq!(r.jobs, 1);
        assert_eq!(r.job_completions().len(), 1);
        assert!(r.job_completions()[0] >= start);
    }

    #[test]
    fn repeated_run_accumulates_jobs() {
        let mut m = machine();
        let (j0, w0) = compute_job(0, 1_000_000_000, ComputeLevel::OnChip, "VGG16-VU9P");
        m.submit(j0, w0);
        let r0 = m.run();
        assert_eq!(r0.jobs, 1);
        let (j1, w1) = compute_job(1, 1_000_000_000, ComputeLevel::OnChip, "VGG16-VU9P");
        m.submit(j1, w1);
        let r1 = m.run();
        assert_eq!(r1.jobs, 2, "reports accumulate across run() calls");
        assert!(r1.makespan > r0.makespan);
    }

    #[test]
    fn dma_paths_bill_the_right_components() {
        // NearStorage -> OnChip staging must touch SSD, PCIe and DRAM.
        let mut m = machine();
        let mut b = JobBuilder::new(0);
        let buf = b.buffer("db", 64 << 20, Some(ComputeLevel::NearStorage));
        let t = b.task(
            "stage",
            "KNN-VU9P",
            ComputeLevel::OnChip,
            SimDuration::from_ms(1),
            vec![buf],
            vec![],
            vec![],
        );
        m.submit(
            b.build(),
            HashMap::from([(t, TaskWork::gather(1_000_000, 64 << 20, 4096))]),
        );
        let r = m.run();
        for c in [
            SystemComponent::Ssd,
            SystemComponent::Pcie,
            SystemComponent::Dram,
        ] {
            assert!(
                r.ledger.component_total(c) > 0.0,
                "{c} not billed on the staging path"
            );
        }
    }

    #[test]
    fn onchip_to_nearmem_dma_skips_pcie() {
        let mut m = machine();
        let mut b = JobBuilder::new(0);
        let buf = b.buffer("tiles", 32 << 20, Some(ComputeLevel::OnChip));
        let t = b.task(
            "nm",
            "GEMM-ZCU9",
            ComputeLevel::NearMemory,
            SimDuration::from_ms(1),
            vec![buf],
            vec![],
            vec![],
        );
        m.submit(
            b.build(),
            HashMap::from([(t, TaskWork::stream(1_000_000, 32 << 20))]),
        );
        let r = m.run();
        // Dynamic PCIe energy only comes from bytes; none should have moved.
        let pcie = r.ledger.component_total(SystemComponent::Pcie);
        let static_only = reach_energy::EnergyPresets::paper_table4()
            .pcie
            .energy_j(0, r.makespan);
        assert!(
            (pcie - static_only).abs() < 1e-9,
            "PCIe billed dynamic energy on a memory-network transfer"
        );
    }

    #[test]
    fn noc_carries_onchip_stream_traffic() {
        let mut m = machine();
        let (job, works) = {
            let mut b = JobBuilder::new(0);
            let t = b.task(
                "s",
                "GEMM-VU9P",
                ComputeLevel::OnChip,
                SimDuration::from_ms(1),
                vec![],
                vec![],
                vec![],
            );
            (
                b.build(),
                HashMap::from([(t, TaskWork::stream(1, 16 << 20))]),
            )
        };
        m.submit(job, works);
        let _ = m.run();
        assert_eq!(m.noc.stats().bytes, 16 << 20);
    }

    #[test]
    #[should_panic(expected = "no TaskWork")]
    fn missing_work_descriptor_rejected() {
        let mut m = machine();
        let mut b = JobBuilder::new(0);
        b.task(
            "x",
            "VGG16-VU9P",
            ComputeLevel::OnChip,
            SimDuration::from_ms(1),
            vec![],
            vec![],
            vec![],
        );
        m.submit(b.build(), HashMap::new());
    }

    #[test]
    #[should_panic(expected = "unknown template")]
    fn unknown_template_rejected() {
        let mut m = machine();
        let mut b = JobBuilder::new(0);
        let t = b.task(
            "x",
            "NOT-A-KERNEL",
            ComputeLevel::OnChip,
            SimDuration::from_ms(1),
            vec![],
            vec![],
            vec![],
        );
        m.submit(b.build(), HashMap::from([(t, TaskWork::compute(1))]));
    }
}
