//! # reach-energy — energy models and accounting
//!
//! The paper estimates energy with a toolbox (Table IV): SDAccel post-route
//! power reports and the XPE calculator for the FPGAs, CACTI 6.5 for the
//! cache, the Micron DDR4 power calculator for DRAM, and NVMe / PCIe-switch
//! datasheets for storage and interconnect. Each of those tools reduces, for
//! a fixed configuration, to a handful of constants: active power, idle
//! power, and energy per event (access / byte / activation). This crate
//! holds those constants ([`presets`]), the per-component models
//! ([`model`]), and the component-by-stage [`ledger`] that Figures 8, 12 and
//! 13c are built from.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ledger;
pub mod model;
pub mod presets;

pub use ledger::{EnergyLedger, SystemComponent};
pub use model::{AccelEnergy, CacheEnergy, DramEnergy, LinkEnergy, SsdEnergy};
pub use presets::EnergyPresets;
