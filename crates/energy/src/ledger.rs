//! The component-by-stage energy ledger.
//!
//! Figure 8 of the paper reports energy along two axes at once: system
//! component (accelerator, cache, DRAM, SSD, MC+interconnect, PCIe) and
//! pipeline stage (feature extraction, short-list retrieval, rerank), with a
//! compute-vs-data-movement rollup. [`EnergyLedger`] is that matrix.

use std::collections::BTreeMap;
use std::fmt;

/// The component axis of Figure 8 / Figure 13c.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SystemComponent {
    /// FPGA accelerators at any level.
    Accelerator,
    /// Shared cache.
    Cache,
    /// Main-memory DIMMs (including near-storage private buffers).
    Dram,
    /// NVMe SSDs.
    Ssd,
    /// Memory controllers, memory channels, NoC and AIMbus.
    McInterconnect,
    /// PCIe links and the host IO switch.
    Pcie,
}

impl SystemComponent {
    /// All components, in the order the paper's figures list them.
    pub const ALL: [SystemComponent; 6] = [
        SystemComponent::Accelerator,
        SystemComponent::Cache,
        SystemComponent::Dram,
        SystemComponent::Ssd,
        SystemComponent::McInterconnect,
        SystemComponent::Pcie,
    ];

    /// `true` for the component the paper counts as *compute*; everything
    /// else is data movement ("energy spent on the memory hierarchy and
    /// interconnects").
    #[must_use]
    pub fn is_compute(&self) -> bool {
        matches!(self, SystemComponent::Accelerator)
    }
}

impl fmt::Display for SystemComponent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SystemComponent::Accelerator => "ACC",
            SystemComponent::Cache => "Cache",
            SystemComponent::Dram => "DRAM",
            SystemComponent::Ssd => "SSD",
            SystemComponent::McInterconnect => "MC+Interconnect",
            SystemComponent::Pcie => "PCIe",
        })
    }
}

/// A component x stage energy matrix in joules.
///
/// # Example
///
/// ```
/// use reach_energy::{EnergyLedger, SystemComponent};
///
/// let mut ledger = EnergyLedger::new();
/// ledger.add(SystemComponent::Accelerator, "feature-extraction", 2.5);
/// ledger.add(SystemComponent::Dram, "feature-extraction", 1.0);
/// ledger.add(SystemComponent::Ssd, "rerank", 4.0);
/// assert_eq!(ledger.total(), 7.5);
/// assert_eq!(ledger.stage_total("rerank"), 4.0);
/// assert!((ledger.movement_fraction() - 5.0 / 7.5).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, Default)]
pub struct EnergyLedger {
    cells: BTreeMap<(SystemComponent, String), f64>,
}

impl EnergyLedger {
    /// Creates an empty ledger.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `joules` to the (`component`, `stage`) cell.
    ///
    /// # Panics
    ///
    /// Panics if `joules` is negative or not finite.
    pub fn add(&mut self, component: SystemComponent, stage: &str, joules: f64) {
        assert!(
            joules.is_finite() && joules >= 0.0,
            "EnergyLedger::add: invalid energy {joules} for {component}/{stage}"
        );
        *self
            .cells
            .entry((component, stage.to_string()))
            .or_insert(0.0) += joules;
    }

    /// Energy in one cell.
    #[must_use]
    pub fn cell(&self, component: SystemComponent, stage: &str) -> f64 {
        self.cells
            .get(&(component, stage.to_string()))
            .copied()
            .unwrap_or(0.0)
    }

    /// Total energy of one component across stages.
    #[must_use]
    pub fn component_total(&self, component: SystemComponent) -> f64 {
        self.cells
            .iter()
            .filter(|((c, _), _)| *c == component)
            .map(|(_, &j)| j)
            .sum()
    }

    /// Total energy of one stage across components.
    #[must_use]
    pub fn stage_total(&self, stage: &str) -> f64 {
        self.cells
            .iter()
            .filter(|((_, s), _)| s == stage)
            .map(|(_, &j)| j)
            .sum()
    }

    /// Grand total in joules.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.cells.values().sum()
    }

    /// Fraction of total energy spent on data movement (everything except
    /// the accelerators) — the headline 79% of Figure 8.
    #[must_use]
    pub fn movement_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0.0 {
            return 0.0;
        }
        let compute: f64 = SystemComponent::ALL
            .iter()
            .filter(|c| c.is_compute())
            .map(|c| self.component_total(*c))
            .sum();
        (total - compute) / total
    }

    /// The stage names present, sorted.
    #[must_use]
    pub fn stages(&self) -> Vec<String> {
        let mut v: Vec<String> = self.cells.keys().map(|(_, s)| s.clone()).collect();
        v.sort();
        v.dedup();
        v
    }

    /// Every `(component, stage, joules)` cell in deterministic
    /// (component, stage) order — the serialization walk: feeding these
    /// triples back through [`EnergyLedger::add`] reconstructs the ledger
    /// bit-exactly (cells are only ever built by summing non-negative
    /// finite values, so re-adding each final sum once is lossless).
    pub fn cells(&self) -> impl Iterator<Item = (SystemComponent, &str, f64)> {
        self.cells.iter().map(|((c, s), &j)| (*c, s.as_str(), j))
    }

    /// Number of populated cells.
    #[must_use]
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Merges another ledger into this one (summing overlapping cells).
    pub fn merge(&mut self, other: &EnergyLedger) {
        for ((c, s), &j) in &other.cells {
            self.add(*c, s, j);
        }
    }
}

impl fmt::Display for EnergyLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:<18} {:>10}  breakdown", "component", "J")?;
        for c in SystemComponent::ALL {
            let total = self.component_total(c);
            if total == 0.0 {
                continue;
            }
            write!(f, "{:<18} {:>10.3}  ", c.to_string(), total)?;
            for stage in self.stages() {
                let j = self.cell(c, &stage);
                if j > 0.0 {
                    write!(f, "{stage}={j:.3} ")?;
                }
            }
            writeln!(f)?;
        }
        writeln!(
            f,
            "total {:.3} J, data movement {:.1}%",
            self.total(),
            self.movement_fraction() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EnergyLedger {
        let mut l = EnergyLedger::new();
        l.add(SystemComponent::Accelerator, "fe", 2.0);
        l.add(SystemComponent::Accelerator, "rr", 1.0);
        l.add(SystemComponent::Dram, "fe", 3.0);
        l.add(SystemComponent::Ssd, "rr", 6.0);
        l
    }

    #[test]
    fn totals_add_up() {
        let l = sample();
        assert_eq!(l.total(), 12.0);
        assert_eq!(l.component_total(SystemComponent::Accelerator), 3.0);
        assert_eq!(l.stage_total("fe"), 5.0);
        assert_eq!(l.stage_total("rr"), 7.0);
        assert_eq!(l.cell(SystemComponent::Dram, "fe"), 3.0);
        assert_eq!(l.cell(SystemComponent::Dram, "rr"), 0.0);
    }

    #[test]
    fn movement_fraction_excludes_accelerators() {
        let l = sample();
        assert!((l.movement_fraction() - 9.0 / 12.0).abs() < 1e-12);
        assert_eq!(EnergyLedger::new().movement_fraction(), 0.0);
    }

    #[test]
    fn add_accumulates() {
        let mut l = EnergyLedger::new();
        l.add(SystemComponent::Pcie, "s", 1.5);
        l.add(SystemComponent::Pcie, "s", 2.5);
        assert_eq!(l.cell(SystemComponent::Pcie, "s"), 4.0);
    }

    #[test]
    fn merge_sums_cells() {
        let mut a = sample();
        let b = sample();
        a.merge(&b);
        assert_eq!(a.total(), 24.0);
    }

    #[test]
    fn stages_sorted_unique() {
        let l = sample();
        assert_eq!(l.stages(), vec!["fe".to_string(), "rr".to_string()]);
    }

    #[test]
    fn cells_round_trip_bit_exactly() {
        let l = sample();
        assert_eq!(l.cell_count(), 4);
        let mut rebuilt = EnergyLedger::new();
        for (c, s, j) in l.cells() {
            rebuilt.add(c, s, j);
        }
        assert_eq!(rebuilt.cell_count(), l.cell_count());
        for ((c, s, a), (c2, s2, b)) in l.cells().zip(rebuilt.cells()) {
            assert_eq!((c, s), (c2, s2));
            assert_eq!(a.to_bits(), b.to_bits(), "cell {c}/{s} drifted");
        }
    }

    #[test]
    #[should_panic(expected = "invalid energy")]
    fn negative_energy_rejected() {
        EnergyLedger::new().add(SystemComponent::Dram, "x", -1.0);
    }

    #[test]
    fn display_mentions_components_and_total() {
        let text = sample().to_string();
        assert!(text.contains("ACC") && text.contains("SSD"));
        assert!(text.contains("data movement 75.0%"));
    }
}
