//! Calibrated energy constants — the paper's Table IV reduced to numbers.
//!
//! | Component | Paper's tool | Constant here |
//! |---|---|---|
//! | FPGA accelerators | SDAccel 2019.1 + XPE | Table III active power; idle = 10% of active |
//! | Cache | CACTI 6.5 | 600 pJ / 64 B access, 1.5 W leakage (2 MiB, 22 nm-class) |
//! | DRAM | Micron DDR4 power calculator | 15 nJ / activation, 60 pJ/B dynamic+I/O, 2.5 W/DIMM background |
//! | Storage | Seagate Nytro-class NVMe datasheet | 12 W active, 5 W idle per drive |
//! | PCIe | IDT 64-lane switch + PCIe PHY datasheets | 80 pJ/B, 8 W static (switch core + NVMe controller PHYs) |
//! | MC + interconnect | DDR4 channel + NoC energy surveys | 30 pJ/B, 4 W static |
//!
//! The single calibration target is the paper's Figure 8 baseline: with these
//! constants the fully-on-chip CBIR batch lands at ~78% data-movement energy
//! (paper: 79%) with rerank the dominant stage. Every other experiment then
//! reuses the same constants unchanged.

use crate::model::{AccelEnergy, CacheEnergy, DramEnergy, LinkEnergy, SsdEnergy};

/// The bundle of per-component energy models used by every experiment.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnergyPresets {
    /// Shared LLC.
    pub cache: CacheEnergy,
    /// Main-memory DIMMs.
    pub dram: DramEnergy,
    /// NVMe drives.
    pub ssd: SsdEnergy,
    /// Memory channels + NoC + AIMbus.
    pub mc_interconnect: LinkEnergy,
    /// PCIe links + host IO switch.
    pub pcie: LinkEnergy,
    /// Fraction of a kernel's active power drawn while configured but idle.
    pub accel_idle_fraction: f64,
}

impl EnergyPresets {
    /// The calibrated defaults described in the module docs.
    #[must_use]
    pub fn paper_table4() -> Self {
        EnergyPresets {
            cache: CacheEnergy {
                pj_per_access: 600.0,
                leakage_w: 1.5,
            },
            dram: DramEnergy {
                pj_per_activation: 15_000.0,
                pj_per_byte: 60.0,
                background_w_per_dimm: 2.5,
            },
            ssd: SsdEnergy {
                active_w: 12.0,
                idle_w: 5.0,
            },
            mc_interconnect: LinkEnergy {
                pj_per_byte: 30.0,
                static_w: 4.0,
            },
            pcie: LinkEnergy {
                pj_per_byte: 80.0,
                static_w: 8.0,
            },
            accel_idle_fraction: 0.10,
        }
    }

    /// An accelerator energy model for a kernel drawing `active_w` when busy.
    #[must_use]
    pub fn accel(&self, active_w: f64) -> AccelEnergy {
        AccelEnergy {
            active_w,
            idle_w: active_w * self.accel_idle_fraction,
        }
    }
}

impl Default for EnergyPresets {
    fn default() -> Self {
        Self::paper_table4()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reach_sim::SimDuration;

    #[test]
    fn presets_are_physically_sane() {
        let p = EnergyPresets::paper_table4();
        // DRAM dynamic energy per byte should exceed interconnect per byte.
        assert!(p.dram.pj_per_byte > p.mc_interconnect.pj_per_byte);
        // An SSD draws more when active than idle.
        assert!(p.ssd.active_w > p.ssd.idle_w);
        // Idle accelerators still leak some power.
        assert!(p.accel_idle_fraction > 0.0 && p.accel_idle_fraction < 1.0);
    }

    #[test]
    fn accel_helper_derives_idle_power() {
        let p = EnergyPresets::paper_table4();
        let m = p.accel(25.0);
        assert!((m.idle_w - 2.5).abs() < 1e-12);
        // Busy the whole window: pure active power.
        let e = m.energy_j(SimDuration::from_ms(100), SimDuration::from_ms(100));
        assert!((e - 2.5).abs() < 1e-9);
    }

    #[test]
    fn dram_background_dominates_light_traffic() {
        // For a mostly-idle 450 ms batch the background term should dominate
        // — the effect the paper attributes ReACH's energy win to (shorter
        // makespan = less background energy).
        let p = EnergyPresets::paper_table4();
        let e_total = p
            .dram
            .energy_j(1_000, 1 << 20, 8, SimDuration::from_ms(450));
        let e_background = p.dram.energy_j(0, 0, 8, SimDuration::from_ms(450));
        assert!(e_background / e_total > 0.9);
    }

    #[test]
    fn default_is_paper_preset() {
        assert_eq!(EnergyPresets::default(), EnergyPresets::paper_table4());
    }
}
