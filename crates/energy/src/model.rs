//! Per-component energy models.
//!
//! Every model follows the same two-term shape the paper's tools produce:
//! a *static* term (idle/leakage/background power x wall-clock time) and a
//! *dynamic* term (energy per event x event count, or active power x busy
//! time). All results are joules.

use reach_sim::SimDuration;

const PJ: f64 = 1e-12;

/// FPGA accelerator energy: Table III active power while busy, a fraction of
/// it while configured but idle.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AccelEnergy {
    /// Active (kernel running) power in watts.
    pub active_w: f64,
    /// Idle (configured, clocked, not processing) power in watts.
    pub idle_w: f64,
}

impl AccelEnergy {
    /// Energy over a window of `makespan` during which the accelerator was
    /// busy for `busy`.
    ///
    /// # Panics
    ///
    /// Panics if `busy` exceeds `makespan`.
    #[must_use]
    pub fn energy_j(&self, busy: SimDuration, makespan: SimDuration) -> f64 {
        assert!(busy <= makespan, "busy time exceeds makespan");
        let idle = makespan - busy;
        self.active_w * busy.as_secs_f64() + self.idle_w * idle.as_secs_f64()
    }
}

/// Cache energy (CACTI-style): per-access dynamic energy plus leakage.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CacheEnergy {
    /// Dynamic energy per access in picojoules.
    pub pj_per_access: f64,
    /// Leakage power in watts.
    pub leakage_w: f64,
}

impl CacheEnergy {
    /// Energy for `accesses` over a window of `makespan`.
    #[must_use]
    pub fn energy_j(&self, accesses: u64, makespan: SimDuration) -> f64 {
        self.pj_per_access * PJ * accesses as f64 + self.leakage_w * makespan.as_secs_f64()
    }
}

/// DRAM energy (Micron-power-calculator-style): per-activation and per-byte
/// dynamic terms plus per-DIMM background power.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DramEnergy {
    /// Energy per row activation in picojoules.
    pub pj_per_activation: f64,
    /// Read/write + I/O energy per byte in picojoules.
    pub pj_per_byte: f64,
    /// Background (refresh + standby) power per DIMM in watts.
    pub background_w_per_dimm: f64,
}

impl DramEnergy {
    /// Energy for the given event counts across `dimms` DIMMs over
    /// `makespan`.
    #[must_use]
    pub fn energy_j(
        &self,
        activations: u64,
        bytes: u64,
        dimms: usize,
        makespan: SimDuration,
    ) -> f64 {
        self.pj_per_activation * PJ * activations as f64
            + self.pj_per_byte * PJ * bytes as f64
            + self.background_w_per_dimm * dimms as f64 * makespan.as_secs_f64()
    }
}

/// NVMe SSD energy: active power while the flash array works, idle power
/// otherwise.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SsdEnergy {
    /// Active power per drive at full internal bandwidth, watts.
    pub active_w: f64,
    /// Idle power per drive, watts.
    pub idle_w: f64,
}

impl SsdEnergy {
    /// Energy of `drives` drives over `makespan`, of which the flash arrays
    /// were busy for `busy` in total (summed across drives).
    #[must_use]
    pub fn energy_j(&self, busy: SimDuration, drives: usize, makespan: SimDuration) -> f64 {
        let total = makespan.as_secs_f64() * drives as f64;
        let busy_s = busy.as_secs_f64().min(total);
        self.active_w * busy_s + self.idle_w * (total - busy_s)
    }
}

/// Interconnect energy (memory channels, NoC, AIMbus, PCIe links and
/// switch): per-byte dynamic energy plus static power for the always-on
/// PHYs/switch core.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkEnergy {
    /// Dynamic energy per byte in picojoules.
    pub pj_per_byte: f64,
    /// Static power in watts.
    pub static_w: f64,
}

impl LinkEnergy {
    /// Energy for `bytes` moved over a window of `makespan`.
    #[must_use]
    pub fn energy_j(&self, bytes: u64, makespan: SimDuration) -> f64 {
        self.pj_per_byte * PJ * bytes as f64 + self.static_w * makespan.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> SimDuration {
        SimDuration::from_ms(n)
    }

    #[test]
    fn accel_energy_blends_active_and_idle() {
        let m = AccelEnergy {
            active_w: 25.0,
            idle_w: 2.5,
        };
        // 100 ms busy + 100 ms idle = 2.5 J + 0.25 J.
        let e = m.energy_j(ms(100), ms(200));
        assert!((e - 2.75).abs() < 1e-9, "{e}");
    }

    #[test]
    #[should_panic(expected = "busy time exceeds makespan")]
    fn accel_energy_validates_window() {
        let _ = AccelEnergy {
            active_w: 1.0,
            idle_w: 0.0,
        }
        .energy_j(ms(2), ms(1));
    }

    #[test]
    fn cache_energy_counts_accesses_and_leakage() {
        let m = CacheEnergy {
            pj_per_access: 600.0,
            leakage_w: 1.0,
        };
        let e = m.energy_j(1_000_000, ms(100));
        // 1e6 x 600 pJ = 0.6 mJ; leakage 0.1 J.
        assert!((e - 0.1006).abs() < 1e-6, "{e}");
    }

    #[test]
    fn dram_energy_terms() {
        let m = DramEnergy {
            pj_per_activation: 15_000.0,
            pj_per_byte: 100.0,
            background_w_per_dimm: 2.0,
        };
        let e = m.energy_j(1_000, 1 << 20, 8, ms(100));
        let expect = 1_000.0 * 15e-9 + (1u64 << 20) as f64 * 100e-12 + 16.0 * 0.1;
        assert!((e - expect).abs() < 1e-9, "{e} vs {expect}");
    }

    #[test]
    fn ssd_energy_caps_busy_at_window() {
        let m = SsdEnergy {
            active_w: 12.0,
            idle_w: 5.0,
        };
        // Fully idle: 4 drives x 5 W x 0.1 s = 2 J.
        let idle = m.energy_j(SimDuration::ZERO, 4, ms(100));
        assert!((idle - 2.0).abs() < 1e-9);
        // Busy exceeding the window is clamped (defensive against summed
        // multi-drive busy slightly overshooting).
        let clamped = m.energy_j(ms(1_000), 4, ms(100));
        assert!((clamped - 12.0 * 0.4).abs() < 1e-9);
    }

    #[test]
    fn link_energy_scales_with_bytes() {
        let m = LinkEnergy {
            pj_per_byte: 80.0,
            static_w: 0.5,
        };
        let e = m.energy_j(1_000_000_000, ms(100));
        assert!((e - (0.08 + 0.05)).abs() < 1e-9, "{e}");
    }
}
