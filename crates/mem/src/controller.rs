//! Host memory controller: channels, interleaving, FR-FCFS approximation.
//!
//! The paper's GAM "reorganizes the memory space" between the CPU, the
//! on-chip accelerator and the near-memory accelerators by reprogramming the
//! memory controllers: channels serving CPU/on-chip traffic interleave at
//! cache-line granularity for aggregate bandwidth, while channels whose
//! DIMMs carry near-memory accelerators interleave at *tile* granularity so
//! each AIM module owns contiguous data (Section III-B). Both policies are
//! implemented here.
//!
//! Scheduling fidelity: a full FR-FCFS queue is approximated by (a) the
//! open-page row-hit fast path inside [`crate::ddr::Dimm`] — the "FR" part —
//! and (b) per-bank and per-bus calendars that serialize conflicting work in
//! arrival order — the "FCFS" part. The read/write queue depths in
//! [`MemoryControllerConfig`] bound how many line requests a single bulk
//! operation may pipeline at once.

use crate::ddr::{AccessKind, Dimm, DimmConfig, RowPolicy};
use reach_sim::{Reservation, SerialResource, SimDuration, SimTime};

/// How the physical address space is spread across DIMMs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Interleave {
    /// Consecutive cache lines rotate across every DIMM (high aggregate
    /// bandwidth for CPU / on-chip accelerator traffic).
    CacheLine,
    /// Contiguous tiles of the given size map to one DIMM each, so a
    /// near-memory accelerator finds whole tiles in its own DIMM.
    Tile(u64),
}

/// Memory controller configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemoryControllerConfig {
    /// Number of channels under this controller.
    pub channels: usize,
    /// DIMMs per channel.
    pub dimms_per_channel: usize,
    /// Per-DIMM geometry and timing.
    pub dimm: DimmConfig,
    /// Read request queue depth (bounds in-flight pipelining).
    pub read_queue: usize,
    /// Write request queue depth.
    pub write_queue: usize,
    /// Interleaving policy.
    pub interleave: Interleave,
}

impl MemoryControllerConfig {
    /// One of the paper's two controllers: 2 channels x 2 DIMMs, 64/64-entry
    /// read/write queues, FR-FCFS, cache-line interleave.
    #[must_use]
    pub fn paper_mc() -> Self {
        MemoryControllerConfig {
            channels: 2,
            dimms_per_channel: 2,
            dimm: DimmConfig::ddr4_16gb(),
            read_queue: 64,
            write_queue: 64,
            interleave: Interleave::CacheLine,
        }
    }
}

/// Aggregate transfer statistics for interconnect-energy accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Bytes that crossed this channel (host-side traffic only; AIM-local
    /// accesses bypass the channel).
    pub bytes: u64,
    /// Time requests spent queued behind other traffic for this channel's
    /// bus — the FCFS half of the FR-FCFS approximation made visible. Zero
    /// on an uncontended channel; co-running workloads grow it.
    pub contended: SimDuration,
}

struct Channel {
    bus: SerialResource,
    dimms: Vec<Dimm>,
    stats: ChannelStats,
}

/// A host memory controller.
///
/// # Example
///
/// ```
/// use reach_mem::{MemoryController, MemoryControllerConfig, AccessKind};
/// use reach_sim::SimTime;
///
/// let mut mc = MemoryController::new(MemoryControllerConfig::paper_mc());
/// let r = mc.stream(SimTime::ZERO, 0, 1 << 20, AccessKind::Read);
/// assert!(r.complete > SimTime::ZERO);
/// ```
pub struct MemoryController {
    config: MemoryControllerConfig,
    channels: Vec<Channel>,
}

impl MemoryController {
    /// Creates an idle controller with all DIMMs precharged.
    ///
    /// # Panics
    ///
    /// Panics if `channels` or `dimms_per_channel` is zero, or if a
    /// tile-interleave size is not a multiple of the line size.
    #[must_use]
    pub fn new(config: MemoryControllerConfig) -> Self {
        assert!(config.channels > 0, "MemoryController: need channels");
        assert!(config.dimms_per_channel > 0, "MemoryController: need DIMMs");
        if let Interleave::Tile(t) = config.interleave {
            assert!(
                t > 0 && t % config.dimm.line_bytes == 0,
                "MemoryController: tile size must be a positive multiple of the line size"
            );
        }
        let channels = (0..config.channels)
            .map(|_| Channel {
                bus: SerialResource::new(),
                dimms: (0..config.dimms_per_channel)
                    .map(|_| Dimm::new(config.dimm))
                    .collect(),
                stats: ChannelStats::default(),
            })
            .collect();
        MemoryController { config, channels }
    }

    /// The controller configuration.
    #[must_use]
    pub fn config(&self) -> &MemoryControllerConfig {
        &self.config
    }

    /// Switches the interleaving policy (the GAM does this when it
    /// reorganizes the memory space for near-memory kernels).
    pub fn set_interleave(&mut self, interleave: Interleave) {
        if let Interleave::Tile(t) = interleave {
            assert!(
                t > 0 && t % self.config.dimm.line_bytes == 0,
                "set_interleave: tile size must be a positive multiple of the line size"
            );
        }
        self.config.interleave = interleave;
    }

    /// Total number of DIMMs under this controller.
    #[must_use]
    pub fn dimm_count(&self) -> usize {
        self.config.channels * self.config.dimms_per_channel
    }

    /// Maps an address to `(channel, dimm-slot, address-within-dimm)`.
    #[must_use]
    pub fn map(&self, addr: u64) -> (usize, usize, u64) {
        let n = self.dimm_count() as u64;
        let unit = match self.config.interleave {
            Interleave::CacheLine => self.config.dimm.line_bytes,
            Interleave::Tile(t) => t,
        };
        let idx = addr / unit;
        let dimm_linear = (idx % n) as usize;
        let local = (idx / n) * unit + (addr % unit);
        (
            dimm_linear % self.config.channels,
            dimm_linear / self.config.channels,
            local,
        )
    }

    /// Accesses one line through the channel (host-side path).
    pub fn access_line(&mut self, now: SimTime, addr: u64, kind: AccessKind) -> Reservation {
        let (ch, slot, local) = self.map(addr);
        let line = self.config.dimm.line_bytes;
        let burst = self.config.dimm.timing.burst_time();
        let channel = &mut self.channels[ch];
        let dram = channel.dimms[slot].access(now, local, kind, RowPolicy::OpenPage);
        // The burst also crosses the channel bus.
        let issued = dram.complete - burst;
        let bus = channel.bus.reserve(issued, burst);
        channel.stats.bytes += line;
        channel.stats.contended += bus.queueing(issued);
        Reservation {
            start: dram.start,
            ready: bus.ready,
            complete: bus.ready,
        }
    }

    /// Streams `bytes` starting at `addr` through the host channels.
    ///
    /// Under cache-line interleave the transfer is spread across every DIMM
    /// and proceeds in parallel, bounded by each channel bus; under tile
    /// interleave it touches only the DIMMs its tiles live on. Completion is
    /// when the last byte arrives.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero.
    pub fn stream(&mut self, now: SimTime, addr: u64, bytes: u64, kind: AccessKind) -> Reservation {
        assert!(bytes > 0, "MemoryController::stream: empty transfer");
        let n = self.dimm_count() as u64;
        let mut start = SimTime::MAX;
        let mut complete = now;

        match self.config.interleave {
            Interleave::CacheLine => {
                // Even split across all DIMMs; each share streams locally and
                // its channel bus carries the channel's portion.
                let share = (bytes / n).max(self.config.dimm.line_bytes);
                for ch in 0..self.config.channels {
                    let per_channel = share * self.config.dimms_per_channel as u64;
                    let bus_time = self
                        .config
                        .dimm
                        .timing
                        .burst_time()
                        .scaled(per_channel / self.config.dimm.line_bytes);
                    let channel = &mut self.channels[ch];
                    let bus = channel.bus.reserve(now, bus_time);
                    channel.stats.bytes += per_channel;
                    channel.stats.contended += bus.queueing(now);
                    for slot in 0..self.config.dimms_per_channel {
                        let local = (addr / n).min(self.config.dimm.capacity - share);
                        let r = channel.dimms[slot].stream(
                            now,
                            local,
                            share,
                            kind,
                            RowPolicy::OpenPage,
                        );
                        start = start.min(r.start);
                        complete = complete.max(r.complete).max(bus.ready);
                    }
                }
            }
            Interleave::Tile(tile) => {
                // Walk the range tile by tile, streaming each from its DIMM.
                let mut offset = addr;
                let mut remaining = bytes;
                while remaining > 0 {
                    let in_tile = (tile - (offset % tile)).min(remaining);
                    let (ch, slot, local) = self.map(offset);
                    let bus_time = self
                        .config
                        .dimm
                        .timing
                        .burst_time()
                        .scaled(in_tile.div_ceil(self.config.dimm.line_bytes));
                    let channel = &mut self.channels[ch];
                    let bus = channel.bus.reserve(now, bus_time);
                    channel.stats.bytes += in_tile;
                    channel.stats.contended += bus.queueing(now);
                    let r =
                        channel.dimms[slot].stream(now, local, in_tile, kind, RowPolicy::OpenPage);
                    start = start.min(r.start);
                    complete = complete.max(r.complete).max(bus.ready);
                    offset += in_tile;
                    remaining -= in_tile;
                }
            }
        }

        Reservation {
            start: if start == SimTime::MAX { now } else { start },
            ready: complete,
            complete,
        }
    }

    /// Direct mutable access to a DIMM (the AIM path, bypassing the channel).
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn dimm_mut(&mut self, channel: usize, slot: usize) -> &mut Dimm {
        &mut self.channels[channel].dimms[slot]
    }

    /// Shared view of a DIMM.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    #[must_use]
    pub fn dimm(&self, channel: usize, slot: usize) -> &Dimm {
        &self.channels[channel].dimms[slot]
    }

    /// Host-side bytes that crossed channel `ch`.
    #[must_use]
    pub fn channel_bytes(&self, ch: usize) -> u64 {
        self.channels[ch].stats.bytes
    }

    /// Host-side bytes summed over all channels (memory-channel interconnect
    /// energy is billed per byte).
    #[must_use]
    pub fn total_channel_bytes(&self) -> u64 {
        self.channels.iter().map(|c| c.stats.bytes).sum()
    }

    /// Accumulated busy time of channel `ch`'s bus.
    ///
    /// # Panics
    ///
    /// Panics if `ch` is out of range.
    #[must_use]
    pub fn channel_busy(&self, ch: usize) -> SimDuration {
        self.channels[ch].bus.busy_time()
    }

    /// Time requests queued behind other traffic for channel `ch`'s bus.
    ///
    /// # Panics
    ///
    /// Panics if `ch` is out of range.
    #[must_use]
    pub fn channel_contended(&self, ch: usize) -> SimDuration {
        self.channels[ch].stats.contended
    }

    /// Bus queueing time summed over all channels.
    #[must_use]
    pub fn total_contended(&self) -> SimDuration {
        self.channels
            .iter()
            .fold(SimDuration::ZERO, |acc, c| acc + c.stats.contended)
    }

    /// [`MemoryController::total_contended`] expressed in IO-clock cycles of
    /// this controller's DIMMs (DDR4-2400: 1200 MHz), rounded down — the
    /// `ddr.contended_cycles` telemetry gauge.
    #[must_use]
    pub fn contended_cycles(&self) -> u64 {
        let cycle = self.config.dimm.timing.io_clock.cycles(1).as_ps();
        self.total_contended().as_ps() / cycle
    }

    /// Aggregate DRAM statistics over all DIMMs.
    #[must_use]
    pub fn dram_stats(&self) -> crate::ddr::DimmStats {
        let mut total = crate::ddr::DimmStats::default();
        for ch in &self.channels {
            for d in &ch.dimms {
                let s = d.stats();
                total.activations += s.activations;
                total.read_bursts += s.read_bursts;
                total.write_bursts += s.write_bursts;
                total.row_hits += s.row_hits;
                total.bytes += s.bytes;
            }
        }
        total
    }
}

impl std::fmt::Debug for MemoryController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoryController")
            .field("config", &self.config)
            .field("total_channel_bytes", &self.total_channel_bytes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mc() -> MemoryController {
        MemoryController::new(MemoryControllerConfig::paper_mc())
    }

    #[test]
    fn map_cache_line_rotates_across_dimms() {
        let m = mc();
        let mut seen = std::collections::HashSet::new();
        for i in 0..4u64 {
            let (ch, slot, _) = m.map(i * 64);
            seen.insert((ch, slot));
        }
        assert_eq!(seen.len(), 4, "4 consecutive lines hit 4 distinct DIMMs");
    }

    #[test]
    fn map_tile_keeps_tiles_contiguous() {
        let mut m = mc();
        m.set_interleave(Interleave::Tile(1 << 20));
        let (ch0, slot0, local0) = m.map(0);
        let (ch1, slot1, local1) = m.map((1 << 20) - 64);
        assert_eq!((ch0, slot0), (ch1, slot1));
        assert_eq!(local1 - local0, (1 << 20) - 64);
        let (ch2, slot2, _) = m.map(1 << 20);
        assert_ne!((ch0, slot0), (ch2, slot2));
    }

    #[test]
    fn map_local_addresses_stay_in_capacity() {
        let m = mc();
        let cap = m.config().dimm.capacity;
        // Highest host address = 4 DIMMs worth of capacity.
        let top = cap * 4 - 64;
        let (_, _, local) = m.map(top);
        assert!(local < cap);
    }

    #[test]
    fn stream_uses_aggregate_bandwidth() {
        let mut m = mc();
        let bytes: u64 = 256 << 20;
        let r = m.stream(SimTime::ZERO, 0, bytes, AccessKind::Read);
        let secs = (r.complete - SimTime::ZERO).as_secs_f64();
        let achieved = bytes as f64 / secs;
        // 2 channels x 19.2 GB/s = 38.4 GB/s aggregate; expect > 75% of it.
        assert!(achieved > 0.75 * 38.4e9, "achieved {achieved:.3e}");
        assert!(achieved < 38.4e9 * 1.001);
    }

    #[test]
    fn concurrent_streams_halve_throughput() {
        let mut m = mc();
        let bytes: u64 = 64 << 20;
        let solo = {
            let mut m2 = mc();
            m2.stream(SimTime::ZERO, 0, bytes, AccessKind::Read)
                .complete
        };
        let a = m.stream(SimTime::ZERO, 0, bytes, AccessKind::Read);
        let b = m.stream(SimTime::ZERO, 1 << 30, bytes, AccessKind::Read);
        let last = a.complete.max(b.complete);
        let ratio = last.as_ps() as f64 / solo.as_ps() as f64;
        assert!(ratio > 1.7, "channel contention expected, ratio {ratio}");
    }

    #[test]
    fn access_line_reserves_channel_bus() {
        let mut m = mc();
        let a = m.access_line(SimTime::ZERO, 0, AccessKind::Read);
        assert!(a.complete > SimTime::ZERO);
        assert_eq!(m.total_channel_bytes(), 64);
    }

    #[test]
    fn channel_bytes_track_streams() {
        let mut m = mc();
        m.stream(SimTime::ZERO, 0, 1 << 20, AccessKind::Write);
        // Even split across 2 channels.
        assert_eq!(m.channel_bytes(0), m.channel_bytes(1));
        assert_eq!(m.total_channel_bytes(), 1 << 20);
    }

    #[test]
    fn dram_stats_aggregate() {
        let mut m = mc();
        m.stream(SimTime::ZERO, 0, 1 << 20, AccessKind::Read);
        let s = m.dram_stats();
        assert_eq!(s.bytes, 1 << 20);
        assert!(s.activations > 0);
        assert_eq!(s.read_bursts, (1 << 20) / 64);
    }

    #[test]
    fn uncontended_access_records_no_queueing() {
        let mut m = mc();
        m.access_line(SimTime::ZERO, 0, AccessKind::Read);
        assert_eq!(m.total_contended(), SimDuration::ZERO);
        assert_eq!(m.contended_cycles(), 0);
    }

    #[test]
    fn concurrent_streams_accumulate_contended_time() {
        let mut m = mc();
        let bytes: u64 = 64 << 20;
        m.stream(SimTime::ZERO, 0, bytes, AccessKind::Read);
        m.stream(SimTime::ZERO, 1 << 30, bytes, AccessKind::Read);
        // The second stream found both channel buses busy, so it queued for
        // roughly the first stream's wire time.
        assert!(m.total_contended() > SimDuration::ZERO);
        assert!(m.contended_cycles() > 0);
        assert_eq!(
            m.total_contended(),
            m.channel_contended(0) + m.channel_contended(1)
        );
    }

    #[test]
    #[should_panic(expected = "tile size")]
    fn bad_tile_size_rejected() {
        let mut m = mc();
        m.set_interleave(Interleave::Tile(100)); // not a line multiple
    }

    #[test]
    fn tile_stream_touches_only_owning_dimms() {
        let mut m = mc();
        m.set_interleave(Interleave::Tile(1 << 20));
        // Stream exactly one tile: only DIMM (0,0) should see traffic.
        m.stream(SimTime::ZERO, 0, 1 << 20, AccessKind::Read);
        assert_eq!(m.dimm(0, 0).stats().bytes, 1 << 20);
        assert_eq!(m.dimm(1, 0).stats().bytes, 0);
        assert_eq!(m.dimm(0, 1).stats().bytes, 0);
    }
}
