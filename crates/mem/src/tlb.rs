//! Accelerator address translation: TLB + page-walk cost.
//!
//! Figure 2 of the paper: "virtual memory capabilities are supported by
//! implementing TLBs and page table walkers for the accelerator" (citing
//! the authors' HPCA'17 work). For streaming kernels translation is
//! invisible — one walk covers two megabytes of accesses — but for the
//! gather patterns the rerank stage produces, every touched page can miss
//! a small accelerator TLB, and the walk latency rides on the critical
//! path. This module provides the functional TLB (fully associative,
//! true-LRU) and the machine bills walk latency per miss.

use std::collections::VecDeque;

/// TLB geometry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TlbConfig {
    /// Number of entries (fully associative).
    pub entries: usize,
    /// Page size in bytes.
    pub page_bytes: u64,
}

impl TlbConfig {
    /// A 64-entry, 4 KiB-page accelerator TLB — the IOMMU-class design the
    /// paper's citation evaluates.
    #[must_use]
    pub fn accelerator_64() -> Self {
        TlbConfig {
            entries: 64,
            page_bytes: 4 << 10,
        }
    }
}

/// TLB statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// Translations that hit.
    pub hits: u64,
    /// Translations that required a page walk.
    pub misses: u64,
}

impl TlbStats {
    /// Hit fraction in `[0, 1]`; 0 when unused.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A fully associative, true-LRU translation look-aside buffer.
///
/// # Example
///
/// ```
/// use reach_mem::{Tlb, TlbConfig};
///
/// let mut tlb = Tlb::new(TlbConfig::accelerator_64());
/// assert!(!tlb.access(0x1000));      // cold miss, walk required
/// assert!(tlb.access(0x1fff));       // same page: hit
/// ```
#[derive(Clone, Debug)]
pub struct Tlb {
    config: TlbConfig,
    /// Resident page numbers, most recently used at the back.
    resident: VecDeque<u64>,
    stats: TlbStats,
}

impl Tlb {
    /// Creates an empty TLB.
    ///
    /// # Panics
    ///
    /// Panics on zero entries or a zero page size.
    #[must_use]
    pub fn new(config: TlbConfig) -> Self {
        assert!(config.entries > 0, "Tlb: zero entries");
        assert!(config.page_bytes > 0, "Tlb: zero page size");
        Tlb {
            config,
            resident: VecDeque::with_capacity(config.entries),
            stats: TlbStats::default(),
        }
    }

    /// The geometry.
    #[must_use]
    pub fn config(&self) -> &TlbConfig {
        &self.config
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &TlbStats {
        &self.stats
    }

    /// Translates the page containing `vaddr`; returns `true` on a hit.
    /// On a miss the mapping is filled (evicting the LRU entry when full)
    /// and the caller bills one page walk.
    pub fn access(&mut self, vaddr: u64) -> bool {
        let page = vaddr / self.config.page_bytes;
        if let Some(pos) = self.resident.iter().position(|&p| p == page) {
            self.resident.remove(pos);
            self.resident.push_back(page);
            self.stats.hits += 1;
            return true;
        }
        self.stats.misses += 1;
        if self.resident.len() == self.config.entries {
            self.resident.pop_front();
        }
        self.resident.push_back(page);
        false
    }

    /// Estimated page-walk count for a *random* gather of `records` records
    /// of `granule` bytes spread over `span_bytes` of address space —
    /// the closed-form the timing model uses so multi-gigabyte gathers need
    /// no per-record simulation. When the touched page set exceeds the TLB,
    /// nearly every new page misses.
    #[must_use]
    pub fn estimated_walks(&self, records: u64, granule: u64, span_bytes: u64) -> u64 {
        let pages_spanned = span_bytes.div_ceil(self.config.page_bytes).max(1);
        let records_per_page = (self.config.page_bytes / granule.max(1)).max(1);
        let touched = (records / records_per_page).min(pages_spanned);
        if touched <= self.config.entries as u64 {
            // Working set fits: each page walks once.
            touched
        } else {
            // Thrashing: one walk per page visit.
            records.div_ceil(records_per_page)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tlb(entries: usize) -> Tlb {
        Tlb::new(TlbConfig {
            entries,
            page_bytes: 4096,
        })
    }

    #[test]
    fn same_page_hits() {
        let mut t = tlb(4);
        assert!(!t.access(0));
        assert!(t.access(4095));
        assert!(!t.access(4096));
        assert_eq!(t.stats().hits, 1);
        assert_eq!(t.stats().misses, 2);
        assert_eq!(t.stats().hit_rate(), 1.0 / 3.0);
    }

    #[test]
    fn lru_eviction_order() {
        let mut t = tlb(2);
        t.access(0); // page 0
        t.access(4096); // page 1
        t.access(0); // refresh 0
        t.access(8192); // page 2 evicts page 1
        assert!(t.access(0), "page 0 should survive");
        assert!(!t.access(4096), "page 1 was LRU");
    }

    #[test]
    fn working_set_within_capacity_hits_steady_state() {
        let mut t = tlb(8);
        for round in 0..3 {
            for p in 0..8u64 {
                let hit = t.access(p * 4096);
                if round > 0 {
                    assert!(hit, "round {round} page {p} missed");
                }
            }
        }
        assert_eq!(t.stats().misses, 8);
    }

    #[test]
    fn estimated_walks_matches_regimes() {
        let t = tlb(64);
        // 32 pages touched, fits: 32 walks.
        assert_eq!(t.estimated_walks(32, 4096, 1 << 30), 32);
        // 1M records of one page each over a huge span: thrash, 1M walks.
        assert_eq!(t.estimated_walks(1 << 20, 4096, 1 << 40), 1 << 20);
        // Small records share pages: 4096 records x 64 B = 64 pages.
        assert_eq!(t.estimated_walks(4096, 64, 1 << 30), 64);
        // Span smaller than the record count implies revisits capped by span.
        assert_eq!(t.estimated_walks(1_000, 4096, 16 * 4096), 16);
    }

    #[test]
    fn estimate_agrees_with_simulation_when_fitting() {
        // Direct check: random-ish strided access over 48 pages with a
        // 64-entry TLB misses exactly 48 times.
        let mut t = tlb(64);
        for i in 0..480u64 {
            t.access((i % 48) * 4096 + (i * 97) % 4096);
        }
        assert_eq!(t.stats().misses, 48);
        assert_eq!(t.estimated_walks(480, 4096, 48 * 4096), 48);
    }
}
