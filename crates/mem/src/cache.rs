//! Set-associative write-back cache model (the shared LLC).
//!
//! The on-chip accelerator in ReACH is coherently attached to the last-level
//! cache; its working set behaviour (CNN parameters resident in SRAM vs.
//! 2.2 GB of centroids thrashing the LLC) is what pushes the short-list
//! retrieval stage off-chip in the paper. This model captures exactly that:
//! hits, misses, evictions and write-backs of a write-allocate, write-back,
//! true-LRU set-associative cache, with event counts for the energy model.

use std::collections::HashMap;

/// Geometry of a cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity: u64,
    /// Associativity (ways per set).
    pub ways: u64,
    /// Line size in bytes.
    pub line_bytes: u64,
}

impl CacheConfig {
    /// The paper's shared L2: 2 MiB, 16-way, 64 B lines.
    #[must_use]
    pub fn shared_l2_2mb() -> Self {
        CacheConfig {
            capacity: 2 << 20,
            ways: 16,
            line_bytes: 64,
        }
    }

    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly.
    #[must_use]
    pub fn sets(&self) -> u64 {
        assert!(
            self.line_bytes > 0 && self.ways > 0,
            "CacheConfig: degenerate geometry"
        );
        let lines = self.capacity / self.line_bytes;
        assert_eq!(
            lines % self.ways,
            0,
            "CacheConfig: capacity/line_bytes must be a multiple of ways"
        );
        lines / self.ways
    }
}

/// The result of a cache access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The line was present.
    Hit,
    /// The line was absent; it has been filled. If the victim was dirty its
    /// line address is returned so the caller can bill a write-back.
    Miss {
        /// Dirty victim line address that must be written back, if any.
        writeback: Option<u64>,
    },
}

impl CacheOutcome {
    /// `true` for [`CacheOutcome::Hit`].
    #[must_use]
    pub fn is_hit(&self) -> bool {
        matches!(self, CacheOutcome::Hit)
    }
}

/// Per-cache event counts for reports and the energy model.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Dirty evictions (write-backs to memory).
    pub writebacks: u64,
    /// Lines invalidated by [`Cache::flush_range`] (GAM-forced write-backs).
    pub flushed: u64,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]`; 0 when no accesses happened.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Clone, Debug)]
struct Way {
    tag: u64,
    dirty: bool,
    /// Monotonic use stamp for true LRU.
    used: u64,
}

/// A write-allocate, write-back, true-LRU set-associative cache.
///
/// # Example
///
/// ```
/// use reach_mem::{Cache, CacheConfig};
///
/// let mut llc = Cache::new(CacheConfig::shared_l2_2mb());
/// assert!(!llc.access(0x1000, false).is_hit()); // cold miss
/// assert!(llc.access(0x1000, false).is_hit());  // now resident
/// ```
#[derive(Clone, Debug)]
pub struct Cache {
    config: CacheConfig,
    sets: HashMap<u64, Vec<Way>>,
    clock: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (see [`CacheConfig::sets`]).
    #[must_use]
    pub fn new(config: CacheConfig) -> Self {
        let _ = config.sets();
        Cache {
            config,
            sets: HashMap::new(),
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// The cache geometry.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn index(&self, addr: u64) -> (u64, u64) {
        let line = addr / self.config.line_bytes;
        let sets = self.config.sets();
        (line % sets, line / sets)
    }

    /// Accesses the line containing `addr`; `write` marks the line dirty.
    ///
    /// On a miss, the line is filled (write-allocate) and the LRU way is
    /// evicted; a dirty victim's address is reported for write-back billing.
    pub fn access(&mut self, addr: u64, write: bool) -> CacheOutcome {
        self.clock += 1;
        let clock = self.clock;
        let ways = self.config.ways as usize;
        let line_bytes = self.config.line_bytes;
        let sets_count = self.config.sets();
        let (set_idx, tag) = self.index(addr);
        let set = self.sets.entry(set_idx).or_default();

        if let Some(way) = set.iter_mut().find(|w| w.tag == tag) {
            way.used = clock;
            way.dirty |= write;
            self.stats.hits += 1;
            return CacheOutcome::Hit;
        }

        self.stats.misses += 1;
        let mut writeback = None;
        if set.len() < ways {
            set.push(Way {
                tag,
                dirty: write,
                used: clock,
            });
        } else {
            let victim = set
                .iter_mut()
                .min_by_key(|w| w.used)
                .expect("non-empty set");
            if victim.dirty {
                // Reconstruct the victim's line address from tag and set.
                let line = victim.tag * sets_count + set_idx;
                writeback = Some(line * line_bytes);
                self.stats.writebacks += 1;
            }
            *victim = Way {
                tag,
                dirty: write,
                used: clock,
            };
        }
        CacheOutcome::Miss { writeback }
    }

    /// Write-backs and invalidates every resident line in `[base, base+len)`,
    /// returning the number of dirty lines that had to be written back.
    ///
    /// This is the operation the GAM performs before handing a buffer to a
    /// near-memory accelerator ("GAM forces a cache write back to memory").
    pub fn flush_range(&mut self, base: u64, len: u64) -> u64 {
        let line_bytes = self.config.line_bytes;
        let first = base / line_bytes;
        let last = (base + len).div_ceil(line_bytes);
        let mut dirty = 0;
        for line in first..last {
            let sets = self.config.sets();
            let (set_idx, tag) = (line % sets, line / sets);
            if let Some(set) = self.sets.get_mut(&set_idx) {
                if let Some(pos) = set.iter().position(|w| w.tag == tag) {
                    if set[pos].dirty {
                        dirty += 1;
                        self.stats.writebacks += 1;
                    }
                    set.remove(pos);
                    self.stats.flushed += 1;
                }
            }
        }
        dirty
    }

    /// Number of lines currently resident.
    #[must_use]
    pub fn resident_lines(&self) -> usize {
        self.sets.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 64 B = 512 B.
        Cache::new(CacheConfig {
            capacity: 512,
            ways: 2,
            line_bytes: 64,
        })
    }

    #[test]
    fn geometry_checks() {
        assert_eq!(CacheConfig::shared_l2_2mb().sets(), 2048);
        assert_eq!(tiny().config().sets(), 4);
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0, false).is_hit());
        assert!(c.access(0, false).is_hit());
        assert!(c.access(63, false).is_hit()); // same line
        assert!(!c.access(64, false).is_hit()); // next line
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Set 0 receives lines 0, 4, 8 (stride = sets * line).
        let stride = 4 * 64;
        c.access(0, false);
        c.access(stride, false);
        c.access(0, false); // refresh line 0
        c.access(2 * stride, false); // evicts line `stride`
        assert!(c.access(0, false).is_hit());
        assert!(!c.access(stride, false).is_hit());
    }

    #[test]
    fn dirty_victim_reports_writeback_address() {
        let mut c = tiny();
        let stride = 4 * 64;
        c.access(0, true); // dirty
        c.access(stride, false);
        let out = c.access(2 * stride, false); // evicts line 0 (LRU)
        assert_eq!(out, CacheOutcome::Miss { writeback: Some(0) });
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn clean_victim_no_writeback() {
        let mut c = tiny();
        let stride = 4 * 64;
        c.access(0, false);
        c.access(stride, false);
        let out = c.access(2 * stride, false);
        assert_eq!(out, CacheOutcome::Miss { writeback: None });
    }

    #[test]
    fn working_set_larger_than_capacity_thrashes() {
        let mut c = Cache::new(CacheConfig::shared_l2_2mb());
        let capacity = c.config().capacity;
        // Stream 4x the capacity twice; second pass still misses everywhere.
        for pass in 0..2 {
            for addr in (0..capacity * 4).step_by(64) {
                c.access(addr, false);
            }
            if pass == 0 {
                assert_eq!(c.stats().hits, 0);
            }
        }
        assert_eq!(c.stats().hits, 0, "LRU streaming over-capacity must thrash");
    }

    #[test]
    fn small_working_set_fits() {
        let mut c = Cache::new(CacheConfig::shared_l2_2mb());
        let half = c.config().capacity / 2;
        for _ in 0..3 {
            for addr in (0..half).step_by(64) {
                c.access(addr, false);
            }
        }
        let s = c.stats();
        // First pass misses, later passes hit.
        assert!(s.hit_rate() > 0.6, "hit rate {}", s.hit_rate());
    }

    #[test]
    fn flush_range_writes_back_dirty_lines() {
        let mut c = tiny();
        c.access(0, true);
        c.access(64, false);
        let dirty = c.flush_range(0, 128);
        assert_eq!(dirty, 1);
        assert_eq!(c.resident_lines(), 0);
        assert!(!c.access(0, false).is_hit()); // truly gone
        assert_eq!(c.stats().flushed, 2);
    }

    #[test]
    fn flush_outside_resident_range_is_noop() {
        let mut c = tiny();
        c.access(0, true);
        assert_eq!(c.flush_range(1 << 20, 4096), 0);
        assert_eq!(c.resident_lines(), 1);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Occupancy never exceeds capacity, and hits + misses equals the
        /// access count, for any access pattern.
        #[test]
        fn occupancy_and_counts_invariant(
            addrs in proptest::collection::vec(0u64..(1u64 << 14), 1..400),
        ) {
            let mut c = Cache::new(CacheConfig { capacity: 1024, ways: 4, line_bytes: 64 });
            for (i, &a) in addrs.iter().enumerate() {
                c.access(a, i % 3 == 0);
                prop_assert!(c.resident_lines() <= 16, "over capacity");
            }
            let s = c.stats();
            prop_assert_eq!(s.hits + s.misses, addrs.len() as u64);
        }

        /// Re-accessing the same address immediately is always a hit
        /// (temporal locality is never lost by an intervening fill of a
        /// different set).
        #[test]
        fn immediate_reuse_hits(addr in 0u64..(1u64 << 16)) {
            let mut c = Cache::new(CacheConfig::shared_l2_2mb());
            c.access(addr, false);
            prop_assert!(c.access(addr, true).is_hit());
            prop_assert!(c.access(addr, false).is_hit());
        }

        /// Flushing the whole address range empties the cache and reports
        /// exactly the dirty lines written.
        #[test]
        fn flush_is_complete(
            writes in proptest::collection::vec((0u64..(1u64 << 12), any::<bool>()), 1..100),
        ) {
            let mut c = Cache::new(CacheConfig { capacity: 4096, ways: 4, line_bytes: 64 });
            for &(a, w) in &writes {
                c.access(a, w);
            }
            c.flush_range(0, 1 << 12);
            prop_assert_eq!(c.resident_lines(), 0);
        }
    }

    #[test]
    fn writeback_address_roundtrips_through_index() {
        // For a larger cache, ensure reconstructed victim addresses map back
        // to the same set/tag.
        let mut c = Cache::new(CacheConfig {
            capacity: 8192,
            ways: 2,
            line_bytes: 64,
        });
        let sets = c.config().sets();
        let stride = sets * 64;
        let base = 7 * 64; // set 7
        c.access(base, true);
        c.access(base + stride, false);
        if let CacheOutcome::Miss { writeback } = c.access(base + 2 * stride, false) {
            assert_eq!(writeback, Some(base));
        } else {
            panic!("expected miss");
        }
    }
}
