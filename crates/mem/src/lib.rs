//! # reach-mem — memory-hierarchy timing models
//!
//! The main-memory substrate of the ReACH simulator:
//!
//! * [`ddr`] — DDR4 DIMM timing: banks, rows, open- vs closed-page policy,
//!   activate/CAS/precharge windows, refresh blackouts, and the event counts
//!   (activations, read/write bursts) the energy model bills.
//! * [`controller`] — the host memory controller: multiple channels, an
//!   FR-FCFS-approximating scheduling model, and the two interleaving
//!   policies the paper's GAM switches between (cache-line interleave for
//!   CPU/on-chip traffic, tile interleave for near-memory accelerators).
//! * [`cache`] — a set-associative write-back LRU cache used for the shared
//!   LLC in front of the on-chip accelerator.
//! * [`noc`] — the on-chip crossbar tying cores, accelerator, GAM and the
//!   shared cache together (Figure 2).
//! * [`tlb`] — the on-chip accelerator's address translation (TLB +
//!   page-walk estimation), also from Figure 2.
//! * [`aim`] — the accelerator-interposed-memory (AIM) modules: DIMM
//!   ownership hand-over with forced closed-row policy, the configuration /
//!   memory-access filters, and the AIMbus that lets near-memory accelerators
//!   exchange data without crossing the host memory channels.
//!
//! All models are *transaction-level*: they reserve windows on
//! [`reach_sim`] resource calendars, so channel saturation and bank conflicts
//! emerge from contention.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aim;
pub mod cache;
pub mod controller;
pub mod ddr;
pub mod noc;
pub mod tlb;

pub use aim::{AimBus, AimModule, DimmOwner};
pub use cache::{Cache, CacheConfig, CacheOutcome};
pub use controller::{Interleave, MemoryController, MemoryControllerConfig};
pub use ddr::{AccessKind, DdrTiming, Dimm, DimmConfig, RowPolicy};
pub use noc::{Noc, NocConfig, NocPort};
pub use tlb::{Tlb, TlbConfig};
