//! DDR4 DIMM timing model.
//!
//! A [`Dimm`] is a set of banks, each with an open-row register and a
//! busy-until calendar, plus a shared data bus. Accesses are issued at
//! cache-line (burst) granularity; streaming transfers use
//! [`Dimm::stream`], which reserves whole-row bursts to keep large-footprint
//! experiments fast without losing bus-contention fidelity.
//!
//! The timing parameters follow the JEDEC DDR4-2400 speed grade the paper's
//! configuration (8 DDR4 DIMMs, 2 memory controllers) implies.

use reach_sim::{Frequency, Reservation, SerialResource, SimDuration, SimTime};

/// Whether an access reads or writes the DRAM array.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A read burst.
    Read,
    /// A write burst.
    Write,
}

/// Row-buffer management policy.
///
/// The host memory controller runs open-page; an AIM module that owns a DIMM
/// enforces closed-row so the host can assume all banks are precharged when
/// control is handed back (paper, Section II-B).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum RowPolicy {
    /// Leave the row open after an access (row hits get CAS-only latency).
    #[default]
    OpenPage,
    /// Precharge immediately after every access.
    ClosedRow,
}

/// DDR4 timing parameters, in device clock cycles unless noted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DdrTiming {
    /// I/O bus frequency (the "2400" in DDR4-2400 is megatransfers/s; the
    /// bus clock is half that).
    pub io_clock: Frequency,
    /// CAS latency (column access strobe), cycles.
    pub cl: u64,
    /// Row-to-column delay, cycles.
    pub t_rcd: u64,
    /// Precharge time, cycles.
    pub t_rp: u64,
    /// Minimum row-active time, cycles.
    pub t_ras: u64,
    /// Refresh cycle time.
    pub t_rfc: SimDuration,
    /// Average refresh interval.
    pub t_refi: SimDuration,
    /// Burst length in bus transfers (8 for DDR4).
    pub burst_len: u64,
}

impl DdrTiming {
    /// JEDEC DDR4-2400 (CL17) timing.
    #[must_use]
    pub fn ddr4_2400() -> Self {
        DdrTiming {
            io_clock: Frequency::from_mhz(1200),
            cl: 17,
            t_rcd: 17,
            t_rp: 17,
            t_ras: 39,
            t_rfc: SimDuration::from_ns(350),
            t_refi: SimDuration::from_ns(7_800),
            burst_len: 8,
        }
    }

    fn cycles(&self, n: u64) -> SimDuration {
        self.io_clock.cycles(n)
    }

    /// Time the data bus is occupied by one burst (half the burst length in
    /// bus-clock cycles, because DDR transfers on both edges).
    #[must_use]
    pub fn burst_time(&self) -> SimDuration {
        self.cycles(self.burst_len / 2)
    }

    /// CAS-only access latency (row already open).
    #[must_use]
    pub fn hit_latency(&self) -> SimDuration {
        self.cycles(self.cl) + self.burst_time()
    }

    /// Activate + CAS latency (bank precharged).
    #[must_use]
    pub fn act_latency(&self) -> SimDuration {
        self.cycles(self.t_rcd + self.cl) + self.burst_time()
    }

    /// Precharge + activate + CAS latency (row conflict).
    #[must_use]
    pub fn conflict_latency(&self) -> SimDuration {
        self.cycles(self.t_rp + self.t_rcd + self.cl) + self.burst_time()
    }
}

/// Geometry and policy configuration of one DIMM.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DimmConfig {
    /// Capacity in bytes.
    pub capacity: u64,
    /// Number of banks (rank x bank-group x bank flattened).
    pub banks: u64,
    /// Row (page) size in bytes.
    pub row_bytes: u64,
    /// Transfer granularity in bytes — one cache line per burst.
    pub line_bytes: u64,
    /// Timing parameters.
    pub timing: DdrTiming,
}

impl DimmConfig {
    /// A 16 GiB DDR4-2400 DIMM with 16 banks and 8 KiB rows — the shape the
    /// paper's Table II system (8 DDR4 DIMMs) uses.
    #[must_use]
    pub fn ddr4_16gb() -> Self {
        DimmConfig {
            capacity: 16 << 30,
            banks: 16,
            row_bytes: 8 << 10,
            line_bytes: 64,
            timing: DdrTiming::ddr4_2400(),
        }
    }
}

/// Statistics a DIMM accumulates for the energy model.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DimmStats {
    /// Row activations issued.
    pub activations: u64,
    /// Read bursts issued.
    pub read_bursts: u64,
    /// Write bursts issued.
    pub write_bursts: u64,
    /// Accesses that hit an open row.
    pub row_hits: u64,
    /// Bytes moved over the data bus.
    pub bytes: u64,
}

/// State of one DRAM bank.
#[derive(Clone, Copy, Debug, Default)]
struct Bank {
    open_row: Option<u64>,
    ready_at: SimTime,
}

/// One DDR4 DIMM: banks plus a shared data bus.
///
/// # Example
///
/// ```
/// use reach_mem::{Dimm, DimmConfig, AccessKind, RowPolicy};
/// use reach_sim::SimTime;
///
/// let mut dimm = Dimm::new(DimmConfig::ddr4_16gb());
/// let first = dimm.access(SimTime::ZERO, 0, AccessKind::Read, RowPolicy::OpenPage);
/// let second = dimm.access(first.complete, 64, AccessKind::Read, RowPolicy::OpenPage);
/// // Same row: the second access is a row hit and therefore faster.
/// assert!(second.complete - second.start < first.complete - first.start);
/// ```
#[derive(Clone, Debug)]
pub struct Dimm {
    config: DimmConfig,
    banks: Vec<Bank>,
    bus: SerialResource,
    stats: DimmStats,
}

impl Dimm {
    /// Creates an idle DIMM with all banks precharged.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (zero banks, or a row
    /// smaller than a line).
    #[must_use]
    pub fn new(config: DimmConfig) -> Self {
        assert!(config.banks > 0, "Dimm: need at least one bank");
        assert!(
            config.row_bytes >= config.line_bytes && config.line_bytes > 0,
            "Dimm: row must hold at least one line"
        );
        Dimm {
            config,
            banks: vec![Bank::default(); config.banks as usize],
            bus: SerialResource::new(),
            stats: DimmStats::default(),
        }
    }

    /// The DIMM's configuration.
    #[must_use]
    pub fn config(&self) -> &DimmConfig {
        &self.config
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &DimmStats {
        &self.stats
    }

    /// Peak data-bus bandwidth of this DIMM in bytes/s.
    #[must_use]
    pub fn peak_bandwidth_bytes_per_sec(&self) -> u64 {
        let line_time = self.config.timing.burst_time().as_ps();
        self.config.line_bytes * 1_000_000_000_000 / line_time
    }

    fn locate(&self, addr: u64) -> (usize, u64) {
        let row_index = addr / self.config.row_bytes;
        let bank = (row_index % self.config.banks) as usize;
        let row = row_index / self.config.banks;
        (bank, row)
    }

    /// Pushes `t` past any refresh blackout it lands in. Refresh is modeled
    /// as a periodic whole-device blackout of `t_rfc` every `t_refi`.
    fn refresh_adjust(&self, t: SimTime) -> SimTime {
        let refi = self.config.timing.t_refi.as_ps();
        let rfc = self.config.timing.t_rfc.as_ps();
        let phase = t.as_ps() % refi;
        if phase < rfc {
            SimTime::from_ps(t.as_ps() - phase + rfc)
        } else {
            t
        }
    }

    /// Performs one line-granularity access at `addr`.
    ///
    /// The returned [`Reservation`] covers queueing behind the bank and the
    /// shared data bus; `complete` is when the data burst finishes.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is beyond the DIMM capacity.
    pub fn access(
        &mut self,
        now: SimTime,
        addr: u64,
        kind: AccessKind,
        policy: RowPolicy,
    ) -> Reservation {
        assert!(
            addr < self.config.capacity,
            "Dimm::access: address {addr:#x} beyond capacity"
        );
        let (bank_idx, row) = self.locate(addr);
        let t = self.config.timing;
        let bank_ready = self.banks[bank_idx].ready_at;
        let start = self.refresh_adjust(now.max(bank_ready));
        let bank = &mut self.banks[bank_idx];
        let (array_latency, hit) = match bank.open_row {
            Some(open) if open == row => (t.hit_latency(), true),
            Some(_) => (t.conflict_latency(), false),
            None => (t.act_latency(), false),
        };
        if !hit {
            self.stats.activations += 1;
        } else {
            self.stats.row_hits += 1;
        }

        // The burst occupies the shared data bus at the tail of the access.
        let burst = t.burst_time();
        let data_at = start + (array_latency - burst);
        let bus_res = self.bus.reserve(data_at, burst);
        let complete = bus_res.ready;

        bank.open_row = match policy {
            RowPolicy::OpenPage => Some(row),
            RowPolicy::ClosedRow => None,
        };
        // Bank is busy until the burst drains (plus precharge under
        // closed-row); enforce minimum row-active time for new activations.
        let mut ready = complete;
        if policy == RowPolicy::ClosedRow {
            ready += t.cycles(t.t_rp);
        }
        if !hit {
            ready = ready.max(start + t.cycles(t.t_ras));
        }
        bank.ready_at = ready;

        match kind {
            AccessKind::Read => self.stats.read_bursts += 1,
            AccessKind::Write => self.stats.write_bursts += 1,
        }
        self.stats.bytes += self.config.line_bytes;

        Reservation {
            start,
            ready,
            complete,
        }
    }

    /// Streams `bytes` sequentially starting at `addr` — the fast path for
    /// the multi-gigabyte scans in the CBIR experiments.
    ///
    /// The stream is billed row by row: each row pays one activation plus
    /// back-to-back bursts on the shared bus, so a competing stream on the
    /// same DIMM still contends for bus time. Row activations overlap the
    /// previous row's bursts (bank-level parallelism), matching how an
    /// FR-FCFS controller pipelines a sequential scan.
    ///
    /// Interior full rows are reserved in refresh-period batches via
    /// [`SerialResource::reserve_many`] — bit-identical timing and stats to
    /// the row-by-row loop (a property test checks this against a reference
    /// implementation), but O(rows / rows-per-refresh-period) instead of
    /// O(rows). The first row (activate lead-in), the final `banks + 1`
    /// rows (per-bank open-row/ready state) and any partial rows stay on
    /// the per-row path.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the DIMM capacity or `bytes` is zero.
    pub fn stream(
        &mut self,
        now: SimTime,
        addr: u64,
        bytes: u64,
        kind: AccessKind,
        policy: RowPolicy,
    ) -> Reservation {
        assert!(bytes > 0, "Dimm::stream: empty transfer");
        assert!(
            addr.checked_add(bytes)
                .is_some_and(|end| end <= self.config.capacity),
            "Dimm::stream: range beyond capacity"
        );
        let t = self.config.timing;
        let row_bytes = self.config.row_bytes;
        let line = self.config.line_bytes;

        let mut offset = addr;
        let mut remaining = bytes;
        let mut first_start: Option<SimTime> = None;
        let mut complete = now;

        while remaining > 0 {
            let in_row = (row_bytes - (offset % row_bytes)).min(remaining);

            // Batched fast path: runs of interior full rows within one
            // refresh period collapse into a single bus reservation. The
            // per-row loop below would give every one of them zero lead-in,
            // a start of `refresh_adjust(now.max(bus.free_at()))` (the
            // identity inside a period, since starts advance monotonically
            // past the blackout) and an identical service time, so
            // `reserve_many` reproduces its timing exactly. The final
            // `banks + 1` rows are excluded so each bank's open-row and
            // ready-at state is written by the genuine last row touching it.
            if first_start.is_some() && in_row == row_bytes {
                let full_rows_left = remaining / row_bytes;
                let tail_rows = self.config.banks + 1;
                if full_rows_left > tail_rows {
                    let lines_per_row = row_bytes / line;
                    let row_service = t.burst_time().scaled(lines_per_row);
                    let p_adj = self.refresh_adjust(now.max(self.bus.free_at()));
                    let refi = t.t_refi.as_ps();
                    let period_end = (p_adj.as_ps() / refi + 1) * refi;
                    // Rows fitting before the next blackout: starts are
                    // p_adj + i*service, valid while strictly below the
                    // period end.
                    let fit = (period_end - p_adj.as_ps()).div_ceil(row_service.as_ps().max(1));
                    let take = fit.min(full_rows_left - tail_rows);
                    if take > 0 {
                        let res = self.bus.reserve_many(p_adj, row_service, take);
                        complete = res.ready;
                        self.stats.activations += take;
                        self.stats.bytes += take * row_bytes;
                        match kind {
                            AccessKind::Read => self.stats.read_bursts += take * lines_per_row,
                            AccessKind::Write => self.stats.write_bursts += take * lines_per_row,
                        }
                        offset += take * row_bytes;
                        remaining -= take * row_bytes;
                        continue;
                    }
                }
            }

            let lines = in_row.div_ceil(line);
            let burst_total = t.burst_time().scaled(lines);

            // First row pays the full activate latency; subsequent rows hide
            // it behind the previous row's bursts (pipelined activation in
            // another bank), paying only the bus time.
            let lead_in = if first_start.is_none() {
                t.cycles(t.t_rcd + t.cl)
            } else {
                SimDuration::ZERO
            };
            let start = self.refresh_adjust(now.max(self.bus.free_at()));
            let res = self.bus.reserve(start + lead_in, burst_total);
            first_start.get_or_insert(res.start - lead_in);
            complete = res.ready;

            self.stats.activations += 1;
            self.stats.bytes += lines * line;
            match kind {
                AccessKind::Read => self.stats.read_bursts += lines,
                AccessKind::Write => self.stats.write_bursts += lines,
            }
            // Track which row ends open for policy accounting.
            let (bank_idx, row) = self.locate(offset);
            self.banks[bank_idx].open_row = match policy {
                RowPolicy::OpenPage => Some(row),
                RowPolicy::ClosedRow => None,
            };
            self.banks[bank_idx].ready_at = complete;

            offset += in_row;
            remaining -= in_row;
        }

        Reservation {
            start: first_start.expect("stream issued at least one row"),
            ready: complete,
            complete,
        }
    }

    /// Leaves every bank precharged and returns when the hand-over to a new
    /// owner is complete (all in-flight work drained plus one precharge).
    pub fn hand_over(&mut self, now: SimTime) -> SimTime {
        let t = self.config.timing;
        let mut done = now.max(self.bus.free_at());
        for bank in &mut self.banks {
            done = done.max(bank.ready_at);
            bank.open_row = None;
        }
        let done = done + t.cycles(t.t_rp);
        for bank in &mut self.banks {
            bank.ready_at = done;
        }
        done
    }

    /// Total time the data bus was occupied (for utilization / energy).
    #[must_use]
    pub fn bus_busy_time(&self) -> SimDuration {
        self.bus.busy_time()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn dimm() -> Dimm {
        Dimm::new(DimmConfig::ddr4_16gb())
    }

    /// The pre-batching row-by-row stream, kept verbatim as the equivalence
    /// oracle for the `reserve_many` fast path in [`Dimm::stream`].
    fn stream_reference(
        d: &mut Dimm,
        now: SimTime,
        addr: u64,
        bytes: u64,
        kind: AccessKind,
        policy: RowPolicy,
    ) -> Reservation {
        let t = d.config.timing;
        let row_bytes = d.config.row_bytes;
        let line = d.config.line_bytes;

        let mut offset = addr;
        let mut remaining = bytes;
        let mut first_start: Option<SimTime> = None;
        let mut complete = now;

        while remaining > 0 {
            let in_row = (row_bytes - (offset % row_bytes)).min(remaining);
            let lines = in_row.div_ceil(line);
            let burst_total = t.burst_time().scaled(lines);
            let lead_in = if first_start.is_none() {
                t.cycles(t.t_rcd + t.cl)
            } else {
                SimDuration::ZERO
            };
            let start = d.refresh_adjust(now.max(d.bus.free_at()));
            let res = d.bus.reserve(start + lead_in, burst_total);
            first_start.get_or_insert(res.start - lead_in);
            complete = res.ready;

            d.stats.activations += 1;
            d.stats.bytes += lines * line;
            match kind {
                AccessKind::Read => d.stats.read_bursts += lines,
                AccessKind::Write => d.stats.write_bursts += lines,
            }
            let (bank_idx, row) = d.locate(offset);
            d.banks[bank_idx].open_row = match policy {
                RowPolicy::OpenPage => Some(row),
                RowPolicy::ClosedRow => None,
            };
            d.banks[bank_idx].ready_at = complete;

            offset += in_row;
            remaining -= in_row;
        }

        Reservation {
            start: first_start.expect("stream issued at least one row"),
            ready: complete,
            complete,
        }
    }

    #[test]
    fn row_hit_is_faster_than_activation() {
        let t = DdrTiming::ddr4_2400();
        assert!(t.hit_latency() < t.act_latency());
        assert!(t.act_latency() < t.conflict_latency());
    }

    #[test]
    fn sequential_same_row_accesses_hit() {
        let mut d = dimm();
        let a = d.access(SimTime::ZERO, 0, AccessKind::Read, RowPolicy::OpenPage);
        let b = d.access(a.complete, 64, AccessKind::Read, RowPolicy::OpenPage);
        assert_eq!(d.stats().row_hits, 1);
        assert_eq!(d.stats().activations, 1);
        assert!(b.complete - b.start < a.complete - a.start);
    }

    #[test]
    fn closed_row_policy_never_hits() {
        let mut d = dimm();
        let a = d.access(SimTime::ZERO, 0, AccessKind::Read, RowPolicy::ClosedRow);
        let _b = d.access(a.ready, 64, AccessKind::Read, RowPolicy::ClosedRow);
        assert_eq!(d.stats().row_hits, 0);
        assert_eq!(d.stats().activations, 2);
    }

    #[test]
    fn row_conflict_pays_precharge() {
        let mut d = dimm();
        let cfg = *d.config();
        // Two addresses in the same bank but different rows: stride by
        // row_bytes * banks.
        let conflict_addr = cfg.row_bytes * cfg.banks;
        let a = d.access(SimTime::ZERO, 0, AccessKind::Read, RowPolicy::OpenPage);
        let b = d.access(
            a.ready,
            conflict_addr,
            AccessKind::Read,
            RowPolicy::OpenPage,
        );
        assert_eq!((b.complete - b.start), cfg.timing.conflict_latency());
    }

    #[test]
    fn different_banks_overlap() {
        let mut d = dimm();
        let cfg = *d.config();
        // Addresses in different banks: consecutive rows.
        let a = d.access(SimTime::ZERO, 0, AccessKind::Read, RowPolicy::OpenPage);
        let b = d.access(
            SimTime::ZERO,
            cfg.row_bytes,
            AccessKind::Read,
            RowPolicy::OpenPage,
        );
        // Bank work overlaps; only the bus serializes the two bursts.
        assert!(b.complete < a.complete + cfg.timing.act_latency());
    }

    #[test]
    fn stream_approaches_peak_bandwidth() {
        let mut d = dimm();
        let bytes: u64 = 64 << 20; // 64 MiB
        let r = d.stream(
            SimTime::ZERO,
            0,
            bytes,
            AccessKind::Read,
            RowPolicy::OpenPage,
        );
        let secs = (r.complete - r.start).as_secs_f64();
        let achieved = bytes as f64 / secs;
        let peak = d.peak_bandwidth_bytes_per_sec() as f64;
        // Streaming should reach at least 80% of peak (refresh + lead-in
        // overheads), and never exceed it.
        assert!(
            achieved > 0.8 * peak,
            "achieved {achieved:.2e} vs peak {peak:.2e}"
        );
        assert!(achieved <= peak * 1.001);
    }

    #[test]
    fn stream_counts_bursts_and_bytes() {
        let mut d = dimm();
        d.stream(
            SimTime::ZERO,
            0,
            1 << 20,
            AccessKind::Write,
            RowPolicy::OpenPage,
        );
        assert_eq!(d.stats().write_bursts, (1 << 20) / 64);
        assert_eq!(d.stats().bytes, 1 << 20);
        // 1 MiB crosses 128 rows of 8 KiB.
        assert_eq!(d.stats().activations, 128);
    }

    #[test]
    fn two_streams_share_the_bus() {
        let mut d = dimm();
        let solo_time = {
            let mut d2 = dimm();
            let r = d2.stream(
                SimTime::ZERO,
                0,
                8 << 20,
                AccessKind::Read,
                RowPolicy::OpenPage,
            );
            r.complete
        };
        let a = d.stream(
            SimTime::ZERO,
            0,
            8 << 20,
            AccessKind::Read,
            RowPolicy::OpenPage,
        );
        let b = d.stream(
            SimTime::ZERO,
            1 << 30,
            8 << 20,
            AccessKind::Read,
            RowPolicy::OpenPage,
        );
        // The later of the two concurrent streams takes ~2x the solo time.
        let concurrent = a.complete.max(b.complete);
        let ratio = concurrent.as_ps() as f64 / solo_time.as_ps() as f64;
        assert!(ratio > 1.8, "expected bus sharing, ratio {ratio}");
    }

    #[test]
    fn refresh_blackout_delays_accesses() {
        let mut d = dimm();
        // Land exactly inside the first refresh window [0, tRFC).
        let r = d.access(
            SimTime::from_ps(1),
            0,
            AccessKind::Read,
            RowPolicy::OpenPage,
        );
        assert!(r.start >= SimTime::ZERO + d.config().timing.t_rfc);
    }

    #[test]
    fn hand_over_precharges_everything() {
        let mut d = dimm();
        d.access(SimTime::ZERO, 0, AccessKind::Read, RowPolicy::OpenPage);
        let done = d.hand_over(SimTime::from_ps(1));
        // After hand-over the next access must activate (no open row)...
        let r = d.access(done, 64, AccessKind::Read, RowPolicy::OpenPage);
        assert_eq!(d.stats().row_hits, 0); // would have been a hit without hand-over
        assert_eq!(r.complete - r.start, d.config().timing.act_latency());
    }

    #[test]
    #[should_panic(expected = "beyond capacity")]
    fn access_out_of_range_panics() {
        let mut d = dimm();
        let cap = d.config().capacity;
        d.access(SimTime::ZERO, cap, AccessKind::Read, RowPolicy::OpenPage);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Completion times are causal (complete >= start >= issue) and the
        /// bus never moves more bytes than the stats record, for any access
        /// mix.
        #[test]
        fn accesses_are_causal(
            ops in proptest::collection::vec((0u64..(1u64 << 24), any::<bool>()), 1..64),
        ) {
            let mut d = dimm();
            let mut now = SimTime::ZERO;
            for &(addr, write) in &ops {
                let kind = if write { AccessKind::Write } else { AccessKind::Read };
                let r = d.access(now, addr, kind, RowPolicy::OpenPage);
                prop_assert!(r.start >= now);
                prop_assert!(r.complete >= r.start);
                prop_assert!(r.ready >= r.complete);
                now = r.complete;
            }
            prop_assert_eq!(d.stats().bytes, ops.len() as u64 * 64);
            prop_assert_eq!(
                d.stats().row_hits + d.stats().activations,
                ops.len() as u64
            );
        }

        /// Streaming N bytes never beats the theoretical peak bandwidth.
        #[test]
        fn stream_respects_peak(kib in 64u64..8_192) {
            let mut d = dimm();
            let bytes = kib << 10;
            let r = d.stream(SimTime::ZERO, 0, bytes, AccessKind::Read, RowPolicy::OpenPage);
            let secs = (r.complete - r.start).as_secs_f64();
            let rate = bytes as f64 / secs;
            prop_assert!(rate <= d.peak_bandwidth_bytes_per_sec() as f64 * 1.001,
                "rate {rate:.3e}");
        }

        /// The batched stream is bit-identical to the row-by-row reference:
        /// same reservation, stats, bus calendar, and per-bank state, for
        /// arbitrary (mis)alignment, size, policy and prior traffic.
        #[test]
        fn batched_stream_matches_row_by_row_reference(
            addr_lines in 0u64..(1u64 << 14),
            misalign in 0u64..64,
            extra_bytes in 0u64..16_384,
            kib in 1u64..2_048,
            write in any::<bool>(),
            closed in any::<bool>(),
            pre in proptest::collection::vec(0u64..(1u64 << 20), 0..6),
        ) {
            let mut fast = dimm();
            let mut slow = dimm();
            let kind = if write { AccessKind::Write } else { AccessKind::Read };
            let policy = if closed { RowPolicy::ClosedRow } else { RowPolicy::OpenPage };

            // Warm both DIMMs with identical traffic so the stream starts
            // from a non-trivial bus/bank state.
            let mut now = SimTime::ZERO;
            for &a in &pre {
                let rf = fast.access(now, a, kind, policy);
                let rs = slow.access(now, a, kind, policy);
                prop_assert_eq!(rf, rs);
                now = rf.complete;
            }

            let addr = addr_lines * 64 + misalign;
            let bytes = (kib << 10) + extra_bytes; // up to ~2 MiB, odd tails
            let rf = fast.stream(now, addr, bytes, kind, policy);
            let rs = stream_reference(&mut slow, now, addr, bytes, kind, policy);
            prop_assert_eq!(rf, rs);
            prop_assert_eq!(fast.stats, slow.stats);
            prop_assert_eq!(fast.bus.free_at(), slow.bus.free_at());
            prop_assert_eq!(fast.bus.busy_time(), slow.bus.busy_time());
            prop_assert_eq!(fast.bus.served(), slow.bus.served());
            for (b, (f, s)) in fast.banks.iter().zip(&slow.banks).enumerate() {
                prop_assert_eq!(f.open_row, s.open_row, "bank {} open row", b);
                prop_assert_eq!(f.ready_at, s.ready_at, "bank {} ready", b);
            }

            // A follow-up access observes the same world.
            let f2 = fast.access(rf.complete, addr, kind, policy);
            let s2 = slow.access(rs.complete, addr, kind, policy);
            prop_assert_eq!(f2, s2);
        }

        /// Closed-row policy never produces a row hit.
        #[test]
        fn closed_row_never_hits(
            addrs in proptest::collection::vec(0u64..(1u64 << 20), 1..50),
        ) {
            let mut d = dimm();
            let mut now = SimTime::ZERO;
            for &a in &addrs {
                let r = d.access(now, a, AccessKind::Read, RowPolicy::ClosedRow);
                now = r.ready;
            }
            prop_assert_eq!(d.stats().row_hits, 0);
        }
    }

    #[test]
    fn peak_bandwidth_matches_ddr4_2400() {
        let d = dimm();
        // DDR4-2400 x64: 2400 MT/s * 8 B = 19.2 GB/s.
        let peak = d.peak_bandwidth_bytes_per_sec() as f64;
        assert!((peak - 19.2e9).abs() / 19.2e9 < 0.02, "peak {peak:.3e}");
    }
}
