//! Accelerator-interposed memory (AIM) modules and the AIMbus.
//!
//! An AIM module sits between a DIMM and the memory network (Cong et al.,
//! MEMSYS'17 — the design the paper's near-memory level is based on). It
//! contains an embedded FPGA, a *configuration filter* that picks accelerator
//! commands out of the memory channel, and a *memory access filter* that
//! routes DRAM responses to the local accelerator, a remote accelerator over
//! the AIMbus, or back to the host.
//!
//! The protocol modeled here follows Section II-B of the paper:
//!
//! 1. the host launches a kernel on the module; the host memory controller
//!    *hands over* the DIMM (all banks drain and precharge),
//! 2. while owned, the module accesses its DIMM locally with a forced
//!    **closed-row policy**, so that when ownership returns the host can
//!    assume every bank is precharged,
//! 3. inter-DIMM traffic rides the AIMbus instead of the host channels.

use crate::controller::MemoryController;
use crate::ddr::{AccessKind, RowPolicy};
use reach_sim::{Bandwidth, BandwidthResource, Reservation, SimDuration, SimTime};

/// Who currently owns a DIMM's timing.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum DimmOwner {
    /// The host memory controller (normal operation).
    #[default]
    Host,
    /// The AIM module's embedded accelerator.
    Accelerator,
}

/// The shared inter-DIMM bus connecting all AIM modules.
///
/// # Example
///
/// ```
/// use reach_mem::AimBus;
/// use reach_sim::SimTime;
///
/// let mut bus = AimBus::paper_default();
/// let r = bus.transfer(SimTime::ZERO, 4096);
/// assert!(r.complete > SimTime::ZERO);
/// ```
#[derive(Debug)]
pub struct AimBus {
    link: BandwidthResource,
    queued: SimDuration,
}

impl AimBus {
    /// Creates an AIMbus with the given rate and hop latency.
    #[must_use]
    pub fn new(bandwidth: Bandwidth, latency: SimDuration) -> Self {
        AimBus {
            link: BandwidthResource::new(bandwidth, latency),
            queued: SimDuration::ZERO,
        }
    }

    /// The configuration used in the experiments: a 12.8 GB/s shared bus
    /// with 40 ns hop latency — comparable to one DDR4 channel, as the AIM
    /// paper's point-to-point ring provides.
    #[must_use]
    pub fn paper_default() -> Self {
        Self::new(Bandwidth::from_mbps(12_800), SimDuration::from_ns(40))
    }

    /// Moves `bytes` between two AIM modules.
    pub fn transfer(&mut self, now: SimTime, bytes: u64) -> Reservation {
        let r = self.link.transfer(now, bytes);
        self.queued += r.queueing(now);
        r
    }

    /// Total bytes carried (for interconnect energy).
    #[must_use]
    pub fn bytes_transferred(&self) -> u64 {
        self.link.bytes_transferred()
    }

    /// Total time the bus was occupied.
    #[must_use]
    pub fn busy_time(&self) -> SimDuration {
        self.link.busy_time()
    }

    /// Total time transfers waited behind earlier traffic before reaching
    /// the wire — the `aimbus.queued_ps` telemetry gauge. Zero while one
    /// workload has the bus to itself; co-running gather kernels grow it.
    #[must_use]
    pub fn queued_time(&self) -> SimDuration {
        self.queued
    }
}

/// Statistics an AIM module accumulates.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AimStats {
    /// Bytes the local accelerator moved to/from its DIMM.
    pub local_bytes: u64,
    /// Kernel launches observed by the configuration filter.
    pub launches: u64,
    /// Ownership hand-overs (host -> accelerator).
    pub acquisitions: u64,
}

/// One accelerator-interposed-memory module attached to a specific DIMM.
#[derive(Clone, Debug)]
pub struct AimModule {
    channel: usize,
    slot: usize,
    owner: DimmOwner,
    stats: AimStats,
}

impl AimModule {
    /// Creates a module interposed in front of DIMM (`channel`, `slot`).
    #[must_use]
    pub fn new(channel: usize, slot: usize) -> Self {
        AimModule {
            channel,
            slot,
            owner: DimmOwner::Host,
            stats: AimStats::default(),
        }
    }

    /// Which DIMM this module fronts.
    #[must_use]
    pub fn position(&self) -> (usize, usize) {
        (self.channel, self.slot)
    }

    /// The current DIMM owner.
    #[must_use]
    pub fn owner(&self) -> DimmOwner {
        self.owner
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &AimStats {
        &self.stats
    }

    /// The host launches a kernel: the configuration filter accepts the
    /// command and the memory controller hands the DIMM over. Returns the
    /// instant the accelerator may start issuing local accesses.
    ///
    /// # Panics
    ///
    /// Panics if the module already owns the DIMM — the paper's protocol
    /// launches one kernel at a time per module.
    pub fn acquire(&mut self, now: SimTime, mc: &mut MemoryController) -> SimTime {
        assert_eq!(
            self.owner,
            DimmOwner::Host,
            "AimModule::acquire: DIMM already owned by the accelerator"
        );
        let ready = mc.dimm_mut(self.channel, self.slot).hand_over(now);
        self.owner = DimmOwner::Accelerator;
        self.stats.acquisitions += 1;
        self.stats.launches += 1;
        ready
    }

    /// Returns the DIMM to the host. Because every owned access used the
    /// closed-row policy, all banks are already precharged; the hand-back
    /// costs only the drain of in-flight work.
    ///
    /// # Panics
    ///
    /// Panics if the module does not own the DIMM.
    pub fn release(&mut self, now: SimTime, mc: &mut MemoryController) -> SimTime {
        assert_eq!(
            self.owner,
            DimmOwner::Accelerator,
            "AimModule::release: DIMM not owned"
        );
        let ready = mc.dimm_mut(self.channel, self.slot).hand_over(now);
        self.owner = DimmOwner::Host;
        ready
    }

    /// Streams `bytes` from the module's own DIMM, bypassing the host
    /// channel, with the forced closed-row policy.
    ///
    /// # Panics
    ///
    /// Panics if the module does not own the DIMM: the memory access filter
    /// only routes responses to the local accelerator while a kernel runs.
    pub fn stream_local(
        &mut self,
        now: SimTime,
        mc: &mut MemoryController,
        local_addr: u64,
        bytes: u64,
        kind: AccessKind,
    ) -> Reservation {
        assert_eq!(
            self.owner,
            DimmOwner::Accelerator,
            "AimModule::stream_local: kernel not launched (DIMM owned by host)"
        );
        self.stats.local_bytes += bytes;
        mc.dimm_mut(self.channel, self.slot).stream(
            now,
            local_addr,
            bytes,
            kind,
            RowPolicy::ClosedRow,
        )
    }

    /// A single line access on the owned DIMM (closed-row).
    ///
    /// # Panics
    ///
    /// Panics if the module does not own the DIMM.
    pub fn access_local(
        &mut self,
        now: SimTime,
        mc: &mut MemoryController,
        local_addr: u64,
        kind: AccessKind,
    ) -> Reservation {
        assert_eq!(
            self.owner,
            DimmOwner::Accelerator,
            "AimModule::access_local: kernel not launched"
        );
        self.stats.local_bytes += mc.config().dimm.line_bytes;
        mc.dimm_mut(self.channel, self.slot)
            .access(now, local_addr, kind, RowPolicy::ClosedRow)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::MemoryControllerConfig;

    fn setup() -> (MemoryController, AimModule) {
        (
            MemoryController::new(MemoryControllerConfig::paper_mc()),
            AimModule::new(0, 0),
        )
    }

    #[test]
    fn acquire_use_release_roundtrip() {
        let (mut mc, mut aim) = setup();
        assert_eq!(aim.owner(), DimmOwner::Host);
        let t0 = aim.acquire(SimTime::ZERO, &mut mc);
        assert_eq!(aim.owner(), DimmOwner::Accelerator);
        let r = aim.stream_local(t0, &mut mc, 0, 1 << 20, AccessKind::Read);
        let t1 = aim.release(r.complete, &mut mc);
        assert_eq!(aim.owner(), DimmOwner::Host);
        assert!(t1 >= r.complete);
        assert_eq!(aim.stats().local_bytes, 1 << 20);
        assert_eq!(aim.stats().acquisitions, 1);
    }

    #[test]
    #[should_panic(expected = "kernel not launched")]
    fn local_access_requires_ownership() {
        let (mut mc, mut aim) = setup();
        aim.stream_local(SimTime::ZERO, &mut mc, 0, 64, AccessKind::Read);
    }

    #[test]
    #[should_panic(expected = "already owned")]
    fn double_acquire_rejected() {
        let (mut mc, mut aim) = setup();
        aim.acquire(SimTime::ZERO, &mut mc);
        aim.acquire(SimTime::ZERO, &mut mc);
    }

    #[test]
    fn owned_accesses_use_closed_row() {
        let (mut mc, mut aim) = setup();
        let t0 = aim.acquire(SimTime::ZERO, &mut mc);
        let a = aim.access_local(t0, &mut mc, 0, AccessKind::Read);
        let _b = aim.access_local(a.ready, &mut mc, 64, AccessKind::Read);
        // Closed-row: the second same-row access is NOT a row hit.
        assert_eq!(mc.dimm(0, 0).stats().row_hits, 0);
        assert_eq!(mc.dimm(0, 0).stats().activations, 2);
    }

    #[test]
    fn local_stream_does_not_touch_host_channel() {
        let (mut mc, mut aim) = setup();
        let t0 = aim.acquire(SimTime::ZERO, &mut mc);
        aim.stream_local(t0, &mut mc, 0, 1 << 20, AccessKind::Read);
        assert_eq!(mc.total_channel_bytes(), 0);
    }

    #[test]
    fn parallel_modules_scale_bandwidth() {
        let mut mc = MemoryController::new(MemoryControllerConfig::paper_mc());
        let mut a = AimModule::new(0, 0);
        let mut b = AimModule::new(1, 0);
        let bytes: u64 = 64 << 20;
        let ta = a.acquire(SimTime::ZERO, &mut mc);
        let tb = b.acquire(SimTime::ZERO, &mut mc);
        let ra = a.stream_local(ta, &mut mc, 0, bytes, AccessKind::Read);
        let rb = b.stream_local(tb, &mut mc, 0, bytes, AccessKind::Read);
        // Two modules on distinct DIMMs finish in about the same time as one.
        let skew =
            ra.complete.as_ps().abs_diff(rb.complete.as_ps()) as f64 / ra.complete.as_ps() as f64;
        assert!(
            skew < 0.05,
            "independent DIMMs should not contend: skew {skew}"
        );
    }

    #[test]
    fn aimbus_serializes_transfers() {
        let mut bus = AimBus::paper_default();
        let a = bus.transfer(SimTime::ZERO, 1 << 20);
        let b = bus.transfer(SimTime::ZERO, 1 << 20);
        assert_eq!(b.start, a.ready);
        assert_eq!(bus.bytes_transferred(), 2 << 20);
    }

    #[test]
    fn aimbus_queued_time_counts_only_waiting() {
        let mut bus = AimBus::paper_default();
        let a = bus.transfer(SimTime::ZERO, 1 << 20);
        // The first transfer hit an idle bus: nothing queued yet.
        assert_eq!(bus.queued_time(), SimDuration::ZERO);
        let b = bus.transfer(SimTime::ZERO, 1 << 20);
        // The second waited for the first's wire time exactly.
        assert_eq!(bus.queued_time(), b.start.since(SimTime::ZERO));
        assert_eq!(b.start, a.ready);
    }

    #[test]
    fn handback_leaves_banks_precharged_for_host() {
        let (mut mc, mut aim) = setup();
        let t0 = aim.acquire(SimTime::ZERO, &mut mc);
        let r = aim.stream_local(t0, &mut mc, 0, 8 << 10, AccessKind::Read);
        let t1 = aim.release(r.complete, &mut mc);
        // Host access after hand-back pays activation (no stale open row),
        // i.e. the closed-row contract held.
        let hits_before = mc.dimm(0, 0).stats().row_hits;
        mc.dimm_mut(0, 0)
            .access(t1, 0, AccessKind::Read, RowPolicy::OpenPage);
        assert_eq!(mc.dimm(0, 0).stats().row_hits, hits_before);
    }
}
