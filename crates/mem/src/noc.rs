//! Network-on-chip model.
//!
//! Figure 2 of the paper ties the CPU cores, the on-chip accelerator, the
//! GAM and the last-level cache together with "a high-bandwidth
//! network-on-chip". The model here is a crossbar: every endpoint owns an
//! injection and an ejection port with a configured link rate, and the
//! fabric itself has a bisection-bandwidth calendar. A transfer reserves
//! source port, bisection and destination port in parallel (they pipeline)
//! and completes after the slowest reservation plus the hop latency.

use reach_sim::{Bandwidth, Reservation, SerialResource, SimDuration, SimTime};

/// Endpoints on the on-chip crossbar.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NocPort {
    /// CPU core cluster.
    Cpu,
    /// The on-chip reconfigurable accelerator.
    Accelerator,
    /// The global accelerator manager.
    Gam,
    /// The shared last-level cache (front door to DRAM).
    Cache,
    /// The PCIe root port (to the storage hierarchy).
    Pcie,
}

impl NocPort {
    /// All ports, in index order.
    pub const ALL: [NocPort; 5] = [
        NocPort::Cpu,
        NocPort::Accelerator,
        NocPort::Gam,
        NocPort::Cache,
        NocPort::Pcie,
    ];

    fn index(self) -> usize {
        match self {
            NocPort::Cpu => 0,
            NocPort::Accelerator => 1,
            NocPort::Gam => 2,
            NocPort::Cache => 3,
            NocPort::Pcie => 4,
        }
    }
}

/// NoC configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NocConfig {
    /// Per-port link rate (Table II: 100 GB/s accelerator-to-cache).
    pub port_bandwidth: Bandwidth,
    /// Total bisection bandwidth of the fabric.
    pub bisection_bandwidth: Bandwidth,
    /// One-way hop latency.
    pub hop_latency: SimDuration,
}

impl NocConfig {
    /// The paper's on-chip fabric: 100 GB/s ports, 400 GB/s bisection,
    /// 20 ns hops.
    #[must_use]
    pub fn paper_default() -> Self {
        NocConfig {
            port_bandwidth: Bandwidth::from_gbps(100),
            bisection_bandwidth: Bandwidth::from_gbps(400),
            hop_latency: SimDuration::from_ns(20),
        }
    }
}

/// Per-port traffic statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NocStats {
    /// Bytes injected.
    pub bytes: u64,
    /// Transfers performed.
    pub transfers: u64,
}

/// The on-chip crossbar.
///
/// # Example
///
/// ```
/// use reach_mem::noc::{Noc, NocConfig, NocPort};
/// use reach_sim::SimTime;
///
/// let mut noc = Noc::new(NocConfig::paper_default());
/// let r = noc.transfer(SimTime::ZERO, NocPort::Accelerator, NocPort::Cache, 1 << 20);
/// assert!(r.complete > SimTime::ZERO);
/// ```
#[derive(Debug)]
pub struct Noc {
    config: NocConfig,
    inject: Vec<SerialResource>,
    eject: Vec<SerialResource>,
    bisection: SerialResource,
    stats: NocStats,
}

impl Noc {
    /// Creates an idle crossbar.
    #[must_use]
    pub fn new(config: NocConfig) -> Self {
        Noc {
            config,
            inject: vec![SerialResource::new(); NocPort::ALL.len()],
            eject: vec![SerialResource::new(); NocPort::ALL.len()],
            bisection: SerialResource::new(),
            stats: NocStats::default(),
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &NocConfig {
        &self.config
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &NocStats {
        &self.stats
    }

    /// Moves `bytes` from `src` to `dst`.
    ///
    /// # Panics
    ///
    /// Panics if `src == dst` (loopback traffic never enters the fabric) or
    /// `bytes` is zero.
    pub fn transfer(
        &mut self,
        now: SimTime,
        src: NocPort,
        dst: NocPort,
        bytes: u64,
    ) -> Reservation {
        assert!(src != dst, "Noc::transfer: loopback {src:?}");
        assert!(bytes > 0, "Noc::transfer: empty transfer");
        let port_time = self.config.port_bandwidth.transfer_time(bytes);
        let fabric_time = self.config.bisection_bandwidth.transfer_time(bytes);

        let s = self.inject[src.index()].reserve(now, port_time);
        let f = self.bisection.reserve(now, fabric_time);
        let e = self.eject[dst.index()].reserve(now, port_time);
        let ready = s.ready.max(f.ready).max(e.ready);
        self.stats.bytes += bytes;
        self.stats.transfers += 1;
        Reservation {
            start: s.start.min(f.start).min(e.start),
            ready,
            complete: ready + self.config.hop_latency.scaled(2),
        }
    }

    /// Total time a given port's injection link was busy.
    #[must_use]
    pub fn port_busy(&self, port: NocPort) -> SimDuration {
        self.inject[port.index()].busy_time()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noc() -> Noc {
        Noc::new(NocConfig::paper_default())
    }

    #[test]
    fn transfer_is_port_rate_bound() {
        let mut n = noc();
        let bytes: u64 = 1 << 30;
        let r = n.transfer(SimTime::ZERO, NocPort::Accelerator, NocPort::Cache, bytes);
        let secs = (r.complete - SimTime::ZERO).as_secs_f64();
        let rate = bytes as f64 / secs;
        assert!(rate < 100.1e9 && rate > 95e9, "rate {rate:.3e}");
    }

    #[test]
    fn distinct_pairs_share_only_the_bisection() {
        let mut n = noc();
        let bytes: u64 = 1 << 28;
        let a = n.transfer(SimTime::ZERO, NocPort::Accelerator, NocPort::Cache, bytes);
        let b = n.transfer(SimTime::ZERO, NocPort::Cpu, NocPort::Pcie, bytes);
        // 2 x 100 GB/s of demand against 400 GB/s bisection: both proceed at
        // port rate. Completion within a hair of each other.
        assert!(a.ready.as_ps().abs_diff(b.ready.as_ps()) < 2_000_000);
    }

    #[test]
    fn same_source_serializes_on_the_injection_port() {
        let mut n = noc();
        let bytes: u64 = 1 << 28;
        let a = n.transfer(SimTime::ZERO, NocPort::Accelerator, NocPort::Cache, bytes);
        let b = n.transfer(SimTime::ZERO, NocPort::Accelerator, NocPort::Pcie, bytes);
        assert!(b.ready >= a.ready + (a.ready - a.start) - reach_sim::SimDuration::from_ns(1));
    }

    #[test]
    fn bisection_saturates_under_many_flows() {
        let mut n = Noc::new(NocConfig {
            port_bandwidth: Bandwidth::from_gbps(100),
            bisection_bandwidth: Bandwidth::from_gbps(150),
            hop_latency: SimDuration::ZERO,
        });
        let bytes: u64 = 1 << 28;
        // Two disjoint flows want 200 GB/s; the 150 GB/s bisection caps them.
        let a = n.transfer(SimTime::ZERO, NocPort::Accelerator, NocPort::Cache, bytes);
        let b = n.transfer(SimTime::ZERO, NocPort::Cpu, NocPort::Pcie, bytes);
        let last = a.ready.max(b.ready);
        let agg = (2 * bytes) as f64 / (last - SimTime::ZERO).as_secs_f64();
        assert!(agg < 151e9, "aggregate {agg:.3e} exceeds bisection");
    }

    #[test]
    fn hop_latency_added_to_completion() {
        let mut n = noc();
        let r = n.transfer(SimTime::ZERO, NocPort::Gam, NocPort::Accelerator, 64);
        assert!(r.complete >= r.ready + SimDuration::from_ns(40));
    }

    #[test]
    fn stats_accumulate() {
        let mut n = noc();
        n.transfer(SimTime::ZERO, NocPort::Cpu, NocPort::Cache, 100);
        n.transfer(SimTime::ZERO, NocPort::Cpu, NocPort::Cache, 200);
        assert_eq!(n.stats().bytes, 300);
        assert_eq!(n.stats().transfers, 2);
        assert!(n.port_busy(NocPort::Cpu) > SimDuration::ZERO);
        assert_eq!(n.port_busy(NocPort::Pcie), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "loopback")]
    fn loopback_rejected() {
        noc().transfer(SimTime::ZERO, NocPort::Cpu, NocPort::Cpu, 64);
    }
}
