//! Feature extraction: a deterministic multi-layer projection network.
//!
//! The paper extracts VGG-16 features and PCA-compresses them to D = 96.
//! Shipping learned VGG weights is neither possible nor necessary here:
//! retrieval *timing* depends only on the MAC count (so the timed workload
//! carries VGG-16's ~7.75 GMACs per image), while retrieval *quality* in
//! our synthetic-dataset experiments depends only on the feature map being
//! a stable, roughly distance-preserving embedding. A random-projection +
//! ReLU network (a standard random-features construction) provides exactly
//! that, deterministically from a seed.

use crate::linalg::Matrix;
use rand::Rng;
use reach_sim::rng::derived;

/// VGG-16 multiply-accumulates per 224x224 image — the figure the timing
/// model bills for one image's feature extraction.
pub const VGG16_MACS_PER_IMAGE: u64 = 7_750_000_000;

/// Uncompressed VGG-16 parameter bytes (~552 MB, Table I).
pub const VGG16_PARAM_BYTES: u64 = 552_000_000;

/// Deep-compressed parameter bytes (~11.3 MB, Table I / Han et al.) — small
/// enough for on-chip SRAM, which is why feature extraction maps on-chip.
pub const VGG16_COMPRESSED_PARAM_BYTES: u64 = 11_300_000;

/// A deterministic feature-extraction network: `layers` dense
/// random-projection layers with ReLU between them and L2 normalization at
/// the output.
#[derive(Clone, Debug)]
pub struct FeatureNet {
    weights: Vec<Matrix>,
}

impl FeatureNet {
    /// Builds a network mapping `input_dim` to `output_dim` through
    /// `hidden` equal-width hidden layers, with weights drawn from the
    /// given seed.
    ///
    /// # Panics
    ///
    /// Panics on zero dimensions.
    #[must_use]
    pub fn new(input_dim: usize, output_dim: usize, hidden: usize, seed: u64) -> Self {
        assert!(
            input_dim > 0 && output_dim > 0,
            "FeatureNet: zero dimension"
        );
        let mut rng = derived(seed, "feature-net");
        let mut dims = vec![input_dim];
        dims.extend(std::iter::repeat_n(output_dim.max(input_dim / 2), hidden));
        dims.push(output_dim);
        let weights = dims
            .windows(2)
            .map(|w| {
                let (fan_in, fan_out) = (w[0], w[1]);
                let scale = (2.0 / fan_in as f32).sqrt();
                let data = (0..fan_in * fan_out)
                    .map(|_| (rng.gen::<f32>() * 2.0 - 1.0) * scale)
                    .collect();
                Matrix::from_vec(fan_out, fan_in, data)
            })
            .collect();
        FeatureNet { weights }
    }

    /// The output dimensionality.
    #[must_use]
    pub fn output_dim(&self) -> usize {
        self.weights.last().expect("at least one layer").rows()
    }

    /// The input dimensionality.
    #[must_use]
    pub fn input_dim(&self) -> usize {
        self.weights.first().expect("at least one layer").cols()
    }

    /// Extracts the L2-normalized feature vector of one input.
    ///
    /// # Panics
    ///
    /// Panics if `input` has the wrong length.
    #[must_use]
    pub fn extract(&self, input: &[f32]) -> Vec<f32> {
        assert_eq!(
            input.len(),
            self.input_dim(),
            "FeatureNet::extract: bad input size"
        );
        let mut x = input.to_vec();
        let last = self.weights.len() - 1;
        for (li, w) in self.weights.iter().enumerate() {
            let mut y = vec![0.0f32; w.rows()];
            for (o, yo) in y.iter_mut().enumerate() {
                let row = w.row(o);
                *yo = row.iter().zip(&x).map(|(a, b)| a * b).sum();
                if li != last {
                    *yo = yo.max(0.0); // ReLU on hidden layers
                }
            }
            x = y;
        }
        let norm = x.iter().map(|v| v * v).sum::<f32>().sqrt();
        if norm > 0.0 {
            for v in &mut x {
                *v /= norm;
            }
        }
        x
    }

    /// Extracts features for a whole batch (rows of `inputs`).
    #[must_use]
    pub fn extract_batch(&self, inputs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(inputs.rows(), self.output_dim());
        for i in 0..inputs.rows() {
            out.row_mut(i).copy_from_slice(&self.extract(inputs.row(i)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linalg::dist_sq;
    use reach_sim::rng::seeded;

    fn net() -> FeatureNet {
        FeatureNet::new(64, 16, 1, 42)
    }

    #[test]
    fn output_is_normalized_and_deterministic() {
        let n = net();
        let input: Vec<f32> = (0..64).map(|i| (i as f32).sin()).collect();
        let a = n.extract(&input);
        let b = net().extract(&input);
        assert_eq!(a, b, "same seed, same features");
        let norm: f32 = a.iter().map(|v| v * v).sum();
        assert!((norm - 1.0).abs() < 1e-4, "norm {norm}");
        assert_eq!(a.len(), 16);
    }

    #[test]
    fn different_seeds_give_different_embeddings() {
        let input: Vec<f32> = (0..64).map(|i| (i as f32).cos()).collect();
        let a = FeatureNet::new(64, 16, 1, 1).extract(&input);
        let b = FeatureNet::new(64, 16, 1, 2).extract(&input);
        assert_ne!(a, b);
    }

    #[test]
    fn similar_inputs_stay_similar() {
        // The embedding must be stable: a small perturbation of the input
        // lands closer than an unrelated input (the property retrieval
        // quality rests on).
        let n = net();
        let mut rng = seeded(5);
        use rand::Rng;
        let base: Vec<f32> = (0..64).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let near: Vec<f32> = base.iter().map(|v| v + 0.01).collect();
        let far: Vec<f32> = (0..64).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let (eb, en, ef) = (n.extract(&base), n.extract(&near), n.extract(&far));
        assert!(dist_sq(&eb, &en) < dist_sq(&eb, &ef));
    }

    #[test]
    fn batch_matches_single() {
        let n = net();
        let rows: Vec<f32> = (0..2 * 64).map(|i| (i as f32 * 0.1).sin()).collect();
        let m = Matrix::from_vec(2, 64, rows.clone());
        let batch = n.extract_batch(&m);
        assert_eq!(batch.row(0), n.extract(&rows[..64]).as_slice());
        assert_eq!(batch.row(1), n.extract(&rows[64..]).as_slice());
    }

    #[test]
    fn table1_constants() {
        // Table I sanity: compressed parameters fit in on-chip SRAM budgets,
        // uncompressed do not. (Evaluated through variables so the checks
        // survive constant edits.)
        let (compressed, full, macs) = (
            VGG16_COMPRESSED_PARAM_BYTES,
            VGG16_PARAM_BYTES,
            VGG16_MACS_PER_IMAGE,
        );
        assert!(compressed < 32 << 20);
        assert!(full > 500_000_000);
        assert_eq!(macs, 7_750_000_000);
    }
}
