//! Binary-code hashing — the other compression baseline the paper names.
//!
//! Section IV-A: "a large body of work focuses on compression methods such
//! as **binary codes** and product quantization…  However, these methods
//! significantly penalize the recall accuracy." This module implements the
//! classic sign-random-projection scheme (SimHash / LSH for cosine
//! similarity): project onto `bits` random hyperplanes, keep the sign bit,
//! search by Hamming distance. Together with [`crate::pq`] it makes the
//! paper's accuracy argument executable — see the `extension-recall`
//! experiment.

use crate::linalg::Matrix;
use crate::topk::top_k;
use rand::Rng;

/// A sign-random-projection binary encoder.
///
/// # Example
///
/// ```
/// use reach_cbir::BinaryCoder;
///
/// let coder = BinaryCoder::new(16, 64, &mut reach_sim::rng::seeded(4));
/// let x: Vec<f32> = (0..16).map(|i| i as f32).collect();
/// let a = coder.encode(&x);
/// assert_eq!(BinaryCoder::hamming(&a, &a), 0);
/// ```
#[derive(Clone, Debug)]
pub struct BinaryCoder {
    /// `bits x dim` hyperplane normals.
    planes: Matrix,
}

/// A binary code: packed 64-bit words.
pub type BinaryCode = Vec<u64>;

impl BinaryCoder {
    /// Draws `bits` random hyperplanes for `dim`-dimensional data.
    ///
    /// # Panics
    ///
    /// Panics if `bits` or `dim` is zero.
    #[must_use]
    pub fn new(dim: usize, bits: usize, rng: &mut impl Rng) -> Self {
        assert!(dim > 0 && bits > 0, "BinaryCoder: zero size");
        let data = (0..bits * dim)
            .map(|_| rng.gen_range(-1.0f32..1.0))
            .collect();
        BinaryCoder {
            planes: Matrix::from_vec(bits, dim, data),
        }
    }

    /// Number of bits per code.
    #[must_use]
    pub fn bits(&self) -> usize {
        self.planes.rows()
    }

    /// Bytes per encoded vector.
    #[must_use]
    pub fn code_bytes(&self) -> usize {
        self.bits().div_ceil(8)
    }

    /// Encodes one vector.
    ///
    /// # Panics
    ///
    /// Panics on a dimension mismatch.
    #[must_use]
    pub fn encode(&self, x: &[f32]) -> BinaryCode {
        assert_eq!(x.len(), self.planes.cols(), "BinaryCoder::encode: bad size");
        let mut words = vec![0u64; self.bits().div_ceil(64)];
        for b in 0..self.bits() {
            let dot: f32 = self.planes.row(b).iter().zip(x).map(|(p, v)| p * v).sum();
            if dot >= 0.0 {
                words[b / 64] |= 1u64 << (b % 64);
            }
        }
        words
    }

    /// Encodes every row of `data`.
    #[must_use]
    pub fn encode_batch(&self, data: &Matrix) -> Vec<BinaryCode> {
        (0..data.rows()).map(|i| self.encode(data.row(i))).collect()
    }

    /// Hamming distance between two codes.
    ///
    /// # Panics
    ///
    /// Panics if the codes have different lengths.
    #[must_use]
    pub fn hamming(a: &BinaryCode, b: &BinaryCode) -> u32 {
        assert_eq!(a.len(), b.len(), "hamming: length mismatch");
        a.iter().zip(b).map(|(x, y)| (x ^ y).count_ones()).sum()
    }

    /// Exhaustive Hamming search: the `k` codes nearest to `query`'s code.
    #[must_use]
    pub fn search(&self, codes: &[BinaryCode], query: &[f32], k: usize) -> Vec<usize> {
        let q = self.encode(query);
        top_k(
            codes
                .iter()
                .enumerate()
                .map(|(i, c)| (Self::hamming(&q, c) as f32, i)),
            k,
        )
        .into_iter()
        .map(|(_, i)| i)
        .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{recall, Dataset};
    use reach_sim::rng::seeded;

    #[test]
    fn codes_are_compact_and_deterministic() {
        let mut rng = seeded(51);
        let coder = BinaryCoder::new(32, 128, &mut rng);
        assert_eq!(coder.bits(), 128);
        assert_eq!(coder.code_bytes(), 16); // 128 B floats -> 16 B
        let x: Vec<f32> = (0..32).map(|i| (i as f32).sin()).collect();
        assert_eq!(coder.encode(&x), coder.encode(&x));
    }

    #[test]
    fn hamming_distance_properties() {
        let a = vec![0b1010u64];
        let b = vec![0b0110u64];
        assert_eq!(BinaryCoder::hamming(&a, &a), 0);
        assert_eq!(BinaryCoder::hamming(&a, &b), 2);
        assert_eq!(BinaryCoder::hamming(&a, &b), BinaryCoder::hamming(&b, &a));
    }

    #[test]
    fn similar_vectors_get_similar_codes() {
        let mut rng = seeded(52);
        let coder = BinaryCoder::new(32, 256, &mut rng);
        use rand::Rng;
        let base: Vec<f32> = (0..32).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let near: Vec<f32> = base.iter().map(|v| v + 0.02).collect();
        let far: Vec<f32> = (0..32).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let (cb, cn, cf) = (coder.encode(&base), coder.encode(&near), coder.encode(&far));
        assert!(
            BinaryCoder::hamming(&cb, &cn) < BinaryCoder::hamming(&cb, &cf),
            "locality-sensitive property violated"
        );
    }

    #[test]
    fn recall_penalized_vs_exact_search() {
        let mut rng = seeded(53);
        let ds = Dataset::gaussian_mixture(3_000, 32, 30, 0.8, &mut rng);
        let (queries, _) = ds.queries(24, 0.2, &mut rng);
        let truth = ds.ground_truth(&queries, 10);

        let coder = BinaryCoder::new(32, 64, &mut rng); // 2x compression of 32 floats
        let codes = coder.encode_batch(&ds.points);
        let results: Vec<Vec<usize>> = (0..queries.rows())
            .map(|qi| coder.search(&codes, queries.row(qi), 10))
            .collect();
        let r = recall(&results, &truth, 10).recall_at_k;
        assert!(
            r < 0.9,
            "64-bit codes should lose measurable recall, got {r:.3}"
        );
        assert!(
            r > 0.05,
            "codes should still retrieve something, got {r:.3}"
        );
    }

    #[test]
    fn more_bits_improve_recall() {
        let mut rng = seeded(54);
        let ds = Dataset::gaussian_mixture(2_000, 32, 25, 0.8, &mut rng);
        let (queries, _) = ds.queries(16, 0.2, &mut rng);
        let truth = ds.ground_truth(&queries, 10);
        let r = |bits: usize| {
            let coder = BinaryCoder::new(32, bits, &mut seeded(55));
            let codes = coder.encode_batch(&ds.points);
            let results: Vec<Vec<usize>> = (0..queries.rows())
                .map(|qi| coder.search(&codes, queries.row(qi), 10))
                .collect();
            recall(&results, &truth, 10).recall_at_k
        };
        let short = r(32);
        let long = r(512);
        assert!(
            long > short,
            "recall should grow with bits: {short:.3} -> {long:.3}"
        );
    }
}
