//! The paper's evaluation, experiment by experiment.
//!
//! Every table and figure of Section V/VI has a function here that runs the
//! corresponding simulation(s) and returns structured rows; the
//! `reach-bench` crate wraps each in a Criterion bench and the
//! `experiments` binary prints them in the paper's format. EXPERIMENTS.md
//! records paper-vs-measured values.

use crate::pipeline::{CbirMapping, CbirPipeline, CbirStage};
use crate::scenarios::{blueprint_with, CbirScenario};
use crate::workload::CbirWorkload;
use reach::{
    ComputeLevel, EnergyLedger, RunReport, Scenario, ScenarioExecutor, SequentialExecutor,
    SystemConfig,
};
use std::fmt;

/// Instance counts swept in Figures 9–11.
pub const STAGE_SWEEP: [usize; 5] = [1, 2, 4, 8, 16];

/// Instance counts swept in Figure 12.
pub const E2E_SWEEP: [usize; 3] = [1, 2, 4];

// ------------------------------------------------------------------ //
// Figure 8 — energy breakdown of the on-chip baseline
// ------------------------------------------------------------------ //

/// Figure 8: the on-chip baseline's energy matrix.
#[derive(Clone, Debug)]
pub struct Fig8 {
    /// The full component x stage ledger (the left chart).
    pub ledger: EnergyLedger,
    /// Fraction of energy spent moving data (the paper reports 79%).
    pub movement_fraction: f64,
    /// Per-stage share of total energy, pipeline order (FE, SL, RR) —
    /// the right chart's column sums.
    pub stage_shares: [f64; 3],
    /// The baseline report (reused by other figures for normalization).
    pub report: RunReport,
}

/// Runs the fully-on-chip CBIR batch and decomposes its energy.
#[must_use]
pub fn fig8() -> Fig8 {
    fig8_with(&SequentialExecutor)
}

/// [`fig8`] through an explicit executor.
#[must_use]
pub fn fig8_with(executor: &dyn ScenarioExecutor) -> Fig8 {
    let p = CbirPipeline::new(CbirWorkload::paper_setup(), CbirMapping::AllOnChip);
    let scenario = CbirScenario::full("fig8/on-chip", blueprint_with(4, 4), p, 1);
    let mut results = executor.run_all(vec![Box::new(scenario)]);
    let report = results.remove(0).report;
    let total = report.total_energy_j();
    let shares = [
        report
            .ledger
            .stage_total(CbirStage::FeatureExtraction.label())
            / total,
        report.ledger.stage_total(CbirStage::ShortList.label()) / total,
        report.ledger.stage_total(CbirStage::Rerank.label()) / total,
    ];
    Fig8 {
        movement_fraction: report.ledger.movement_fraction(),
        stage_shares: shares,
        ledger: report.ledger.clone(),
        report,
    }
}

// ------------------------------------------------------------------ //
// Figures 9-11 — per-stage runtime/energy scaling at NM and NS
// ------------------------------------------------------------------ //

/// One bar of Figures 9, 10 or 11.
#[derive(Clone, Copy, Debug)]
pub struct StageScalingRow {
    /// Near-memory or near-storage.
    pub level: ComputeLevel,
    /// Accelerator instances.
    pub instances: usize,
    /// Runtime normalized to the on-chip single instance.
    pub runtime_norm: f64,
    /// Energy normalized to the on-chip single instance.
    pub energy_norm: f64,
}

impl fmt::Display for StageScalingRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:>12} x{:<2}  runtime {:>6.2}  energy {:>6.2}",
            self.level.to_string(),
            self.instances,
            self.runtime_norm,
            self.energy_norm
        )
    }
}

/// Runs one pipeline stage at near-memory and near-storage with the
/// Figure 9–11 instance sweep, normalized to the on-chip accelerator.
#[must_use]
pub fn stage_scaling(stage: CbirStage) -> Vec<StageScalingRow> {
    stage_scaling_with(&SequentialExecutor, stage)
}

/// [`stage_scaling`] through an explicit executor: every sweep point is an
/// independent scenario, so a parallel executor runs the whole figure
/// concurrently.
#[must_use]
pub fn stage_scaling_with(
    executor: &dyn ScenarioExecutor,
    stage: CbirStage,
) -> Vec<StageScalingRow> {
    let w = CbirWorkload::paper_setup();
    let mut scenarios: Vec<Box<dyn Scenario>> = vec![Box::new(CbirScenario::stage(
        format!("{}/on-chip/x1", stage.label()),
        blueprint_with(4, 4),
        CbirPipeline::new(w, CbirMapping::AllOnChip),
        stage,
        1,
    ))];
    let mut points = Vec::new();
    for (mapping, level) in [
        (CbirMapping::AllNearMemory, ComputeLevel::NearMemory),
        (CbirMapping::AllNearStorage, ComputeLevel::NearStorage),
    ] {
        for &n in &STAGE_SWEEP {
            let blueprint = match level {
                ComputeLevel::NearMemory => blueprint_with(n, 4),
                _ => blueprint_with(4, n),
            };
            scenarios.push(Box::new(CbirScenario::stage(
                format!("{}/{level}/x{n}", stage.label()),
                blueprint,
                CbirPipeline::new(w, mapping),
                stage,
                1,
            )));
            points.push((level, n));
        }
    }

    let mut results = executor.run_all(scenarios);
    let base = results.remove(0).report;
    let base_time = base.makespan.as_secs_f64();
    let base_energy = base.total_energy_j();

    points
        .into_iter()
        .zip(results)
        .map(|((level, instances), result)| StageScalingRow {
            level,
            instances,
            runtime_norm: result.report.makespan.as_secs_f64() / base_time,
            energy_norm: result.report.total_energy_j() / base_energy,
        })
        .collect()
}

/// Figure 9: feature extraction scaling.
#[must_use]
pub fn fig9() -> Vec<StageScalingRow> {
    stage_scaling(CbirStage::FeatureExtraction)
}

/// [`fig9`] through an explicit executor.
#[must_use]
pub fn fig9_with(executor: &dyn ScenarioExecutor) -> Vec<StageScalingRow> {
    stage_scaling_with(executor, CbirStage::FeatureExtraction)
}

/// Figure 10: short-list retrieval scaling.
#[must_use]
pub fn fig10() -> Vec<StageScalingRow> {
    stage_scaling(CbirStage::ShortList)
}

/// [`fig10`] through an explicit executor.
#[must_use]
pub fn fig10_with(executor: &dyn ScenarioExecutor) -> Vec<StageScalingRow> {
    stage_scaling_with(executor, CbirStage::ShortList)
}

/// Figure 11: rerank scaling.
#[must_use]
pub fn fig11() -> Vec<StageScalingRow> {
    stage_scaling(CbirStage::Rerank)
}

/// [`fig11`] through an explicit executor.
#[must_use]
pub fn fig11_with(executor: &dyn ScenarioExecutor) -> Vec<StageScalingRow> {
    stage_scaling_with(executor, CbirStage::Rerank)
}

// ------------------------------------------------------------------ //
// Figure 12 — end-to-end CBIR on a single compute level
// ------------------------------------------------------------------ //

/// One bar group of Figure 12.
#[derive(Clone, Debug)]
pub struct Fig12Row {
    /// Which single level ran the whole pipeline.
    pub mapping: CbirMapping,
    /// Instances at that level (on-chip always has 1).
    pub instances: usize,
    /// Total runtime normalized to the on-chip baseline.
    pub runtime_norm: f64,
    /// Total energy normalized to the on-chip baseline.
    pub energy_norm: f64,
    /// Per-stage runtime share (FE, SL, RR) for the stacked bars.
    pub stage_spans_ms: [f64; 3],
}

impl fmt::Display for Fig12Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:>12} x{:<2}  runtime {:>5.2}  energy {:>5.2}  (fe {:.0}ms, sl {:.0}ms, rr {:.0}ms)",
            self.mapping.name(),
            self.instances,
            self.runtime_norm,
            self.energy_norm,
            self.stage_spans_ms[0],
            self.stage_spans_ms[1],
            self.stage_spans_ms[2]
        )
    }
}

/// Runs the end-to-end pipeline on each single level with 1/2/4 instances.
#[must_use]
pub fn fig12() -> Vec<Fig12Row> {
    fig12_with(&SequentialExecutor)
}

/// [`fig12`] through an explicit executor.
#[must_use]
pub fn fig12_with(executor: &dyn ScenarioExecutor) -> Vec<Fig12Row> {
    let w = CbirWorkload::paper_setup();
    let mut scenarios: Vec<Box<dyn Scenario>> = vec![Box::new(CbirScenario::full(
        "fig12/on-chip/x1",
        blueprint_with(4, 4),
        CbirPipeline::new(w, CbirMapping::AllOnChip),
        1,
    ))];
    let mut points = Vec::new();
    for &n in &E2E_SWEEP {
        for mapping in [CbirMapping::AllNearMemory, CbirMapping::AllNearStorage] {
            let blueprint = match mapping {
                CbirMapping::AllNearMemory => blueprint_with(n, 4),
                _ => blueprint_with(4, n),
            };
            scenarios.push(Box::new(CbirScenario::full(
                format!("fig12/{}/x{n}", mapping.name()),
                blueprint,
                CbirPipeline::new(w, mapping),
                1,
            )));
            points.push((mapping, n));
        }
    }

    let spans = |r: &RunReport| -> [f64; 3] {
        [
            r.stage(CbirStage::FeatureExtraction.label())
                .map_or(0.0, |s| s.span().as_ms_f64()),
            r.stage(CbirStage::ShortList.label())
                .map_or(0.0, |s| s.span().as_ms_f64()),
            r.stage(CbirStage::Rerank.label())
                .map_or(0.0, |s| s.span().as_ms_f64()),
        ]
    };

    let mut results = executor.run_all(scenarios);
    let base = results.remove(0).report;
    let base_time = base.makespan.as_secs_f64();
    let base_energy = base.total_energy_j();

    let mut rows = vec![Fig12Row {
        mapping: CbirMapping::AllOnChip,
        instances: 1,
        runtime_norm: 1.0,
        energy_norm: 1.0,
        stage_spans_ms: spans(&base),
    }];
    rows.extend(
        points
            .into_iter()
            .zip(results)
            .map(|((mapping, n), result)| Fig12Row {
                mapping,
                instances: n,
                runtime_norm: result.report.makespan.as_secs_f64() / base_time,
                energy_norm: result.report.total_energy_j() / base_energy,
                stage_spans_ms: spans(&result.report),
            }),
    );
    rows
}

// ------------------------------------------------------------------ //
// Figure 13 — the headline comparison
// ------------------------------------------------------------------ //

/// One acceleration option of Figure 13.
#[derive(Clone, Debug)]
pub struct Fig13Row {
    /// The acceleration option.
    pub mapping: CbirMapping,
    /// Query throughput improvement over on-chip (chart a).
    pub throughput_gain: f64,
    /// Query response latency improvement over on-chip (chart b).
    pub latency_gain: f64,
    /// Energy per component in joules per batch (chart c).
    pub energy_by_component: Vec<(reach::SystemComponent, f64)>,
    /// Total energy per batch.
    pub energy_total: f64,
}

impl fmt::Display for Fig13Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:>12}  throughput {:>5.2}x  latency {:>5.2}x  energy {:>7.2} J",
            self.mapping.name(),
            self.throughput_gain,
            self.latency_gain,
            self.energy_total
        )
    }
}

/// Batches used for the steady-state throughput measurement.
pub const FIG13_BATCHES: usize = 16;

/// Runs the four acceleration options of Figure 13.
///
/// The on-chip baseline runs *synchronously* (conventional host-driven
/// acceleration: one batch completes before the next starts); the
/// near-data options run under the GAM with cross-batch pipelining — the
/// paper's "GAM assigns tasks from the next job … without waiting".
#[must_use]
pub fn fig13() -> Vec<Fig13Row> {
    fig13_with(&SequentialExecutor)
}

/// [`fig13`] through an explicit executor: each mapping contributes a
/// steady-state scenario and a single-batch scenario, all independent.
#[must_use]
pub fn fig13_with(executor: &dyn ScenarioExecutor) -> Vec<Fig13Row> {
    let w = CbirWorkload::paper_setup();
    let scenarios: Vec<Box<dyn Scenario>> = CbirMapping::ALL
        .iter()
        .flat_map(|&mapping| {
            let p = CbirPipeline::new(w, mapping);
            let steady: Box<dyn Scenario> = if mapping == CbirMapping::AllOnChip {
                Box::new(CbirScenario::synchronous(
                    format!("fig13/{}/steady", mapping.name()),
                    blueprint_with(4, 4),
                    p,
                    FIG13_BATCHES,
                ))
            } else {
                Box::new(CbirScenario::full(
                    format!("fig13/{}/steady", mapping.name()),
                    blueprint_with(4, 4),
                    p,
                    FIG13_BATCHES,
                ))
            };
            let single: Box<dyn Scenario> = Box::new(CbirScenario::full(
                format!("fig13/{}/single", mapping.name()),
                blueprint_with(4, 4),
                p,
                1,
            ));
            [steady, single]
        })
        .collect();

    let results = executor.run_all(scenarios);
    let pairs: Vec<(&RunReport, &RunReport)> = results
        .chunks(2)
        .map(|pair| (&pair[0].report, &pair[1].report))
        .collect();
    let (base_steady, base_single) = pairs[0];

    CbirMapping::ALL
        .iter()
        .zip(&pairs)
        .map(|(&mapping, &(steady, single))| {
            let energy_by_component = reach::SystemComponent::ALL
                .iter()
                .map(|&c| (c, single.ledger.component_total(c)))
                .collect();
            Fig13Row {
                mapping,
                throughput_gain: steady.throughput_jobs_per_sec()
                    / base_steady.throughput_jobs_per_sec(),
                latency_gain: base_single.job_latency_mean.as_secs_f64()
                    / single.job_latency_mean.as_secs_f64(),
                energy_total: single.total_energy_j(),
                energy_by_component,
            }
        })
        .collect()
}

// ------------------------------------------------------------------ //
// Extension: recall vs compression (Section IV-A's argument, executed)
// ------------------------------------------------------------------ //

/// One row of the recall-vs-compression comparison.
#[derive(Clone, Debug)]
pub struct RecallCompressionRow {
    /// Method name.
    pub method: String,
    /// Bytes of index data visited per query (relative cost of the scan).
    pub bytes_per_vector: f64,
    /// Recall@10 against exact brute force.
    pub recall_at_10: f64,
}

impl fmt::Display for RecallCompressionRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<34} {:>8.1} B/vec   recall@10 {:>6.3}",
            self.method, self.bytes_per_vector, self.recall_at_10
        )
    }
}

/// Method labels of [`recall_vs_compression`]'s rows, in row order. A
/// cached recall report stores only the two numbers per row; the labels
/// live here, which is safe because any edit to this list is a code change
/// and the persistent cache is invalidated by the simulator version stamp.
const RECALL_METHODS: [&str; 5] = [
    "IVF + exact rerank (ReACH)",
    "PQ 8x8b (16x smaller)",
    "PQ 4x4b (32x smaller)",
    "binary codes, 64 bits",
    "binary codes, 256 bits",
];

/// The paper's Section IV-A argument, executed: lossy compression (binary
/// codes, product quantization) cuts bytes visited by 8-64x but pays in
/// recall, while the exact IVF + rerank pipeline ReACH accelerates keeps
/// recall high at full precision.
///
/// This is the raw computation — dataset synthesis, index builds, codec
/// training, searches. It is by far the most expensive point in the
/// `experiments` suite and a pure function of its built-in constants and
/// the pinned [`reach_sim::rng::DEFAULT_SEED`], so suite runs go through
/// [`recall_vs_compression_with`], which wraps it in a cacheable scenario.
#[must_use]
pub fn recall_vs_compression() -> Vec<RecallCompressionRow> {
    use crate::binary::BinaryCoder;
    use crate::dataset::{recall, Dataset};
    use crate::ivf::IvfIndex;
    use crate::pq::ProductQuantizer;
    use reach_sim::rng::derived;

    let mut rng = derived(reach_sim::rng::DEFAULT_SEED, "recall-vs-compression");
    let dim = 32;
    let ds = Dataset::gaussian_mixture(6_000, dim, 48, 0.8, &mut rng);
    let (queries, _) = ds.queries(32, 0.2, &mut rng);
    let truth = ds.ground_truth(&queries, 10);
    let full_bytes = dim as f64 * 4.0;

    // One cross-batch cache for the whole experiment: centroid and
    // codeword norms are computed once and reused by every query.
    let ctx = crate::cache::QueryContext::new();
    let mut rows = Vec::new();

    // Exact IVF + rerank (what ReACH accelerates), nprobe = 1/6 of cells.
    let index = IvfIndex::build(&ds.points, 48, &mut rng);
    let exact = index.search_cached(&ctx, &ds.points, &queries, 8, 10, None);
    rows.push(RecallCompressionRow {
        method: RECALL_METHODS[0].into(),
        bytes_per_vector: full_bytes * 8.0 / 48.0, // fraction of cells scanned
        recall_at_10: recall(&exact, &truth, 10).recall_at_k,
    });

    // Product quantization at two compression points.
    for (subs, cents, label) in [
        (8usize, 64usize, RECALL_METHODS[1]),
        (4, 16, RECALL_METHODS[2]),
    ] {
        let pq = ProductQuantizer::train(&ds.points, subs, cents, &mut rng);
        let codes = pq.encode_batch(&ds.points);
        let results: Vec<Vec<usize>> = (0..queries.rows())
            .map(|qi| pq.search_cached(&ctx, &codes, queries.row(qi), 10))
            .collect();
        rows.push(RecallCompressionRow {
            method: label.into(),
            bytes_per_vector: pq.code_bytes() as f64,
            recall_at_10: recall(&results, &truth, 10).recall_at_k,
        });
    }

    // Binary codes at two lengths.
    for (bits, label) in [(64usize, RECALL_METHODS[3]), (256, RECALL_METHODS[4])] {
        let coder = BinaryCoder::new(dim, bits, &mut rng);
        let codes = coder.encode_batch(&ds.points);
        let results: Vec<Vec<usize>> = (0..queries.rows())
            .map(|qi| coder.search(&codes, queries.row(qi), 10))
            .collect();
        rows.push(RecallCompressionRow {
            method: label.into(),
            bytes_per_vector: coder.code_bytes() as f64,
            recall_at_10: recall(&results, &truth, 10).recall_at_k,
        });
    }
    rows
}

/// [`recall_vs_compression`] through an executor, as one cacheable
/// [`Scenario`]: the rows travel inside a [`RunReport`]'s metrics (two
/// gauges per row under `recall.NN.*`), so the runner's result cache —
/// including the persistent disk tier — replays the whole evaluation
/// instead of re-synthesizing the dataset and re-training every codec. The
/// fingerprint covers the one input the constants don't pin (the seed the
/// computation derives from); everything else is code, covered by the
/// simulator version stamp that keys the disk store.
///
/// # Panics
///
/// Panics if the executor returns a report without the recall gauges —
/// possible only if a result cache replayed a report from a different
/// scenario under this fingerprint.
#[must_use]
pub fn recall_vs_compression_with(executor: &dyn ScenarioExecutor) -> Vec<RecallCompressionRow> {
    use reach::fingerprint::ConfigFingerprint;
    use reach::{FnScenario, GamStats, MetricValue, MetricsSnapshot, SimDuration};
    use reach_sim::FingerprintBuilder;

    let mut b = FingerprintBuilder::new("reach-recall-vs-compression-v1");
    b.write_u64(reach_sim::rng::DEFAULT_SEED);
    for method in RECALL_METHODS {
        b.write_str(method);
    }
    let fingerprint = ConfigFingerprint::from_builder(b);

    let scenario = FnScenario::new(
        "extension/recall-vs-compression",
        blueprint_with(1, 1),
        |_machine| {
            let rows = recall_vs_compression();
            let mut metrics = MetricsSnapshot::new(0);
            for (i, row) in rows.iter().enumerate() {
                let gauge = |v: f64| MetricValue::Gauge { mean: v, last: v };
                metrics.set(
                    &format!("recall.{i:02}.bytes_per_vector"),
                    gauge(row.bytes_per_vector),
                );
                metrics.set(
                    &format!("recall.{i:02}.recall_at_10"),
                    gauge(row.recall_at_10),
                );
            }
            RunReport {
                makespan: SimDuration::ZERO,
                jobs: 0,
                job_latency_mean: SimDuration::ZERO,
                job_latency_last: SimDuration::ZERO,
                stages: Vec::new(),
                ledger: EnergyLedger::new(),
                gam: GamStats::default(),
                completions: Vec::new(),
                metrics,
            }
        },
    )
    .with_fingerprint(fingerprint);

    let report = executor.run_all(vec![Box::new(scenario)]).remove(0).report;
    RECALL_METHODS
        .iter()
        .enumerate()
        .map(|(i, method)| {
            let gauge = |field: &str| match report.metrics.get(&format!("recall.{i:02}.{field}")) {
                Some(MetricValue::Gauge { last, .. }) => *last,
                other => panic!("recall report missing recall.{i:02}.{field}: {other:?}"),
            };
            RecallCompressionRow {
                method: (*method).to_string(),
                bytes_per_vector: gauge("bytes_per_vector"),
                recall_at_10: gauge("recall_at_10"),
            }
        })
        .collect()
}

// ------------------------------------------------------------------ //
// Tables
// ------------------------------------------------------------------ //

/// One row of Table I.
#[derive(Clone, Debug)]
pub struct Table1Row {
    /// Pipeline stage name.
    pub stage: &'static str,
    /// Memory requirement description.
    pub memory: String,
    /// Computation requirement description.
    pub compute: &'static str,
}

/// Table I: memory and compute requirements of each CBIR stage.
#[must_use]
pub fn table1() -> Vec<Table1Row> {
    let w = CbirWorkload::paper_setup();
    vec![
        Table1Row {
            stage: "Feature extraction",
            memory: format!(
                "{:.0} MB, {:.1} MB if compressed (NN model parameters)",
                crate::features::VGG16_PARAM_BYTES as f64 / 1e6,
                crate::features::VGG16_COMPRESSED_PARAM_BYTES as f64 / 1e6
            ),
            compute: "High - convolutional neural network",
        },
        Table1Row {
            stage: "Short-list retrieval",
            memory: format!(
                "~{:.1} GB (cluster centroids and cell info)",
                w.centroid_store_bytes as f64 / 1e9
            ),
            compute: "Medium - non-square matrix multiplication",
        },
        Table1Row {
            stage: "Rerank",
            memory: "~355 GB (1 billion feature vectors)".to_string(),
            compute: "Low - K nearest neighbors",
        },
        Table1Row {
            stage: "Reverse lookup",
            memory: "200 TB - 2 PB (1 billion images)".to_string(),
            compute: "Very low - database access (excluded, as in the paper)",
        },
    ]
}

/// Table II is the [`SystemConfig::paper_table2`] value itself.
#[must_use]
pub fn table2() -> SystemConfig {
    SystemConfig::paper_table2()
}

/// Table III is the template registry.
#[must_use]
pub fn table3() -> reach::TemplateRegistry {
    reach::TemplateRegistry::paper_table3()
}

/// Table IV is the energy preset bundle.
#[must_use]
pub fn table4() -> reach_energy::EnergyPresets {
    reach_energy::EnergyPresets::paper_table4()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_movement_dominates() {
        let f = fig8();
        // Paper: 79% movement. Acceptance band from DESIGN.md: 70-85%.
        assert!(
            f.movement_fraction > 0.70 && f.movement_fraction < 0.85,
            "movement fraction {:.3}",
            f.movement_fraction
        );
        // Rerank is the dominant stage.
        assert!(
            f.stage_shares[2] > f.stage_shares[0] && f.stage_shares[2] > f.stage_shares[1],
            "stage shares {:?}",
            f.stage_shares
        );
        let sum: f64 = f.stage_shares.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "shares sum {sum}");
    }

    #[test]
    fn fig9_shapes() {
        let rows = fig9();
        let nm1 = rows
            .iter()
            .find(|r| r.level == ComputeLevel::NearMemory && r.instances == 1)
            .unwrap();
        // Single embedded instance 7-10x slower than on-chip.
        assert!(
            nm1.runtime_norm > 7.0 && nm1.runtime_norm < 11.0,
            "NM1 {}",
            nm1.runtime_norm
        );
        // 16 instances collectively surpass the on-chip accelerator.
        let nm16 = rows
            .iter()
            .find(|r| r.level == ComputeLevel::NearMemory && r.instances == 16)
            .unwrap();
        assert!(nm16.runtime_norm < 1.0, "NM16 {}", nm16.runtime_norm);
        // On-chip has the best energy: every embedded bar >= 1.
        for r in &rows {
            assert!(r.energy_norm > 0.9, "{r} beats on-chip energy on FE");
        }
    }

    #[test]
    fn fig10_shapes() {
        let rows = fig10();
        let nm = |n: usize| {
            rows.iter()
                .find(|r| r.level == ComputeLevel::NearMemory && r.instances == n)
                .unwrap()
        };
        // 1 instance is slower than on-chip; 2 or more are faster.
        assert!(nm(1).runtime_norm > 1.0, "NM1 {}", nm(1).runtime_norm);
        assert!(nm(2).runtime_norm < 1.0, "NM2 {}", nm(2).runtime_norm);
        assert!(nm(4).runtime_norm < nm(2).runtime_norm);
        // Near-storage is slower than near-memory at equal instance count.
        let ns1 = rows
            .iter()
            .find(|r| r.level == ComputeLevel::NearStorage && r.instances == 1)
            .unwrap();
        assert!(
            ns1.runtime_norm > nm(1).runtime_norm,
            "NS1 {} vs NM1 {}",
            ns1.runtime_norm,
            nm(1).runtime_norm
        );
    }

    #[test]
    fn fig11_shapes() {
        let rows = fig11();
        let nm = |n: usize| {
            rows.iter()
                .find(|r| r.level == ComputeLevel::NearMemory && r.instances == n)
                .unwrap()
                .runtime_norm
        };
        let ns = |n: usize| {
            rows.iter()
                .find(|r| r.level == ComputeLevel::NearStorage && r.instances == n)
                .unwrap()
                .runtime_norm
        };
        // Near-memory scales then plateaus past 8 instances (host IO).
        assert!(nm(4) < nm(1));
        let plateau = nm(16) / nm(8);
        assert!(plateau > 0.7, "NM should plateau 8->16, got {plateau}");
        // Near-storage keeps scaling.
        let ns_scaling = ns(16) / ns(8);
        assert!(ns_scaling < 0.7, "NS should keep scaling, got {ns_scaling}");
    }

    #[test]
    fn fig13_headline_numbers() {
        let rows = fig13();
        let reach = rows
            .iter()
            .find(|r| r.mapping == CbirMapping::Proper)
            .unwrap();
        // Paper: 4.5x throughput, 2.2x latency, 52% energy reduction.
        // DESIGN.md bands: [3.5, 5.5]x, [1.8, 2.8]x, [45, 60]%.
        assert!(
            reach.throughput_gain > 3.5 && reach.throughput_gain < 5.5,
            "throughput {:.2}",
            reach.throughput_gain
        );
        assert!(
            reach.latency_gain > 1.8 && reach.latency_gain < 2.8,
            "latency {:.2}",
            reach.latency_gain
        );
        let base = rows
            .iter()
            .find(|r| r.mapping == CbirMapping::AllOnChip)
            .unwrap();
        let reduction = 1.0 - reach.energy_total / base.energy_total;
        assert!(
            reduction > 0.45 && reduction < 0.60,
            "energy reduction {:.3}",
            reduction
        );
    }

    #[test]
    fn compression_penalizes_recall() {
        let rows = recall_vs_compression();
        let exact = rows[0].recall_at_10;
        assert!(exact > 0.9, "exact pipeline recall {exact:.3}");
        for lossy in &rows[1..] {
            assert!(
                lossy.recall_at_10 < exact,
                "{} should trail the exact pipeline: {:.3} vs {exact:.3}",
                lossy.method,
                lossy.recall_at_10
            );
        }
    }

    #[test]
    fn tables_are_populated() {
        assert_eq!(table1().len(), 4);
        assert_eq!(table3().len(), 9);
        table2().validate();
        let _ = table4();
    }
}
