//! Synthetic datasets and retrieval-quality metrics.
//!
//! The billion-scale image-feature database of the paper is replaced by a
//! Gaussian-mixture vector dataset (DESIGN.md, substitution table): cluster
//! structure is what IVF indexing exploits, and recall against exact brute
//! force is measurable at laptop scale.

use crate::linalg::{dist_sq, Matrix};
use crate::topk::top_k;
use rand::Rng;
use rand_distr_shim::StandardNormalShim;

/// A tiny shim providing standard-normal draws without an extra crate
/// dependency (Box–Muller over the uniform generator).
mod rand_distr_shim {
    use rand::Rng;

    pub struct StandardNormalShim;

    impl StandardNormalShim {
        pub fn sample(rng: &mut impl Rng) -> f32 {
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
        }
    }
}

/// A labelled Gaussian-mixture dataset.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// `n x d` data points.
    pub points: Matrix,
    /// Ground-truth mixture component of each point.
    pub labels: Vec<usize>,
    /// The mixture means (`components x d`).
    pub means: Matrix,
}

impl Dataset {
    /// Samples `n` points in `d` dimensions from `components` Gaussian
    /// blobs with the given intra-cluster standard deviation. Means are
    /// drawn uniformly in `[-10, 10]^d`.
    ///
    /// # Panics
    ///
    /// Panics on zero sizes.
    #[must_use]
    pub fn gaussian_mixture(
        n: usize,
        d: usize,
        components: usize,
        sigma: f32,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(n > 0 && d > 0 && components > 0, "Dataset: zero size");
        let mut means = Matrix::zeros(components, d);
        for c in 0..components {
            for v in means.row_mut(c) {
                *v = rng.gen_range(-10.0..10.0);
            }
        }
        let mut points = Matrix::zeros(n, d);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let c = rng.gen_range(0..components);
            labels.push(c);
            // Copy the mean first, then perturb, to keep the borrow local.
            let mean: Vec<f32> = means.row(c).to_vec();
            for (v, m) in points.row_mut(i).iter_mut().zip(mean) {
                *v = m + sigma * StandardNormalShim::sample(rng);
            }
        }
        Dataset {
            points,
            labels,
            means,
        }
    }

    /// Number of points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.rows()
    }

    /// `true` when empty (never, by construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.rows() == 0
    }

    /// Draws `count` queries: perturbed copies of random dataset points
    /// (the standard "query near the manifold" retrieval setup). Returns
    /// the queries and the index of the point each was derived from.
    #[must_use]
    pub fn queries(&self, count: usize, sigma: f32, rng: &mut impl Rng) -> (Matrix, Vec<usize>) {
        let d = self.points.cols();
        let mut q = Matrix::zeros(count, d);
        let mut origin = Vec::with_capacity(count);
        for i in 0..count {
            let src = rng.gen_range(0..self.len());
            origin.push(src);
            let base: Vec<f32> = self.points.row(src).to_vec();
            for (v, b) in q.row_mut(i).iter_mut().zip(base) {
                *v = b + sigma * StandardNormalShim::sample(rng);
            }
        }
        (q, origin)
    }

    /// Exact K-nearest-neighbour ground truth by brute force.
    #[must_use]
    pub fn ground_truth(&self, queries: &Matrix, k: usize) -> Vec<Vec<usize>> {
        (0..queries.rows())
            .map(|qi| {
                top_k(
                    (0..self.len()).map(|i| (dist_sq(queries.row(qi), self.points.row(i)), i)),
                    k,
                )
                .into_iter()
                .map(|(_, i)| i)
                .collect()
            })
            .collect()
    }
}

/// Recall of retrieved results against exact ground truth.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RecallReport {
    /// Mean fraction of true K-nearest neighbours found, in `[0, 1]`.
    pub recall_at_k: f64,
    /// Queries evaluated.
    pub queries: usize,
    /// K used.
    pub k: usize,
}

/// Computes recall@K: `|retrieved ∩ true| / k`, averaged over queries.
///
/// # Panics
///
/// Panics if the result lists disagree in length or `k` is zero.
#[must_use]
pub fn recall(retrieved: &[Vec<usize>], truth: &[Vec<usize>], k: usize) -> RecallReport {
    assert_eq!(retrieved.len(), truth.len(), "recall: query count mismatch");
    assert!(k > 0, "recall: k = 0");
    let mut total = 0.0f64;
    for (r, t) in retrieved.iter().zip(truth) {
        let hits = r
            .iter()
            .take(k)
            .filter(|i| t[..k.min(t.len())].contains(i))
            .count();
        total += hits as f64 / k as f64;
    }
    RecallReport {
        recall_at_k: total / retrieved.len().max(1) as f64,
        queries: retrieved.len(),
        k,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reach_sim::rng::seeded;

    #[test]
    fn mixture_has_cluster_structure() {
        let mut rng = seeded(11);
        let ds = Dataset::gaussian_mixture(300, 8, 3, 0.3, &mut rng);
        assert_eq!(ds.len(), 300);
        // A point is closer to its own component mean than to the others.
        let mut correct = 0;
        for i in 0..ds.len() {
            let own = dist_sq(ds.points.row(i), ds.means.row(ds.labels[i]));
            let others = (0..3)
                .filter(|&c| c != ds.labels[i])
                .map(|c| dist_sq(ds.points.row(i), ds.means.row(c)))
                .fold(f32::INFINITY, f32::min);
            if own < others {
                correct += 1;
            }
        }
        assert!(correct > 290, "structure too weak: {correct}/300");
    }

    #[test]
    fn queries_are_near_their_origin() {
        let mut rng = seeded(13);
        let ds = Dataset::gaussian_mixture(200, 8, 4, 0.5, &mut rng);
        let (q, origin) = ds.queries(10, 0.01, &mut rng);
        let gt = ds.ground_truth(&q, 1);
        let hits = gt.iter().zip(&origin).filter(|(nn, &o)| nn[0] == o).count();
        assert!(hits >= 9, "only {hits}/10 queries found their origin");
    }

    #[test]
    fn recall_metric_boundaries() {
        let truth = vec![vec![1, 2, 3], vec![4, 5, 6]];
        let perfect = recall(&truth.clone(), &truth, 3);
        assert!((perfect.recall_at_k - 1.0).abs() < 1e-12);
        let miss = recall(&[vec![9, 9, 9], vec![9, 9, 9]], &truth, 3);
        assert_eq!(miss.recall_at_k, 0.0);
        let half = recall(&[vec![1, 9, 9], vec![4, 5, 9]], &truth, 3);
        assert!((half.recall_at_k - 0.5).abs() < 1e-12);
    }

    #[test]
    fn determinism_from_seed() {
        let a = Dataset::gaussian_mixture(50, 4, 2, 0.1, &mut seeded(21));
        let b = Dataset::gaussian_mixture(50, 4, 2, 0.1, &mut seeded(21));
        assert_eq!(a.points.as_slice(), b.points.as_slice());
        assert_eq!(a.labels, b.labels);
    }
}
