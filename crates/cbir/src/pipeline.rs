//! Mapping the CBIR pipeline onto the compute hierarchy.
//!
//! Section IV-B of the paper derives the *proper* mapping — feature
//! extraction on-chip, short-list retrieval near memory, rerank near
//! storage (Figure 7) — and Section VI compares it against running the
//! whole pipeline at a single level. [`CbirMapping`] enumerates those
//! options and [`CbirPipeline`] compiles any of them into a
//! [`reach::Pipeline`] over the ReACH programming API, so the comparison
//! changes *only* the configuration, never the application flow — the
//! paper's portability claim, executed.

use crate::workload::CbirWorkload;
use reach::api::Acc;
use reach::{
    Arg, ExecMode, Level, Machine, Pipeline, ReachConfig, RunReport, StreamType, SystemConfig,
    TaskWork, TemplateRegistry,
};

/// Binds the present arguments to consecutive slots starting at 0. Stage
/// subsets (e.g. rerank alone) drop leading streams; compacting keeps the
/// binding a clean prefix of the kernel signature, which is what
/// `ReachConfig::build` demands.
fn bind_args(cfg: &mut ReachConfig, acc: Acc, args: &[Option<Arg>]) {
    for (slot, arg) in args.iter().flatten().enumerate() {
        cfg.set_arg(acc, slot, *arg);
    }
}

/// Raw bytes of one 224x224 RGB query image shipped from the host.
pub const IMAGE_BYTES: u64 = 224 * 224 * 3;

/// The three stages of the online pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CbirStage {
    /// CNN feature extraction.
    FeatureExtraction,
    /// Centroid-distance GEMM + partial sort.
    ShortList,
    /// Candidate gathering + KNN + partial sort.
    Rerank,
}

impl CbirStage {
    /// All stages in pipeline order.
    pub const ALL: [CbirStage; 3] = [
        CbirStage::FeatureExtraction,
        CbirStage::ShortList,
        CbirStage::Rerank,
    ];

    /// The stage label used in reports (sorted to pipeline order).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            CbirStage::FeatureExtraction => "1-feature-extraction",
            CbirStage::ShortList => "2-short-list",
            CbirStage::Rerank => "3-rerank",
        }
    }
}

/// Which level each stage runs at.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CbirMapping {
    /// Everything on the on-chip accelerator (the paper's baseline).
    AllOnChip,
    /// Everything on the near-memory accelerators.
    AllNearMemory,
    /// Everything on the near-storage accelerators.
    AllNearStorage,
    /// The paper's optimized mapping: FE on-chip, SL near-memory, RR
    /// near-storage (Figure 7).
    Proper,
}

impl CbirMapping {
    /// The four options compared in Figure 13.
    pub const ALL: [CbirMapping; 4] = [
        CbirMapping::AllOnChip,
        CbirMapping::AllNearMemory,
        CbirMapping::AllNearStorage,
        CbirMapping::Proper,
    ];

    /// Level of each stage under this mapping.
    #[must_use]
    pub fn level_of(self, stage: CbirStage) -> Level {
        match self {
            CbirMapping::AllOnChip => Level::OnChip,
            CbirMapping::AllNearMemory => Level::NearMem,
            CbirMapping::AllNearStorage => Level::NearStor,
            CbirMapping::Proper => match stage {
                CbirStage::FeatureExtraction => Level::OnChip,
                CbirStage::ShortList => Level::NearMem,
                CbirStage::Rerank => Level::NearStor,
            },
        }
    }

    /// Short human-readable name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CbirMapping::AllOnChip => "on-chip",
            CbirMapping::AllNearMemory => "near-memory",
            CbirMapping::AllNearStorage => "near-storage",
            CbirMapping::Proper => "ReACH",
        }
    }
}

fn template_for(stage: CbirStage, level: Level) -> &'static str {
    match (stage, level) {
        (CbirStage::FeatureExtraction, Level::OnChip) => "VGG16-VU9P",
        (CbirStage::FeatureExtraction, _) => "VGG16-ZCU9",
        (CbirStage::ShortList, Level::OnChip) => "GEMM-VU9P",
        (CbirStage::ShortList, _) => "GEMM-ZCU9",
        (CbirStage::Rerank, Level::OnChip) => "KNN-VU9P",
        (CbirStage::Rerank, _) => "KNN-ZCU9",
    }
}

/// A CBIR deployment: workload + mapping, compilable onto any machine.
#[derive(Clone, Copy, Debug)]
pub struct CbirPipeline {
    workload: CbirWorkload,
    mapping: CbirMapping,
}

impl CbirPipeline {
    /// Creates a deployment of `workload` under `mapping`.
    #[must_use]
    pub fn new(workload: CbirWorkload, mapping: CbirMapping) -> Self {
        CbirPipeline { workload, mapping }
    }

    /// The paper's optimized deployment of the paper's workload.
    #[must_use]
    pub fn paper_proper() -> Self {
        Self::new(CbirWorkload::paper_setup(), CbirMapping::Proper)
    }

    /// The workload.
    #[must_use]
    pub fn workload(&self) -> &CbirWorkload {
        &self.workload
    }

    /// The mapping.
    #[must_use]
    pub fn mapping(&self) -> CbirMapping {
        self.mapping
    }

    /// Number of accelerator instances `cfg` offers at `level`.
    fn instances(cfg: &SystemConfig, level: Level) -> usize {
        match level {
            Level::OnChip | Level::Cpu => cfg.onchip_accelerators,
            Level::NearMem => cfg.near_memory_accelerators,
            Level::NearStor => cfg.near_storage_accelerators,
        }
    }

    /// Compiles the full three-stage pipeline for `machine`.
    #[must_use]
    pub fn build(&self, machine: &Machine) -> Pipeline {
        self.build_stages(machine, &CbirStage::ALL)
    }

    /// Compiles a pipeline containing only `stages` (used by the per-stage
    /// experiments of Figures 9–11).
    ///
    /// # Panics
    ///
    /// Panics if `stages` is empty or a required level has no instances.
    #[must_use]
    pub fn build_stages(&self, machine: &Machine, stages: &[CbirStage]) -> Pipeline {
        self.compile(machine.config(), machine.registry(), stages)
    }

    /// Compiles a pipeline against a machine *shape* rather than a live
    /// machine — the same result [`Self::build_stages`] produces for a
    /// machine instantiated from that shape. This is what lets a
    /// [`crate::CbirScenario`] fingerprint its exact workload without
    /// paying for a machine instantiation.
    ///
    /// # Panics
    ///
    /// Panics if `stages` is empty or a required level has no instances.
    #[must_use]
    pub fn compile(
        &self,
        sys: &SystemConfig,
        registry: &TemplateRegistry,
        stages: &[CbirStage],
    ) -> Pipeline {
        assert!(!stages.is_empty(), "CbirPipeline: no stages selected");
        let w = &self.workload;
        let mut cfg = ReachConfig::new();

        let fe_level = self.mapping.level_of(CbirStage::FeatureExtraction);
        let sl_level = self.mapping.level_of(CbirStage::ShortList);
        let rr_level = self.mapping.level_of(CbirStage::Rerank);

        let has = |s: CbirStage| stages.contains(&s);

        // ---- Buffers and streams (the paper's config.h) ----
        // Query image batch arrives from the CPU.
        let input = has(CbirStage::FeatureExtraction).then(|| {
            cfg.create_stream(
                Level::Cpu,
                fe_level,
                StreamType::Pair,
                w.batch as u64 * IMAGE_BYTES,
                2,
            )
        });
        // CNN parameters are sedentary at the FE level (compressed to fit
        // on-chip SRAM; duplicated per embedded instance).
        let params = has(CbirStage::FeatureExtraction).then(|| {
            cfg.create_fixed_buffer(
                "vgg16_param",
                fe_level,
                crate::features::VGG16_COMPRESSED_PARAM_BYTES,
            )
        });
        // The centroid + cell-info store is sedentary at the SL level. Its
        // functional counterpart is [`crate::cache::QueryContext`]: the
        // `||c||^2` column the paper keeps "alongside the centroids" is
        // exactly what the cross-batch cache precomputes once per dataset.
        let centroid_store = has(CbirStage::ShortList)
            .then(|| cfg.create_fixed_buffer("centroid_store", sl_level, w.centroid_store_bytes));
        // The feature database always lives on the SSDs; rerank either runs
        // there (no movement) or drags candidate pages up the hierarchy.
        let db = has(CbirStage::Rerank)
            .then(|| cfg.create_fixed_buffer("feature_db", Level::NearStor, w.rerank_bytes()));

        // Inter-stage streams.
        let features =
            (has(CbirStage::FeatureExtraction) && has(CbirStage::ShortList)).then(|| {
                cfg.create_stream(
                    fe_level,
                    sl_level,
                    StreamType::Broadcast,
                    w.feature_batch_bytes(),
                    2,
                )
            });
        let shortlists = (has(CbirStage::ShortList) && has(CbirStage::Rerank)).then(|| {
            cfg.create_stream(
                sl_level,
                rr_level,
                StreamType::Broadcast,
                w.feature_batch_bytes() + w.shortlist_result_bytes(),
                2,
            )
        });
        let result = has(CbirStage::Rerank).then(|| {
            cfg.create_stream(
                rr_level,
                Level::Cpu,
                StreamType::Collect,
                w.result_bytes(),
                2,
            )
        });

        // ---- Accelerators + host flow (config.h registration + host.cpp) ----
        let mut pipeline_calls: Vec<(reach::api::Acc, TaskWork, CbirStage)> = Vec::new();

        if has(CbirStage::FeatureExtraction) {
            let n = Self::instances(sys, fe_level);
            assert!(n > 0, "no accelerators at {fe_level}");
            let template = template_for(CbirStage::FeatureExtraction, fe_level);
            if fe_level == Level::OnChip {
                // One batched instance, parameters in on-chip SRAM.
                let acc = cfg.register_acc(template, fe_level);
                bind_args(
                    &mut cfg,
                    acc,
                    &[
                        Some(input.expect("fe stage has input").into()),
                        Some(params.expect("fe stage has params").into()),
                        features.map(Arg::from),
                    ],
                );
                pipeline_calls.push((
                    acc,
                    TaskWork::compute(w.feature_macs()),
                    CbirStage::FeatureExtraction,
                ));
            } else {
                // One single-image task per query, parameters duplicated per
                // module (Section VI-B): no layer partitioning, no
                // inter-accelerator transfers.
                let accs: Vec<_> = (0..n)
                    .map(|_| {
                        let acc = cfg.register_acc(template, fe_level);
                        bind_args(
                            &mut cfg,
                            acc,
                            &[
                                Some(input.expect("fe stage has input").into()),
                                Some(params.expect("fe stage has params").into()),
                                features.map(Arg::from),
                            ],
                        );
                        acc
                    })
                    .collect();
                for img in 0..w.batch {
                    pipeline_calls.push((
                        accs[img % n],
                        TaskWork::compute(w.feature_macs_per_image),
                        CbirStage::FeatureExtraction,
                    ));
                }
            }
        }

        if has(CbirStage::ShortList) {
            let n = Self::instances(sys, sl_level);
            assert!(n > 0, "no accelerators at {sl_level}");
            let template = template_for(CbirStage::ShortList, sl_level);
            if sl_level == Level::OnChip {
                let acc = cfg.register_acc(template, sl_level);
                bind_args(
                    &mut cfg,
                    acc,
                    &[
                        features.map(Arg::from),
                        Some(centroid_store.expect("sl stage has store").into()),
                        shortlists.map(Arg::from),
                    ],
                );
                pipeline_calls.push((
                    acc,
                    TaskWork::stream(w.shortlist_macs(), w.onchip_sl_traffic()),
                    CbirStage::ShortList,
                ));
            } else {
                // The store is tiled across the modules; each instance
                // scans its own shard (and re-streams it if it exceeds the
                // kernel's tile budget).
                let shard = w.centroid_store_bytes / n as u64;
                for i in 0..n {
                    let acc = cfg.register_acc(template, sl_level);
                    bind_args(
                        &mut cfg,
                        acc,
                        &[
                            features.map(Arg::from),
                            Some(centroid_store.expect("sl stage has store").into()),
                            shortlists.map(Arg::from),
                        ],
                    );
                    let _ = i;
                    pipeline_calls.push((
                        acc,
                        TaskWork::stream(
                            w.shortlist_macs() / n as u64,
                            w.embedded_sl_traffic(shard),
                        ),
                        CbirStage::ShortList,
                    ));
                }
            }
        }

        if has(CbirStage::Rerank) {
            let n = Self::instances(sys, rr_level);
            assert!(n > 0, "no accelerators at {rr_level}");
            let template = template_for(CbirStage::Rerank, rr_level);
            let shards = if rr_level == Level::OnChip {
                1
            } else {
                n as u64
            };
            for i in 0..shards {
                let acc = cfg.register_acc(template, rr_level);
                bind_args(
                    &mut cfg,
                    acc,
                    &[
                        shortlists.map(Arg::from),
                        Some(db.expect("rerank stage has db").into()),
                        result.map(Arg::from),
                    ],
                );
                let _ = i;
                pipeline_calls.push((
                    acc,
                    TaskWork::gather(
                        w.rerank_macs() / shards,
                        w.rerank_bytes() / shards,
                        w.rerank_page_bytes,
                    ),
                    CbirStage::Rerank,
                ));
            }
        }

        let mut pipeline = Pipeline::new(
            cfg.build_with(registry)
                .expect("CBIR mapping produced an invalid configuration"),
        );
        for (acc, work, stage) in pipeline_calls {
            pipeline.call(acc, work, stage.label());
        }
        pipeline
    }

    /// Builds and runs the full pipeline for `batches` batches in the
    /// given [`ExecMode`].
    #[must_use]
    pub fn run_mode(&self, machine: &mut Machine, batches: usize, mode: ExecMode) -> RunReport {
        self.build(machine).run_mode(machine, batches, mode)
    }

    /// Builds and runs the full pipeline for `batches` batches with GAM
    /// cross-batch pipelining.
    #[must_use]
    pub fn run(&self, machine: &mut Machine, batches: usize) -> RunReport {
        self.run_mode(machine, batches, ExecMode::Pipelined)
    }

    /// Builds and runs synchronously (one batch at a time) — the
    /// conventional host-driven baseline flow.
    #[must_use]
    pub fn run_sequential(&self, machine: &mut Machine, batches: usize) -> RunReport {
        self.run_mode(machine, batches, ExecMode::Sequential)
    }

    /// Builds and runs a single stage for `batches` batches (Figures 9–11).
    #[must_use]
    pub fn run_stage(&self, machine: &mut Machine, stage: CbirStage, batches: usize) -> RunReport {
        self.build_stages(machine, &[stage]).run(machine, batches)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reach::MachineBlueprint;

    fn machine() -> Machine {
        MachineBlueprint::paper().instantiate()
    }

    #[test]
    fn onchip_baseline_stage_times_match_calibration() {
        let p = CbirPipeline::new(CbirWorkload::paper_setup(), CbirMapping::AllOnChip);
        let mut m = machine();
        let r = p.run(&mut m, 1);
        let fe = r.stage("1-feature-extraction").unwrap().span().as_ms_f64();
        let sl = r.stage("2-short-list").unwrap().span().as_ms_f64();
        let rr = r.stage("3-rerank").unwrap().span().as_ms_f64();
        // DESIGN.md calibration anchors.
        assert!((fe - 100.0).abs() < 8.0, "fe {fe} ms");
        assert!((sl - 132.0).abs() < 12.0, "sl {sl} ms");
        // ~185 ms of kernel-bound gathering plus ~43 ms of SSD->DRAM
        // staging that the GAM serializes before dispatch.
        assert!((rr - 228.0).abs() < 25.0, "rr {rr} ms (incl. staging)");
    }

    #[test]
    fn proper_mapping_beats_onchip_on_throughput_and_latency() {
        let w = CbirWorkload::paper_setup();
        let base = CbirPipeline::new(w, CbirMapping::AllOnChip).run(&mut machine(), 8);
        let reach = CbirPipeline::new(w, CbirMapping::Proper).run(&mut machine(), 8);
        let tput = reach.throughput_jobs_per_sec() / base.throughput_jobs_per_sec();
        let lat = base.job_latency_last.as_secs_f64() / reach.job_latency_last.as_secs_f64();
        assert!(tput > 2.0, "throughput gain only {tput:.2}x");
        assert!(lat > 1.3, "latency gain only {lat:.2}x");
    }

    #[test]
    fn every_mapping_runs_to_completion() {
        let w = CbirWorkload::paper_setup();
        for mapping in CbirMapping::ALL {
            let r = CbirPipeline::new(w, mapping).run(&mut machine(), 2);
            assert_eq!(r.jobs, 2, "{} lost a job", mapping.name());
            for stage in CbirStage::ALL {
                assert!(
                    r.stage(stage.label()).is_some(),
                    "{} missing {}",
                    mapping.name(),
                    stage.label()
                );
            }
        }
    }

    #[test]
    fn single_stage_pipelines_run() {
        let w = CbirWorkload::paper_setup();
        for stage in CbirStage::ALL {
            let r = CbirPipeline::new(w, CbirMapping::AllNearMemory).run_stage(
                &mut machine(),
                stage,
                1,
            );
            assert_eq!(r.jobs, 1);
            assert_eq!(r.stages.len(), 1);
        }
    }

    #[test]
    fn embedded_fe_splits_batch_across_instances() {
        let w = CbirWorkload::paper_setup();
        let mut m = machine();
        let r = CbirPipeline::new(w, CbirMapping::AllNearMemory).run_stage(
            &mut m,
            CbirStage::FeatureExtraction,
            1,
        );
        let s = r.stage("1-feature-extraction").unwrap();
        assert_eq!(s.tasks, 16, "one task per image");
        // 16 images over 4 instances, 4 rounds of ~47.6 ms per image
        // (the embedded CNN is ~7.6x slower per image than on-chip).
        let span = s.span().as_ms_f64();
        assert!((span - 190.0).abs() < 25.0, "span {span} ms");
    }
}
