//! The billion-scale CBIR workload descriptor — the geometry the timing
//! model bills, matching Section V's "CBIR setup" and Table I.
//!
//! ## Where each number comes from
//!
//! * `batch = 16` query images — "we use a batch of 16 image queries".
//! * `dim = 96` — VGG features PCA-compressed to D = 96.
//! * `centroids = 1000` — "k-means to obtain 1000 cluster centroids".
//! * `candidates_per_query = 4096` — "we compare each query against 4096
//!   data points based on the short-list".
//! * `centroid_store_bytes = 2.2 GB` — Table I: "cluster centroids and cell
//!   info" (the cell info — per-cluster membership metadata over 10^9
//!   points — dominates; the raw 1000 x 96 x 4 B centroids are only 384 KB).
//! * `rerank_page_bytes = 4 KiB` — candidate vectors are fetched at flash
//!   page granularity; one scattered candidate record costs one page of
//!   traffic regardless of the 384 B payload (read amplification).
//! * `onchip_sl_restream = 1.7` — the on-chip GeMM tiles the 2.2 GB operand
//!   through a 77%-utilized BRAM; tile-boundary re-fetch makes total DRAM
//!   traffic ~1.7x the operand (the paper's "frequent access of off-chip
//!   DRAM" penalty). Embedded kernels whose shard fits their tile budget
//!   (`embedded_sl_fit_bytes`) stream it exactly once; a single embedded
//!   instance holding the whole 2.2 GB pays a factor 2.
//! * `feature_macs_per_image = 7.75 GMACs` — VGG-16 at 224x224.

use crate::features::VGG16_MACS_PER_IMAGE;

/// The timed CBIR workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CbirWorkload {
    /// Query images per batch.
    pub batch: usize,
    /// Feature dimensionality after PCA.
    pub dim: usize,
    /// Number of coarse clusters (centroids).
    pub centroids: usize,
    /// Rerank candidates per query.
    pub candidates_per_query: usize,
    /// Neighbours returned per query.
    pub k: usize,
    /// Bytes of the centroid + cell-info store streamed by short-list
    /// retrieval.
    pub centroid_store_bytes: u64,
    /// Flash/DRAM page billed per scattered rerank candidate.
    pub rerank_page_bytes: u64,
    /// MACs per image of feature extraction.
    pub feature_macs_per_image: u64,
    /// On-chip short-list re-stream factor (percent, 170 = 1.7x).
    pub onchip_sl_restream_pct: u32,
    /// Largest shard an embedded GeMM streams in one pass.
    pub embedded_sl_fit_bytes: u64,
}

impl CbirWorkload {
    /// The paper's evaluation setup (Section V, "CBIR setup").
    #[must_use]
    pub fn paper_setup() -> Self {
        CbirWorkload {
            batch: 16,
            dim: 96,
            centroids: 1000,
            candidates_per_query: 4096,
            k: 10,
            centroid_store_bytes: 2_200_000_000,
            rerank_page_bytes: 4096,
            feature_macs_per_image: VGG16_MACS_PER_IMAGE,
            onchip_sl_restream_pct: 170,
            embedded_sl_fit_bytes: 1_100_000_000,
        }
    }

    /// Total feature-extraction MACs per batch.
    #[must_use]
    pub fn feature_macs(&self) -> u64 {
        self.batch as u64 * self.feature_macs_per_image
    }

    /// Short-list GEMM MACs per batch (B x D x M).
    #[must_use]
    pub fn shortlist_macs(&self) -> u64 {
        self.batch as u64 * self.dim as u64 * self.centroids as u64
    }

    /// Rerank distance MACs per batch (B x C x D).
    #[must_use]
    pub fn rerank_macs(&self) -> u64 {
        self.batch as u64 * self.candidates_per_query as u64 * self.dim as u64
    }

    /// Bytes of one feature vector.
    #[must_use]
    pub fn feature_bytes(&self) -> u64 {
        self.dim as u64 * 4
    }

    /// Bytes of the feature batch shipped between stages.
    #[must_use]
    pub fn feature_batch_bytes(&self) -> u64 {
        self.batch as u64 * self.feature_bytes()
    }

    /// Bytes of the per-batch short-list metadata (cluster ids + bounds).
    #[must_use]
    pub fn shortlist_result_bytes(&self) -> u64 {
        self.batch as u64 * 64
    }

    /// Total rerank bytes per batch: every candidate costs one page.
    #[must_use]
    pub fn rerank_bytes(&self) -> u64 {
        self.batch as u64 * self.candidates_per_query as u64 * self.rerank_page_bytes
    }

    /// Bytes of the final top-K result returned to the host.
    #[must_use]
    pub fn result_bytes(&self) -> u64 {
        self.batch as u64 * self.k as u64 * 8
    }

    /// Short-list traffic a single engine streams when it owns `shard`
    /// bytes of the centroid store: shards beyond the tile budget are
    /// streamed twice.
    #[must_use]
    pub fn embedded_sl_traffic(&self, shard: u64) -> u64 {
        if shard > self.embedded_sl_fit_bytes {
            shard * 2
        } else {
            shard
        }
    }

    /// Short-list traffic of the on-chip engine (tiling re-streams).
    #[must_use]
    pub fn onchip_sl_traffic(&self) -> u64 {
        self.centroid_store_bytes * u64::from(self.onchip_sl_restream_pct) / 100
    }
}

impl Default for CbirWorkload {
    fn default() -> Self {
        Self::paper_setup()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_setup_matches_section5() {
        let w = CbirWorkload::paper_setup();
        assert_eq!(w.batch, 16);
        assert_eq!(w.centroids, 1000);
        assert_eq!(w.candidates_per_query, 4096);
        assert_eq!(w.dim, 96);
    }

    #[test]
    fn traffic_volumes() {
        let w = CbirWorkload::paper_setup();
        // Rerank: 16 x 4096 x 4 KiB = 256 MiB.
        assert_eq!(w.rerank_bytes(), 16 * 4096 * 4096);
        // Feature batch: 16 x 96 floats = 6 KiB.
        assert_eq!(w.feature_batch_bytes(), 16 * 96 * 4);
        // On-chip GEMM restreams: 2.2 GB x 1.7.
        assert_eq!(w.onchip_sl_traffic(), 3_740_000_000);
    }

    #[test]
    fn embedded_restream_rule() {
        let w = CbirWorkload::paper_setup();
        // Whole store on one module: doubled.
        assert_eq!(w.embedded_sl_traffic(2_200_000_000), 4_400_000_000);
        // Half the store fits the tile budget: streamed once.
        assert_eq!(w.embedded_sl_traffic(1_100_000_000), 1_100_000_000);
        assert_eq!(w.embedded_sl_traffic(550_000_000), 550_000_000);
    }

    #[test]
    fn mac_counts_scale_with_batch() {
        let w = CbirWorkload::paper_setup();
        assert_eq!(w.feature_macs(), 16 * 7_750_000_000);
        assert_eq!(w.shortlist_macs(), 16 * 96 * 1000);
        assert_eq!(w.rerank_macs(), 16 * 4096 * 96);
    }
}
