//! K-means clustering (k-means++ initialization + Lloyd iterations).
//!
//! The paper preprocesses the database "with k-means to obtain 1000 cluster
//! centroids" during the offline stage; this is that stage.

use crate::linalg::{dist_sq, gemm_nt_rows, norm_sq, Matrix};
use rand::Rng;

/// Result of a clustering run.
#[derive(Clone, Debug)]
pub struct Clustering {
    /// `k x d` centroid matrix.
    pub centroids: Matrix,
    /// Cluster index of each input point.
    pub assignments: Vec<usize>,
    /// Sum of squared distances to assigned centroids after the last
    /// iteration.
    pub inertia: f64,
    /// Lloyd iterations actually executed.
    pub iterations: usize,
}

/// Runs k-means++ then Lloyd's algorithm until convergence or `max_iters`.
///
/// # Example
///
/// ```
/// use reach_cbir::linalg::Matrix;
/// use reach_cbir::kmeans::kmeans;
///
/// // Two obvious groups on a line.
/// let pts = Matrix::from_vec(4, 1, vec![0.0, 0.1, 10.0, 10.1]);
/// let c = kmeans(&pts, 2, 10, &mut reach_sim::rng::seeded(1));
/// assert_eq!(c.assignments[0], c.assignments[1]);
/// assert_ne!(c.assignments[0], c.assignments[2]);
/// ```
///
/// # Panics
///
/// Panics if `k` is zero or exceeds the number of points.
#[must_use]
pub fn kmeans(points: &Matrix, k: usize, max_iters: usize, rng: &mut impl Rng) -> Clustering {
    let n = points.rows();
    // The assignment scan is embarrassingly parallel per point; fan out in
    // fixed chunks (see `crate::par`) when the scan is worth a thread
    // spawn. The FLOP estimate saturates, same as `gemm_fanout_jobs` —
    // adversarial shapes must not overflow the gate.
    let flops = n.saturating_mul(k).saturating_mul(points.cols());
    let assign_jobs = if n > crate::par::CHUNK_ROWS && flops >= 1 << 20 {
        crate::par::kernel_jobs()
    } else {
        1
    };
    kmeans_jobs(points, k, max_iters, rng, assign_jobs)
}

/// [`kmeans`] with an explicit assignment worker count, bypassing the size
/// gate. Exposed (hidden) so the determinism suite can prove the parallel
/// and sequential assignment paths produce bit-identical clusterings.
#[doc(hidden)]
#[must_use]
#[allow(clippy::needless_range_loop)] // parallel-indexed arrays; enumerate obscures
pub fn kmeans_jobs(
    points: &Matrix,
    k: usize,
    max_iters: usize,
    rng: &mut impl Rng,
    assign_jobs: usize,
) -> Clustering {
    let n = points.rows();
    let d = points.cols();
    assert!(k > 0 && k <= n, "kmeans: k={k} out of range for {n} points");

    // --- k-means++ seeding ---
    let mut centroids = Matrix::zeros(k, d);
    let first = rng.gen_range(0..n);
    centroids.row_mut(0).copy_from_slice(points.row(first));
    let mut d2: Vec<f32> = (0..n)
        .map(|i| dist_sq(points.row(i), centroids.row(0)))
        .collect();
    for c in 1..k {
        let total: f64 = d2.iter().map(|&x| f64::from(x)).sum();
        let chosen = if total <= f64::EPSILON {
            rng.gen_range(0..n)
        } else {
            let mut target = rng.gen_range(0.0..total);
            let mut pick = n - 1;
            for (i, &x) in d2.iter().enumerate() {
                target -= f64::from(x);
                if target <= 0.0 {
                    pick = i;
                    break;
                }
            }
            pick
        };
        centroids.row_mut(c).copy_from_slice(points.row(chosen));
        for i in 0..n {
            let nd = dist_sq(points.row(i), centroids.row(c));
            if nd < d2[i] {
                d2[i] = nd;
            }
        }
    }

    // --- Lloyd iterations ---
    let mut assignments = vec![0usize; n];
    let mut best_dists = vec![0.0f32; n];
    // The assignment runs through the shared GEMM micro-kernel as a
    // decomposed distance (Equation 1): per fixed 64-row chunk, one
    // points-x-centroids dot-product panel plus precomputed norms.
    // Chunk boundaries are fixed (not worker-count dependent), every dot
    // and norm uses the kernel's single accumulation order, and the
    // argmin scans centroids in index order with a strict `<`, so the
    // clustering is byte-identical at any worker count.
    let mut inertia = f64::INFINITY;
    let mut iterations = 0;
    for it in 0..max_iters {
        iterations = it + 1;
        // Assign.
        {
            let centroids = &centroids;
            let c_norms: Vec<f32> = (0..k).map(|c| norm_sq(centroids.row(c))).collect();
            let c_norms = &c_norms;
            let chunks: Vec<(usize, &mut [usize], &mut [f32])> = assignments
                .chunks_mut(crate::par::CHUNK_ROWS)
                .zip(best_dists.chunks_mut(crate::par::CHUNK_ROWS))
                .enumerate()
                .map(|(ch, (asn, dst))| (ch * crate::par::CHUNK_ROWS, asn, dst))
                .collect();
            crate::par::run_items(chunks, assign_jobs, |(i0, asn, dst)| {
                let rows = asn.len();
                let mut dots = vec![0.0f32; rows * k];
                gemm_nt_rows(points, centroids, i0, &mut dots);
                for (off, (a_slot, d_slot)) in asn.iter_mut().zip(dst.iter_mut()).enumerate() {
                    let p_norm = norm_sq(points.row(i0 + off));
                    let dot_row = &dots[off * k..(off + 1) * k];
                    let (mut best, mut best_d) = (0usize, f32::INFINITY);
                    for c in 0..k {
                        let dd = p_norm + c_norms[c] - 2.0 * dot_row[c];
                        if dd < best_d {
                            best = c;
                            best_d = dd;
                        }
                    }
                    *a_slot = best;
                    *d_slot = best_d;
                }
            });
        }
        // Reduce in point order — the same f64 accumulation sequence the
        // sequential loop performed, regardless of chunk scheduling.
        let mut new_inertia = 0.0f64;
        for &bd in &best_dists {
            new_inertia += f64::from(bd);
        }
        // Update.
        let mut sums = vec![0.0f64; k * d];
        let mut counts = vec![0usize; k];
        for i in 0..n {
            let c = assignments[i];
            counts[c] += 1;
            for (s, &x) in sums[c * d..(c + 1) * d].iter_mut().zip(points.row(i)) {
                *s += f64::from(x);
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                // Re-seed an empty cluster on the farthest point.
                let far = (0..n)
                    .max_by(|&a, &b| {
                        dist_sq(points.row(a), centroids.row(assignments[a]))
                            .partial_cmp(&dist_sq(points.row(b), centroids.row(assignments[b])))
                            .expect("no NaN distances")
                    })
                    .expect("non-empty dataset");
                centroids.row_mut(c).copy_from_slice(points.row(far));
                continue;
            }
            let inv = 1.0 / counts[c] as f64;
            for (dst, s) in centroids
                .row_mut(c)
                .iter_mut()
                .zip(&sums[c * d..(c + 1) * d])
            {
                *dst = (s * inv) as f32;
            }
        }
        // Converged?
        if (inertia - new_inertia).abs() <= 1e-6 * new_inertia.max(1.0) {
            inertia = new_inertia;
            break;
        }
        inertia = new_inertia;
    }

    Clustering {
        centroids,
        assignments,
        inertia,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reach_sim::rng::seeded;

    /// Three well-separated blobs in 2D.
    fn blobs() -> Matrix {
        let centers = [(-10.0f32, -10.0), (0.0, 10.0), (10.0, -5.0)];
        let mut rng = seeded(7);
        let mut data = Vec::new();
        for &(cx, cy) in &centers {
            for _ in 0..50 {
                data.push(cx + rng.gen_range(-0.5..0.5));
                data.push(cy + rng.gen_range(-0.5..0.5));
            }
        }
        Matrix::from_vec(150, 2, data)
    }

    #[test]
    fn recovers_separated_blobs() {
        let pts = blobs();
        let mut rng = seeded(1);
        let c = kmeans(&pts, 3, 50, &mut rng);
        // All points of one blob share one assignment.
        for blob in 0..3 {
            let first = c.assignments[blob * 50];
            for i in 0..50 {
                assert_eq!(c.assignments[blob * 50 + i], first, "blob {blob} split");
            }
        }
        // Tight inertia: every point within 1.0 of its centroid.
        assert!(c.inertia / 150.0 < 1.0, "inertia {}", c.inertia);
        assert!(c.iterations >= 1);
    }

    #[test]
    fn inertia_never_increases_with_more_clusters() {
        let pts = blobs();
        let i2 = kmeans(&pts, 2, 50, &mut seeded(3)).inertia;
        let i3 = kmeans(&pts, 3, 50, &mut seeded(3)).inertia;
        let i8 = kmeans(&pts, 8, 50, &mut seeded(3)).inertia;
        assert!(i3 <= i2 * 1.01, "i3 {i3} vs i2 {i2}");
        assert!(i8 <= i3 * 1.01, "i8 {i8} vs i3 {i3}");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let pts = blobs();
        let a = kmeans(&pts, 3, 20, &mut seeded(9));
        let b = kmeans(&pts, 3, 20, &mut seeded(9));
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.centroids.as_slice(), b.centroids.as_slice());
    }

    #[test]
    fn k_equals_n_zero_inertia() {
        let pts = Matrix::from_vec(4, 2, vec![0.0, 0.0, 1.0, 0.0, 0.0, 1.0, 5.0, 5.0]);
        let c = kmeans(&pts, 4, 10, &mut seeded(2));
        assert!(c.inertia < 1e-9, "inertia {}", c.inertia);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn k_larger_than_n_rejected() {
        let pts = Matrix::zeros(3, 2);
        let _ = kmeans(&pts, 4, 10, &mut seeded(0));
    }
}
