//! The IVF (inverted-file) index: short-list retrieval + rerank.
//!
//! This is the online pipeline of Section IV-A, functionally:
//!
//! 1. **Short-list retrieval** — decomposed distances (Equation 1) from the
//!    query batch to the centroids, then the `nprobe` nearest clusters per
//!    query form its short list.
//! 2. **Rerank** — gather the member points of the short-listed clusters
//!    (optionally capped, as the paper caps candidates at 4096), compute
//!    exact distances (Equation 2) and keep the top K.

use crate::kmeans::kmeans;
use crate::linalg::{batch_dist_sq, dist_sq, Matrix};
use crate::topk::top_k;
use rand::Rng;

/// An inverted-file index over a point set.
///
/// # Example
///
/// ```
/// use reach_cbir::{Dataset, IvfIndex};
/// use reach_sim::rng::seeded;
///
/// let mut rng = seeded(3);
/// let ds = Dataset::gaussian_mixture(500, 8, 5, 0.3, &mut rng);
/// let index = IvfIndex::build(&ds.points, 5, &mut rng);
/// let (queries, _) = ds.queries(2, 0.05, &mut rng);
/// let results = index.search(&ds.points, &queries, 2, 3, None);
/// assert_eq!(results.len(), 2);
/// assert_eq!(results[0].len(), 3);
/// ```
#[derive(Clone, Debug)]
pub struct IvfIndex {
    centroids: Matrix,
    /// Posting list per cluster: the indices of its member points.
    postings: Vec<Vec<usize>>,
}

/// The short list of one query: the probed cluster ids, nearest first.
pub type ShortList = Vec<usize>;

impl IvfIndex {
    /// Builds an index by clustering `points` into `clusters` cells
    /// (the paper's offline stage).
    ///
    /// # Panics
    ///
    /// Panics if `clusters` is zero or exceeds the point count.
    #[must_use]
    pub fn build(points: &Matrix, clusters: usize, rng: &mut impl Rng) -> Self {
        let clustering = kmeans(points, clusters, 30, rng);
        let mut postings = vec![Vec::new(); clusters];
        for (i, &c) in clustering.assignments.iter().enumerate() {
            postings[c].push(i);
        }
        IvfIndex {
            centroids: clustering.centroids,
            postings,
        }
    }

    /// Number of clusters.
    #[must_use]
    pub fn clusters(&self) -> usize {
        self.postings.len()
    }

    /// The centroid matrix (`clusters x d`).
    #[must_use]
    pub fn centroids(&self) -> &Matrix {
        &self.centroids
    }

    /// The posting list of cluster `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    #[must_use]
    pub fn posting(&self, c: usize) -> &[usize] {
        &self.postings[c]
    }

    /// Short-list retrieval for a query batch: the `nprobe` nearest
    /// clusters of each query, via one GEMM + broadcast add (Equation 1) —
    /// the computation the GeMM accelerator template performs.
    ///
    /// # Panics
    ///
    /// Panics if `nprobe` is zero or exceeds the cluster count.
    #[must_use]
    pub fn short_lists(&self, queries: &Matrix, nprobe: usize) -> Vec<ShortList> {
        self.short_lists_dists(queries, nprobe, batch_dist_sq(queries, &self.centroids))
    }

    /// [`short_lists`](Self::short_lists) with the centroid norms served
    /// from `ctx` — across query batches and sweep points probing the
    /// same index, `||c||^2` is computed exactly once. Bit-identical to
    /// the uncached form.
    #[must_use]
    pub fn short_lists_cached(
        &self,
        ctx: &crate::cache::QueryContext,
        queries: &Matrix,
        nprobe: usize,
    ) -> Vec<ShortList> {
        self.short_lists_dists(queries, nprobe, ctx.batch_dist_sq(queries, &self.centroids))
    }

    fn short_lists_dists(&self, queries: &Matrix, nprobe: usize, dists: Matrix) -> Vec<ShortList> {
        assert!(
            nprobe > 0 && nprobe <= self.clusters(),
            "short_lists: nprobe {nprobe} out of range"
        );
        (0..queries.rows())
            .map(|qi| {
                top_k(
                    dists
                        .row(qi)
                        .iter()
                        .copied()
                        .enumerate()
                        .map(|(c, d)| (d, c)),
                    nprobe,
                )
                .into_iter()
                .map(|(_, c)| c)
                .collect()
            })
            .collect()
    }

    /// Rerank one query against the candidates of its short list, keeping
    /// the `k` nearest. `max_candidates` caps the candidate list (the paper
    /// uses 4096 "to make the simulation time manageable"); `None` scans
    /// every member of the probed clusters.
    ///
    /// Returns `(distance, point-index)` pairs, nearest first.
    #[must_use]
    pub fn rerank(
        &self,
        points: &Matrix,
        query: &[f32],
        short_list: &[usize],
        k: usize,
        max_candidates: Option<usize>,
    ) -> Vec<(f32, usize)> {
        let cap = max_candidates.unwrap_or(usize::MAX);
        let candidates = short_list
            .iter()
            .flat_map(|&c| self.postings[c].iter().copied())
            .take(cap);
        top_k(candidates.map(|i| (dist_sq(query, points.row(i)), i)), k)
    }

    /// The full online pipeline for a query batch: short lists then rerank.
    /// Returns each query's K nearest point indices.
    #[must_use]
    pub fn search(
        &self,
        points: &Matrix,
        queries: &Matrix,
        nprobe: usize,
        k: usize,
        max_candidates: Option<usize>,
    ) -> Vec<Vec<usize>> {
        let lists = self.short_lists(queries, nprobe);
        self.rerank_lists(points, queries, &lists, k, max_candidates)
    }

    /// [`search`](Self::search) with short-list retrieval running through
    /// `ctx`'s cross-batch norm cache. Bit-identical results.
    #[must_use]
    pub fn search_cached(
        &self,
        ctx: &crate::cache::QueryContext,
        points: &Matrix,
        queries: &Matrix,
        nprobe: usize,
        k: usize,
        max_candidates: Option<usize>,
    ) -> Vec<Vec<usize>> {
        let lists = self.short_lists_cached(ctx, queries, nprobe);
        self.rerank_lists(points, queries, &lists, k, max_candidates)
    }

    fn rerank_lists(
        &self,
        points: &Matrix,
        queries: &Matrix,
        lists: &[ShortList],
        k: usize,
        max_candidates: Option<usize>,
    ) -> Vec<Vec<usize>> {
        (0..queries.rows())
            .map(|qi| {
                self.rerank(points, queries.row(qi), &lists[qi], k, max_candidates)
                    .into_iter()
                    .map(|(_, i)| i)
                    .collect()
            })
            .collect()
    }

    /// Total candidate count a short list implies (before capping) — used
    /// by the timed workload to size rerank traffic.
    #[must_use]
    pub fn candidate_count(&self, short_list: &[usize]) -> usize {
        short_list.iter().map(|&c| self.postings[c].len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{recall, Dataset};
    use reach_sim::rng::seeded;

    fn setup() -> (Dataset, IvfIndex, Matrix, Vec<Vec<usize>>) {
        let mut rng = seeded(31);
        let ds = Dataset::gaussian_mixture(2_000, 16, 24, 0.4, &mut rng);
        let index = IvfIndex::build(&ds.points, 24, &mut rng);
        let (queries, _) = ds.queries(20, 0.05, &mut rng);
        let truth = ds.ground_truth(&queries, 10);
        (ds, index, queries, truth)
    }

    #[test]
    fn postings_partition_the_dataset() {
        let (ds, index, _, _) = setup();
        let total: usize = (0..index.clusters()).map(|c| index.posting(c).len()).sum();
        assert_eq!(total, ds.len());
        // No duplicates across postings.
        let mut seen = vec![false; ds.len()];
        for c in 0..index.clusters() {
            for &i in index.posting(c) {
                assert!(!seen[i], "point {i} in two clusters");
                seen[i] = true;
            }
        }
    }

    #[test]
    fn search_with_enough_probes_matches_brute_force() {
        let (ds, index, queries, truth) = setup();
        // Probing every cluster must be exact.
        let got = index.search(&ds.points, &queries, index.clusters(), 10, None);
        let r = recall(&got, &truth, 10);
        assert!(
            (r.recall_at_k - 1.0).abs() < 1e-12,
            "recall {}",
            r.recall_at_k
        );
    }

    #[test]
    fn few_probes_keep_high_recall_on_clustered_data() {
        let (ds, index, queries, truth) = setup();
        let got = index.search(&ds.points, &queries, 4, 10, None);
        let r = recall(&got, &truth, 10);
        assert!(
            r.recall_at_k > 0.9,
            "recall@10 {} with nprobe=4",
            r.recall_at_k
        );
    }

    #[test]
    fn recall_improves_with_nprobe() {
        let (ds, index, queries, truth) = setup();
        let r1 = recall(&index.search(&ds.points, &queries, 1, 10, None), &truth, 10);
        let r4 = recall(&index.search(&ds.points, &queries, 4, 10, None), &truth, 10);
        let rall = recall(
            &index.search(&ds.points, &queries, index.clusters(), 10, None),
            &truth,
            10,
        );
        assert!(r1.recall_at_k <= r4.recall_at_k + 1e-9);
        assert!(r4.recall_at_k <= rall.recall_at_k + 1e-9);
    }

    #[test]
    fn candidate_cap_limits_work() {
        let (ds, index, queries, _) = setup();
        let lists = index.short_lists(&queries, 4);
        let full = index.candidate_count(&lists[0]);
        let capped = index.rerank(&ds.points, queries.row(0), &lists[0], 10, Some(32));
        assert!(capped.len() <= 10);
        assert!(full > 32, "test needs more candidates than the cap");
    }

    #[test]
    fn cached_search_is_identical_across_batches() {
        let (ds, index, queries, _) = setup();
        let ctx = crate::cache::QueryContext::new();
        // Several "batches" probing the same index: results must match the
        // uncached path exactly, first (cold) batch and later (hot) ones.
        for batch in 0..3 {
            let plain = index.search(&ds.points, &queries, 4, 10, None);
            let cached = index.search_cached(&ctx, &ds.points, &queries, 4, 10, None);
            assert_eq!(plain, cached, "batch {batch} diverged");
        }
    }

    #[test]
    fn short_lists_are_nearest_first() {
        let (_, index, queries, _) = setup();
        let lists = index.short_lists(&queries, 3);
        for (qi, list) in lists.iter().enumerate() {
            let d: Vec<f32> = list
                .iter()
                .map(|&c| crate::linalg::dist_sq(queries.row(qi), index.centroids().row(c)))
                .collect();
            assert!(
                d.windows(2).all(|w| w[0] <= w[1]),
                "unsorted short list {d:?}"
            );
        }
    }
}
