//! Ablations: sensitivity studies on the design choices the paper makes in
//! prose but does not quantify.
//!
//! Each function isolates one mechanism (status-poll pacing, partial
//! reconfiguration, cross-job pipelining, the GEMM tile budget, batch
//! sizing, rerank candidate volume) and sweeps it with everything else held
//! at the paper's configuration. The `experiments` binary renders these
//! under `ablation-*` ids.

use crate::pipeline::{CbirMapping, CbirPipeline};
use crate::scenarios::CbirScenario;
use crate::workload::CbirWorkload;
use reach::{MachineBlueprint, Scenario, ScenarioExecutor, SequentialExecutor, SimDuration};
use std::fmt;

/// A generic ablation row: one parameter value and its outcomes.
#[derive(Clone, Debug)]
pub struct AblationRow {
    /// Human-readable parameter setting.
    pub setting: String,
    /// Batches per second.
    pub throughput: f64,
    /// Mean per-batch latency in milliseconds.
    pub latency_ms: f64,
    /// Energy per batch in joules.
    pub energy_j: f64,
}

impl fmt::Display for AblationRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<28} {:>8.2} batches/s {:>10.1} ms {:>8.2} J",
            self.setting, self.throughput, self.latency_ms, self.energy_j
        )
    }
}

/// One ablation point before measurement: a setting name, the machine, the
/// deployment and the steady-state batch count.
struct Point {
    setting: String,
    blueprint: MachineBlueprint,
    pipeline: CbirPipeline,
    batches: usize,
}

/// Measures every point (steady-state throughput from a `batches`-deep run,
/// latency and energy from a single-batch run) through `executor`. Each
/// point contributes two independent scenarios, so a parallel executor
/// fans the whole family out at once.
fn measure_points(executor: &dyn ScenarioExecutor, points: Vec<Point>) -> Vec<AblationRow> {
    let scenarios: Vec<Box<dyn Scenario>> = points
        .iter()
        .flat_map(|p| {
            let steady: Box<dyn Scenario> = Box::new(CbirScenario::full(
                format!("ablation/{}/steady", p.setting),
                p.blueprint.clone(),
                p.pipeline,
                p.batches,
            ));
            let single: Box<dyn Scenario> = Box::new(CbirScenario::full(
                format!("ablation/{}/single", p.setting),
                p.blueprint.clone(),
                p.pipeline,
                1,
            ));
            [steady, single]
        })
        .collect();
    let results = executor.run_all(scenarios);
    points
        .into_iter()
        .zip(results.chunks(2))
        .map(|(p, pair)| AblationRow {
            setting: p.setting,
            throughput: pair[0].report.throughput_jobs_per_sec(),
            latency_ms: pair[1].report.job_latency_mean.as_ms_f64(),
            energy_j: pair[1].report.total_energy_j(),
        })
        .collect()
}

/// Sweep the GAM's minimum status-poll interval. The paper's protocol polls
/// at the estimated completion time; a *coarser* floor makes completion
/// observation lazier, a finer one floods the interconnect with packets for
/// under-estimated tasks.
#[must_use]
pub fn poll_interval() -> Vec<AblationRow> {
    poll_interval_with(&SequentialExecutor)
}

/// [`poll_interval`] through an explicit executor.
#[must_use]
pub fn poll_interval_with(executor: &dyn ScenarioExecutor) -> Vec<AblationRow> {
    let p = CbirPipeline::new(CbirWorkload::paper_setup(), CbirMapping::Proper);
    let base = MachineBlueprint::paper();
    let points = [10u64, 50, 200, 1_000, 5_000, 20_000]
        .into_iter()
        .map(|us| Point {
            setting: format!("min poll interval {us} us"),
            blueprint: base.map_config(|cfg| cfg.gam.min_poll_interval = SimDuration::from_us(us)),
            pipeline: p,
            batches: 8,
        })
        .collect();
    measure_points(executor, points)
}

/// Sweep the partial-reconfiguration delay. The paper ignores it ("today's
/// FPGA technology can reduce this delay to sub-millisecond"); this shows
/// what that assumption is worth on the single-slot on-chip baseline, which
/// swaps CNN -> GeMM -> KNN every batch.
#[must_use]
pub fn reconfig_delay() -> Vec<AblationRow> {
    reconfig_delay_with(&SequentialExecutor)
}

/// [`reconfig_delay`] through an explicit executor.
#[must_use]
pub fn reconfig_delay_with(executor: &dyn ScenarioExecutor) -> Vec<AblationRow> {
    let p = CbirPipeline::new(CbirWorkload::paper_setup(), CbirMapping::AllOnChip);
    let base = MachineBlueprint::paper();
    let points = [0u64, 500, 1_000, 5_000, 20_000, 100_000]
        .into_iter()
        .map(|us| Point {
            setting: format!("reconfig delay {:.1} ms", us as f64 / 1_000.0),
            blueprint: base.map_config(|cfg| cfg.reconfig_delay = SimDuration::from_us(us)),
            pipeline: p,
            batches: 4,
        })
        .collect();
    measure_points(executor, points)
}

/// GAM cross-job pipelining on vs off, per mapping — quantifying "assigns
/// tasks from the next job … without waiting".
#[must_use]
pub fn pipelining() -> Vec<AblationRow> {
    pipelining_with(&SequentialExecutor)
}

/// [`pipelining`] through an explicit executor.
#[must_use]
pub fn pipelining_with(executor: &dyn ScenarioExecutor) -> Vec<AblationRow> {
    let w = CbirWorkload::paper_setup();
    let batches = 8;
    let scenarios: Vec<Box<dyn Scenario>> = CbirMapping::ALL
        .iter()
        .flat_map(|&mapping| {
            let p = CbirPipeline::new(w, mapping);
            let seq: Box<dyn Scenario> = Box::new(CbirScenario::synchronous(
                format!("ablation/{}/synchronous", mapping.name()),
                MachineBlueprint::paper(),
                p,
                batches,
            ));
            let pipe: Box<dyn Scenario> = Box::new(CbirScenario::full(
                format!("ablation/{}/pipelined", mapping.name()),
                MachineBlueprint::paper(),
                p,
                batches,
            ));
            [seq, pipe]
        })
        .collect();
    let results = executor.run_all(scenarios);
    CbirMapping::ALL
        .iter()
        .zip(results.chunks(2))
        .flat_map(|(&mapping, pair)| {
            let seq = &pair[0].report;
            let pipe = &pair[1].report;
            [
                AblationRow {
                    setting: format!("{} / synchronous", mapping.name()),
                    throughput: seq.throughput_jobs_per_sec(),
                    latency_ms: seq.job_latency_mean.as_ms_f64(),
                    energy_j: seq.energy_per_job_j(),
                },
                AblationRow {
                    setting: format!("{} / GAM pipelined", mapping.name()),
                    throughput: pipe.throughput_jobs_per_sec(),
                    latency_ms: pipe.job_latency_last.as_ms_f64(),
                    energy_j: pipe.energy_per_job_j(),
                },
            ]
        })
        .collect()
}

/// Sweep the embedded GEMM tile budget (BRAM capacity proxy). The budget
/// decides when a short-list shard must be re-streamed — the mechanism
/// behind Figure 10's single-instance penalty.
#[must_use]
pub fn sl_tile_budget() -> Vec<AblationRow> {
    sl_tile_budget_with(&SequentialExecutor)
}

/// [`sl_tile_budget`] through an explicit executor.
#[must_use]
pub fn sl_tile_budget_with(executor: &dyn ScenarioExecutor) -> Vec<AblationRow> {
    let points = [275u64, 550, 1_100, 2_200]
        .into_iter()
        .map(|mb| {
            let mut w = CbirWorkload::paper_setup();
            w.embedded_sl_fit_bytes = mb * 1_000_000;
            Point {
                setting: format!("GEMM tile budget {mb} MB"),
                blueprint: MachineBlueprint::paper(),
                pipeline: CbirPipeline::new(w, CbirMapping::Proper),
                batches: 8,
            }
        })
        .collect();
    measure_points(executor, points)
}

/// Sweep the query batch size. Larger batches amortize transfers but
/// lengthen every stage; the paper fixes 16.
#[must_use]
pub fn batch_size() -> Vec<AblationRow> {
    batch_size_with(&SequentialExecutor)
}

/// [`batch_size`] through an explicit executor.
#[must_use]
pub fn batch_size_with(executor: &dyn ScenarioExecutor) -> Vec<AblationRow> {
    let sizes = [4usize, 8, 16, 32, 64];
    let points = sizes
        .into_iter()
        .map(|b| {
            let mut w = CbirWorkload::paper_setup();
            w.batch = b;
            Point {
                setting: format!("batch size {b}"),
                blueprint: MachineBlueprint::paper(),
                pipeline: CbirPipeline::new(w, CbirMapping::Proper),
                batches: 8,
            }
        })
        .collect();
    let mut rows = measure_points(executor, points);
    // Report *queries* per second so sizes are comparable.
    for (row, b) in rows.iter_mut().zip(sizes) {
        row.throughput *= b as f64;
    }
    rows
}

/// Sweep the rerank candidate volume (the paper fixes 4096 per query "to
/// make the simulation time manageable"): more candidates shift the
/// bottleneck toward the storage level and amplify ReACH's advantage.
#[must_use]
pub fn candidate_volume() -> Vec<AblationRow> {
    candidate_volume_with(&SequentialExecutor)
}

/// [`candidate_volume`] through an explicit executor.
#[must_use]
pub fn candidate_volume_with(executor: &dyn ScenarioExecutor) -> Vec<AblationRow> {
    let points = [1_024usize, 4_096, 16_384, 65_536]
        .into_iter()
        .flat_map(|c| {
            let mut w = CbirWorkload::paper_setup();
            w.candidates_per_query = c;
            [CbirMapping::AllOnChip, CbirMapping::Proper].map(|mapping| Point {
                setting: format!("{} candidates / {}", c, mapping.name()),
                blueprint: MachineBlueprint::paper(),
                pipeline: CbirPipeline::new(w, mapping),
                batches: 6,
            })
        })
        .collect();
    measure_points(executor, points)
}

/// The GAM's memory-space reorganization (Section III-B), on vs off: with
/// cache-line interleaving left in place, each near-memory GEMM finds only
/// a fraction of its shard locally and drags the rest over the shared
/// AIMbus.
#[must_use]
pub fn interleave_reorganization() -> Vec<AblationRow> {
    interleave_reorganization_with(&SequentialExecutor)
}

/// [`interleave_reorganization`] through an explicit executor.
#[must_use]
pub fn interleave_reorganization_with(executor: &dyn ScenarioExecutor) -> Vec<AblationRow> {
    let w = CbirWorkload::paper_setup();
    let base = MachineBlueprint::paper();
    let points = [true, false]
        .into_iter()
        .map(|tiled| Point {
            setting: if tiled {
                "tile interleave (GAM reorganized)".into()
            } else {
                "cache-line interleave (not reorganized)".into()
            },
            blueprint: base.map_config(|cfg| cfg.nm_tile_interleave = tiled),
            pipeline: CbirPipeline::new(w, CbirMapping::Proper),
            batches: 8,
        })
        .collect();
    measure_points(executor, points)
}

/// Sweep the rerank stage's placement with everything else mapped properly
/// — is near-storage really the right home? (Section IV-B's argument.)
#[must_use]
pub fn rerank_placement() -> Vec<AblationRow> {
    rerank_placement_with(&SequentialExecutor)
}

/// [`rerank_placement`] through an explicit executor.
#[must_use]
pub fn rerank_placement_with(executor: &dyn ScenarioExecutor) -> Vec<AblationRow> {
    use crate::pipeline::CbirStage as S;
    let w = CbirWorkload::paper_setup();
    // Build three custom mappings by reusing the named ones for FE/SL and
    // measuring rerank at each level through single-stage runs relative to
    // the full pipeline.
    let scenarios: Vec<Box<dyn Scenario>> = CbirMapping::ALL
        .iter()
        .map(|&mapping| {
            let boxed: Box<dyn Scenario> = Box::new(CbirScenario::stage(
                format!("ablation/rerank-at-{}", mapping.level_of(S::Rerank)),
                MachineBlueprint::paper(),
                CbirPipeline::new(w, mapping),
                S::Rerank,
                1,
            ));
            boxed
        })
        .collect();
    let results = executor.run_all(scenarios);
    CbirMapping::ALL
        .iter()
        .zip(results)
        .map(|(&mapping, result)| AblationRow {
            setting: format!("rerank at {}", mapping.level_of(S::Rerank)),
            throughput: result.report.throughput_jobs_per_sec(),
            latency_ms: result.report.makespan.as_ms_f64(),
            energy_j: result.report.total_energy_j(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poll_interval_has_a_sweet_spot() {
        let rows = poll_interval();
        // Very coarse polling must hurt latency relative to the default.
        let fine = &rows[1]; // 50 us (default)
        let coarse = rows.last().unwrap(); // 20 ms
        assert!(
            coarse.latency_ms > fine.latency_ms,
            "coarse polling should cost latency: {} vs {}",
            coarse.latency_ms,
            fine.latency_ms
        );
    }

    #[test]
    fn reconfig_delay_matters_only_when_large() {
        let rows = reconfig_delay();
        let zero = &rows[0];
        let sub_ms = &rows[1]; // 0.5 ms
        let huge = rows.last().unwrap(); // 100 ms
                                         // Sub-millisecond reprogramming is within 2% of free — the paper's
                                         // justification for ignoring it.
        assert!(
            (sub_ms.latency_ms - zero.latency_ms) / zero.latency_ms < 0.02,
            "sub-ms reconfig visibly hurt: {} vs {}",
            sub_ms.latency_ms,
            zero.latency_ms
        );
        assert!(huge.latency_ms > zero.latency_ms * 1.3);
    }

    #[test]
    fn pipelining_always_helps_throughput() {
        let rows = pipelining();
        for pair in rows.chunks(2) {
            assert!(
                pair[1].throughput >= pair[0].throughput * 0.999,
                "{}: pipelined {} < sequential {}",
                pair[1].setting,
                pair[1].throughput,
                pair[0].throughput
            );
        }
    }

    #[test]
    fn bigger_tile_budget_never_hurts() {
        let rows = sl_tile_budget();
        for w in rows.windows(2) {
            assert!(
                w[1].throughput >= w[0].throughput * 0.99,
                "{} -> {}: throughput regressed",
                w[0].setting,
                w[1].setting
            );
        }
    }

    #[test]
    fn candidate_volume_widens_reach_advantage() {
        let rows = candidate_volume();
        // gain(c) = proper/onchip throughput at candidate volume c.
        let gain = |i: usize| rows[2 * i + 1].throughput / rows[2 * i].throughput;
        let small = gain(0); // 1k candidates
        let large = gain(3); // 64k candidates
        assert!(
            large > small,
            "more rerank volume should widen ReACH's advantage: {small:.2} -> {large:.2}"
        );
    }

    #[test]
    fn tile_reorganization_pays() {
        let rows = interleave_reorganization();
        assert!(
            rows[0].throughput > rows[1].throughput,
            "tiled {} should beat cache-line {} (AIMbus contention)",
            rows[0].throughput,
            rows[1].throughput
        );
    }

    #[test]
    fn rerank_home_is_near_storage() {
        let rows = rerank_placement();
        let ns = rows
            .iter()
            .find(|r| r.setting.contains("NearStor"))
            .unwrap();
        for other in rows.iter().filter(|r| !r.setting.contains("NearStor")) {
            assert!(
                ns.energy_j <= other.energy_j * 1.05,
                "near-storage rerank should be (near-)cheapest: {} vs {}",
                ns.energy_j,
                other.energy_j
            );
        }
    }
}
