//! Ablations: sensitivity studies on the design choices the paper makes in
//! prose but does not quantify.
//!
//! Each function isolates one mechanism (status-poll pacing, partial
//! reconfiguration, cross-job pipelining, the GEMM tile budget, batch
//! sizing, rerank candidate volume) and sweeps it with everything else held
//! at the paper's configuration. The `experiments` binary renders these
//! under `ablation-*` ids.

use crate::pipeline::{CbirMapping, CbirPipeline};
use crate::workload::CbirWorkload;
use reach::{Machine, SimDuration, SystemConfig};
use std::fmt;

/// A generic ablation row: one parameter value and its outcomes.
#[derive(Clone, Debug)]
pub struct AblationRow {
    /// Human-readable parameter setting.
    pub setting: String,
    /// Batches per second.
    pub throughput: f64,
    /// Mean per-batch latency in milliseconds.
    pub latency_ms: f64,
    /// Energy per batch in joules.
    pub energy_j: f64,
}

impl fmt::Display for AblationRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<28} {:>8.2} batches/s {:>10.1} ms {:>8.2} J",
            self.setting, self.throughput, self.latency_ms, self.energy_j
        )
    }
}

fn measure(cfg: SystemConfig, pipeline: &CbirPipeline, batches: usize) -> (f64, f64, f64) {
    let mut machine = Machine::new(cfg.clone());
    let steady = pipeline.run(&mut machine, batches);
    let mut single_machine = Machine::new(cfg);
    let single = pipeline.run(&mut single_machine, 1);
    (
        steady.throughput_jobs_per_sec(),
        single.job_latency_mean.as_ms_f64(),
        single.total_energy_j(),
    )
}

/// Sweep the GAM's minimum status-poll interval. The paper's protocol polls
/// at the estimated completion time; a *coarser* floor makes completion
/// observation lazier, a finer one floods the interconnect with packets for
/// under-estimated tasks.
#[must_use]
pub fn poll_interval() -> Vec<AblationRow> {
    let p = CbirPipeline::new(CbirWorkload::paper_setup(), CbirMapping::Proper);
    [10u64, 50, 200, 1_000, 5_000, 20_000]
        .into_iter()
        .map(|us| {
            let mut cfg = SystemConfig::paper_table2();
            cfg.gam.min_poll_interval = SimDuration::from_us(us);
            let (t, l, e) = measure(cfg, &p, 8);
            AblationRow {
                setting: format!("min poll interval {us} us"),
                throughput: t,
                latency_ms: l,
                energy_j: e,
            }
        })
        .collect()
}

/// Sweep the partial-reconfiguration delay. The paper ignores it ("today's
/// FPGA technology can reduce this delay to sub-millisecond"); this shows
/// what that assumption is worth on the single-slot on-chip baseline, which
/// swaps CNN -> GeMM -> KNN every batch.
#[must_use]
pub fn reconfig_delay() -> Vec<AblationRow> {
    let p = CbirPipeline::new(CbirWorkload::paper_setup(), CbirMapping::AllOnChip);
    [0u64, 500, 1_000, 5_000, 20_000, 100_000]
        .into_iter()
        .map(|us| {
            let mut cfg = SystemConfig::paper_table2();
            cfg.reconfig_delay = SimDuration::from_us(us);
            let (t, l, e) = measure(cfg, &p, 4);
            AblationRow {
                setting: format!("reconfig delay {:.1} ms", us as f64 / 1_000.0),
                throughput: t,
                latency_ms: l,
                energy_j: e,
            }
        })
        .collect()
}

/// GAM cross-job pipelining on vs off, per mapping — quantifying "assigns
/// tasks from the next job … without waiting".
#[must_use]
pub fn pipelining() -> Vec<AblationRow> {
    let w = CbirWorkload::paper_setup();
    let batches = 8;
    CbirMapping::ALL
        .iter()
        .flat_map(|&mapping| {
            let p = CbirPipeline::new(w, mapping);
            let mut seq_m = Machine::new(SystemConfig::paper_table2());
            let seq = p.run_sequential(&mut seq_m, batches);
            let mut pipe_m = Machine::new(SystemConfig::paper_table2());
            let pipe = p.run(&mut pipe_m, batches);
            [
                AblationRow {
                    setting: format!("{} / synchronous", mapping.name()),
                    throughput: seq.throughput_jobs_per_sec(),
                    latency_ms: seq.job_latency_mean.as_ms_f64(),
                    energy_j: seq.energy_per_job_j(),
                },
                AblationRow {
                    setting: format!("{} / GAM pipelined", mapping.name()),
                    throughput: pipe.throughput_jobs_per_sec(),
                    latency_ms: pipe.job_latency_last.as_ms_f64(),
                    energy_j: pipe.energy_per_job_j(),
                },
            ]
        })
        .collect()
}

/// Sweep the embedded GEMM tile budget (BRAM capacity proxy). The budget
/// decides when a short-list shard must be re-streamed — the mechanism
/// behind Figure 10's single-instance penalty.
#[must_use]
pub fn sl_tile_budget() -> Vec<AblationRow> {
    [275u64, 550, 1_100, 2_200]
        .into_iter()
        .map(|mb| {
            let mut w = CbirWorkload::paper_setup();
            w.embedded_sl_fit_bytes = mb * 1_000_000;
            let p = CbirPipeline::new(w, CbirMapping::Proper);
            let (t, l, e) = measure(SystemConfig::paper_table2(), &p, 8);
            AblationRow {
                setting: format!("GEMM tile budget {mb} MB"),
                throughput: t,
                latency_ms: l,
                energy_j: e,
            }
        })
        .collect()
}

/// Sweep the query batch size. Larger batches amortize transfers but
/// lengthen every stage; the paper fixes 16.
#[must_use]
pub fn batch_size() -> Vec<AblationRow> {
    [4usize, 8, 16, 32, 64]
        .into_iter()
        .map(|b| {
            let mut w = CbirWorkload::paper_setup();
            w.batch = b;
            let p = CbirPipeline::new(w, CbirMapping::Proper);
            let cfg = SystemConfig::paper_table2();
            let mut machine = Machine::new(cfg.clone());
            let steady = p.run(&mut machine, 8);
            let mut single_m = Machine::new(cfg);
            let single = p.run(&mut single_m, 1);
            AblationRow {
                setting: format!("batch size {b}"),
                // Report *queries* per second so sizes are comparable.
                throughput: steady.throughput_jobs_per_sec() * b as f64,
                latency_ms: single.job_latency_mean.as_ms_f64(),
                energy_j: single.total_energy_j(),
            }
        })
        .collect()
}

/// Sweep the rerank candidate volume (the paper fixes 4096 per query "to
/// make the simulation time manageable"): more candidates shift the
/// bottleneck toward the storage level and amplify ReACH's advantage.
#[must_use]
pub fn candidate_volume() -> Vec<AblationRow> {
    [1_024usize, 4_096, 16_384, 65_536]
        .into_iter()
        .flat_map(|c| {
            let mut w = CbirWorkload::paper_setup();
            w.candidates_per_query = c;
            [CbirMapping::AllOnChip, CbirMapping::Proper].map(|mapping| {
                let p = CbirPipeline::new(w, mapping);
                let (t, l, e) = measure(SystemConfig::paper_table2(), &p, 6);
                AblationRow {
                    setting: format!("{} candidates / {}", c, mapping.name()),
                    throughput: t,
                    latency_ms: l,
                    energy_j: e,
                }
            })
        })
        .collect()
}

/// The GAM's memory-space reorganization (Section III-B), on vs off: with
/// cache-line interleaving left in place, each near-memory GEMM finds only
/// a fraction of its shard locally and drags the rest over the shared
/// AIMbus.
#[must_use]
pub fn interleave_reorganization() -> Vec<AblationRow> {
    let w = CbirWorkload::paper_setup();
    [true, false]
        .into_iter()
        .map(|tiled| {
            let mut cfg = SystemConfig::paper_table2();
            cfg.nm_tile_interleave = tiled;
            let p = CbirPipeline::new(w, CbirMapping::Proper);
            let (t, l, e) = measure(cfg, &p, 8);
            AblationRow {
                setting: if tiled {
                    "tile interleave (GAM reorganized)".into()
                } else {
                    "cache-line interleave (not reorganized)".into()
                },
                throughput: t,
                latency_ms: l,
                energy_j: e,
            }
        })
        .collect()
}

/// Sweep the rerank stage's placement with everything else mapped properly
/// — is near-storage really the right home? (Section IV-B's argument.)
#[must_use]
pub fn rerank_placement() -> Vec<AblationRow> {
    use crate::pipeline::CbirStage as S;
    let w = CbirWorkload::paper_setup();
    // Build three custom mappings by reusing the named ones for FE/SL and
    // measuring rerank at each level through single-stage runs relative to
    // the full pipeline.
    CbirMapping::ALL
        .iter()
        .map(|&mapping| {
            let p = CbirPipeline::new(w, mapping);
            let mut m = Machine::new(SystemConfig::paper_table2());
            let r = p.run_stage(&mut m, S::Rerank, 1);
            AblationRow {
                setting: format!("rerank at {}", mapping.level_of(S::Rerank)),
                throughput: r.throughput_jobs_per_sec(),
                latency_ms: r.makespan.as_ms_f64(),
                energy_j: r.total_energy_j(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poll_interval_has_a_sweet_spot() {
        let rows = poll_interval();
        // Very coarse polling must hurt latency relative to the default.
        let fine = &rows[1]; // 50 us (default)
        let coarse = rows.last().unwrap(); // 20 ms
        assert!(
            coarse.latency_ms > fine.latency_ms,
            "coarse polling should cost latency: {} vs {}",
            coarse.latency_ms,
            fine.latency_ms
        );
    }

    #[test]
    fn reconfig_delay_matters_only_when_large() {
        let rows = reconfig_delay();
        let zero = &rows[0];
        let sub_ms = &rows[1]; // 0.5 ms
        let huge = rows.last().unwrap(); // 100 ms
        // Sub-millisecond reprogramming is within 2% of free — the paper's
        // justification for ignoring it.
        assert!(
            (sub_ms.latency_ms - zero.latency_ms) / zero.latency_ms < 0.02,
            "sub-ms reconfig visibly hurt: {} vs {}",
            sub_ms.latency_ms,
            zero.latency_ms
        );
        assert!(huge.latency_ms > zero.latency_ms * 1.3);
    }

    #[test]
    fn pipelining_always_helps_throughput() {
        let rows = pipelining();
        for pair in rows.chunks(2) {
            assert!(
                pair[1].throughput >= pair[0].throughput * 0.999,
                "{}: pipelined {} < sequential {}",
                pair[1].setting,
                pair[1].throughput,
                pair[0].throughput
            );
        }
    }

    #[test]
    fn bigger_tile_budget_never_hurts() {
        let rows = sl_tile_budget();
        for w in rows.windows(2) {
            assert!(
                w[1].throughput >= w[0].throughput * 0.99,
                "{} -> {}: throughput regressed",
                w[0].setting,
                w[1].setting
            );
        }
    }

    #[test]
    fn candidate_volume_widens_reach_advantage() {
        let rows = candidate_volume();
        // gain(c) = proper/onchip throughput at candidate volume c.
        let gain = |i: usize| rows[2 * i + 1].throughput / rows[2 * i].throughput;
        let small = gain(0); // 1k candidates
        let large = gain(3); // 64k candidates
        assert!(
            large > small,
            "more rerank volume should widen ReACH's advantage: {small:.2} -> {large:.2}"
        );
    }

    #[test]
    fn tile_reorganization_pays() {
        let rows = interleave_reorganization();
        assert!(
            rows[0].throughput > rows[1].throughput,
            "tiled {} should beat cache-line {} (AIMbus contention)",
            rows[0].throughput,
            rows[1].throughput
        );
    }

    #[test]
    fn rerank_home_is_near_storage() {
        let rows = rerank_placement();
        let ns = rows
            .iter()
            .find(|r| r.setting.contains("NearStor"))
            .unwrap();
        for other in rows.iter().filter(|r| !r.setting.contains("NearStor")) {
            assert!(
                ns.energy_j <= other.energy_j * 1.05,
                "near-storage rerank should be (near-)cheapest: {} vs {}",
                ns.energy_j,
                other.energy_j
            );
        }
    }
}
