//! Runtime-dispatched explicit-SIMD kernels for the three hot primitives
//! (`dot8`, the 4x8 GEMM micro-kernel inner loop, `norm_sq`).
//!
//! ## Why the SIMD path is *bitwise* identical to the scalar one
//!
//! Every kernel in [`crate::linalg`] already accumulates through one fixed
//! lane model: lane `l` of an 8-wide accumulator sums the products at
//! indices `t ≡ l (mod 8)` in increasing `t` order, and the lanes fold
//! through the shared [`crate::linalg::reduce`] tree. That model *is* one
//! AVX2 `f32x8` register (or a NEON `float32x4_t` pair) updated with a
//! per-lane multiply followed by a per-lane add. The kernels here therefore
//! issue exactly `vmulps` + `vaddps` (`vmulq` + `vaddq` on NEON) —
//! deliberately **no FMA**, which would skip the intermediate rounding the
//! scalar path performs and change low bits — spill the vector accumulator
//! to the same `[f32; 8]` the scalar path uses, run the identical scalar
//! tail loop for `len % 8` elements, and fold through the *same* `reduce`
//! function. IEEE-754 lane arithmetic is exact per operation (including
//! NaN propagation, signed zeros and subnormals — Rust never enables
//! FTZ/DAZ), so every output bit matches the scalar path. The determinism
//! suite proves it with `to_bits()` property tests and a full-suite stdout
//! comparison (`tests/runner_determinism.rs`).
//!
//! One piece of fine print: when two quiet NaNs with *different* payloads
//! meet in a mul/add, hardware keeps the first source operand's payload —
//! and LLVM commutes commutative float ops freely, so that ordering is
//! not stable even between two scalar builds. The guarantee is therefore
//! "bit-identical wherever scalar Rust itself is deterministic": all
//! finite/∞/±0 inputs, any number of same-bits NaNs, and a lone
//! distinct-payload NaN all round-trip exactly (the property tests cover
//! each class); only multi-payload NaN meets are out of scope.
//!
//! ## Dispatch
//!
//! The path is resolved once per process: `REACH_SIMD=off|avx2|neon|auto`
//! (default `auto`) is consulted, the host's features are detected
//! (`is_x86_feature_detected!("avx2")`; NEON is baseline on aarch64), and
//! the choice is cached in a `OnceLock` plus announced once on stderr so
//! recorded runs are attributable. `experiments` exports the same choice
//! as the `cbir.simd_dispatch` gauge. Benches and the determinism tests
//! can pin a path with the hidden [`force`] override.
//!
//! This is the only module in the workspace allowed to contain `unsafe`
//! (enforced by `ci/lint-hotpath.sh`); every unsafe block is confined to
//! `#[target_feature]` functions reached only after feature detection.

#![allow(unsafe_code)]

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

use crate::linalg::{reduce, LANES};

/// A kernel implementation tier. `Scalar` is the auto-vectorized reference
/// path; the explicit paths are bit-identical accelerations of it.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SimdPath {
    /// The portable scalar kernels in [`crate::linalg`].
    Scalar,
    /// x86_64 AVX2: one 8-lane `f32x8` register per accumulator.
    Avx2,
    /// aarch64 NEON: two 4-lane `float32x4_t` registers per accumulator.
    Neon,
}

impl SimdPath {
    /// Stable lowercase name (`scalar` / `avx2` / `neon`) — the value of
    /// the `REACH_SIMD` override, the stderr note and bench headers.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SimdPath::Scalar => "scalar",
            SimdPath::Avx2 => "avx2",
            SimdPath::Neon => "neon",
        }
    }

    /// Numeric id for the `cbir.simd_dispatch` telemetry gauge
    /// (0 scalar, 1 avx2, 2 neon).
    #[must_use]
    pub fn gauge_value(self) -> f64 {
        match self {
            SimdPath::Scalar => 0.0,
            SimdPath::Avx2 => 1.0,
            SimdPath::Neon => 2.0,
        }
    }

    /// Whether this process can actually execute the path.
    #[must_use]
    pub fn supported(self) -> bool {
        match self {
            SimdPath::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            SimdPath::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
            #[cfg(target_arch = "aarch64")]
            SimdPath::Neon => true, // NEON is architecturally mandatory.
            #[allow(unreachable_patterns)] // other-arch builds
            _ => false,
        }
    }
}

/// The widest supported path on this host — what `REACH_SIMD=auto` picks.
#[must_use]
pub fn best_supported() -> SimdPath {
    if SimdPath::Avx2.supported() {
        SimdPath::Avx2
    } else if SimdPath::Neon.supported() {
        SimdPath::Neon
    } else {
        SimdPath::Scalar
    }
}

/// What `REACH_SIMD` asked for, before feature detection is applied.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Request {
    Auto,
    Exact(SimdPath),
    Unknown,
}

/// Parses a `REACH_SIMD` value. Pure so the table is unit-testable
/// without touching the process environment or the `OnceLock`.
fn parse_request(value: Option<&str>) -> Request {
    match value {
        None | Some("auto") | Some("") => Request::Auto,
        Some("off") | Some("scalar") => Request::Exact(SimdPath::Scalar),
        Some("avx2") => Request::Exact(SimdPath::Avx2),
        Some("neon") => Request::Exact(SimdPath::Neon),
        Some(_) => Request::Unknown,
    }
}

/// Resolves the request against the host: an explicitly requested but
/// unsupported path degrades to scalar (with a warning from the caller)
/// rather than crashing — `REACH_SIMD=avx2` on a non-AVX2 host is a
/// configuration error in a CI A/B matrix, not a reason to abort runs.
fn resolve(req: Request) -> SimdPath {
    match req {
        Request::Auto | Request::Unknown => best_supported(),
        Request::Exact(p) if p.supported() => p,
        Request::Exact(_) => SimdPath::Scalar,
    }
}

/// Test/bench override: `1 + path as u8`; `0` defers to the environment.
static FORCED: AtomicU8 = AtomicU8::new(0);

/// The environment-resolved dispatch, cached once per process.
static DISPATCHED: OnceLock<SimdPath> = OnceLock::new();

/// The kernel path every dispatching entry point in [`crate::linalg`]
/// uses. Resolved once per process from `REACH_SIMD` + feature detection
/// (with a single stderr note naming the choice), unless a test or bench
/// pinned it via [`force`].
#[must_use]
pub fn active() -> SimdPath {
    match FORCED.load(Ordering::Relaxed) {
        1 => SimdPath::Scalar,
        2 => SimdPath::Avx2,
        3 => SimdPath::Neon,
        _ => *DISPATCHED.get_or_init(|| {
            let var = std::env::var("REACH_SIMD").ok();
            let req = parse_request(var.as_deref());
            let path = resolve(req);
            match req {
                Request::Unknown => eprintln!(
                    "(simd dispatch: {} — unknown REACH_SIMD={:?}, expected off|avx2|neon|auto)",
                    path.name(),
                    var.as_deref().unwrap_or_default()
                ),
                Request::Exact(want) if want != path => eprintln!(
                    "(simd dispatch: {} — REACH_SIMD={} not supported on this host)",
                    path.name(),
                    want.name()
                ),
                _ => eprintln!("(simd dispatch: {})", path.name()),
            }
            path
        }),
    }
}

/// Pins the dispatch for benches and the determinism tests
/// (`Some(path)`), or releases the pin (`None`). Because every path is
/// bit-identical, flipping this concurrently with other work is benign —
/// it can only change *which* identical bits are computed.
///
/// # Panics
///
/// Panics if the requested path is not supported on this host — a bench
/// or CI leg asking for hardware it does not have should fail loudly, not
/// silently measure the wrong kernel.
#[doc(hidden)]
pub fn force(path: Option<SimdPath>) {
    let code = match path {
        None => 0,
        Some(p) => {
            assert!(
                p.supported(),
                "simd::force({}): path not supported on this host",
                p.name()
            );
            1 + p as u8
        }
    };
    FORCED.store(code, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Per-path entry points
// ---------------------------------------------------------------------------
//
// These are the only places the unsafe kernels are reached. The safety
// argument is the dispatch invariant: a `SimdPath` value other than
// `Scalar` can only be produced by `active()`/`force()`, both of which
// check `supported()` first — and a path value smuggled past them on the
// wrong architecture falls through to the scalar fallback (bit-identical
// anyway), never into an unsupported intrinsic.

/// [`crate::linalg::dot8`] on an explicit kernel tier. Exposed (hidden)
/// so bitwise-equivalence tests can pin the path per call instead of
/// racing on the process-wide override.
#[doc(hidden)]
#[inline]
#[must_use]
pub fn dot8_on(path: SimdPath, a: &[f32], b: &[f32]) -> f32 {
    match path {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: dispatch only yields Avx2 after is_x86_feature_detected!.
        SimdPath::Avx2 => unsafe { avx2::dot8(a, b) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is architecturally mandatory on aarch64.
        SimdPath::Neon => unsafe { neon::dot8(a, b) },
        _ => crate::linalg::dot8_scalar(a, b),
    }
}

/// [`crate::linalg::norm_sq`] on an explicit kernel tier.
#[doc(hidden)]
#[inline]
#[must_use]
pub fn norm_sq_on(path: SimdPath, v: &[f32]) -> f32 {
    dot8_on(path, v, v)
}

/// The 4x8 micro-kernel inner loop on an explicit kernel tier: one `A`
/// row against four packed `B` rows of the same length.
#[inline]
#[must_use]
pub(crate) fn kernel4_on(
    path: SimdPath,
    ar: &[f32],
    b0: &[f32],
    b1: &[f32],
    b2: &[f32],
    b3: &[f32],
) -> [f32; 4] {
    match path {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: dispatch only yields Avx2 after is_x86_feature_detected!.
        SimdPath::Avx2 => unsafe { avx2::kernel4(ar, b0, b1, b2, b3) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is architecturally mandatory on aarch64.
        SimdPath::Neon => unsafe { neon::kernel4(ar, b0, b1, b2, b3) },
        _ => crate::linalg::kernel4_scalar(ar, b0, b1, b2, b3),
    }
}

// ---------------------------------------------------------------------------
// x86_64 AVX2 kernels
// ---------------------------------------------------------------------------

/// The AVX2 kernels. `unsafe` is confined to `#[target_feature]` functions;
/// callers reach them only through [`crate::linalg`]'s dispatchers, which
/// select [`SimdPath::Avx2`] only after `is_x86_feature_detected!`.
#[cfg(target_arch = "x86_64")]
pub(crate) mod avx2 {
    use super::{reduce, LANES};
    use std::arch::x86_64::{
        __m256, _mm256_add_ps, _mm256_loadu_ps, _mm256_mul_ps, _mm256_setzero_ps, _mm256_storeu_ps,
    };

    /// One accumulation step: per-lane multiply then per-lane add —
    /// exactly the scalar `acc[l] += a[l] * b[l]`, eight lanes at once.
    /// Deliberately NOT `_mm256_fmadd_ps`: fused multiply-add skips the
    /// product's rounding step and would break bitwise equality.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn step(acc: __m256, a: *const f32, b: *const f32) -> __m256 {
        _mm256_add_ps(acc, _mm256_mul_ps(_mm256_loadu_ps(a), _mm256_loadu_ps(b)))
    }

    /// AVX2 [`crate::linalg::dot8`]: identical lane model, one register.
    ///
    /// # Safety
    ///
    /// AVX2 must be available (guaranteed by dispatch) and `a.len() ==
    /// b.len()` (guaranteed by the caller, as in the scalar kernel).
    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn dot8(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        let main = a.len() / LANES * LANES;
        let mut acc = _mm256_setzero_ps();
        let mut t0 = 0;
        while t0 < main {
            acc = step(acc, a.as_ptr().add(t0), b.as_ptr().add(t0));
            t0 += LANES;
        }
        // Spill to the scalar path's lane array and run its exact tail
        // loop: the remaining `len % 8` products land in lanes `0..len%8`.
        let mut lanes = [0.0f32; LANES];
        _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
        for (l, t) in (main..a.len()).enumerate() {
            lanes[l] += a[t] * b[t];
        }
        reduce(lanes)
    }

    /// AVX2 inner loop of the 4x8 GEMM micro-kernel: one `A` row against
    /// four packed `B` rows, four independent 8-lane accumulators —
    /// the explicit-register form of the scalar block in
    /// [`crate::linalg::gemm_nt_rows_on`].
    ///
    /// # Safety
    ///
    /// AVX2 must be available and all five slices must share one length.
    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn kernel4(
        ar: &[f32],
        b0: &[f32],
        b1: &[f32],
        b2: &[f32],
        b3: &[f32],
    ) -> [f32; 4] {
        let k = ar.len();
        debug_assert!(b0.len() == k && b1.len() == k && b2.len() == k && b3.len() == k);
        let main = k / LANES * LANES;
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        let mut acc2 = _mm256_setzero_ps();
        let mut acc3 = _mm256_setzero_ps();
        let mut t0 = 0;
        while t0 < main {
            let a = ar.as_ptr().add(t0);
            acc0 = step(acc0, a, b0.as_ptr().add(t0));
            acc1 = step(acc1, a, b1.as_ptr().add(t0));
            acc2 = step(acc2, a, b2.as_ptr().add(t0));
            acc3 = step(acc3, a, b3.as_ptr().add(t0));
            t0 += LANES;
        }
        let mut lanes = [[0.0f32; LANES]; 4];
        _mm256_storeu_ps(lanes[0].as_mut_ptr(), acc0);
        _mm256_storeu_ps(lanes[1].as_mut_ptr(), acc1);
        _mm256_storeu_ps(lanes[2].as_mut_ptr(), acc2);
        _mm256_storeu_ps(lanes[3].as_mut_ptr(), acc3);
        for (l, t) in (main..k).enumerate() {
            let x = ar[t];
            lanes[0][l] += x * b0[t];
            lanes[1][l] += x * b1[t];
            lanes[2][l] += x * b2[t];
            lanes[3][l] += x * b3[t];
        }
        [
            reduce(lanes[0]),
            reduce(lanes[1]),
            reduce(lanes[2]),
            reduce(lanes[3]),
        ]
    }
}

// ---------------------------------------------------------------------------
// aarch64 NEON kernels
// ---------------------------------------------------------------------------

/// The NEON siblings: the 8-lane accumulator is a `float32x4_t` pair
/// (lanes 0..4 and 4..8), updated with `vmulq_f32` + `vaddq_f32` —
/// deliberately not `vfmaq_f32`, same no-FMA reasoning as AVX2. NEON is
/// architecturally mandatory on aarch64, so no runtime detection gate is
/// needed; the functions stay `unsafe` only for the raw-pointer loads.
#[cfg(target_arch = "aarch64")]
pub(crate) mod neon {
    use super::{reduce, LANES};
    use std::arch::aarch64::{
        float32x4_t, vaddq_f32, vdupq_n_f32, vld1q_f32, vmulq_f32, vst1q_f32,
    };

    /// Per-lane multiply-then-add on one 4-lane half.
    #[inline]
    unsafe fn step(acc: float32x4_t, a: *const f32, b: *const f32) -> float32x4_t {
        vaddq_f32(acc, vmulq_f32(vld1q_f32(a), vld1q_f32(b)))
    }

    /// NEON [`crate::linalg::dot8`]: identical lane model, two registers.
    ///
    /// # Safety
    ///
    /// `a.len() == b.len()` (guaranteed by the caller).
    pub(crate) unsafe fn dot8(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        let main = a.len() / LANES * LANES;
        let mut lo = vdupq_n_f32(0.0);
        let mut hi = vdupq_n_f32(0.0);
        let mut t0 = 0;
        while t0 < main {
            lo = step(lo, a.as_ptr().add(t0), b.as_ptr().add(t0));
            hi = step(hi, a.as_ptr().add(t0 + 4), b.as_ptr().add(t0 + 4));
            t0 += LANES;
        }
        let mut lanes = [0.0f32; LANES];
        vst1q_f32(lanes.as_mut_ptr(), lo);
        vst1q_f32(lanes.as_mut_ptr().add(4), hi);
        for (l, t) in (main..a.len()).enumerate() {
            lanes[l] += a[t] * b[t];
        }
        reduce(lanes)
    }

    /// NEON inner loop of the 4x8 GEMM micro-kernel.
    ///
    /// # Safety
    ///
    /// All five slices must share one length.
    pub(crate) unsafe fn kernel4(
        ar: &[f32],
        b0: &[f32],
        b1: &[f32],
        b2: &[f32],
        b3: &[f32],
    ) -> [f32; 4] {
        let k = ar.len();
        debug_assert!(b0.len() == k && b1.len() == k && b2.len() == k && b3.len() == k);
        let main = k / LANES * LANES;
        let mut acc = [[vdupq_n_f32(0.0); 2]; 4];
        let bs = [b0, b1, b2, b3];
        let mut t0 = 0;
        while t0 < main {
            let a_lo = ar.as_ptr().add(t0);
            let a_hi = ar.as_ptr().add(t0 + 4);
            for (c, b) in bs.iter().enumerate() {
                acc[c][0] = step(acc[c][0], a_lo, b.as_ptr().add(t0));
                acc[c][1] = step(acc[c][1], a_hi, b.as_ptr().add(t0 + 4));
            }
            t0 += LANES;
        }
        let mut lanes = [[0.0f32; LANES]; 4];
        for c in 0..4 {
            vst1q_f32(lanes[c].as_mut_ptr(), acc[c][0]);
            vst1q_f32(lanes[c].as_mut_ptr().add(4), acc[c][1]);
        }
        for (l, t) in (main..k).enumerate() {
            let x = ar[t];
            for (c, b) in bs.iter().enumerate() {
                lanes[c][l] += x * b[t];
            }
        }
        [
            reduce(lanes[0]),
            reduce(lanes[1]),
            reduce(lanes[2]),
            reduce(lanes[3]),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_table_is_exact() {
        assert_eq!(parse_request(None), Request::Auto);
        assert_eq!(parse_request(Some("auto")), Request::Auto);
        assert_eq!(parse_request(Some("")), Request::Auto);
        assert_eq!(parse_request(Some("off")), Request::Exact(SimdPath::Scalar));
        assert_eq!(
            parse_request(Some("scalar")),
            Request::Exact(SimdPath::Scalar)
        );
        assert_eq!(parse_request(Some("avx2")), Request::Exact(SimdPath::Avx2));
        assert_eq!(parse_request(Some("neon")), Request::Exact(SimdPath::Neon));
        assert_eq!(parse_request(Some("sse9")), Request::Unknown);
    }

    #[test]
    fn resolution_degrades_unsupported_requests_to_scalar() {
        // Whatever the host, `off` resolves to scalar, `auto` to the best
        // supported path, and an impossible exact request cannot escape
        // the supported set.
        assert_eq!(resolve(Request::Exact(SimdPath::Scalar)), SimdPath::Scalar);
        assert_eq!(resolve(Request::Auto), best_supported());
        assert_eq!(resolve(Request::Unknown), best_supported());
        for p in [SimdPath::Avx2, SimdPath::Neon] {
            let resolved = resolve(Request::Exact(p));
            assert!(resolved.supported());
            if !p.supported() {
                assert_eq!(resolved, SimdPath::Scalar);
            }
        }
    }

    #[test]
    fn active_path_is_supported_and_stable() {
        let first = active();
        assert!(first.supported());
        assert_eq!(first, active(), "dispatch must be cached, not re-resolved");
    }

    #[test]
    #[should_panic(expected = "not supported on this host")]
    fn forcing_an_impossible_path_fails_loudly() {
        // Exactly one of AVX2/NEON can be supported on any one arch; the
        // other must refuse to be forced.
        let impossible = if cfg!(target_arch = "x86_64") {
            SimdPath::Neon
        } else {
            SimdPath::Avx2
        };
        force(Some(impossible));
    }

    #[test]
    fn gauge_values_and_names_are_stable() {
        // The telemetry contract: these are recorded in golden metrics
        // files and bench headers, so they are frozen.
        for (p, name, gauge) in [
            (SimdPath::Scalar, "scalar", 0.0),
            (SimdPath::Avx2, "avx2", 1.0),
            (SimdPath::Neon, "neon", 2.0),
        ] {
            assert_eq!(p.name(), name);
            assert_eq!(p.gauge_value(), gauge);
        }
    }
}
