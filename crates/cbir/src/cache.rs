//! Cross-batch distance caching.
//!
//! The decomposed distance (Equation 1) splits every comparison into a
//! query-dependent part (the dot products) and a *dataset-only* part: the
//! squared norms of the centroids and, for product quantization, the
//! per-subspace codeword norms. The paper stores `||c||^2` "alongside the
//! centroids" precisely so the online stage never recomputes it; related
//! near-data retrieval work (NCAM) makes the same point for distance
//! tables. [`QueryContext`] is that store: a cache keyed by matrix
//! *identity* that survives across query batches and sweep points, so the
//! second and every later batch probing the same centroids or codebooks
//! pays only the query-side work.
//!
//! Hits and misses are counted process-wide in
//! [`cache_stats`] (`cbir.cache_hits` / `cbir.cache_misses` in the
//! telemetry exports), so an experiment run shows exactly how much
//! recomputation the cache removed.
//!
//! ## Identity, not equality
//!
//! Keys are `(data pointer, rows, cols)` of the cached matrix. That makes
//! lookups O(1) without hashing megabytes of floats, but it means a
//! context must not outlive the matrices it caches: drop the context (or
//! scope it per dataset) when the dataset goes away. Contexts are cheap —
//! one per experiment is the intended granularity.

use crate::linalg::{gemm_nt, norm_sq, Matrix};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

static CACHE_HITS: AtomicU64 = AtomicU64::new(0);
static CACHE_MISSES: AtomicU64 = AtomicU64::new(0);

/// Process-wide `(hits, misses)` across every [`QueryContext`] — the
/// counters exported as `cbir.cache_hits` / `cbir.cache_misses`.
#[must_use]
pub fn cache_stats() -> (u64, u64) {
    (
        CACHE_HITS.load(Ordering::Relaxed),
        CACHE_MISSES.load(Ordering::Relaxed),
    )
}

/// Identity key of a cached matrix: where its data lives and its shape.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct MatrixKey {
    ptr: usize,
    rows: usize,
    cols: usize,
}

impl MatrixKey {
    fn of(m: &Matrix) -> Self {
        MatrixKey {
            ptr: m.as_slice().as_ptr() as usize,
            rows: m.rows(),
            cols: m.cols(),
        }
    }
}

/// A cross-batch cache of dataset-side distance precomputations (row
/// norms of centroid and codebook matrices). Shared freely: lookups lock
/// a mutex, the cached vectors are handed out as `Arc`s.
#[derive(Debug, Default)]
pub struct QueryContext {
    norms: Mutex<HashMap<MatrixKey, Arc<Vec<f32>>>>,
}

impl QueryContext {
    /// Creates an empty context.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The squared row norms of `m`, computed once per matrix identity
    /// and shared across every later call — the `||c||^2` column the
    /// paper stores next to the centroids.
    #[must_use]
    pub fn row_norms(&self, m: &Matrix) -> Arc<Vec<f32>> {
        let key = MatrixKey::of(m);
        let mut cache = self.norms.lock().expect("norm cache poisoned");
        if let Some(hit) = cache.get(&key) {
            CACHE_HITS.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(hit);
        }
        CACHE_MISSES.fetch_add(1, Ordering::Relaxed);
        let norms = Arc::new((0..m.rows()).map(|i| norm_sq(m.row(i))).collect::<Vec<_>>());
        cache.insert(key, Arc::clone(&norms));
        norms
    }

    /// [`crate::linalg::batch_dist_sq`] with the *points-side* norms
    /// served from the cache: one GEMM plus broadcast adds, where
    /// `||p||^2` is only ever computed for the first batch that probes
    /// `points`. Identical results to the uncached form — the cached
    /// values are the same [`norm_sq`] outputs, bit for bit.
    #[must_use]
    pub fn batch_dist_sq(&self, queries: &Matrix, points: &Matrix) -> Matrix {
        let dots = gemm_nt(queries, points);
        let p_norms = self.row_norms(points);
        let mut out = Matrix::zeros(queries.rows(), points.rows());
        for i in 0..queries.rows() {
            let q_norm = norm_sq(queries.row(i));
            let row = out.row_mut(i);
            let dot_row = dots.row(i);
            for (j, slot) in row.iter_mut().enumerate() {
                *slot = q_norm + p_norms[j] - 2.0 * dot_row[j];
            }
        }
        out
    }

    /// Entries currently cached (distinct matrix identities).
    #[must_use]
    pub fn cached_matrices(&self) -> usize {
        self.norms.lock().expect("norm cache poisoned").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linalg::batch_dist_sq;

    fn fill(rows: usize, cols: usize, salt: u64) -> Matrix {
        Matrix::from_vec(
            rows,
            cols,
            (0..rows * cols)
                .map(|i| {
                    let x = (i as u64).wrapping_mul(2_654_435_761).wrapping_add(salt);
                    ((x % 997) as f32 - 498.0) / 53.0
                })
                .collect(),
        )
    }

    #[test]
    fn cached_distances_match_uncached_bitwise() {
        let ctx = QueryContext::new();
        let points = fill(40, 24, 1);
        for batch in 0..3 {
            let queries = fill(7, 24, 100 + batch);
            let cached = ctx.batch_dist_sq(&queries, &points);
            let plain = batch_dist_sq(&queries, &points);
            assert_eq!(
                cached
                    .as_slice()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                plain
                    .as_slice()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn repeat_batches_hit_the_cache() {
        let ctx = QueryContext::new();
        let points = fill(16, 8, 2);
        let (h0, m0) = cache_stats();
        let _ = ctx.row_norms(&points);
        let (h1, m1) = cache_stats();
        assert_eq!((h1 - h0, m1 - m0), (0, 1), "first probe must miss");
        let _ = ctx.row_norms(&points);
        let _ = ctx.row_norms(&points);
        let (h2, m2) = cache_stats();
        assert_eq!((h2 - h1, m2 - m1), (2, 0), "later probes must hit");
        assert_eq!(ctx.cached_matrices(), 1);
    }

    #[test]
    fn distinct_shapes_are_distinct_entries() {
        let ctx = QueryContext::new();
        let a = fill(8, 4, 3);
        let b = fill(6, 4, 4);
        let _ = ctx.row_norms(&a);
        let _ = ctx.row_norms(&b);
        assert_eq!(ctx.cached_matrices(), 2);
        // Same matrix again: still 2.
        let _ = ctx.row_norms(&a);
        assert_eq!(ctx.cached_matrices(), 2);
    }
}
